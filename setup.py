"""Setuptools shim.

All project metadata lives in pyproject.toml (PEP 621, read by setuptools >= 61).

This shim exists for offline environments without the `wheel` package, where
PEP 517/660 editable installs (which must build a wheel) cannot run.  There, use the
legacy develop path directly::

    python setup.py develop --no-deps

With network access (CI, normal dev machines), plain ``pip install -e .[test]``
works: pip's build isolation fetches a modern setuptools + wheel and performs a
standard PEP 660 editable install.  Running from a checkout without installing also
works: ``PYTHONPATH=src python -m pytest``.
"""

from setuptools import setup

setup()
