"""Setuptools shim.

The execution environment has no `wheel` package and no network access, so PEP 517
editable installs (which require bdist_wheel) fail.  This shim lets
``pip install -e . --no-build-isolation`` fall back to the legacy setup.py develop path.
All project metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
