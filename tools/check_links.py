#!/usr/bin/env python3
"""Check internal links in the repository's markdown documentation.

Scans the given markdown files (default: README.md and docs/*.md) for inline
``[text](target)`` links and validates every *internal* target:

* relative file targets must exist on disk (relative to the linking file);
* ``#anchor`` fragments — own-file or on a linked markdown file — must match a
  heading's GitHub-style slug in the target file.

External targets (``http://``, ``https://``, ``mailto:``) are ignored: the checker
must stay offline-friendly and deterministic.  Exit code 0 when everything
resolves, 1 otherwise (one diagnostic line per broken link).

Used by the CI docs job and by ``tests/docs/test_markdown_links.py``.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path
from typing import Iterable, List, Tuple

#: inline markdown links: [text](target) — images share the syntax via ![...]
_LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
_HEADING_RE = re.compile(r"^(#{1,6})\s+(.*?)\s*#*\s*$")
_CODE_FENCE_RE = re.compile(r"^(```|~~~)")
_EXTERNAL_PREFIXES = ("http://", "https://", "mailto:", "ftp://")


def github_slug(heading: str) -> str:
    """The GitHub anchor slug of a heading line (lowercase, punctuation stripped)."""
    text = re.sub(r"`([^`]*)`", r"\1", heading)            # unwrap inline code
    text = re.sub(r"\[([^\]]*)\]\([^)]*\)", r"\1", text)   # unwrap links
    text = text.strip().lower()
    text = re.sub(r"[^\w\- ]", "", text)
    return text.replace(" ", "-")


def heading_slugs(markdown: str) -> List[str]:
    """All heading anchor slugs of a markdown document (fenced code excluded)."""
    slugs: List[str] = []
    in_fence = False
    counts: dict = {}
    for line in markdown.splitlines():
        if _CODE_FENCE_RE.match(line.strip()):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        match = _HEADING_RE.match(line)
        if match:
            slug = github_slug(match.group(2))
            n = counts.get(slug, 0)
            counts[slug] = n + 1
            slugs.append(slug if n == 0 else f"{slug}-{n}")
    return slugs


def iter_links(markdown: str) -> Iterable[str]:
    """Every inline link target in a markdown document (fenced code excluded)."""
    in_fence = False
    for line in markdown.splitlines():
        if _CODE_FENCE_RE.match(line.strip()):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        for match in _LINK_RE.finditer(line):
            yield match.group(1)


def check_file(path: Path) -> List[Tuple[Path, str, str]]:
    """Broken internal links of one markdown file as (file, target, reason)."""
    problems: List[Tuple[Path, str, str]] = []
    text = path.read_text(encoding="utf-8")
    own_slugs = None
    for target in iter_links(text):
        if target.startswith(_EXTERNAL_PREFIXES):
            continue
        file_part, _, anchor = target.partition("#")
        if file_part:
            dest = (path.parent / file_part).resolve()
            if not dest.exists():
                problems.append((path, target, "missing file"))
                continue
        else:
            dest = path
        if anchor:
            if dest.suffix.lower() not in (".md", ".markdown"):
                continue
            if dest == path:
                slugs = own_slugs = (own_slugs if own_slugs is not None
                                     else heading_slugs(text))
            else:
                slugs = heading_slugs(dest.read_text(encoding="utf-8"))
            if anchor not in slugs:
                problems.append((path, target, "missing anchor"))
    return problems


def main(argv: List[str]) -> int:
    """CLI entry point: check the given files (default README.md + docs/*.md)."""
    root = Path(__file__).resolve().parents[1]
    if argv:
        files = [Path(a) for a in argv]
    else:
        files = [root / "README.md", *sorted((root / "docs").glob("*.md"))]
    problems = []
    for path in files:
        if not path.exists():
            problems.append((path, "", "file not found"))
            continue
        problems.extend(check_file(path))
    for path, target, reason in problems:
        print(f"{path}: broken link {target!r} ({reason})", file=sys.stderr)
    checked = ", ".join(str(f) for f in files)
    if not problems:
        print(f"ok: internal links resolve in {checked}")
    return 1 if problems else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
