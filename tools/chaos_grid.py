#!/usr/bin/env python3
"""Chaos harness for the fault-tolerant grid executor (``docs/resilience.md``).

Two drills over a real experiment grid, exercising every recovery path of
:mod:`repro.experiments.resilient` end to end:

* **smoke** — runs the grid on a worker pool with injected faults (one worker
  SIGKILLed mid-cell, one cell hung until its wall-clock timeout fires, one
  transient first-attempt failure) and asserts that every cell still completes
  ``ok`` with rows bit-identical to a clean serial run.
* **resume** — launches the grid runner in a subprocess with ``--journal``,
  SIGKILLs the whole process group mid-sweep (a *real* forced abort — the
  journal may end in a truncated line), then resumes in-process with the same
  journal and asserts the combined tables (rows, notes, metadata) are
  bit-identical to an uninterrupted run.

Run:  PYTHONPATH=src python tools/chaos_grid.py --scale tiny --jobs 2
CI runs both drills in the chaos-smoke job; exit code 0 means all asserts held.
"""

from __future__ import annotations

import argparse
import os
import signal
import subprocess
import sys
import tempfile
import time
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))

from repro.experiments.grid import (  # noqa: E402
    GridSummary,
    combine_cell_results,
    make_grid,
    run_experiment_grid,
    split_heavy_cells,
)
from repro.experiments.resilient import CellJournal, ChaosSpec, RetryPolicy  # noqa: E402

#: Default grid: one splittable scenario (fans into per-topology cells) plus one
#: unsplittable one, so both cell shapes go through every drill.
DEFAULT_EXPERIMENTS = "fig06,tab05"


def build_cells(experiments: str, scale: str):
    """The drill grid: split cells of ``experiments`` at ``scale``, seed 0."""
    names = [n for n in experiments.split(",") if n]
    return split_heavy_cells(make_grid(names, scales=[scale], seeds=[0]))


def assert_tables_equal(expected, actual, context: str) -> None:
    """Assert two combined result lists match bit-for-bit (rows, notes, meta)."""
    assert len(expected) == len(actual), \
        f"{context}: {len(expected)} vs {len(actual)} combined results"
    for want, got in zip(expected, actual):
        assert want.name == got.name, f"{context}: result order diverged"
        assert want.rows == got.rows, f"{context}: rows differ for {want.name}"
        assert want.notes == got.notes, f"{context}: notes differ for {want.name}"
        assert want.meta == got.meta, f"{context}: meta differs for {want.name}"


def drill_smoke(cells, clean, jobs: int) -> None:
    """Worker kill + hang-until-timeout + transient failure; all cells recover."""
    labels = [cell.label() for cell in cells]
    assert len(labels) >= 3, "smoke drill needs at least three cells"
    chaos = ChaosSpec(kill=(labels[0],), hang=(labels[len(labels) // 2],),
                      transient=(labels[-1],), hang_seconds=120.0)
    policy = RetryPolicy(backoff_base=0.05, backoff_cap=0.5)
    start = time.perf_counter()
    results = run_experiment_grid(cells, jobs=jobs, chaos=chaos, timeout=10.0,
                                  policy=policy)
    print(GridSummary(results=results).report())
    bad = [(r.cell.label(), r.outcome, r.error) for r in results if not r.ok]
    assert not bad, f"smoke drill left unrecovered cells: {bad}"
    injected = {labels[0], labels[len(labels) // 2], labels[-1]}
    retried = {r.cell.label() for r in results if r.attempts > 1}
    assert injected <= retried, \
        f"injected faults did not force retries: {injected - retried}"
    for want, got in zip(clean, results):
        assert want.result.rows == got.result.rows, \
            f"chaos run diverged from clean run on {got.cell.label()}"
    print(f"smoke drill ok: {len(cells)} cells recovered from worker kill, "
          f"hang and transient failure in {time.perf_counter() - start:.1f}s\n")


def drill_resume(cells, clean, experiments: str, scale: str, jobs: int,
                 journal_path: str) -> None:
    """Forced mid-sweep abort (SIGKILL of the runner) + journaled resume."""
    command = [sys.executable, "-m", "repro.experiments.runner", experiments,
               "--scale", scale, "--seeds", "0", "--jobs", str(jobs), "--split",
               "--journal", journal_path]
    env = dict(os.environ)
    env["PYTHONPATH"] = f"{REPO / 'src'}{os.pathsep}" + env.get("PYTHONPATH", "")
    process = subprocess.Popen(command, cwd=REPO, env=env, start_new_session=True,
                               stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL)
    # Abort mid-sweep: wait for at least one journaled cell, then SIGKILL the
    # whole process group (runner and workers alike — no cleanup handlers run).
    deadline = time.monotonic() + 120.0
    aborted = False
    while time.monotonic() < deadline:
        if process.poll() is not None:
            break  # sweep finished before we could abort (still a valid resume)
        if os.path.exists(journal_path) and os.path.getsize(journal_path) > 0:
            os.killpg(process.pid, signal.SIGKILL)
            process.wait()
            aborted = True
            break
        time.sleep(0.02)
    else:
        os.killpg(process.pid, signal.SIGKILL)
        raise AssertionError("runner produced no journal entries within 120s")
    journal = CellJournal(journal_path)
    print(f"aborted={aborted}; journal holds {len(journal)} cells "
          f"({journal.corrupt_lines} corrupt tail lines tolerated)")
    assert len(journal) >= 1, "forced abort left an empty journal"

    results = run_experiment_grid(cells, jobs=jobs, journal=journal_path,
                                  resume=True)
    print(GridSummary(results=results).report())
    assert all(r.ok for r in results), \
        [(r.cell.label(), r.error) for r in results if not r.ok]
    resumed = sum(1 for r in results if r.outcome == "journal")
    assert_tables_equal(combine_cell_results(clean), combine_cell_results(results),
                        "resumed vs uninterrupted")
    print(f"resume drill ok: {resumed}/{len(cells)} cells restored from the "
          "journal, combined tables bit-identical to the uninterrupted run\n")


def main(argv=None) -> int:
    """Run the requested chaos drills; exit 0 iff every assertion held."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scale", default="tiny",
                        choices=["tiny", "small", "medium"])
    parser.add_argument("--jobs", type=int, default=2)
    parser.add_argument("--experiments", default=DEFAULT_EXPERIMENTS,
                        help=f"comma-separated scenario names "
                             f"(default: {DEFAULT_EXPERIMENTS})")
    parser.add_argument("--drill", default="all",
                        choices=["smoke", "resume", "all"])
    args = parser.parse_args(argv)

    cells = build_cells(args.experiments, args.scale)
    print(f"== chaos grid: {len(cells)} cells, {args.jobs} workers, "
          f"scale {args.scale}")
    clean = run_experiment_grid(cells, jobs=None)
    assert all(r.ok for r in clean), "clean reference run failed"
    if args.drill in ("smoke", "all"):
        drill_smoke(cells, clean, args.jobs)
    if args.drill in ("resume", "all"):
        with tempfile.TemporaryDirectory() as tmp:
            drill_resume(cells, clean, args.experiments, args.scale, args.jobs,
                         os.path.join(tmp, "grid-journal.jsonl"))
    print("chaos harness: all drills passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
