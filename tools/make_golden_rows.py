#!/usr/bin/env python3
"""Regenerate the golden-row fixtures pinning experiment output across refactors.

Runs every registered experiment at tiny scale for the pinned seed and writes the
result rows to ``tests/experiments/golden/tiny_seed0.json``.  The golden-row test
(``tests/experiments/test_scenario.py``) replays the scenario pipeline against this
file, so experiment-layer refactors are held to bit-identical rows.  Rows pass
through :func:`repro.experiments.scenario.normalized_rows` — the same helper the
test compares with, so the two sides can never drift.

Only rerun this script when a row change is *intended* (new experiment, deliberate
semantic change); commit the diff together with the change that explains it.  The
script prints a diff summary against the existing fixture — which scenarios were
added, removed or changed, and their row counts — so an unintended drift is visible
before it is committed (regen workflow: ``docs/experiments.md``).

Run:  PYTHONPATH=src python tools/make_golden_rows.py
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.experiments.common import registry, run_experiment
from repro.experiments.scenario import normalized_rows

GOLDEN_PATH = Path(__file__).resolve().parent.parent / "tests" / "experiments" / \
    "golden" / "tiny_seed0.json"
SEED = 0


def diff_summary(before: dict, after: dict) -> list:
    """Human-readable per-scenario differences between two golden fixtures."""
    lines = []
    for name in sorted(set(before) | set(after)):
        if name not in before:
            lines.append(f"  + {name}: new scenario ({len(after[name])} rows)")
        elif name not in after:
            lines.append(f"  - {name}: removed ({len(before[name])} rows)")
        elif before[name] != after[name]:
            changed = sum(1 for old, new in zip(before[name], after[name])
                          if old != new)
            changed += abs(len(before[name]) - len(after[name]))
            lines.append(f"  ~ {name}: {changed} of {len(after[name])} rows differ "
                         f"(was {len(before[name])} rows)")
    return lines


def main() -> None:
    """Run every experiment at tiny scale and rewrite the normalized-row fixture,
    printing a diff summary against the previous fixture instead of silently
    replacing it."""
    previous = {}
    if GOLDEN_PATH.exists():
        with GOLDEN_PATH.open() as fh:
            previous = json.load(fh)
    golden = {}
    for name in sorted(registry()):
        result = run_experiment(name, scale="tiny", seed=SEED)
        golden[name] = normalized_rows(result.rows)
        print(f"{name:8s} {len(result.rows)} rows")
    changes = diff_summary(previous, golden)
    if not changes:
        print("no changes against the existing fixture; nothing rewritten")
        return
    GOLDEN_PATH.parent.mkdir(parents=True, exist_ok=True)
    with GOLDEN_PATH.open("w") as fh:
        json.dump(golden, fh, indent=1, sort_keys=True)
        fh.write("\n")
    print("changed scenarios:")
    for line in changes:
        print(line)
    print(f"wrote {GOLDEN_PATH}")


if __name__ == "__main__":
    main()
