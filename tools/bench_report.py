#!/usr/bin/env python3
"""Consolidate the simulation benchmarks into the committed ``BENCH_flowsim.json``.

Runs ``benchmarks/test_bench_flowsim.py`` and ``benchmarks/test_bench_packetsim.py``
under pytest-benchmark once per requested scale, parses the machine-readable output,
and folds the numbers that track the simulators' performance trajectory across PRs
into one committed JSON file:

* ``fig02_permutation`` — scalar reference vs vectorized engine event rates on the
  fig02-style randomly mapped permutation workload;
* ``incast_staggered`` — ``allocator="full"`` vs ``allocator="incremental"`` event
  rates on the staggered multi-tenant incast workload (the dirty-component
  refiltering benchmark; see ``repro.sim.allocstate``);
* ``incast_dense`` — ``allocator="incremental"`` vs ``allocator="bottleneck"``
  event rates on the dense all-at-once shared-sender incast, where the one-
  component incidence defeats component refiltering but saturation-coupled
  refills stay local (see ``repro.sim.bottleneck``);
* ``fault_recovery`` — cold kernel rebuild vs dirty-region derivation
  (``PathCache.mutated``) of a 5%-degraded topology's routing kernels, the cost a
  fault epoch pays mid-run (see ``repro.kernels.dirtyregion`` and
  ``docs/resilience.md``);
* ``packet_incast`` — scalar reference vs vectorized packet engine
  (:mod:`repro.sim.packetengine`) event rates on the deep-incast workload;
* ``stream_sustained`` — the streaming service layer (:mod:`repro.sim.stream`) on
  an open-ended Poisson arrival stream: sustained events/sec plus the bounded-
  memory evidence (peak active flows and slot peak versus total arrivals; see
  ``docs/streaming.md``);
* ``grid_executor`` — plain ``pool.map`` vs the fault-tolerant grid executor
  (:mod:`repro.experiments.resilient`) on a healthy pooled sweep; the derived
  ``resilient_overhead`` ratio must stay ≤ 1.15x (asserted in CI by
  ``benchmarks/test_bench_grid.py::test_grid_resilient_overhead``; see
  ``docs/resilience.md``).

Existing scales in the output file are preserved, so partial regenerations (e.g.
``--scales small`` only) never drop history, and ``--files`` restricts a
regeneration to a subset of the benchmark modules (the other sections of that
scale are kept).  Regenerate deliberately — like the golden rows — and commit the
diff together with the change that explains it:

Run:  PYTHONPATH=src python tools/bench_report.py --scales small medium
"""

from __future__ import annotations

import argparse
import datetime
import json
import os
import subprocess
import sys
import tempfile
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
DEFAULT_OUT = REPO / "BENCH_flowsim.json"
BENCH_FILES = ("benchmarks/test_bench_flowsim.py", "benchmarks/test_bench_packetsim.py",
               "benchmarks/test_bench_stream.py", "benchmarks/test_bench_grid.py")

#: benchmark test name -> (report section, role key)
BENCHMARKS = {
    "test_bench_flowsim_reference_scalar": ("fig02_permutation", "reference"),
    "test_bench_flowsim_vectorized_engine": ("fig02_permutation", "engine"),
    "test_bench_alloc_full": ("incast_staggered", "full"),
    "test_bench_alloc_incremental": ("incast_staggered", "incremental"),
    "test_bench_alloc_incremental_dense": ("incast_dense", "incremental"),
    "test_bench_alloc_bottleneck_dense": ("incast_dense", "bottleneck"),
    "test_bench_recovery_cold_rebuild": ("fault_recovery", "rebuild"),
    "test_bench_recovery_dirty_region": ("fault_recovery", "derived"),
    "test_bench_packetsim_reference_scalar": ("packet_incast", "reference"),
    "test_bench_packetsim_vectorized_engine": ("packet_incast", "engine"),
    "test_bench_stream_sustained": ("stream_sustained", "stream"),
    "test_bench_grid_plain_pool": ("grid_executor", "plain"),
    "test_bench_grid_resilient_pool": ("grid_executor", "resilient"),
}

#: extra_info keys copied verbatim into a section (beyond the shared "events").
EXTRA_INFO_KEYS = ("arrivals", "peak_active", "peak_slots")

#: section -> (baseline role, fast role) for the derived speedup.
SPEEDUPS = {
    "fig02_permutation": ("reference", "engine"),
    "incast_staggered": ("full", "incremental"),
    "incast_dense": ("incremental", "bottleneck"),
    "fault_recovery": ("rebuild", "derived"),
    "packet_incast": ("reference", "engine"),
}


def run_benchmarks(scale: str, files=BENCH_FILES) -> dict:
    """Run the simulation benchmark modules at ``scale``; return the merged
    pytest-benchmark JSON records."""
    merged = {"benchmarks": []}
    for bench_file in files:
        with tempfile.TemporaryDirectory() as tmp:
            out = Path(tmp) / "bench.json"
            env = dict(os.environ)
            env["FATPATHS_BENCH_SCALE"] = scale
            env["PYTHONPATH"] = (f"{REPO / 'src'}{os.pathsep}"
                                 + env.get("PYTHONPATH", ""))
            command = [sys.executable, "-m", "pytest", bench_file,
                       "--benchmark-only", "-q", f"--benchmark-json={out}"]
            result = subprocess.run(command, cwd=REPO, env=env)
            if result.returncode != 0:
                raise SystemExit(
                    f"benchmark run {bench_file} failed at scale {scale!r}")
            merged["benchmarks"].extend(json.loads(out.read_text())["benchmarks"])
    return merged


def consolidate(scale: str, bench_json: dict) -> dict:
    """One scale's report entry from a pytest-benchmark JSON document."""
    sections: dict = {}
    for record in bench_json["benchmarks"]:
        mapped = BENCHMARKS.get(record["name"])
        if mapped is None:
            continue
        section, role = mapped
        seconds = float(record["stats"]["mean"])
        entry = sections.setdefault(section, {})
        entry[f"{role}_seconds"] = round(seconds, 4)
        extra = record.get("extra_info", {})
        events = extra.get("events")
        if events is not None:
            entry.setdefault("events", int(events))
            entry[f"{role}_events_per_second"] = round(int(events) / seconds, 1)
        for key in EXTRA_INFO_KEYS:
            if key in extra:
                entry[key] = int(extra[key])
    for section, (baseline, fast) in SPEEDUPS.items():
        entry = sections.get(section, {})
        base, quick = entry.get(f"{baseline}_seconds"), entry.get(f"{fast}_seconds")
        if base and quick:
            entry[f"{fast}_speedup"] = round(base / quick, 2)
    executor = sections.get("grid_executor", {})
    plain = executor.get("plain_seconds")
    resilient = executor.get("resilient_seconds")
    if plain and resilient:
        # an overhead ratio, not a speedup: >= ~1.0 is expected, <= 1.15 required
        executor["resilient_overhead"] = round(resilient / plain, 3)
    return sections


def main(argv=None) -> int:
    """Regenerate the committed benchmark-trajectory file."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scales", nargs="+", default=["small"],
                        choices=["tiny", "small", "medium"])
    parser.add_argument("--files", nargs="+", default=list(BENCH_FILES),
                        choices=list(BENCH_FILES),
                        help="restrict the run to these benchmark modules "
                             "(other sections of the scale are preserved)")
    parser.add_argument("--out", type=Path, default=DEFAULT_OUT)
    args = parser.parse_args(argv)

    report = {"benchmark": "repro.sim simulators",
              "source": list(BENCH_FILES), "scales": {}}
    if args.out.exists():
        report.update(json.loads(args.out.read_text()))
    report["benchmark"] = "repro.sim simulators"
    report["source"] = list(BENCH_FILES)
    for scale in args.scales:
        print(f"== running {', '.join(args.files)} at scale {scale}")
        existing = report["scales"].get(scale, {})
        existing.update(consolidate(scale, run_benchmarks(scale, args.files)))
        report["scales"][scale] = existing
    report["updated"] = datetime.date.today().isoformat()
    args.out.write_text(json.dumps(report, indent=1, sort_keys=True) + "\n")
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
