#!/usr/bin/env python3
"""Cloud/TCP scenario: FatPaths vs ECMP vs LetFlow on a Slim Fly data-center fabric.

Models the paper's §VII-C setting: a TCP-based cloud data center built on a
low-diameter topology, running a mixed pFabric-like workload with Poisson flow
arrivals.  Compares three deployments a cluster operator could choose between:

* classic ECMP (static flow hashing over minimal paths),
* LetFlow (flowlet switching over minimal paths),
* FatPaths with four layers and rho = 0.6 on DCTCP.

Prints mean/99% FCT per flow-size class and the speedups over ECMP.

Run:  python examples/datacenter_tcp_cloud.py [--arrival-rate 200]
"""

import argparse

import numpy as np

from repro.core.mapping import random_mapping
from repro.experiments.simcommon import build_stack, simulate_stack
from repro.topologies import slim_fly
from repro.traffic.flows import poisson_workload
from repro.traffic.patterns import random_permutation

SIZE_CLASSES = {"small (<=64KiB)": 64 * 1024, "medium (<=1MiB)": 1024 * 1024,
                "large (>1MiB)": float("inf")}


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--arrival-rate", type=float, default=200.0,
                        help="flows per endpoint per second (paper: lambda = 200)")
    parser.add_argument("--duration", type=float, default=0.02,
                        help="workload duration in seconds")
    parser.add_argument("--q", type=int, default=7, help="Slim Fly parameter q")
    args = parser.parse_args()

    rng = np.random.default_rng(0)
    topology = slim_fly(args.q)
    print(f"fabric: {topology}")

    pattern = random_permutation(topology.num_endpoints, rng).subsample(0.3, rng)
    workload = poisson_workload(pattern, args.arrival_rate, args.duration, rng=rng)
    mapping = random_mapping(topology.num_endpoints, rng)
    print(f"workload: {len(workload)} flows, {workload.total_bytes() / 1e9:.2f} GB total")

    results = {}
    for variant, kwargs in {
        "ecmp": dict(stack="ecmp"),
        "letflow": dict(stack="letflow"),
        "fatpaths": dict(stack="fatpaths_tcp", num_layers=4, rho=0.6),
    }.items():
        stack = build_stack(topology, seed=0, **kwargs)
        results[variant] = simulate_stack(topology, stack, workload, mapping=mapping,
                                          seed=0, drop_warmup=True)

    baseline = results["ecmp"].summary()
    print(f"\n{'variant':10s} {'mean FCT ms':>12s} {'99% FCT ms':>12s} "
          f"{'speedup mean':>13s} {'speedup 99%':>12s}")
    for variant, result in results.items():
        summary = result.summary()
        print(f"{variant:10s} {summary['fct_mean'] * 1e3:12.3f} "
              f"{summary['fct_p99'] * 1e3:12.3f} "
              f"{baseline['fct_mean'] / summary['fct_mean']:13.2f} "
              f"{baseline['fct_p99'] / summary['fct_p99']:12.2f}")

    print("\nper-size-class mean FCT (ms):")
    bounds = list(SIZE_CLASSES.values())
    for variant, result in results.items():
        buckets = result.by_size_bucket([b if b != float("inf") else 1e12 for b in bounds])
        cells = []
        for (label, bound), key in zip(SIZE_CLASSES.items(), buckets):
            bucket = buckets[key]
            value = bucket.summary().get("fct_mean", float("nan")) if len(bucket) else float("nan")
            cells.append(f"{label}: {value * 1e3:8.3f}")
        print(f"  {variant:10s} " + "   ".join(cells))


if __name__ == "__main__":
    main()
