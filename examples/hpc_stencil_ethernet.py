#!/usr/bin/env python3
"""HPC scenario: a bulk-synchronous stencil on a Dragonfly with bare-Ethernet FatPaths.

Models the paper's HPC use case (§VII-B, Figure 17): an MPI-style 2D stencil — every
process exchanges fixed-size messages with four neighbours, then hits a barrier — on a
Dragonfly cluster using Ethernet without TCP (purified/NDP transport).  Compares:

* minimal-path routing with per-packet spraying (the NDP baseline),
* FatPaths layered routing with adaptive flowlet balancing,
* the effect of randomized vs skewed (identity) process placement.

The reported metric is the *step completion time* (the barrier waits for the slowest
message) — the quantity an application developer actually experiences.

Run:  python examples/hpc_stencil_ethernet.py [--message-size 200000]
"""

import argparse

import numpy as np

from repro.core.mapping import identity_mapping, random_mapping
from repro.experiments.simcommon import build_stack, simulate_stack
from repro.topologies import dragonfly
from repro.traffic.flows import uniform_size_workload
from repro.traffic.patterns import stencil_pattern


def step_time(result) -> float:
    """Completion time of the slowest flow = the bulk-synchronous step time."""
    return max(r.completion_time for r in result.records)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--message-size", type=float, default=200_000.0,
                        help="stencil message size in bytes")
    parser.add_argument("--dragonfly-p", type=int, default=3,
                        help="Dragonfly concentration parameter p")
    args = parser.parse_args()

    rng = np.random.default_rng(0)
    topology = dragonfly(args.dragonfly_p)
    print(f"cluster: {topology}")

    pattern = stencil_pattern(topology.num_endpoints).subsample(0.3, rng)
    workload = uniform_size_workload(pattern, args.message_size)
    print(f"stencil step: {len(workload)} messages of {int(args.message_size)} bytes")

    mappings = {
        "skewed placement": identity_mapping(topology.num_endpoints),
        "randomized placement": random_mapping(topology.num_endpoints, rng),
    }
    stacks = {
        "NDP minimal paths": build_stack(topology, "ndp", seed=0),
        "FatPaths": build_stack(topology, "fatpaths", seed=0),
    }

    print(f"\n{'placement':22s} {'stack':20s} {'step time (ms)':>15s} {'speedup':>9s}")
    for placement_name, mapping in mappings.items():
        baseline = None
        for stack_name, stack in stacks.items():
            result = simulate_stack(topology, stack, workload, mapping=mapping, seed=0)
            t = step_time(result) * 1e3
            if baseline is None:
                baseline = t
            print(f"{placement_name:22s} {stack_name:20s} {t:15.3f} {baseline / t:9.2f}")

    print("\nTakeaways (match the paper's Figures 11 and 17):")
    print(" * FatPaths' non-minimal multipathing shortens the barrier-bound step time;")
    print(" * randomized placement helps both stacks, and FatPaths benefits the most "
          "because it can spread the extra inter-group traffic over its layers.")


if __name__ == "__main__":
    main()
