#!/usr/bin/env python3
"""Path-diversity report across low-diameter topologies (paper §IV reproduced in one script).

Builds comparable-size instances of Slim Fly, Dragonfly, HyperX, Xpander and a fat tree,
and prints for each:

* shortest-path length / diversity statistics (Figure 6),
* "almost minimal" disjoint-path counts at diameter + 1 hops (Figure 7 / Table IV),
* path interference at the Table IV distance d',
* total network load (TNL) and edge density.

Run:  python examples/path_diversity_report.py [--size-class tiny|small|medium]
"""

import argparse

import numpy as np

from repro.diversity import (
    cdp_summary,
    minimal_path_statistics,
    pi_summary,
    total_network_load,
)
from repro.topologies import SizeClass, comparable_configurations

TABLE4_DISTANCE = {"SF": 3, "DF": 4, "HX3": 3, "XP": 3, "FT3": 4}


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--size-class", default="tiny", choices=[c.value for c in SizeClass])
    parser.add_argument("--samples", type=int, default=150)
    args = parser.parse_args()

    rng = np.random.default_rng(0)
    configs = comparable_configurations(SizeClass(args.size_class),
                                        topologies=list(TABLE4_DISTANCE))
    header = (f"{'topology':10s} {'Nr':>6s} {'N':>7s} {'k_prime':>7s} {'1-SP %':>7s} "
              f"{'CDP %k':>7s} {'CDP 1% %k':>9s} {'PI %k':>6s} {'TNL':>9s} {'density':>8s}")
    print(header)
    print("-" * len(header))
    for name, topo in configs.items():
        distance = TABLE4_DISTANCE[name]
        minimal = minimal_path_statistics(topo, num_samples=args.samples, rng=rng)
        cdp = cdp_summary(topo, distance, num_samples=args.samples, rng=rng)
        pi = pi_summary(topo, distance, num_samples=max(30, args.samples // 3), rng=rng)
        tnl = total_network_load(topo)
        print(f"{name:10s} {topo.num_routers:6d} {topo.num_endpoints:7d} "
              f"{topo.network_radix:7d} "
              f"{100 * minimal.fraction_single_shortest_path:7.1f} "
              f"{100 * cdp.mean_fraction_of_radix:7.1f} "
              f"{100 * cdp.tail_1pct / topo.network_radix:9.1f} "
              f"{100 * pi.mean_fraction_of_radix:6.1f} "
              f"{tnl:9.0f} {topo.edge_density():8.2f}")

    print("\nReading the table (paper §IV takeaways):")
    print(" * '1-SP %': most SF/DF pairs have a single shortest path — shortest paths fall short.")
    print(" * 'CDP %k': at d' (diameter + ~1) the disjoint-path supply is a large fraction of k'.")
    print(" * 'PI %k': overlap between concurrently used paths; zero for fat trees.")


if __name__ == "__main__":
    main()
