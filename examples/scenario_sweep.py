#!/usr/bin/env python3
"""Scenario-registry sweep: run registered experiments on a process pool and
cross-tabulate their merged result rows.

Demonstrates the declarative experiment layer end to end:

1. pick scenarios from the central registry (`repro.experiments.scenario`) and
   inspect their specs (paper reference, split axis, row schema);
2. fan them across a worker pool as per-topology grid cells — each simulation
   cell runs its family's whole batched ``simulate_many`` group in one worker;
3. merge the split cells back into whole tables (`grid.combine_cell_results`)
   and pivot the common row schema into one cross-scenario summary per topology.

Run:  python examples/scenario_sweep.py [--scenarios fig06,incast] [--jobs 2]
"""

import argparse
import time

from repro.experiments.grid import (
    combine_cell_results,
    make_grid,
    run_experiment_grid,
    split_heavy_cells,
)
from repro.experiments.scenario import scenario_spec


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scenarios", default="fig06,incast",
                        help="comma-separated registry names (default: fig06,incast)")
    parser.add_argument("--jobs", type=int, default=2,
                        help="worker processes for the grid (default: 2)")
    parser.add_argument("--scale", default="tiny", help="instance scale")
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()
    names = [n for n in args.scenarios.split(",") if n]

    print("specs:")
    for name in names:
        spec = scenario_spec(name)
        axis = "+".join(spec.topology_names) if spec.splittable else "(whole cell)"
        print(f"  {spec.name:8s} {spec.paper_reference:24s} axis={axis}")
        print(f"  {'':8s} rows carry {', '.join(spec.base_columns)}")

    cells = split_heavy_cells(make_grid(names, scales=[args.scale], seeds=[args.seed]))
    start = time.perf_counter()
    results = run_experiment_grid(cells, jobs=args.jobs)
    elapsed = time.perf_counter() - start
    failed = [r for r in results if not r.ok]
    print(f"\ngrid: {len(cells)} cells on {args.jobs} workers in {elapsed:.1f}s "
          f"({len(failed)} failed)")
    for r in failed:
        print(f"  FAILED {r.cell.label()}: {r.error}")

    # merged tables: split per-topology cells recombine into the full runs
    merged = combine_cell_results(results)
    for result in merged:
        print()
        print(result.report())

    # the common row schema makes cross-scenario pivots one dict comprehension:
    # every splittable scenario's rows carry a "topology" column
    by_topology: dict = {}
    for result in merged:
        for row in result.rows:
            topo = row.get("topology")
            if topo is not None:
                by_topology.setdefault(topo, {}).setdefault(result.name, 0)
                by_topology[topo][result.name] += 1
    print("\nrows per (topology, scenario):")
    for topo, counts in sorted(by_topology.items()):
        counted = ", ".join(f"{name}={n}" for name, n in sorted(counts.items()))
        print(f"  {topo:8s} {counted}")


if __name__ == "__main__":
    main()
