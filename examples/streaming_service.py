#!/usr/bin/env python3
"""Streaming service demo: open-ended arrivals, live windows, checkpoint/restore.

Drives the streaming simulation service (:class:`repro.sim.stream.StreamSimulator`)
the way a long-running evaluation harness would:

1. a lazy Poisson arrival stream (:func:`repro.traffic.streams.poisson_flow_stream`)
   feeds a FatPaths stack on a Slim Fly fabric — flows are simulated as they are
   pulled, memory stays proportional to the flows in flight;
2. windowed metrics stream out while the run progresses (per-window FCT
   percentiles, link utilisation, events/sec);
3. the run is then replayed in two halves around a pickled checkpoint, showing
   that the restored service continues bit-identically (same steady-state
   summary as the uninterrupted run).

Walkthrough of the underlying API: ``docs/streaming.md``.

Run:  python examples/streaming_service.py [--duration 0.2] [--arrival-rate 300]
"""

import argparse
import pickle

import numpy as np

from repro.experiments.simcommon import build_stack
from repro.sim.flowsim import StreamConfig, StreamSimulator
from repro.topologies import slim_fly
from repro.traffic.patterns import random_permutation
from repro.traffic.streams import poisson_flow_stream


def build_service(topology, window, seed=0):
    """A FatPaths stack wrapped in a fresh streaming service."""
    stack = build_stack(topology, "fatpaths", seed=seed)
    return StreamSimulator(
        topology, stack.routing, selector=stack.selector, transport=stack.transport,
        seed=seed, record_sink=lambda record: None,
        stream_config=StreamConfig(window=window, warmup_windows=2,
                                   min_retired=64, initial_slots=64))


def drive_chunked(service, flows, cut=None):
    """Push ``flows`` chunk by chunk; optionally stop after ``cut`` chunks.

    Each chunk is followed by an advance strictly below the next chunk's first
    start time — the canonical driving pattern whose replay a checkpoint resumes
    bit-identically (both runs must push/advance at the same points).
    """
    chunks = [flows[i:i + 200] for i in range(0, len(flows), 200)]
    for i, chunk in enumerate(chunks):
        if cut is not None and i >= cut:
            return None
        service.push(chunk)
        if i + 1 < len(chunks):
            service.advance(float(chunks[i + 1][0].start_time), inclusive=False)
    return service.finish()


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--q", type=int, default=7, help="Slim Fly parameter q")
    parser.add_argument("--arrival-rate", type=float, default=300.0,
                        help="flows per communicating pair per second")
    parser.add_argument("--duration", type=float, default=0.1,
                        help="arrival-process duration in simulated seconds")
    parser.add_argument("--window", type=float, default=0.01,
                        help="metrics window width in simulated seconds")
    args = parser.parse_args()

    topology = slim_fly(args.q)
    print(f"fabric: {topology}")
    rng = np.random.default_rng(0)
    pattern = random_permutation(topology.num_endpoints, rng).subsample(0.5, rng)

    # ---- 1. open-ended streaming run: simulate while arrivals are pulled
    service = build_service(topology, args.window)
    arrivals = poisson_flow_stream(pattern, args.arrival_rate,
                                   rng=np.random.default_rng(1),
                                   duration=args.duration)
    summary = service.run(arrivals)

    print(f"\nper-window metrics ({args.window * 1e3:.0f} ms windows):")
    print(f"{'window':>6s} {'arrivals':>9s} {'done':>6s} {'p50 ms':>8s} "
          f"{'p99 ms':>8s} {'util':>6s} {'events/s':>10s}")
    for w in service.windows:
        print(f"{w.index:6d} {w.arrivals:9d} {w.completions:6d} "
              f"{w.fct_p50 * 1e3:8.3f} {w.fct_p99 * 1e3:8.3f} "
              f"{w.util_mean:6.3f} {w.events_per_second:10.0f}")

    print(f"\nsteady-state summary (past {service.stream_config.warmup_windows} "
          f"warm-up windows):")
    print(f"  arrivals {summary['arrivals']}, completions {summary['completions']}, "
          f"events {summary['events']}")
    print(f"  FCT p50/p90/p99: {summary['steady_fct_p50'] * 1e3:.3f} / "
          f"{summary['steady_fct_p90'] * 1e3:.3f} / "
          f"{summary['steady_fct_p99'] * 1e3:.3f} ms")
    print(f"  bounded memory: peak {summary['peak_active']} active flows, "
          f"{summary['peak_slots']} slots for {summary['arrivals']} arrivals "
          f"({summary['slot_compactions']} slot compactions)")

    # ---- 2. checkpoint/restore: interrupt the same run halfway and resume
    flows = list(poisson_flow_stream(pattern, args.arrival_rate,
                                     rng=np.random.default_rng(1),
                                     duration=args.duration))
    uninterrupted = build_service(topology, args.window)
    baseline = drive_chunked(uninterrupted, flows)

    first_half = build_service(topology, args.window)
    cut = max(1, len(flows) // 200 // 2)
    drive_chunked(first_half, flows, cut=cut)
    blob = pickle.dumps(first_half.checkpoint())
    print(f"\ncheckpoint at t={first_half.now * 1e3:.2f} ms "
          f"({first_half.active_count} flows in flight, {len(blob)} bytes)")

    resumed = build_service(topology, args.window)
    resumed.restore(pickle.loads(blob))
    # chunk boundaries must match the uninterrupted run's driving exactly
    for i in range(cut, (len(flows) + 199) // 200):
        chunk = flows[i * 200:(i + 1) * 200]
        resumed.push(chunk)
        nxt = flows[(i + 1) * 200:(i + 1) * 200 + 1]
        if nxt:
            resumed.advance(float(nxt[0].start_time), inclusive=False)
    replayed = resumed.finish()

    match = all(replayed[k] == baseline[k] for k in baseline
                if not (isinstance(baseline[k], float) and np.isnan(baseline[k])))
    print(f"restored run matches the uninterrupted run: {match}")
    print(f"  p99 uninterrupted {baseline['steady_fct_p99'] * 1e3:.4f} ms, "
          f"restored {replayed['steady_fct_p99'] * 1e3:.4f} ms")


if __name__ == "__main__":
    main()
