#!/usr/bin/env python3
"""Quickstart: build a Slim Fly, analyse its path diversity, and route with FatPaths.

This walks through the library's core workflow in a few minutes of runtime:

1. build a low-diameter topology (Slim Fly, diameter 2);
2. measure why shortest paths "fall short" (most router pairs have one shortest path)
   but "almost-minimal" paths are plentiful;
3. build FatPaths layered routing and inspect the multi-path candidates it exposes;
4. simulate a permutation workload and compare FatPaths against single-path ECMP.

Run:  python examples/quickstart.py [--q 7] [--samples 200]
"""

import argparse

import numpy as np

from repro.core import FatPathsConfig, FatPathsRouting
from repro.core.loadbalance import EcmpSelector, FlowletSelector
from repro.diversity import disjoint_path_distribution, minimal_path_statistics
from repro.routing import EcmpRouting
from repro.sim.flowsim import simulate_workload
from repro.topologies import slim_fly
from repro.traffic.flows import uniform_size_workload
from repro.traffic.patterns import random_permutation


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--q", type=int, default=7,
                        help="Slim Fly parameter q (q=7: 98 routers; q=5: 50)")
    parser.add_argument("--samples", type=int, default=200,
                        help="sampled router pairs for the diversity statistics")
    args = parser.parse_args()
    if args.samples < 1:
        parser.error("--samples must be >= 1")
    rng = np.random.default_rng(0)

    # 1. A Slim Fly with q = 7: 98 routers, diameter 2, ~588 endpoints.
    topology = slim_fly(args.q)
    print(f"topology: {topology}")
    print(f"  diameter = {topology.diameter()}, average path length = "
          f"{topology.average_path_length():.2f}")

    # 2. Path diversity: shortest paths are scarce, almost-minimal paths are not.
    stats = minimal_path_statistics(topology, num_samples=args.samples, rng=rng)
    print(f"\npath diversity (sampled router pairs):")
    print(f"  fraction of pairs with a single shortest path: "
          f"{stats.fraction_single_shortest_path:.0%}")
    almost_minimal = disjoint_path_distribution(topology, max_len=3,
                                                num_samples=args.samples, rng=rng)
    print(f"  median disjoint paths of <= 3 hops: {np.median(almost_minimal):.0f} "
          f"(>= 3 for {np.mean(almost_minimal >= 3):.0%} of pairs)")

    # 3. FatPaths layered routing: one (possibly non-minimal) path per layer.
    routing = FatPathsRouting(topology, FatPathsConfig(num_layers=9, rho=0.75, seed=0))
    s, t = 0, min(60, topology.num_routers - 1)
    print(f"\nFatPaths candidate paths from router {s} to router {t}:")
    for path in routing.router_paths(s, t):
        print(f"  {path}  ({len(path) - 1} hops)")

    # 4. Simulate a random permutation workload: FatPaths vs single-path ECMP.
    pattern = random_permutation(topology.num_endpoints, rng).subsample(0.3, rng)
    workload = uniform_size_workload(pattern, 1024 * 1024)   # 1 MiB messages
    fatpaths_result = simulate_workload(topology, routing, workload,
                                        selector=FlowletSelector(seed=0), seed=0)
    ecmp_result = simulate_workload(topology, EcmpRouting(topology, seed=0), workload,
                                    selector=EcmpSelector(seed=0), seed=0)
    fp, ec = fatpaths_result.summary(), ecmp_result.summary()
    print(f"\n1 MiB permutation workload ({len(workload)} flows):")
    print(f"  FatPaths: mean FCT = {fp['fct_mean'] * 1e3:.3f} ms, "
          f"99% FCT = {fp['fct_p99'] * 1e3:.3f} ms")
    print(f"  ECMP:     mean FCT = {ec['fct_mean'] * 1e3:.3f} ms, "
          f"99% FCT = {ec['fct_p99'] * 1e3:.3f} ms")
    print(f"  tail speedup of FatPaths over ECMP: {ec['fct_p99'] / fp['fct_p99']:.2f}x")


if __name__ == "__main__":
    main()
