"""Unit and property tests for the Topology network model."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.topologies.base import Topology


def make_path_topology(n=5, p=2):
    """A simple path 0-1-2-...-(n-1)."""
    return Topology("path", n, [(i, i + 1) for i in range(n - 1)], p)


class TestConstruction:
    def test_rejects_self_loop(self):
        with pytest.raises(ValueError, match="self loop"):
            Topology("bad", 3, [(0, 0)], 1)

    def test_rejects_duplicate_edge(self):
        with pytest.raises(ValueError, match="duplicate"):
            Topology("bad", 3, [(0, 1), (1, 0)], 1)

    def test_rejects_out_of_range_edge(self):
        with pytest.raises(ValueError, match="unknown router"):
            Topology("bad", 3, [(0, 5)], 1)

    def test_rejects_nonpositive_router_count(self):
        with pytest.raises(ValueError):
            Topology("bad", 0, [], 1)

    def test_edges_normalized_and_sorted(self):
        t = Topology("t", 4, [(3, 1), (2, 0)], 1)
        assert t.edges == ((0, 2), (1, 3))

    def test_endpoint_routers_default_all(self):
        t = make_path_topology(4, 3)
        assert t.endpoint_routers == (0, 1, 2, 3)
        assert t.num_endpoints == 12

    def test_endpoint_routers_subset(self):
        t = Topology("t", 4, [(0, 1), (1, 2), (2, 3)], 2, endpoint_routers=[0, 3])
        assert t.num_endpoints == 4
        assert t.router_of_endpoint(0) == 0
        assert t.router_of_endpoint(3) == 3
        assert t.endpoints_of_router(1) == []
        assert t.endpoints_of_router(3) == [2, 3]


class TestMetrics:
    def test_degrees_and_radix(self):
        t = make_path_topology(4, 2)
        assert list(t.degrees()) == [1, 2, 2, 1]
        assert t.network_radix == 2
        assert t.router_radix == 4

    def test_path_graph_diameter(self):
        t = make_path_topology(6)
        assert t.diameter() == 5

    def test_bfs_distances(self):
        t = make_path_topology(5)
        assert list(t.bfs_distances(0)) == [0, 1, 2, 3, 4]
        assert list(t.bfs_distances(2)) == [2, 1, 0, 1, 2]

    def test_average_path_length_path_graph(self):
        t = make_path_topology(3)
        # distances: (0,1)=1, (0,2)=2, (1,2)=1 -> mean 4/3
        assert t.average_path_length() == pytest.approx(4 / 3)

    def test_connectivity(self):
        t = Topology("disc", 4, [(0, 1), (2, 3)], 1)
        assert not t.is_connected()
        assert make_path_topology().is_connected()

    def test_diameter_raises_on_disconnected(self):
        t = Topology("disc", 4, [(0, 1), (2, 3)], 1)
        with pytest.raises(ValueError):
            t.diameter()

    def test_edge_density(self):
        t = make_path_topology(4, 2)  # 3 links + 8 endpoint links, 8 endpoints
        assert t.edge_density() == pytest.approx(11 / 8)

    def test_endpoint_router_array(self):
        t = make_path_topology(3, 2)
        assert list(t.endpoint_router_array()) == [0, 0, 1, 1, 2, 2]


class TestDerived:
    def test_directed_edges_doubles_count(self):
        t = make_path_topology(4)
        assert len(t.directed_edges()) == 2 * t.num_edges

    def test_subgraph_preserves_routers(self):
        t = make_path_topology(5)
        sub = t.subgraph([(0, 1), (3, 4)])
        assert sub.num_routers == t.num_routers
        assert sub.num_edges == 2
        assert not sub.is_connected()

    def test_to_networkx_roundtrip(self):
        t = make_path_topology(6)
        g = t.to_networkx()
        assert g.number_of_nodes() == 6
        assert g.number_of_edges() == 5

    def test_adjacency_symmetric(self):
        t = make_path_topology(5)
        adj = t.adjacency()
        for u in range(5):
            for v in adj[u]:
                assert u in adj[v]


@given(n=st.integers(min_value=2, max_value=30), p=st.integers(min_value=1, max_value=8),
       seed=st.integers(min_value=0, max_value=1000))
@settings(max_examples=40, deadline=None)
def test_random_graph_invariants(n, p, seed):
    """Degree sum equals 2|E|, endpoints map back to their routers, adjacency symmetric."""
    rng = np.random.default_rng(seed)
    edges = set()
    for _ in range(2 * n):
        u, v = rng.integers(0, n, size=2)
        if u != v:
            edges.add((min(int(u), int(v)), max(int(u), int(v))))
    t = Topology("rand", n, sorted(edges), p)
    assert int(t.degrees().sum()) == 2 * t.num_edges
    assert t.num_endpoints == n * p
    for e in range(t.num_endpoints):
        r = t.router_of_endpoint(e)
        assert e in t.endpoints_of_router(r)
    adj = t.adjacency()
    assert sum(len(a) for a in adj) == 2 * t.num_edges
