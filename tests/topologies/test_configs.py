"""Tests of the fair-cost configuration classes (paper §II-B / Table V)."""

import pytest

from repro.topologies import SizeClass, build, comparable_configurations, default_concentration
from repro.topologies.configs import PAPER_TOPOLOGIES, available_names, summary_row


class TestDefaultConcentration:
    def test_rule(self):
        assert default_concentration(29, 2) == 15
        assert default_concentration(30, 3) == 10
        assert default_concentration(1, 3) == 1

    def test_rejects_bad_diameter(self):
        with pytest.raises(ValueError):
            default_concentration(8, 0)


class TestBuild:
    @pytest.mark.parametrize("name", ["SF", "DF", "HX2", "HX3", "XP", "FT3", "CLIQUE"])
    def test_builds_tiny(self, name):
        t = build(name, SizeClass.TINY)
        assert t.num_routers > 0
        assert t.is_connected()

    def test_unknown_name_raises(self):
        with pytest.raises(KeyError):
            build("TORUS", SizeClass.TINY)

    def test_accepts_string_class(self):
        t = build("SF", "tiny")
        assert t.meta["q"] == 5

    def test_available_names(self):
        names = available_names()
        for expected in PAPER_TOPOLOGIES:
            assert expected in names


class TestComparableConfigurations:
    def test_small_class_sizes_comparable(self):
        cfgs = comparable_configurations(SizeClass.SMALL)
        sizes = [t.num_endpoints for t in cfgs.values()]
        assert max(sizes) / min(sizes) < 1.6  # within the class, N within ~60%

    def test_medium_matches_paper_table4(self):
        cfgs = comparable_configurations(SizeClass.MEDIUM, topologies=["SF", "XP", "HX3", "DF"])
        assert cfgs["SF"].num_routers == 722 and cfgs["SF"].network_radix == 29
        assert cfgs["XP"].num_routers == 1056 and cfgs["XP"].network_radix == 32
        assert cfgs["HX3"].num_routers == 1331 and cfgs["HX3"].network_radix == 30
        assert cfgs["DF"].num_routers == 2064 and cfgs["DF"].network_radix == 23

    def test_include_jellyfish_adds_equivalents(self):
        cfgs = comparable_configurations(SizeClass.TINY, topologies=["SF", "DF"],
                                         include_jellyfish=True)
        assert set(cfgs) == {"SF", "SF-JF", "DF", "DF-JF"}
        assert cfgs["SF-JF"].num_routers == cfgs["SF"].num_routers

    def test_summary_row_fields(self):
        t = build("SF", SizeClass.TINY)
        row = summary_row(t)
        assert row["Nr"] == 50
        assert row["k_prime"] == 7
        assert set(row) >= {"name", "Nr", "N", "k_prime", "p", "k", "edges", "edge_density"}
