"""Regression tests for degenerate graphs: isolated routers, empty edge lists and the
disconnected layers that low-``rho`` sampling produces.  None of the metric entry
points may raise on these inputs (``diameter`` still raises ``ValueError`` on
disconnection, by contract — but cleanly, not via an internal error)."""

import numpy as np
import pytest

from repro.core.config import FatPathsConfig
from repro.core.forwarding import build_forwarding_tables
from repro.core.layers import random_edge_sampling_layers
from repro.topologies import slim_fly
from repro.topologies.base import Topology


class TestEmptyEdgeLists:
    def test_no_edges_multi_router(self):
        t = Topology("empty", 5, [], 1)
        assert not t.is_connected()
        assert t.network_radix == 0
        assert t.average_path_length() == 0.0
        dist = t.bfs_distances(2)
        assert list(dist) == [-1, -1, 0, -1, -1]

    def test_no_edges_single_router(self):
        t = Topology("lonely", 1, [], 4)
        assert t.is_connected()
        assert t.diameter() == 0
        assert t.average_path_length() == 0.0
        assert list(t.bfs_distances(0)) == [0]

    def test_diameter_raises_cleanly_without_edges(self):
        t = Topology("empty", 3, [], 1)
        with pytest.raises(ValueError, match="disconnected"):
            t.diameter()


class TestIsolatedRouters:
    def test_isolated_router_distances(self):
        t = Topology("iso", 5, [(0, 1), (1, 2), (0, 2)], 1)
        assert not t.is_connected()
        from_isolated = t.bfs_distances(4)
        assert list(from_isolated) == [-1, -1, -1, -1, 0]
        to_isolated = t.bfs_distances(0)
        assert to_isolated[4] == -1 and to_isolated[2] == 1

    def test_bfs_source_out_of_range(self):
        t = Topology("iso", 3, [(0, 1)], 1)
        with pytest.raises(ValueError):
            t.bfs_distances(3)
        with pytest.raises(ValueError):
            t.bfs_distances(-1)

    def test_average_path_length_ignores_unreachable_pairs(self):
        t = Topology("iso", 4, [(0, 1)], 1)
        # only (0,1) and (1,0) are reachable, both at distance 1
        assert t.average_path_length() == pytest.approx(1.0)


class TestDegenerateLayers:
    """Layers sampled with very low rho disconnect; every consumer must cope."""

    @pytest.fixture(scope="class")
    def sparse_layers(self):
        topo = slim_fly(5)
        config = FatPathsConfig(num_layers=4, rho=0.02, seed=7)
        return topo, random_edge_sampling_layers(topo, config)

    def test_sparse_layer_subtopology_metrics_do_not_raise(self, sparse_layers):
        topo, layers = sparse_layers
        for layer in layers:
            sub = layer.subtopology(topo)
            connected = sub.is_connected()
            dist = sub.bfs_distances(0)
            assert dist.shape == (topo.num_routers,)
            if not connected:
                assert (dist == -1).any()
                with pytest.raises(ValueError, match="disconnected"):
                    sub.diameter()

    def test_sparse_layer_has_disconnected_member(self, sparse_layers):
        topo, layers = sparse_layers
        # rho=0.02 keeps ~3 of 175 links: the sampled layers must be disconnected,
        # which is exactly the regime the fallback-to-full forwarding handles.
        assert any(not layer.subtopology(topo).is_connected()
                   for layer in layers if not layer.is_full)

    def test_forwarding_tables_fall_back_on_sparse_layers(self, sparse_layers):
        topo, layers = sparse_layers
        tables = build_forwarding_tables(layers, seed=0)
        rng = np.random.default_rng(0)
        for _ in range(20):
            s, t = rng.choice(topo.num_routers, size=2, replace=False)
            for layer_idx in range(tables.num_layers):
                path = tables.path(layer_idx, int(s), int(t))
                assert path is not None, "full-layer fallback must route every pair"
                assert path[0] == s and path[-1] == t

    def test_single_edge_subgraph(self):
        topo = slim_fly(5)
        sub = topo.subgraph([(0, 1)])
        assert not sub.is_connected()
        assert sub.num_edges == 1
        assert sub.bfs_distances(0)[1] == 1
        assert sub.average_path_length() == pytest.approx(1.0)
