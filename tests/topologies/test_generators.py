"""Tests of the individual topology generators against their published structural properties."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.topologies import (
    complete_graph,
    dragonfly,
    equivalent_jellyfish,
    fat_tree,
    flattened_butterfly,
    hyperx,
    jellyfish,
    slim_fly,
    star,
    xpander,
)
from repro.topologies.dragonfly import dragonfly_group_of
from repro.topologies.fattree import fat_tree_level
from repro.topologies.galois import GaloisField, factor_prime_power, is_prime, is_prime_power
from repro.topologies.slimfly import mms_delta


class TestGalois:
    def test_is_prime(self):
        assert [n for n in range(20) if is_prime(n)] == [2, 3, 5, 7, 11, 13, 17, 19]

    def test_factor_prime_power(self):
        assert factor_prime_power(27) == (3, 3)
        assert factor_prime_power(16) == (2, 4)
        assert factor_prime_power(29) == (29, 1)
        with pytest.raises(ValueError):
            factor_prime_power(12)

    def test_is_prime_power(self):
        assert is_prime_power(25)
        assert not is_prime_power(20)

    @pytest.mark.parametrize("q", [5, 7, 8, 9, 16, 25, 27])
    def test_field_axioms(self, q):
        f = GaloisField(q)
        f.build_mul_table()
        # additive and multiplicative identities
        for a in range(q):
            assert f.add(a, 0) == a
            assert f.mul(a, 1) == a
            assert f.add(a, f.neg(a)) == 0
        # commutativity and distributivity on a sample
        rng = np.random.default_rng(0)
        for _ in range(50):
            a, b, c = (int(x) for x in rng.integers(0, q, size=3))
            assert f.add(a, b) == f.add(b, a)
            assert f.mul(a, b) == f.mul(b, a)
            assert f.mul(a, f.add(b, c)) == f.add(f.mul(a, b), f.mul(a, c))

    @pytest.mark.parametrize("q", [5, 7, 9, 11, 13])
    def test_primitive_element_generates_group(self, q):
        f = GaloisField(q)
        xi = f.primitive_element()
        values = set()
        x = 1
        for _ in range(q - 1):
            x = f.mul(x, xi)
            values.add(x)
        assert values == set(range(1, q))


class TestSlimFly:
    @pytest.mark.parametrize("q,delta", [(5, 1), (7, -1), (8, 0), (9, 1), (11, -1), (13, 1)])
    def test_mms_delta(self, q, delta):
        assert mms_delta(q) == delta

    @pytest.mark.parametrize("q", [5, 7, 8, 9, 11, 13])
    def test_structure(self, q):
        t = slim_fly(q)
        delta = mms_delta(q)
        k_expected = (3 * q - delta) // 2
        assert t.num_routers == 2 * q * q
        deg = t.degrees()
        assert deg.min() == deg.max() == k_expected
        assert t.concentration == math.ceil(k_expected / 2)

    @pytest.mark.parametrize("q", [5, 7, 8, 9])
    def test_diameter_two(self, q):
        assert slim_fly(q).diameter() == 2

    def test_rejects_non_prime_power(self):
        with pytest.raises(ValueError):
            slim_fly(6)

    def test_rejects_bad_form(self):
        # q=2 is a prime power but not of the form 4w+delta with w>=1
        with pytest.raises(ValueError):
            slim_fly(2)


class TestDragonfly:
    @pytest.mark.parametrize("p", [2, 3, 4])
    def test_structure(self, p):
        t = dragonfly(p)
        a, h, g = 2 * p, p, 2 * p * p + 1
        assert t.num_routers == a * g == 4 * p**3 + 2 * p
        deg = t.degrees()
        assert deg.min() == deg.max() == 3 * p - 1
        assert t.concentration == p

    @pytest.mark.parametrize("p", [2, 3])
    def test_diameter_three(self, p):
        assert dragonfly(p).diameter() <= 3

    def test_exactly_one_global_link_per_group_pair(self):
        p = 3
        t = dragonfly(p)
        a = 2 * p
        pair_counts = {}
        for u, v in t.edges:
            gu, gv = u // a, v // a
            if gu != gv:
                key = (min(gu, gv), max(gu, gv))
                pair_counts[key] = pair_counts.get(key, 0) + 1
        g = 2 * p * p + 1
        assert len(pair_counts) == g * (g - 1) // 2
        assert set(pair_counts.values()) == {1}

    def test_group_of(self):
        t = dragonfly(2)
        assert dragonfly_group_of(t, 0) == 0
        assert dragonfly_group_of(t, 5) == 1

    def test_group_of_rejects_other_family(self):
        with pytest.raises(ValueError):
            dragonfly_group_of(complete_graph(4), 0)


class TestJellyfish:
    @pytest.mark.parametrize("nr,k", [(20, 5), (50, 7), (64, 10)])
    def test_regular_and_connected(self, nr, k):
        t = jellyfish(nr, k, 3, seed=0)
        deg = t.degrees()
        assert deg.min() == deg.max() == k
        assert t.is_connected()

    def test_deterministic_with_seed(self):
        a = jellyfish(30, 6, 3, seed=42)
        b = jellyfish(30, 6, 3, seed=42)
        assert a.edges == b.edges

    def test_different_seeds_differ(self):
        a = jellyfish(30, 6, 3, seed=1)
        b = jellyfish(30, 6, 3, seed=2)
        assert a.edges != b.edges

    def test_odd_degree_sum_rejected(self):
        with pytest.raises(ValueError):
            jellyfish(15, 5, 2, seed=0)

    def test_degree_too_large_rejected(self):
        with pytest.raises(ValueError):
            jellyfish(5, 5, 2, seed=0)

    def test_equivalent_jellyfish_matches_reference(self, sf_tiny):
        jf = equivalent_jellyfish(sf_tiny, seed=1)
        assert jf.num_routers == sf_tiny.num_routers
        assert jf.network_radix == sf_tiny.network_radix
        assert jf.concentration == sf_tiny.concentration
        assert jf.num_endpoints == sf_tiny.num_endpoints

    def test_equivalent_jellyfish_for_fat_tree(self, ft_tiny):
        jf = equivalent_jellyfish(ft_tiny, seed=1)
        assert jf.num_routers == ft_tiny.num_routers
        # all routers host endpoints in the JF, so N should be close to the fat tree's N
        assert abs(jf.num_endpoints - ft_tiny.num_endpoints) / ft_tiny.num_endpoints < 0.3

    @given(seed=st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=20, deadline=None)
    def test_property_regularity(self, seed):
        t = jellyfish(26, 5, 2, seed=seed)
        deg = t.degrees()
        assert deg.min() == deg.max() == 5
        assert t.is_connected()


class TestXpander:
    @pytest.mark.parametrize("k", [4, 6, 8])
    def test_regular(self, k):
        t = xpander(k, seed=0)
        deg = t.degrees()
        assert deg.min() == deg.max() == k
        assert t.num_routers == k * (k + 1)
        assert t.is_connected()

    def test_custom_lift(self):
        t = xpander(5, lift=3, seed=0)
        assert t.num_routers == 3 * 6
        deg = t.degrees()
        assert deg.min() == deg.max() == 5

    def test_low_diameter(self):
        # Xpander targets diameter <= 3; tiny single-lift instances may have a few
        # diameter-4 outlier pairs, so check the diameter is small and the average
        # path length is well below it.
        t = xpander(8, seed=0)
        assert t.diameter() <= 4
        assert t.average_path_length() < 3.0
        assert xpander(14, seed=0).diameter() <= 3

    def test_rejects_small_radix(self):
        with pytest.raises(ValueError):
            xpander(1)


class TestHyperX:
    @pytest.mark.parametrize("L,S", [(1, 5), (2, 4), (3, 3)])
    def test_structure(self, L, S):
        t = hyperx(L, S)
        assert t.num_routers == S**L
        deg = t.degrees()
        assert deg.min() == deg.max() == L * (S - 1)
        assert t.diameter() == L

    def test_flattened_butterfly_is_2d(self):
        t = flattened_butterfly(5)
        assert t.meta["dimensions"] == 2
        assert t.diameter() == 2

    def test_l1_is_complete_graph(self):
        t = hyperx(1, 6)
        c = complete_graph(6)
        assert t.num_edges == c.num_edges

    def test_rejects_bad_params(self):
        with pytest.raises(ValueError):
            hyperx(0, 4)
        with pytest.raises(ValueError):
            hyperx(2, 1)


class TestFatTree:
    @pytest.mark.parametrize("k", [4, 6, 8])
    def test_structure(self, k):
        t = fat_tree(k)
        half = k // 2
        assert t.num_routers == 5 * k * k // 4
        assert t.num_endpoints == k**3 // 4
        assert len(t.endpoint_routers) == k * half  # only edge switches
        assert t.diameter() == 4

    def test_levels(self):
        t = fat_tree(4)
        levels = [fat_tree_level(t, r) for r in range(t.num_routers)]
        assert levels.count("edge") == 8
        assert levels.count("agg") == 8
        assert levels.count("core") == 4

    def test_switch_radix_not_exceeded(self):
        k = 6
        t = fat_tree(k)
        # every switch uses at most k ports: degree + attached endpoints
        deg = t.degrees()
        for r in range(t.num_routers):
            used = deg[r] + len(t.endpoints_of_router(r))
            assert used <= k

    def test_oversubscription_doubles_endpoints(self):
        assert fat_tree(4, oversubscription=2).num_endpoints == 2 * fat_tree(4).num_endpoints

    def test_rejects_odd_radix(self):
        with pytest.raises(ValueError):
            fat_tree(5)


class TestCompleteAndStar:
    def test_clique(self):
        t = complete_graph(8)
        assert t.num_edges == 28
        assert t.diameter() == 1

    def test_clique_needs_two(self):
        with pytest.raises(ValueError):
            complete_graph(1)

    def test_star(self):
        t = star(16)
        assert t.num_routers == 1
        assert t.num_endpoints == 16
        assert t.num_edges == 0
