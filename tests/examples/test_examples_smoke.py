"""Smoke tests: every example script must run cleanly at tiny scale.

Each example is executed as a real subprocess (``python examples/<name>.py``) with
arguments that shrink its instances to test size, exactly as a user would run it.
This pins the examples against API drift in the library — historically the first
thing to silently break during refactors.
"""

import os
import subprocess
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[2]
EXAMPLES_DIR = REPO_ROOT / "examples"

#: script name -> (tiny-scale argv, snippets expected in stdout)
EXAMPLES = {
    "quickstart.py": (
        ["--q", "5", "--samples", "60"],
        ["topology:", "FatPaths candidate paths", "tail speedup"],
    ),
    "path_diversity_report.py": (
        ["--size-class", "tiny", "--samples", "40"],
        ["topology", "Reading the table"],
    ),
    "datacenter_tcp_cloud.py": (
        ["--q", "5", "--duration", "0.005", "--arrival-rate", "100"],
        ["fabric:", "workload:"],
    ),
    "hpc_stencil_ethernet.py": (
        ["--dragonfly-p", "2", "--message-size", "50000"],
        ["cluster:", "stencil step"],
    ),
    "streaming_service.py": (
        ["--q", "5", "--duration", "0.02", "--arrival-rate", "150"],
        ["fabric:", "per-window metrics", "steady-state summary",
         "restored run matches the uninterrupted run: True"],
    ),
    "scenario_sweep.py": (
        ["--scenarios", "fig19,shuffle", "--jobs", "2"],
        ["specs:", "grid:", "rows per (topology, scenario):"],
    ),
}


def run_example(name, argv):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src") + os.pathsep + env.get("PYTHONPATH", "")
    return subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / name), *argv],
        capture_output=True, text=True, timeout=300, env=env, cwd=REPO_ROOT)


def test_every_example_is_covered():
    """A new example script must get a smoke entry here."""
    on_disk = {p.name for p in EXAMPLES_DIR.glob("*.py")}
    assert on_disk == set(EXAMPLES)


@pytest.mark.parametrize("name", sorted(EXAMPLES))
def test_example_runs_clean(name):
    argv, expected_snippets = EXAMPLES[name]
    proc = run_example(name, argv)
    assert proc.returncode == 0, f"{name} failed:\n{proc.stdout}\n{proc.stderr}"
    for snippet in expected_snippets:
        assert snippet in proc.stdout, f"{name}: missing {snippet!r} in output"
    assert "Traceback" not in proc.stderr
