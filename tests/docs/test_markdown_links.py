"""Documentation health: internal markdown links must resolve.

Runs the same checker as the CI docs job (``tools/check_links.py``) over README.md
and ``docs/``, plus unit tests of the slug/link parsing it relies on.
"""

import importlib.util
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[2]

spec = importlib.util.spec_from_file_location(
    "check_links", REPO_ROOT / "tools" / "check_links.py")
check_links = importlib.util.module_from_spec(spec)
sys.modules.setdefault("check_links", check_links)
spec.loader.exec_module(check_links)


def test_readme_and_docs_links_resolve():
    files = [REPO_ROOT / "README.md", *sorted((REPO_ROOT / "docs").glob("*.md"))]
    assert len(files) >= 3, "expected README.md plus docs/ pages"
    problems = []
    for path in files:
        problems.extend(check_links.check_file(path))
    assert not problems, "\n".join(f"{p}: {t} ({r})" for p, t, r in problems)


def test_github_slugs():
    assert check_links.github_slug("How the cache is keyed") == "how-the-cache-is-keyed"
    assert check_links.github_slug("Name → paper mapping") == "name--paper-mapping"
    assert check_links.github_slug("`repro.kernels` engine") == "reprokernels-engine"


def test_heading_slugs_skip_code_fences():
    md = "# Top\n```\n# not a heading\n```\n## Sub\n## Sub\n"
    assert check_links.heading_slugs(md) == ["top", "sub", "sub-1"]


def test_check_file_reports_missing_targets(tmp_path):
    page = tmp_path / "page.md"
    page.write_text("# Here\n[ok](page.md)\n[bad](nope.md)\n[badanchor](#nope)\n")
    problems = check_links.check_file(page)
    assert [(t, r) for _, t, r in problems] == [
        ("nope.md", "missing file"), ("#nope", "missing anchor")]


def test_external_links_ignored(tmp_path):
    page = tmp_path / "page.md"
    page.write_text("[x](https://example.com/zzz) [y](mailto:a@b.c)\n")
    assert check_links.check_file(page) == []
