"""Tests for the cost model (Figure 10)."""

import pytest

from repro.cost.model import CostModel, cost_per_endpoint, default_cost_model
from repro.topologies import SizeClass, comparable_configurations, complete_graph


class TestCostModel:
    def test_router_cost_linear_in_radix(self):
        m = default_cost_model()
        assert m.router_cost(64) - m.router_cost(32) == pytest.approx(32 * m.router_per_port)

    def test_router_cost_validation(self):
        with pytest.raises(ValueError):
            default_cost_model().router_cost(0)

    def test_fiber_more_expensive_than_copper(self):
        m = default_cost_model()
        assert m.cable_cost(True) > m.cable_cost(False)


class TestCostBreakdown:
    def test_total_is_sum_of_parts(self, sf_tiny):
        breakdown = cost_per_endpoint(sf_tiny)
        assert breakdown.total == pytest.approx(
            breakdown.switches + breakdown.interconnect_cables + breakdown.endpoint_links)
        assert breakdown.per_endpoint > 0

    def test_row_fields(self, sf_tiny):
        row = cost_per_endpoint(sf_tiny).as_row()
        assert set(row) >= {"topology", "N", "switches", "total", "per_endpoint"}

    def test_clique_has_no_fiber(self):
        breakdown = cost_per_endpoint(complete_graph(16))
        assert breakdown.fiber_fraction == 0.0

    def test_dragonfly_has_global_fiber_links(self, df_tiny):
        breakdown = cost_per_endpoint(df_tiny)
        assert 0 < breakdown.fiber_fraction < 1

    def test_comparable_costs_within_class(self):
        """Fair-cost configurations should have per-endpoint costs in the same ballpark
        (the paper's Figure 10 spans roughly a 2x range across topologies)."""
        configs = comparable_configurations(SizeClass.SMALL)
        costs = {name: cost_per_endpoint(t).per_endpoint for name, t in configs.items()}
        assert max(costs.values()) / min(costs.values()) < 2.5

    def test_custom_model_changes_costs(self, sf_tiny):
        cheap = cost_per_endpoint(sf_tiny, CostModel(router_per_port=10.0))
        expensive = cost_per_endpoint(sf_tiny, CostModel(router_per_port=1000.0))
        assert expensive.per_endpoint > cheap.per_endpoint
