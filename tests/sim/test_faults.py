"""Unit tests for the fault-schedule machinery: event validation, epoch
resolution, deterministic sampling, the scalar BFS/detour spec, and the
simulator-level fault invariants (zero-impact schedules leave records identical;
idempotent fail/restore pairs are no-ops)."""

import numpy as np
import pytest

from repro.experiments.simcommon import build_stack
from repro.sim.faults import (
    FaultEvent,
    FaultSchedule,
    bfs_distances_subgraph,
    detour_router_path,
    sample_link_faults,
)
from repro.sim.flowsim import FlowSimConfig, simulate_workload
from repro.topologies import comparable_configurations
from repro.topologies.configs import SizeClass
from repro.traffic.flows import uniform_size_workload
from repro.traffic.patterns import random_permutation


@pytest.fixture(scope="module")
def topo():
    return comparable_configurations(SizeClass.TINY, topologies=["SF"], seed=0)["SF"]


@pytest.fixture(scope="module")
def workload(topo):
    rng = np.random.default_rng(0)
    pattern = random_permutation(topo.num_endpoints, rng).subsample(0.3, rng)
    return uniform_size_workload(pattern, 512 * 1024)


class TestFaultEvent:
    def test_link_normalized_to_sorted_orientation(self):
        assert FaultEvent(time=0.0, link=(7, 2)).link == (2, 7)

    def test_rejects_negative_or_nonfinite_time(self):
        with pytest.raises(ValueError):
            FaultEvent(time=-1.0, link=(0, 1))
        with pytest.raises(ValueError):
            FaultEvent(time=float("nan"), link=(0, 1))

    def test_rejects_unknown_action(self):
        with pytest.raises(ValueError):
            FaultEvent(time=0.0, action="explode", link=(0, 1))

    def test_rejects_self_loop_and_ambiguous_target(self):
        with pytest.raises(ValueError):
            FaultEvent(time=0.0, link=(3, 3))
        with pytest.raises(ValueError):
            FaultEvent(time=0.0)                       # neither link nor switch
        with pytest.raises(ValueError):
            FaultEvent(time=0.0, link=(0, 1), switch=2)   # both


class TestFaultSchedule:
    def test_bool_and_type_check(self):
        assert not FaultSchedule()
        assert FaultSchedule.link_outage([(0, 1)], 0.1)
        with pytest.raises(TypeError):
            FaultSchedule(events=("not-an-event",))

    def test_outage_constructors_validate_window(self):
        with pytest.raises(ValueError):
            FaultSchedule.link_outage([(0, 1)], 0.2, restore_time=0.1)
        with pytest.raises(ValueError):
            FaultSchedule.switch_outage([0], 0.2, restore_time=0.2)

    def test_resolve_groups_same_time_events(self, topo):
        e1, e2 = topo.edges[0], topo.edges[1]
        schedule = FaultSchedule.link_outage([e1, e2], 0.1, restore_time=0.2)
        epochs = schedule.resolve(topo)
        assert [t for t, _ in epochs] == [0.1, 0.2]
        assert epochs[0][1] == (("fail", e1), ("fail", e2))
        assert epochs[1][1] == (("restore", e1), ("restore", e2))

    def test_resolve_sorts_out_of_order_events(self, topo):
        edge = topo.edges[0]
        schedule = FaultSchedule(events=(
            FaultEvent(time=0.3, action="restore", link=edge),
            FaultEvent(time=0.1, action="fail", link=edge)))
        assert [t for t, _ in schedule.resolve(topo)] == [0.1, 0.3]

    def test_resolve_expands_switch_to_sorted_incident_edges(self, topo):
        epochs = FaultSchedule.switch_outage([0], 0.1).resolve(topo)
        (_, deltas), = epochs
        edges = [e for _, e in deltas]
        assert edges == sorted(e for e in topo.edges if 0 in e)
        assert all(action == "fail" for action, _ in deltas)

    def test_resolve_rejects_unknown_link_and_switch(self, topo):
        bogus = FaultSchedule.link_outage([(0, topo.num_routers + 5)], 0.1)
        with pytest.raises(ValueError):
            bogus.resolve(topo)
        with pytest.raises(ValueError):
            FaultSchedule.switch_outage([topo.num_routers], 0.1).resolve(topo)


class TestSampleLinkFaults:
    def test_deterministic_given_rng_and_at_least_one_link(self, topo):
        a = sample_link_faults(topo, 0.001, 0.1, 0.2, np.random.default_rng(3))
        b = sample_link_faults(topo, 0.001, 0.1, 0.2, np.random.default_rng(3))
        assert a == b
        assert len(a.events) == 2          # one fail + one restore

    def test_fraction_scales_sample(self, topo):
        schedule = sample_link_faults(topo, 0.25, 0.1, None,
                                      np.random.default_rng(3))
        assert len(schedule.events) == round(0.25 * topo.num_edges)
        assert len({e.link for e in schedule.events}) == len(schedule.events)

    def test_rejects_bad_fraction(self, topo):
        for fraction in (0.0, -0.5, 1.5):
            with pytest.raises(ValueError):
                sample_link_faults(topo, fraction, 0.1, None,
                                   np.random.default_rng(0))


class TestDetourSpec:
    """The scalar BFS/backwalk helpers that pin the detour semantics."""

    ADJ = [[1], [0, 2], [1, 3], [2]]       # a 4-node path graph 0-1-2-3

    def test_bfs_skips_failed_edges(self):
        dist = bfs_distances_subgraph(self.ADJ, {(1, 2)}, 0)
        assert dist[0] == 0 and dist[1] == 1
        assert dist[2] < 0 and dist[3] < 0   # unreachable past the cut

    def test_detour_follows_min_index_backwalk(self):
        adj = [[1, 2], [0, 3], [0, 3], [1, 2]]   # 4-cycle 0-1-3-2-0
        failed = {(0, 1)}
        dist = bfs_distances_subgraph(adj, failed, 0)
        assert detour_router_path(adj, failed, 0, 3, dist) == [0, 2, 3]

    def test_detour_same_router_and_disconnected(self):
        dist = bfs_distances_subgraph(self.ADJ, {(1, 2)}, 0)
        assert detour_router_path(self.ADJ, {(1, 2)}, 2, 2, dist) == [2]
        assert detour_router_path(self.ADJ, {(1, 2)}, 0, 3, dist) is None


class TestSimulatorFaultInvariants:
    @pytest.mark.parametrize("engine", ["reference", "engine"])
    def test_empty_schedule_equals_no_schedule(self, topo, workload, engine):
        """faults=FaultSchedule() (no events) is exactly the unfaulted run."""
        records = []
        for config in (None, FlowSimConfig(faults=FaultSchedule())):
            stack = build_stack(topo, "fatpaths", seed=0)
            records.append(simulate_workload(
                topo, stack.routing, workload, selector=stack.selector,
                transport=stack.transport, config=config, seed=0,
                engine=engine).records)
        assert records[0] == records[1]

    @pytest.mark.parametrize("engine", ["reference", "engine"])
    def test_idempotent_fail_restore_is_noop(self, topo, workload, engine):
        """Duplicate fail/restore deltas inside an epoch are no-ops: they join
        the existing epoch (same times), mutate the failed set identically, and
        leave every record untouched.  (Events at *new* times are not no-ops —
        every epoch is an event boundary with a path-switch scan.)"""
        edge = topo.edges[0]
        plain = FaultSchedule.link_outage([edge], 2e-4, restore_time=6e-4)
        noisy = FaultSchedule(events=plain.events + (
            FaultEvent(time=2e-4, action="fail", link=edge),      # already dead
            FaultEvent(time=6e-4, action="restore", link=edge)))  # double restore
        records = []
        for schedule in (plain, noisy):
            stack = build_stack(topo, "fatpaths", seed=0)
            records.append(simulate_workload(
                topo, stack.routing, workload, selector=stack.selector,
                transport=stack.transport, config=FlowSimConfig(faults=schedule),
                seed=0, engine=engine).records)
        assert records[0] == records[1]

    def test_config_rejects_non_schedule(self):
        with pytest.raises(TypeError):
            FlowSimConfig(faults=[("fail", (0, 1))])
