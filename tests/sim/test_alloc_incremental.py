"""Property suite: refiltering-vs-full allocator agreement (`repro.sim.allocstate`).

A refiltering allocator (``"incremental"``, and ``"bottleneck"`` from
:mod:`repro.sim.bottleneck`) must be *max-min exact*: on any event sequence
(arrivals, completions, path switches — including component merges and splits) its
cached rates must agree with a full progressive fill over the same incidence to
tight tolerance, saturate exactly the same links, and carry the classical
bottleneck certificate.  Trajectory-level behaviour is additionally pinned end to
end against ``allocator="full"`` on the engine (static-selector stack, where both
allocators walk identical trajectories).  Bottleneck-structure-specific coverage
lives in ``tests/sim/test_alloc_bottleneck.py``.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.experiments.simcommon import build_stack
from repro.sim.allocstate import (
    ALLOCATORS,
    AllocationState,
    FullAllocator,
    IncrementalAllocator,
    _progressive_fill,
    make_allocator,
)
from repro.sim.bottleneck import BottleneckAllocator
from repro.sim.fairshare import (
    bottleneck_certificate,
    incidence_components,
    max_min_fair_rates,
)
from repro.sim.flowsim import FlowSimConfig, simulate_workload
from repro.topologies import comparable_configurations
from repro.topologies.configs import SizeClass
from repro.traffic.flows import poisson_workload
from repro.traffic.patterns import incast_pattern, random_permutation


# --------------------------------------------------------------- synthetic driver
#: Challenger allocators the lockstep driver can pit against :class:`FullAllocator`.
CHALLENGERS = {"incremental": IncrementalAllocator, "bottleneck": BottleneckAllocator}


class SyntheticFlows:
    """Random flows over a synthetic link space, driven through both allocators.

    Every flow has a fixed (inject, eject) link pair and a few candidate middle
    link lists (mirroring the engine's candidate bank); ``add``/``remove``/``switch``
    apply the same operation to a :class:`FullAllocator` and the chosen
    ``challenger`` allocator so their post-event state can be compared.  The
    challenger instance is kept under the historical ``incremental`` attribute
    (with rates in ``rates_inc``) so existing edge-case tests read naturally.
    """

    def __init__(self, rng, num_links=36, num_flows=40, max_mids=4, candidates=3,
                 challenger="incremental"):
        self.rng = rng
        self.num_links = num_links
        self.capacities = rng.uniform(1.0, 10.0, size=num_links)
        self.line_rate = float(self.capacities.max())
        self.flows = []
        mid_pool = []
        for _ in range(num_flows):
            inj, ej = rng.choice(num_links, size=2, replace=False)
            cands = []
            for _ in range(candidates):
                k = int(rng.integers(0, max_mids + 1))
                mids = list(rng.choice(num_links, size=k, replace=False))
                cands.append((len(mid_pool), k))
                mid_pool.extend(mids)
            self.flows.append((int(inj), int(ej), cands))
        self.mid_pool = np.asarray(mid_pool, dtype=np.int64)
        self.full = FullAllocator(AllocationState(num_flows, num_links),
                                  self.capacities, self.line_rate)
        self.incremental = CHALLENGERS[challenger](
            AllocationState(num_flows, num_links), self.capacities, self.line_rate)
        self.rates_full = np.zeros(num_flows)
        self.rates_inc = np.zeros(num_flows)
        self.active = []
        self.current = {}

    def _full_links(self, slot, cand):
        inj, ej, cands = self.flows[slot]
        start, k = cands[cand]
        return np.concatenate([[inj], self.mid_pool[start:start + k], [ej]])

    def add(self, slot, cand=0):
        inj, ej, cands = self.flows[slot]
        capacity = max(k for _, k in cands) + 2
        links = self._full_links(slot, cand)
        for alloc in (self.full, self.incremental):
            alloc.add(slot, links, capacity)
        self.active.append(slot)
        self.current[slot] = cand

    def remove(self, slot):
        for alloc in (self.full, self.incremental):
            alloc.remove(slot)
        self.active.remove(slot)
        del self.current[slot]

    def switch(self, slot, cand):
        inj, ej, cands = self.flows[slot]
        start, k = cands[cand]
        args = (np.asarray([slot]), np.asarray([inj]), np.asarray([ej]),
                self.mid_pool, np.asarray([start]), np.asarray([k]))
        for alloc in (self.full, self.incremental):
            alloc.switch(*args)
        self.current[slot] = cand

    def recompute(self):
        active = np.asarray(sorted(self.active), dtype=np.int64)
        if active.size == 0:
            self.full.idle()
            self.incremental.idle()
            return active
        self.full.recompute(active, self.rates_full)
        self.incremental.recompute(active, self.rates_inc)
        return active

    # ------------------------------------------------------------- invariants
    def check_agreement(self):
        """Rates agree tightly, saturation sets match, certificate holds."""
        active = np.asarray(sorted(self.active), dtype=np.int64)
        if active.size == 0:
            return
        np.testing.assert_allclose(self.rates_inc[active], self.rates_full[active],
                                   rtol=1e-9, atol=1e-9)
        links_f, slots_f = self.full.state.live_entries()
        links_i, slots_i = self.incremental.state.live_entries()
        loads_f = np.bincount(links_f, weights=self.rates_full[slots_f],
                              minlength=self.num_links)
        loads_i = np.bincount(links_i, weights=self.rates_inc[slots_i],
                              minlength=self.num_links)
        saturated_f = loads_f >= self.capacities * (1.0 - 1e-7)
        saturated_i = loads_i >= self.capacities * (1.0 - 1e-7)
        assert (saturated_f == saturated_i).all()
        assert bottleneck_certificate(links_i, slots_i, self.rates_inc,
                                      self.capacities, rtol=1e-7).size == 0
        # cross-check against the scipy reference allocator on the same paths
        paths = [list(self._full_links(s, self.current[s])) for s in active]
        reference = max_min_fair_rates(paths, self.capacities)
        np.minimum(reference, self.line_rate, out=reference)
        np.testing.assert_allclose(self.rates_inc[active], reference,
                                   rtol=1e-9, atol=1e-9)


@pytest.mark.parametrize("challenger", sorted(CHALLENGERS))
class TestRandomizedEventSequences:
    """The ISSUE's acceptance property: agreement on random event sequences."""

    @given(seed=st.integers(0, 10_000))
    @settings(max_examples=25, deadline=None)
    def test_random_adds_removes_switches(self, challenger, seed):
        rng = np.random.default_rng(seed)
        sim = SyntheticFlows(rng, num_links=int(rng.integers(12, 48)),
                             num_flows=32, challenger=challenger)
        pending = list(range(32))
        rng.shuffle(pending)
        for _ in range(90):
            roll = rng.random()
            if pending and (roll < 0.45 or not sim.active):
                sim.add(pending.pop(), cand=int(rng.integers(0, 3)))
            elif sim.active and roll < 0.75:
                sim.switch(int(rng.choice(sim.active)), int(rng.integers(0, 3)))
            elif sim.active:
                sim.remove(int(rng.choice(sim.active)))
            sim.recompute()
            sim.check_agreement()

    @given(seed=st.integers(0, 5_000))
    @settings(max_examples=15, deadline=None)
    def test_drain_to_empty_and_refill(self, challenger, seed):
        """Complete everything, then re-arrive: caches must reset cleanly."""
        rng = np.random.default_rng(seed)
        sim = SyntheticFlows(rng, num_flows=12, challenger=challenger)
        for slot in range(8):
            sim.add(slot)
            sim.recompute()
        for slot in list(sim.active):
            sim.remove(slot)
            sim.recompute()
        assert not sim.active
        assert np.all(sim.incremental.link_util == 0.0)
        for slot in range(8, 12):
            sim.add(slot)
            sim.recompute()
            sim.check_agreement()


class TestComponentEdgeCases:
    def _flows(self, specs, num_links=10):
        """A driver with hand-picked candidate link lists (one candidate each)."""
        rng = np.random.default_rng(0)
        sim = SyntheticFlows(rng, num_links=num_links, num_flows=len(specs))
        mid_pool = []
        flows = []
        for inj, mids, ej in specs:
            flows.append((inj, ej, [(len(mid_pool), len(mids))] * 3))
            mid_pool.extend(mids)
        sim.flows = flows
        sim.mid_pool = np.asarray(mid_pool, dtype=np.int64)
        return sim

    def test_single_flow_gets_minimum_capacity(self):
        sim = self._flows([(0, [1], 2)])
        sim.add(0)
        sim.recompute()
        sim.check_agreement()
        assert sim.rates_inc[0] == pytest.approx(sim.capacities[[0, 1, 2]].min())

    def test_saturated_shared_link(self):
        """Two flows through one shared link split it; a third is independent."""
        sim = self._flows([(0, [4], 1), (2, [4], 3), (5, [6], 7)])
        for slot in range(3):
            sim.add(slot)
            sim.recompute()
            sim.check_agreement()
        shared = sim.capacities[4]
        if shared <= 2 * min(sim.capacities[[0, 1, 2, 3]]):
            assert sim.rates_inc[0] + sim.rates_inc[1] == pytest.approx(shared)

    def test_component_merge_and_split(self):
        """A bridge flow merges two components; its completion splits them again."""
        sim = self._flows([(0, [], 1), (2, [], 3), (1, [], 2)])
        sim.add(0)
        sim.add(1)
        sim.recompute()
        sim.check_agreement()
        inc = sim.incremental
        assert inc._find(0) != inc._find(2)
        sim.add(2)                      # bridges links 1 and 2
        sim.recompute()
        sim.check_agreement()
        assert inc._find(0) == inc._find(2)
        sim.remove(2)                   # true components split again
        sim.recompute()
        sim.check_agreement()
        inc._rebuild(np.asarray(sorted(sim.active)), sim.rates_inc)
        assert inc._find(0) != inc._find(2)
        sim.check_agreement()

    def test_switch_moves_flow_between_components(self):
        sim = self._flows([(0, [1], 2), (3, [4], 5), (6, [4], 7)])
        for slot in range(3):
            sim.add(slot)
        sim.recompute()
        sim.check_agreement()
        # flow 0's second candidate shares link 4 with flows 1 and 2
        sim.flows[0] = (0, 2, [(0, 1), (len(sim.mid_pool), 1), (0, 1)])
        sim.mid_pool = np.concatenate([sim.mid_pool, [4]])
        sim.switch(0, 1)
        sim.recompute()
        sim.check_agreement()
        assert sim.incremental._find(0) == sim.incremental._find(4)

    def test_compaction_preserves_agreement(self):
        """Heavy arrival/completion churn drives pool compaction."""
        rng = np.random.default_rng(7)
        sim = SyntheticFlows(rng, num_links=20, num_flows=36, max_mids=6)
        for slot in range(24):
            sim.add(slot)
        sim.recompute()
        for slot in range(20):
            sim.remove(slot)
            sim.recompute()
            sim.check_agreement()
        used_before = sim.full.state.used
        for slot in range(24, 36):
            sim.add(slot)
            sim.recompute()
            sim.check_agreement()
        assert sim.full.state.used <= max(used_before, 256 * 2)


# -------------------------------------------------------------- fairshare helpers
class TestFairshareHelpers:
    def test_incidence_components_basic(self):
        links = np.array([0, 1, 1, 2, 5, 6])
        flows = np.array([0, 0, 1, 1, 2, 2])
        ncomp, touched, link_labels, flow_ids, flow_labels = \
            incidence_components(links, flows)
        assert ncomp == 2
        assert list(touched) == [0, 1, 2, 5, 6]
        assert flow_labels[0] == flow_labels[1] != flow_labels[2]
        assert link_labels[0] == link_labels[1] == link_labels[2]

    def test_incidence_components_empty(self):
        ncomp, touched, _, flow_ids, _ = incidence_components(np.empty(0), np.empty(0))
        assert ncomp == 0 and touched.size == 0 and flow_ids.size == 0

    @given(seed=st.integers(0, 2_000))
    @settings(max_examples=30, deadline=None)
    def test_components_partition_max_min(self, seed):
        """Per-component fills equal the global fill (the decomposition theorem)."""
        rng = np.random.default_rng(seed)
        num_links, num_flows = 14, 10
        caps = rng.uniform(1.0, 8.0, size=num_links)
        paths = [list(rng.choice(num_links, size=int(rng.integers(1, 4)),
                                 replace=False)) for _ in range(num_flows)]
        entry_links = np.concatenate([np.asarray(p) for p in paths])
        entry_flows = np.repeat(np.arange(num_flows),
                                [len(p) for p in paths])
        global_rates = _progressive_fill(entry_links, entry_flows, num_flows, caps)
        ncomp, _, _, flow_ids, flow_labels = incidence_components(entry_links,
                                                                  entry_flows)
        label_of = dict(zip(flow_ids.tolist(), flow_labels.tolist()))
        for comp in range(ncomp):
            members = [f for f in range(num_flows) if label_of[f] == comp]
            sub_links = np.concatenate([np.asarray(paths[f]) for f in members])
            sub_flows = np.repeat(np.arange(len(members)),
                                  [len(paths[f]) for f in members])
            local = _progressive_fill(sub_links, sub_flows, len(members), caps)
            np.testing.assert_allclose(local, global_rates[members], rtol=1e-9)

    def test_bottleneck_certificate_accepts_max_min(self):
        rng = np.random.default_rng(3)
        caps = rng.uniform(1.0, 8.0, size=8)
        paths = [list(rng.choice(8, size=2, replace=False)) for _ in range(6)]
        rates = max_min_fair_rates(paths, caps)
        links = np.concatenate([np.asarray(p) for p in paths])
        flows = np.repeat(np.arange(6), [len(p) for p in paths])
        assert bottleneck_certificate(links, flows, rates, caps).size == 0

    def test_bottleneck_certificate_rejects_suboptimal(self):
        # halving every rate keeps feasibility but starves every flow
        rng = np.random.default_rng(4)
        caps = rng.uniform(2.0, 8.0, size=8)
        paths = [list(rng.choice(8, size=2, replace=False)) for _ in range(6)]
        rates = max_min_fair_rates(paths, caps) * 0.5
        links = np.concatenate([np.asarray(p) for p in paths])
        flows = np.repeat(np.arange(6), [len(p) for p in paths])
        assert bottleneck_certificate(links, flows, rates, caps).size == 6

    def test_bottleneck_certificate_rejects_overload(self):
        links = np.array([0, 0])
        flows = np.array([0, 1])
        caps = np.array([1.0])
        rates = np.array([1.0, 1.0])   # 2x the link capacity
        assert bottleneck_certificate(links, flows, rates, caps).size == 2


# ------------------------------------------------------------------ engine level
class TestEngineIncremental:
    @pytest.fixture(scope="class")
    def topo(self):
        return comparable_configurations(SizeClass.TINY, topologies=["SF"],
                                         seed=0)["SF"]

    def _run(self, topo, workload, allocator, stack_name="ecmp"):
        stack = build_stack(topo, stack_name, seed=0)
        return simulate_workload(topo, stack.routing, workload,
                                 selector=stack.selector, transport=stack.transport,
                                 config=FlowSimConfig(allocator=allocator), seed=0)

    def test_staggered_incast_matches_full(self, topo):
        """Static-selector trajectories are identical, so records pin tightly."""
        rng = np.random.default_rng(0)
        pattern = incast_pattern(topo.num_endpoints, num_hotspots=4, fanin=8,
                                 rng=rng, disjoint_senders=True)
        workload = poisson_workload(pattern, 400.0, 0.01,
                                    rng=np.random.default_rng(1),
                                    fixed_size=128 * 1024)
        full = self._run(topo, workload, "full")
        inc = self._run(topo, workload, "incremental")
        assert full.meta["allocator"] == "full"
        assert inc.meta["allocator"] == "incremental"
        assert len(full) == len(inc)
        for f, i in zip(full.records, inc.records):
            assert f.flow_id == i.flow_id
            assert i.completion_time == pytest.approx(f.completion_time, rel=1e-6)

    def test_permutation_workload_matches_full(self, topo):
        rng = np.random.default_rng(2)
        pattern = random_permutation(topo.num_endpoints, rng).subsample(0.3, rng)
        workload = poisson_workload(pattern, 300.0, 0.01,
                                    rng=np.random.default_rng(3))
        full = self._run(topo, workload, "full")
        inc = self._run(topo, workload, "incremental")
        for f, i in zip(full.records, inc.records):
            assert i.completion_time == pytest.approx(f.completion_time, rel=1e-6)

    def test_adaptive_stack_aggregates_agree(self, topo):
        """With adaptive switching, trajectories may diverge by ulps — aggregate
        FCT statistics must still agree closely."""
        rng = np.random.default_rng(4)
        pattern = incast_pattern(topo.num_endpoints, num_hotspots=4, fanin=8,
                                 rng=rng, disjoint_senders=True)
        workload = poisson_workload(pattern, 400.0, 0.01,
                                    rng=np.random.default_rng(5),
                                    fixed_size=128 * 1024)
        full = self._run(topo, workload, "full", stack_name="fatpaths")
        inc = self._run(topo, workload, "incremental", stack_name="fatpaths")
        fct_full = np.array([r.completion_time - r.start_time
                             for r in full.records])
        fct_inc = np.array([r.completion_time - r.start_time
                            for r in inc.records])
        assert fct_inc.mean() == pytest.approx(fct_full.mean(), rel=1e-2)
        assert np.median(fct_inc) == pytest.approx(np.median(fct_full), rel=1e-2)


# ------------------------------------------------------------------- dispatching
class TestAllocatorDispatch:
    def test_config_validates_allocator(self):
        assert FlowSimConfig().allocator == "full"
        assert FlowSimConfig(allocator="incremental").allocator == "incremental"
        with pytest.raises(ValueError):
            FlowSimConfig(allocator="magic")

    def test_allocators_registry(self):
        assert ALLOCATORS == ("full", "incremental", "bottleneck")
        with pytest.raises(ValueError):
            make_allocator("magic", 4, 4, np.ones(4), 1.0)

    def test_make_allocator_dispatches(self):
        for name, cls in [("full", FullAllocator),
                          ("incremental", IncrementalAllocator),
                          ("bottleneck", BottleneckAllocator)]:
            alloc = make_allocator(name, 4, 4, np.ones(4), 1.0)
            assert isinstance(alloc, cls) and alloc.name == name

    @pytest.mark.parametrize("allocator", ["incremental", "bottleneck"])
    def test_reference_rejects_refiltering(self, allocator):
        from repro.sim.reference import FlowLevelSimulator

        topo = comparable_configurations(SizeClass.TINY, topologies=["SF"],
                                         seed=0)["SF"]
        stack = build_stack(topo, "ecmp", seed=0)
        with pytest.raises(ValueError, match="reference"):
            FlowLevelSimulator(topo, stack.routing,
                               config=FlowSimConfig(allocator=allocator))
