"""Tests for max-min fair bandwidth allocation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.fairshare import link_utilisation, max_min_fair_rates


class TestMaxMinFair:
    def test_single_flow_gets_full_capacity(self):
        rates = max_min_fair_rates([[0]], np.array([10.0]))
        assert rates[0] == pytest.approx(10.0)

    def test_two_flows_share_a_link(self):
        rates = max_min_fair_rates([[0], [0]], np.array([10.0]))
        assert np.allclose(rates, [5.0, 5.0])

    def test_classic_three_flow_example(self):
        # flows: A uses links 0 and 1, B uses link 0, C uses link 1; capacities 10 each
        # max-min: A=5, B=5, C=5 (A limited by either link; B/C take the rest)
        rates = max_min_fair_rates([[0, 1], [0], [1]], np.array([10.0, 10.0]))
        assert np.allclose(rates, [5.0, 5.0, 5.0])

    def test_bottleneck_hierarchy(self):
        # link 0 cap 2 shared by flows A,B; link 1 cap 10 used by B and C.
        # A=1, B=1 (bottleneck link 0), C = 9 (takes the rest of link 1)
        rates = max_min_fair_rates([[0], [0, 1], [1]], np.array([2.0, 10.0]))
        assert np.allclose(rates, [1.0, 1.0, 9.0])

    def test_empty_path_gets_infinite_rate(self):
        rates = max_min_fair_rates([[], [0]], np.array([4.0]))
        assert np.isinf(rates[0])
        assert rates[1] == pytest.approx(4.0)

    def test_no_flows(self):
        assert max_min_fair_rates([], np.array([1.0])).shape == (0,)

    def test_weights_consume_more_capacity(self):
        # a weight-2 flow on the same link as a weight-1 flow: both get the same rate r,
        # with 2r + r = capacity
        rates = max_min_fair_rates([[0], [0]], np.array([9.0]), weights=[2.0, 1.0])
        assert np.allclose(rates, [3.0, 3.0])

    def test_invalid_link_index(self):
        with pytest.raises(ValueError):
            max_min_fair_rates([[5]], np.array([1.0]))

    def test_invalid_weights(self):
        with pytest.raises(ValueError):
            max_min_fair_rates([[0]], np.array([1.0]), weights=[0.0])

    def test_utilisation(self):
        paths = [[0, 1], [0]]
        rates = max_min_fair_rates(paths, np.array([10.0, 10.0]))
        util = link_utilisation(paths, rates, np.array([10.0, 10.0]))
        assert util[0] == pytest.approx(1.0)
        assert util[1] <= 1.0 + 1e-9

    @given(num_flows=st.integers(1, 20), num_links=st.integers(1, 10),
           seed=st.integers(0, 1000))
    @settings(max_examples=50, deadline=None)
    def test_property_feasibility_and_nonnegativity(self, num_flows, num_links, seed):
        """Allocations never exceed any link capacity and are non-negative; every flow
        gets a strictly positive rate."""
        rng = np.random.default_rng(seed)
        caps = rng.uniform(1.0, 10.0, size=num_links)
        paths = []
        for _ in range(num_flows):
            length = int(rng.integers(1, min(4, num_links) + 1))
            paths.append(list(rng.choice(num_links, size=length, replace=False)))
        rates = max_min_fair_rates(paths, caps)
        assert (rates > 0).all()
        util = link_utilisation(paths, rates, caps)
        assert (util <= 1.0 + 1e-6).all()

    @given(seed=st.integers(0, 200))
    @settings(max_examples=30, deadline=None)
    def test_property_maxmin_dominance(self, seed):
        """No flow can be cheaply improved: every flow either saturates a link or runs
        at the max observed rate (a necessary condition of max-min fairness)."""
        rng = np.random.default_rng(seed)
        num_links = 6
        caps = rng.uniform(2.0, 8.0, size=num_links)
        paths = [list(rng.choice(num_links, size=int(rng.integers(1, 4)), replace=False))
                 for _ in range(8)]
        rates = max_min_fair_rates(paths, caps)
        util = link_utilisation(paths, rates, caps)
        for f, links in enumerate(paths):
            on_saturated = any(util[l] >= 1.0 - 1e-6 for l in links)
            assert on_saturated or rates[f] >= rates.max() - 1e-6
