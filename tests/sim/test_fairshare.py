"""Tests for max-min fair bandwidth allocation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.fairshare import link_utilisation, max_min_fair_rates


class TestMaxMinFair:
    def test_single_flow_gets_full_capacity(self):
        rates = max_min_fair_rates([[0]], np.array([10.0]))
        assert rates[0] == pytest.approx(10.0)

    def test_two_flows_share_a_link(self):
        rates = max_min_fair_rates([[0], [0]], np.array([10.0]))
        assert np.allclose(rates, [5.0, 5.0])

    def test_classic_three_flow_example(self):
        # flows: A uses links 0 and 1, B uses link 0, C uses link 1; capacities 10 each
        # max-min: A=5, B=5, C=5 (A limited by either link; B/C take the rest)
        rates = max_min_fair_rates([[0, 1], [0], [1]], np.array([10.0, 10.0]))
        assert np.allclose(rates, [5.0, 5.0, 5.0])

    def test_bottleneck_hierarchy(self):
        # link 0 cap 2 shared by flows A,B; link 1 cap 10 used by B and C.
        # A=1, B=1 (bottleneck link 0), C = 9 (takes the rest of link 1)
        rates = max_min_fair_rates([[0], [0, 1], [1]], np.array([2.0, 10.0]))
        assert np.allclose(rates, [1.0, 1.0, 9.0])

    def test_empty_path_gets_infinite_rate(self):
        rates = max_min_fair_rates([[], [0]], np.array([4.0]))
        assert np.isinf(rates[0])
        assert rates[1] == pytest.approx(4.0)

    def test_no_flows(self):
        assert max_min_fair_rates([], np.array([1.0])).shape == (0,)

    def test_weights_consume_more_capacity(self):
        # a weight-2 flow on the same link as a weight-1 flow: both get the same rate r,
        # with 2r + r = capacity
        rates = max_min_fair_rates([[0], [0]], np.array([9.0]), weights=[2.0, 1.0])
        assert np.allclose(rates, [3.0, 3.0])

    def test_invalid_link_index(self):
        with pytest.raises(ValueError):
            max_min_fair_rates([[5]], np.array([1.0]))

    def test_invalid_weights(self):
        with pytest.raises(ValueError):
            max_min_fair_rates([[0]], np.array([1.0]), weights=[0.0])

    def test_utilisation(self):
        paths = [[0, 1], [0]]
        rates = max_min_fair_rates(paths, np.array([10.0, 10.0]))
        util = link_utilisation(paths, rates, np.array([10.0, 10.0]))
        assert util[0] == pytest.approx(1.0)
        assert util[1] <= 1.0 + 1e-9

    @given(num_flows=st.integers(1, 20), num_links=st.integers(1, 10),
           seed=st.integers(0, 1000))
    @settings(max_examples=50, deadline=None)
    def test_property_feasibility_and_nonnegativity(self, num_flows, num_links, seed):
        """Allocations never exceed any link capacity and are non-negative; every flow
        gets a strictly positive rate."""
        rng = np.random.default_rng(seed)
        caps = rng.uniform(1.0, 10.0, size=num_links)
        paths = []
        for _ in range(num_flows):
            length = int(rng.integers(1, min(4, num_links) + 1))
            paths.append(list(rng.choice(num_links, size=length, replace=False)))
        rates = max_min_fair_rates(paths, caps)
        assert (rates > 0).all()
        util = link_utilisation(paths, rates, caps)
        assert (util <= 1.0 + 1e-6).all()

    @given(seed=st.integers(0, 200))
    @settings(max_examples=30, deadline=None)
    def test_property_maxmin_dominance(self, seed):
        """No flow can be cheaply improved: every flow either saturates a link or runs
        at the max observed rate (a necessary condition of max-min fairness)."""
        rng = np.random.default_rng(seed)
        num_links = 6
        caps = rng.uniform(2.0, 8.0, size=num_links)
        paths = [list(rng.choice(num_links, size=int(rng.integers(1, 4)), replace=False))
                 for _ in range(8)]
        rates = max_min_fair_rates(paths, caps)
        util = link_utilisation(paths, rates, caps)
        for f, links in enumerate(paths):
            on_saturated = any(util[l] >= 1.0 - 1e-6 for l in links)
            assert on_saturated or rates[f] >= rates.max() - 1e-6


def _random_flow_set(rng, num_links, num_flows, weighted=False):
    caps = rng.uniform(1.0, 10.0, size=num_links)
    paths = [list(rng.choice(num_links, size=int(rng.integers(1, min(4, num_links) + 1)),
                             replace=False))
             for _ in range(num_flows)]
    weights = rng.uniform(0.5, 3.0, size=num_flows) if weighted else None
    return caps, paths, weights


class TestProgressiveFillingInvariants:
    """Property-based certificates of max-min fairness on random flow sets."""

    @given(num_flows=st.integers(1, 24), num_links=st.integers(1, 12),
           seed=st.integers(0, 500))
    @settings(max_examples=60, deadline=None)
    def test_no_link_over_capacity(self, num_flows, num_links, seed):
        caps, paths, _ = _random_flow_set(np.random.default_rng(seed), num_links, num_flows)
        rates = max_min_fair_rates(paths, caps)
        util = link_utilisation(paths, rates, caps)
        assert (util <= 1.0 + 1e-6).all()

    @given(num_flows=st.integers(2, 20), num_links=st.integers(2, 10),
           seed=st.integers(0, 500))
    @settings(max_examples=60, deadline=None)
    def test_max_min_certificate(self, num_flows, num_links, seed):
        """The allocation is max-min: every flow has a *bottleneck* link — one that is
        saturated and on which the flow's rate is maximal.  Raising that flow would
        then necessarily lower another flow that is no faster (the classical
        certificate: no flow can be increased without decreasing a slower one)."""
        caps, paths, _ = _random_flow_set(np.random.default_rng(seed), num_links, num_flows)
        rates = max_min_fair_rates(paths, caps)
        loads = np.zeros(num_links)
        link_max_rate = np.zeros(num_links)
        for f, links in enumerate(paths):
            for link in links:
                loads[link] += rates[f]
                link_max_rate[link] = max(link_max_rate[link], rates[f])
        saturated = loads >= caps * (1.0 - 1e-9) - 1e-9
        for f, links in enumerate(paths):
            has_bottleneck = any(saturated[link] and rates[f] >= link_max_rate[link] - 1e-9
                                 for link in links)
            assert has_bottleneck, f"flow {f} could be raised without hurting a slower flow"

    @given(num_flows=st.integers(2, 16), num_links=st.integers(2, 8),
           seed=st.integers(0, 300))
    @settings(max_examples=40, deadline=None)
    def test_weighted_feasibility_and_certificate(self, num_flows, num_links, seed):
        """Weighted (packet-spray subflow) allocations stay feasible and bottlenecked:
        link load counts each flow at weight * rate, and on some saturated link of
        every flow no other flow gets a higher rate."""
        caps, paths, weights = _random_flow_set(np.random.default_rng(seed), num_links,
                                                num_flows, weighted=True)
        rates = max_min_fair_rates(paths, caps, weights=weights)
        assert (rates > 0).all()
        loads = np.zeros(num_links)
        link_max_rate = np.zeros(num_links)
        for f, links in enumerate(paths):
            for link in links:
                loads[link] += weights[f] * rates[f]
                link_max_rate[link] = max(link_max_rate[link], rates[f])
        assert (loads <= caps * (1.0 + 1e-6)).all()
        for f, links in enumerate(paths):
            saturated_bottleneck = any(
                loads[link] >= caps[link] * (1.0 - 1e-9) - 1e-9
                and rates[f] >= link_max_rate[link] - 1e-9
                for link in links)
            assert saturated_bottleneck

    @given(num_flows=st.integers(0, 18), num_links=st.integers(1, 10),
           seed=st.integers(0, 300))
    @settings(max_examples=40, deadline=None)
    def test_vectorized_utilisation_matches_scalar_loop(self, num_flows, num_links, seed):
        """link_utilisation (bincount form) equals the per-flow accumulation loop."""
        rng = np.random.default_rng(seed)
        caps, paths, _ = _random_flow_set(rng, num_links, max(num_flows, 0))
        rates = rng.uniform(0.0, 5.0, size=len(paths))
        if len(paths) > 2:
            rates[0] = np.inf    # same-router flows carry infinite rate markers
        expected = np.zeros(num_links)
        for f, links in enumerate(paths):
            if not np.isfinite(rates[f]):
                continue
            for link in links:
                expected[link] += rates[f]
        expected = np.where(caps > 0, expected / caps, 0.0)
        got = link_utilisation(paths, rates, caps)
        assert np.array_equal(got, expected)

    def test_utilisation_rejects_unknown_link(self):
        with pytest.raises(ValueError):
            link_utilisation([[0, 3]], np.array([1.0]), np.array([5.0, 5.0]))
