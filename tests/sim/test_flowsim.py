"""Tests for the flow-level simulator."""

import numpy as np
import pytest

from repro.core.config import FatPathsConfig
from repro.core.fatpaths import FatPathsRouting
from repro.core.loadbalance import EcmpSelector, FlowletSelector
from repro.core.transport import ndp_transport, tcp_transport
from repro.routing import EcmpRouting
from repro.sim.flowsim import FlowSimConfig, simulate_workload
from repro.sim.metrics import speedup_over_baseline, summarize_flows
from repro.topologies import slim_fly, star
from repro.traffic.flows import Flow, Workload, uniform_size_workload
from repro.traffic.patterns import off_diagonal, random_permutation


LINE_RATE = 10e9 / 8  # bytes/s


@pytest.fixture(scope="module")
def sf():
    return slim_fly(5)


@pytest.fixture(scope="module")
def sf_fatpaths(sf):
    return FatPathsRouting(sf, FatPathsConfig(num_layers=5, rho=0.7, seed=0))


class TestBasicBehaviour:
    def test_single_flow_runs_at_line_rate(self, sf, sf_fatpaths):
        size = 10e6
        wl = Workload([Flow(0.0, 0, 50, size)])
        result = simulate_workload(sf, sf_fatpaths, wl, seed=0)
        assert len(result) == 1
        record = result.records[0]
        expected = size / LINE_RATE
        assert record.fct == pytest.approx(expected, rel=0.05)

    def test_two_flows_same_source_share_injection_link(self, sf, sf_fatpaths):
        size = 10e6
        wl = Workload([Flow(0.0, 0, 50, size), Flow(0.0, 0, 101, size)])
        result = simulate_workload(sf, sf_fatpaths, wl, seed=0)
        for record in result.records:
            assert record.fct >= 2 * size / LINE_RATE * 0.9

    def test_flows_complete_in_size_order_when_sharing(self, sf, sf_fatpaths):
        wl = Workload([Flow(0.0, 0, 50, 1e6), Flow(0.0, 1, 51, 8e6)])
        result = simulate_workload(sf, sf_fatpaths, wl, seed=0)
        small = next(r for r in result.records if r.size_bytes == 1e6)
        big = next(r for r in result.records if r.size_bytes == 8e6)
        assert small.fct < big.fct

    def test_same_router_flow_bottlenecked_by_nic(self, sf, sf_fatpaths):
        wl = Workload([Flow(0.0, 0, 1, 1e6)])  # endpoints 0 and 1 share router 0
        result = simulate_workload(sf, sf_fatpaths, wl, seed=0)
        assert result.records[0].fct == pytest.approx(1e6 / LINE_RATE, rel=0.1)

    def test_later_start_time_shifts_completion(self, sf, sf_fatpaths):
        wl = Workload([Flow(1.0, 0, 50, 1e6)])
        result = simulate_workload(sf, sf_fatpaths, wl, seed=0)
        assert result.records[0].completion_time > 1.0
        assert result.records[0].fct < 1.0

    def test_records_sorted_by_flow_id(self, sf, sf_fatpaths):
        pattern = random_permutation(sf.num_endpoints, np.random.default_rng(0)).subsample(
            0.2, np.random.default_rng(1))
        wl = uniform_size_workload(pattern, 256 * 1024)
        result = simulate_workload(sf, sf_fatpaths, wl, seed=0)
        ids = [r.flow_id for r in result.records]
        assert ids == sorted(ids)
        assert len(result) == len(wl)

    def test_mapping_is_applied(self, sf, sf_fatpaths):
        wl = Workload([Flow(0.0, 0, 1, 1e6)])  # same router without mapping
        mapping = np.arange(sf.num_endpoints)
        mapping[1] = sf.num_endpoints - 1     # move destination to the last router
        result = simulate_workload(sf, sf_fatpaths, wl, mapping=mapping, seed=0)
        assert result.records[0].path_hops >= 1

    def test_star_topology_baseline(self):
        """On a crossbar the only contention is at endpoint links."""
        topo = star(8)
        routing = EcmpRouting(topo)
        wl = Workload([Flow(0.0, 0, 4, 1e6), Flow(0.0, 1, 5, 1e6)])
        result = simulate_workload(topo, routing, wl, seed=0)
        for r in result.records:
            assert r.fct == pytest.approx(1e6 / LINE_RATE, rel=0.1)


class TestCongestionAndAdaptivity:
    def test_colliding_flows_slower_with_single_path(self, sf):
        """Many flows forced onto the same router pair collide on the single shortest
        path under ECMP, but spread over layers with FatPaths."""
        p = sf.concentration
        ecmp = EcmpRouting(sf, seed=0)
        fatpaths = FatPathsRouting(sf, FatPathsConfig(num_layers=6, rho=0.7, seed=0))
        # all p endpoints of router 0 send to distinct endpoints of router 30
        flows = [Flow(0.0, e, 30 * p + e, 4e6) for e in range(p)]
        wl = Workload(flows)
        r_ecmp = simulate_workload(sf, ecmp, wl, selector=EcmpSelector(), seed=0)
        r_fp = simulate_workload(sf, fatpaths, wl, selector=FlowletSelector(seed=0), seed=0)
        assert r_fp.summary()["fct_mean"] <= r_ecmp.summary()["fct_mean"] * 1.05
        # under ECMP every flow shares one inter-router link: FCT ~ p * size / rate
        assert r_ecmp.summary()["fct_mean"] > 2 * 4e6 / LINE_RATE

    def test_path_switches_happen_for_long_flows(self, sf, sf_fatpaths):
        wl = Workload([Flow(0.0, 0, 50, 8e6), Flow(0.0, 4, 54, 8e6)])
        result = simulate_workload(sf, sf_fatpaths, wl,
                                   selector=FlowletSelector(seed=1, adaptive=False,
                                                            length_bias=0.0), seed=1)
        assert any(r.num_path_switches > 0 for r in result.records)

    def test_tcp_transport_adds_startup_delay(self, sf, sf_fatpaths):
        wl = Workload([Flow(0.0, 0, 50, 64 * 1024)])
        ndp = simulate_workload(sf, sf_fatpaths, wl, transport=ndp_transport(), seed=0)
        tcp = simulate_workload(sf, sf_fatpaths, wl, transport=tcp_transport(), seed=0)
        assert tcp.records[0].fct > ndp.records[0].fct


class TestMetrics:
    def test_summary_fields(self, sf, sf_fatpaths):
        pattern = off_diagonal(sf.num_endpoints, 3 * sf.concentration)
        wl = uniform_size_workload(pattern.subsample(0.2, np.random.default_rng(0)), 1e6)
        result = simulate_workload(sf, sf_fatpaths, wl, seed=0)
        summary = result.summary()
        assert summary["count"] == len(wl)
        assert summary["fct_p99"] >= summary["fct_p50"] >= 0
        assert summary["throughput_mean"] > 0

    def test_warmup_filter(self, sf, sf_fatpaths):
        flows = [Flow(t * 0.01, 0, 50 + t, 1e5) for t in range(10)]
        result = simulate_workload(sf, sf_fatpaths, Workload(flows), seed=0)
        filtered = result.warmup_filtered(0.5)
        assert 0 < len(filtered) < len(result)

    def test_by_size_bucket(self, sf, sf_fatpaths):
        flows = [Flow(0.0, 0, 50, 32 * 1024), Flow(0.0, 1, 51, 2e6)]
        result = simulate_workload(sf, sf_fatpaths, Workload(flows), seed=0)
        buckets = result.by_size_bucket([64 * 1024, 4e6])
        assert len(buckets[64 * 1024]) == 1
        assert len(buckets[4e6]) == 1

    def test_speedup_over_baseline(self, sf, sf_fatpaths):
        wl = Workload([Flow(0.0, 0, 50, 1e6)])
        a = simulate_workload(sf, sf_fatpaths, wl, seed=0)
        assert speedup_over_baseline(a, a) == pytest.approx(1.0)

    def test_empty_summary(self):
        assert summarize_flows([]) == {"count": 0}

    def test_config_validation(self):
        with pytest.raises(ValueError):
            FlowSimConfig(link_rate_bps=0)
        with pytest.raises(ValueError):
            FlowSimConfig(flowlet_bytes=0)


class TestEngineDispatch:
    """simulate_workload dispatches between the vectorized engine (default) and the
    preserved scalar reference; the full record-level pinning lives in
    tests/sim/test_engine_equivalence.py."""

    def test_default_engine_is_vectorized(self, sf, sf_fatpaths):
        wl = Workload([Flow(0.0, 0, 50, 1e6)])
        result = simulate_workload(sf, sf_fatpaths, wl, seed=0)
        assert result.meta["engine"] == "engine"

    def test_reference_escape_hatch(self, sf, sf_fatpaths):
        wl = Workload([Flow(0.0, 0, 50, 1e6)])
        result = simulate_workload(sf, sf_fatpaths, wl, seed=0, engine="reference")
        assert result.meta["engine"] == "reference"

    def test_unknown_engine_rejected(self, sf, sf_fatpaths):
        wl = Workload([Flow(0.0, 0, 50, 1e6)])
        with pytest.raises(ValueError):
            simulate_workload(sf, sf_fatpaths, wl, engine="quantum")

    def test_empty_workload(self, sf, sf_fatpaths):
        for engine in ("engine", "reference"):
            result = simulate_workload(sf, sf_fatpaths, Workload([]), seed=0, engine=engine)
            assert len(result) == 0

    def test_endpoint_out_of_range_rejected(self, sf, sf_fatpaths):
        wl = Workload([Flow(0.0, 0, sf.num_endpoints + 3, 1e6)])
        with pytest.raises(ValueError):
            simulate_workload(sf, sf_fatpaths, wl, seed=0)
