"""Streaming service correctness: the stream driver is pinned to the batch engine.

Three pillars (see ``docs/streaming.md``):

* **Chunked replay** — feeding a workload to :class:`repro.sim.stream.StreamSimulator`
  chunk by chunk, with compaction forced between chunks, must reproduce
  :func:`repro.sim.flowsim.simulate_workload`'s records *bit for bit* (all fields,
  including completion times) across stacks, allocators, and fault schedules.
* **Checkpoint/restore** — a run interrupted by :meth:`~repro.sim.stream.StreamSimulator.checkpoint`
  (pickled round-trip, taken mid-fault-epoch) and resumed on a fresh simulator must
  be bit-identical to the uninterrupted run: records, engine meta, final link
  utilisation, windows and summary.  Counters such as compaction counts depend on
  the *driving pattern* (push/advance sequence), so both runs drive identically.
* **Bounded memory** — on a long arrival stream the peak slot/pool/bank occupancy
  must stay proportional to the active-flow population, not the arrival count.

Plus the streaming estimators (:class:`~repro.sim.metrics.P2Quantile`,
:class:`~repro.sim.metrics.ReservoirSample`), the explicit time bounds of
:meth:`~repro.sim.metrics.SimulationResult.warmup_filtered`/``summary``, and the
batch engine's in-run pool compaction (``meta["pool_compactions"]``).
"""

import math
import pickle

import numpy as np
import pytest

from repro.experiments.simcommon import build_stack
from repro.sim.faults import sample_link_faults
from repro.sim.flowsim import FlowSimConfig, simulate_workload
from repro.sim.metrics import (
    FlowRecord,
    P2Quantile,
    ReservoirSample,
    SimulationResult,
)
from repro.sim.stream import CHECKPOINT_VERSION, StreamConfig, StreamSimulator
from repro.topologies import comparable_configurations
from repro.topologies.configs import SizeClass
from repro.traffic.flows import Flow, poisson_workload
from repro.traffic.patterns import incast_pattern, random_permutation
from repro.traffic.streams import poisson_flow_stream

#: Tiny slot thresholds so compaction fires many times inside tiny workloads.
TIGHT = StreamConfig(window=0.01, min_retired=32, initial_slots=32,
                     compact_factor=1.0, record_ring=8192)

CHUNK = 150


@pytest.fixture(scope="module")
def topo():
    return comparable_configurations(SizeClass.TINY, topologies=["SF"], seed=0)["SF"]


@pytest.fixture(scope="module")
def workload(topo):
    rng = np.random.default_rng(0)
    pattern = random_permutation(topo.num_endpoints, rng).subsample(0.5, rng)
    return poisson_workload(pattern, 400.0, 0.05, rng=np.random.default_rng(2))


@pytest.fixture(scope="module")
def flows(workload):
    """The workload in global start-time order — the stream ingestion contract."""
    return workload.sorted_by_start()


@pytest.fixture(scope="module")
def fault_config(topo):
    faults = sample_link_faults(topo, fraction=0.08, rng=np.random.default_rng(4),
                                fail_time=0.004, restore_time=0.03)
    return FlowSimConfig(faults=faults)


def batch_run(topo, stack_name, workload, config=None):
    stack = build_stack(topo, stack_name, seed=0)
    return simulate_workload(topo, stack.routing, workload, selector=stack.selector,
                             transport=stack.transport, config=config, seed=0)


def stream_sim(topo, stack_name, config=None, stream_config=TIGHT, **kwargs):
    stack = build_stack(topo, stack_name, seed=0)
    return StreamSimulator(topo, stack.routing, selector=stack.selector,
                           transport=stack.transport, config=config, seed=0,
                           stream_config=stream_config, **kwargs)


def assert_records_identical(reference, records):
    """Every field bit-identical — stream and batch share the same engine core.

    Batch results are in flow-id order while the stream retires records in
    completion order, so both sides are keyed by flow id before comparing.
    """
    assert len(reference) == len(records)
    for ref, got in zip(sorted(reference, key=lambda r: r.flow_id),
                        sorted(records, key=lambda r: r.flow_id)):
        assert ref.flow_id == got.flow_id
        assert ref.source == got.source
        assert ref.destination == got.destination
        assert ref.size_bytes == got.size_bytes
        assert ref.start_time == got.start_time
        assert ref.completion_time == got.completion_time
        assert ref.path_hops == got.path_hops
        assert ref.num_path_switches == got.num_path_switches
        assert ref.congestion_events == got.congestion_events


def chunked_replay(sim, flows, chunk=CHUNK, compact_between=True):
    """Push ``flows`` in chunks, advancing strictly below each next chunk's start.

    ``compact_between`` forces a slot compaction at every chunk boundary on top
    of the automatic policy — the acceptance harness for bounded-memory replay.
    """
    chunks = [flows[i:i + chunk] for i in range(0, len(flows), chunk)]
    for i, part in enumerate(chunks):
        sim.push(part)
        if i + 1 < len(chunks):
            sim.advance(float(chunks[i + 1][0].start_time), inclusive=False)
            if compact_between:
                sim.compact()
    return sim.finish()


# ------------------------------------------------------------- chunked replay
class TestChunkedReplay:
    @pytest.mark.parametrize("stack_name", ["fatpaths", "ecmp", "ndp"])
    def test_matches_batch(self, topo, workload, flows, stack_name):
        batch = batch_run(topo, stack_name, workload)
        sink = []
        sim = stream_sim(topo, stack_name, record_sink=sink.append)
        summary = chunked_replay(sim, flows)
        assert_records_identical(batch.records, sink)
        assert summary["events"] == batch.meta["events"]
        assert summary["completions"] == len(batch)
        assert summary["active"] == 0 and summary["pending"] == 0
        assert summary["slot_compactions"] > 0

    def test_matches_batch_under_faults(self, topo, workload, flows, fault_config):
        batch = batch_run(topo, "fatpaths", workload, config=fault_config)
        sink = []
        sim = stream_sim(topo, "fatpaths", config=fault_config,
                         record_sink=sink.append)
        summary = chunked_replay(sim, flows)
        assert_records_identical(batch.records, sink)
        assert sim.meta()["reroutes"] == batch.meta["reroutes"]
        assert sim.meta()["fault_events"] == batch.meta["fault_events"]
        assert summary["bank_reclaimed"] > 0

    @pytest.mark.parametrize("allocator", ["incremental", "bottleneck"])
    def test_matches_batch_refiltering_allocator(self, topo, workload, flows,
                                                 allocator):
        config = FlowSimConfig(allocator=allocator)
        batch = batch_run(topo, "fatpaths", workload, config=config)
        sink = []
        sim = stream_sim(topo, "fatpaths", config=config, record_sink=sink.append)
        chunked_replay(sim, flows)
        assert_records_identical(batch.records, sink)

    def test_compaction_rebinds_bottleneck_structure(self, topo, workload, flows):
        """Forced slot compactions must leave the bottleneck caches consistent
        with the (renumbered) live incidence at every chunk boundary."""
        config = FlowSimConfig(allocator="bottleneck")
        sim = stream_sim(topo, "fatpaths", config=config)
        chunks = [flows[i:i + CHUNK] for i in range(0, len(flows), CHUNK)]
        compactions = 0
        for i, part in enumerate(chunks):
            sim.push(part)
            if i + 1 < len(chunks):
                sim.advance(float(chunks[i + 1][0].start_time), inclusive=False)
                compactions += 1 if sim.compact() else 0
                alloc = sim.core.alloc
                links, slots = alloc.state.live_entries()
                loads = np.bincount(links, weights=alloc._rates[slots],
                                    minlength=alloc.capacities.shape[0])
                np.testing.assert_allclose(alloc.link_load, loads,
                                           rtol=1e-9, atol=1e-9)
                for link, members in alloc.link_members.items():
                    live = set(np.unique(slots[links == link]).tolist())
                    kept = {s for s in members if alloc.state.active_mask[s]}
                    assert live <= kept    # members may be stale, never missing
        assert compactions > 0
        sim.finish()

    def test_run_generator_driver(self, topo, workload, flows):
        """run() over a flow iterator equals the batch result and chunked push."""
        batch = batch_run(topo, "fatpaths", workload)
        sink = []
        sim = stream_sim(topo, "fatpaths", record_sink=sink.append)
        summary = sim.run(iter(flows))
        assert_records_identical(batch.records, sink)
        assert summary["events"] == batch.meta["events"]

    def test_record_ring_without_sink(self, topo, flows):
        """No sink: the bounded ring keeps the most recent completions.

        ``record_ring`` only bounds the deque — it never feeds back into the
        dynamics — so a sink-equipped twin run defines the completion order the
        ring's tail must match.
        """
        cfg = StreamConfig(window=0.01, min_retired=32, initial_slots=32,
                           compact_factor=1.0, record_ring=64)
        sink = []
        chunked_replay(stream_sim(topo, "fatpaths", record_sink=sink.append),
                       flows)
        sim = stream_sim(topo, "fatpaths", stream_config=cfg)
        chunked_replay(sim, flows)
        assert len(sim.records) == 64
        assert_records_identical(sink[-64:], list(sim.records))


# -------------------------------------------------------- push/advance driver
class TestPushAdvance:
    def test_push_out_of_order_raises(self, topo):
        sim = stream_sim(topo, "fatpaths")
        flows = [Flow(0.2, 0, 1, 1e6, flow_id=0), Flow(0.1, 2, 3, 1e6, flow_id=1)]
        with pytest.raises(ValueError, match="ordered by start time"):
            sim.push(flows)

    def test_push_into_past_raises(self, topo):
        sim = stream_sim(topo, "fatpaths")
        sim.push([Flow(0.0, 0, 1, 1e6, flow_id=0)])
        sim.advance()
        assert sim.now > 0.0
        with pytest.raises(ValueError, match="before the current simulated time"):
            sim.push([Flow(0.0, 2, 3, 1e6, flow_id=1)])

    def test_push_assigns_service_ids(self, topo):
        """Negative flow ids get sequential service ids; ingestion is passive."""
        sim = stream_sim(topo, "fatpaths")
        flows = [Flow(0.0, 0, 1, 1e6), Flow(0.0, 2, 3, 1e6), Flow(0.1, 4, 5, 1e6)]
        assert all(f.flow_id == -1 for f in flows)
        assert sim.push(flows) == 3
        assert [f.flow_id for f in flows] == [0, 1, 2]
        assert sim.now == 0.0 and sim.active_count == 0     # no events processed
        assert sim.push([]) == 0
        processed = sim.advance()
        assert processed > 0
        assert sim.active_count == 0
        assert len(sim.records) == 3

    def test_advance_exclusive_horizon(self, topo):
        """inclusive=False leaves events at exactly ``until`` unprocessed."""
        sim = stream_sim(topo, "fatpaths")
        sim.push([Flow(0.0, 0, 1, 1e6, flow_id=0), Flow(0.5, 2, 3, 1e6, flow_id=1)])
        sim.advance(0.5, inclusive=False)
        assert sim.now < 0.5
        completed_early = len(sim.records)
        sim.advance()
        assert len(sim.records) == 2
        assert completed_early >= 1                          # first flow finished


# ------------------------------------------------------------- bounded memory
class TestBoundedMemory:
    def test_peaks_track_active_not_arrivals(self, topo):
        """A long stream's slot/pool peaks stay near the concurrent population."""
        rng = np.random.default_rng(7)
        pattern = random_permutation(topo.num_endpoints, rng).subsample(0.5, rng)
        stream = poisson_flow_stream(pattern, 2000.0, rng=np.random.default_rng(8),
                                     duration=0.5, fixed_size=64 * 1024.0)
        sink = []
        sim = stream_sim(topo, "fatpaths", record_sink=sink.append)
        summary = sim.run(stream)
        assert summary["arrivals"] > 5000
        assert summary["completions"] == summary["arrivals"]
        # slots are a small multiple of the live population, far below arrivals
        assert summary["peak_slots"] < summary["arrivals"] / 10
        assert summary["peak_slots"] <= 4 * max(summary["peak_active"], TIGHT.min_retired)
        assert summary["slot_compactions"] > 10
        assert summary["windows"] > 10


# --------------------------------------------------------- checkpoint/restore
def drive(sim, chunks, start=0):
    """The canonical chunked driver both runs of a determinism test must share."""
    for i in range(start, len(chunks)):
        sim.push(chunks[i])
        if i + 1 < len(chunks):
            sim.advance(float(chunks[i + 1][0].start_time), inclusive=False)
    return sim.finish()


def assert_scalar_maps_equal(a, b):
    assert a.keys() == b.keys()
    for key in a:
        va, vb = a[key], b[key]
        if isinstance(va, float) and math.isnan(va):
            assert isinstance(vb, float) and math.isnan(vb), key
        else:
            assert va == vb, key


def assert_windows_equal(wa, wb):
    """WindowStats equality sans wall_seconds (the only wall-clock field)."""
    assert len(wa) == len(wb)
    for a, b in zip(wa, wb):
        for field in ("index", "start", "end", "arrivals", "completions", "events",
                      "fct_p50", "fct_p99", "fct_mean", "util_mean", "util_max",
                      "active", "sampled"):
            va, vb = getattr(a, field), getattr(b, field)
            if isinstance(va, float) and math.isnan(va):
                assert math.isnan(vb), field
            else:
                assert va == vb, field


class TestCheckpointRestore:
    CUT = 6   # checkpoint after driving this many chunks

    @pytest.mark.parametrize("allocator", ["full", "incremental", "bottleneck"])
    def test_bit_identical_resume_mid_fault_epoch(self, topo, flows,
                                                  fault_config, allocator):
        """Interrupt mid-fault-epoch, pickle the checkpoint, resume on a fresh
        simulator: records, meta, link state, windows and summary all match the
        uninterrupted run exactly."""
        config = FlowSimConfig(allocator=allocator, faults=fault_config.faults)
        chunks = [flows[i:i + CHUNK] for i in range(0, len(flows), CHUNK)]
        assert len(chunks) > self.CUT

        sim_a = stream_sim(topo, "fatpaths", config=config)
        summary_a = drive(sim_a, chunks)

        sim_b = stream_sim(topo, "fatpaths", config=config)
        for i in range(self.CUT):
            sim_b.push(chunks[i])
            sim_b.advance(float(chunks[i + 1][0].start_time), inclusive=False)
        # mid-epoch: some links are down and some flows already rerouted
        assert sim_b.core.fault_idx > 0
        assert sim_b.core.fault_idx < len(sim_b.core.fault_epochs)
        chk = pickle.loads(pickle.dumps(sim_b.checkpoint()))
        assert chk["version"] == CHECKPOINT_VERSION

        sim_c = stream_sim(topo, "fatpaths", config=config)
        sim_c.restore(chk)
        assert sim_c.now == sim_b.now
        assert sim_c.active_count == sim_b.active_count
        summary_c = drive(sim_c, chunks, start=self.CUT)

        assert_records_identical(list(sim_a.records), list(sim_c.records))
        assert_scalar_maps_equal(sim_a.meta(), sim_c.meta())
        assert np.array_equal(sim_a.link_util, sim_c.link_util)
        assert_windows_equal(list(sim_a.windows), list(sim_c.windows))
        assert_scalar_maps_equal(summary_a, summary_c)

    def test_bit_identical_resume_no_faults(self, topo, flows):
        chunks = [flows[i:i + CHUNK] for i in range(0, len(flows), CHUNK)]
        sim_a = stream_sim(topo, "fatpaths")
        summary_a = drive(sim_a, chunks)

        sim_b = stream_sim(topo, "fatpaths")
        for i in range(self.CUT):
            sim_b.push(chunks[i])
            sim_b.advance(float(chunks[i + 1][0].start_time), inclusive=False)
        chk = pickle.loads(pickle.dumps(sim_b.checkpoint()))

        sim_c = stream_sim(topo, "fatpaths")
        sim_c.restore(chk)
        summary_c = drive(sim_c, chunks, start=self.CUT)
        assert_records_identical(list(sim_a.records), list(sim_c.records))
        assert_scalar_maps_equal(summary_a, summary_c)
        assert_scalar_maps_equal(sim_a.meta(), sim_c.meta())

    def test_restore_requires_fresh_simulator(self, topo):
        sim = stream_sim(topo, "fatpaths")
        chk = sim.checkpoint()
        sim.push([Flow(0.0, 0, 1, 1e6, flow_id=0)])
        sim.advance()
        with pytest.raises(ValueError, match="freshly constructed"):
            sim.restore(chk)

    def test_restore_rejects_version_mismatch(self, topo):
        sim = stream_sim(topo, "fatpaths")
        chk = sim.checkpoint()
        chk["version"] = CHECKPOINT_VERSION + 1
        with pytest.raises(ValueError, match="checkpoint version"):
            stream_sim(topo, "fatpaths").restore(chk)

    def test_restore_rejects_stack_mismatch(self, topo):
        chk = stream_sim(topo, "fatpaths").checkpoint()
        with pytest.raises(ValueError, match="stack mismatch"):
            stream_sim(topo, "ecmp").restore(chk)
        chk2 = stream_sim(topo, "fatpaths").checkpoint()
        other = stream_sim(topo, "fatpaths",
                           config=FlowSimConfig(allocator="incremental"))
        with pytest.raises(ValueError, match="stack mismatch"):
            other.restore(chk2)


# ---------------------------------------------- batch engine pool compaction
class TestBatchPoolCompaction:
    def test_batch_run_compacts_and_matches_reference(self, topo):
        """The staggered-incast regime drives the batch engine's in-run pool
        compaction (``AllocationState.maybe_compact``) while the records stay
        pinned to the scalar reference."""
        pattern = incast_pattern(topo.num_endpoints, num_hotspots=8, fanin=8,
                                 rng=np.random.default_rng(0),
                                 disjoint_senders=True)
        workload = poisson_workload(pattern, 500.0, 12 / 500.0,
                                    rng=np.random.default_rng(1),
                                    fixed_size=256 * 1024.0)
        engine = batch_run(topo, "ecmp", workload)
        assert engine.meta["pool_compactions"] > 0
        stack = build_stack(topo, "ecmp", seed=0)
        reference = simulate_workload(topo, stack.routing, workload,
                                      selector=stack.selector,
                                      transport=stack.transport, seed=0,
                                      engine="reference")
        assert reference.meta["events"] == engine.meta["events"]
        assert_records_identical(reference.records, engine.records)


# -------------------------------------------------------- metrics estimators
class TestP2Quantile:
    def test_exact_under_five_observations(self):
        est = P2Quantile(0.5)
        assert math.isnan(est.value())
        for v in (3.0, 1.0, 2.0):
            est.add(v)
        assert est.value() == np.percentile([3.0, 1.0, 2.0], 50)

    @pytest.mark.parametrize("q", [0.5, 0.9, 0.99])
    def test_tracks_numpy_percentile(self, q):
        rng = np.random.default_rng(11)
        data = rng.lognormal(mean=0.0, sigma=1.0, size=20_000)
        est = P2Quantile(q)
        for v in data:
            est.add(float(v))
        exact = float(np.percentile(data, q * 100))
        assert est.value() == pytest.approx(exact, rel=0.08)

    def test_state_roundtrip_resumes_identically(self):
        rng = np.random.default_rng(12)
        data = rng.exponential(size=500)
        a = P2Quantile(0.9)
        b = P2Quantile(0.9)
        for v in data[:250]:
            a.add(float(v))
        state = pickle.loads(pickle.dumps(a.state_dict()))
        b.load_state(state)
        for v in data[250:]:
            a.add(float(v))
            b.add(float(v))
        assert a.value() == b.value()
        assert a.state_dict() == b.state_dict()

    def test_rejects_degenerate_quantile(self):
        with pytest.raises(ValueError):
            P2Quantile(0.0)
        with pytest.raises(ValueError):
            P2Quantile(1.0)


class TestReservoirSample:
    def test_exact_under_capacity(self):
        res = ReservoirSample(16, np.random.default_rng(0))
        for v in (5.0, 1.0, 3.0):
            res.add(v)
        assert res.percentile(50.0) == 3.0
        assert res.mean() == pytest.approx(3.0)
        assert res.seen == 3

    def test_deterministic_given_rng(self):
        data = np.random.default_rng(1).exponential(size=2000)
        a = ReservoirSample(64, np.random.default_rng(2))
        b = ReservoirSample(64, np.random.default_rng(2))
        for v in data:
            a.add(float(v))
            b.add(float(v))
        assert a.items == b.items
        assert a.seen == b.seen == 2000
        assert len(a.items) == 64

    def test_state_roundtrip(self):
        res = ReservoirSample(8, np.random.default_rng(3))
        for v in range(20):
            res.add(float(v))
        clone = ReservoirSample(8, np.random.default_rng(99))
        clone.load_state(pickle.loads(pickle.dumps(res.state_dict())))
        assert clone.items == res.items
        assert clone.seen == res.seen

    def test_rejects_empty_capacity(self):
        with pytest.raises(ValueError):
            ReservoirSample(0, np.random.default_rng(0))


# ------------------------------------------------- explicit-bound warm-up API
def _records(starts):
    return [FlowRecord(flow_id=i, source=0, destination=1, size_bytes=1e6,
                       start_time=s, completion_time=s + 0.01, path_hops=3,
                       num_path_switches=0, congestion_events=0)
            for i, s in enumerate(starts)]


class TestExplicitWarmupBounds:
    def test_explicit_bounds_are_half_open(self):
        result = SimulationResult(records=_records([0.0, 0.1, 0.2, 0.3]), name="t")
        kept = result.warmup_filtered(start_after=0.1, end_before=0.3)
        assert [r.start_time for r in kept.records] == [0.1, 0.2]
        lower_only = result.warmup_filtered(start_after=0.2)
        assert [r.start_time for r in lower_only.records] == [0.2, 0.3]
        upper_only = result.warmup_filtered(end_before=0.1)
        assert [r.start_time for r in upper_only.records] == [0.0]

    def test_empty_window_stays_empty(self):
        """Unlike the fractional form, explicit bounds never fall back to all."""
        result = SimulationResult(records=_records([0.0, 0.1]), name="t")
        assert result.warmup_filtered(start_after=5.0).records == []
        assert result.warmup_filtered(warmup_fraction=1.0).records  # fallback

    def test_summary_accepts_bounds(self):
        result = SimulationResult(records=_records([0.0, 0.1, 0.2, 0.3]), name="t")
        bounded = result.summary(start_after=0.1, end_before=0.3)
        assert bounded["count"] == 2
        assert result.summary(start_after=9.0) == {"count": 0}
        assert result.summary()["count"] == 4
