"""Packet engine/reference equivalence: the vectorized packet engine must reproduce
the scalar packet simulator *record for record* — every FlowRecord field, every meta
counter and the full per-link serialisation schedule bit-identically — across every
simcommon stack (both transports), multiple topologies, and the simulator's edge
paths (same-router flows, single-path routings, sprayed flows, the max-events
truncation that forces the strict fallback)."""

import numpy as np
import pytest

from repro.core.loadbalance import EcmpSelector, FlowletSelector
from repro.experiments.simcommon import STACKS, build_stack
from repro.routing import EcmpRouting
from repro.sim.packetengine import PacketEngine
from repro.sim.packetsim import PACKET_ENGINES, simulate_packets
from repro.sim.packetsim_reference import PacketLevelSimulator, _Link
from repro.sim.simconfig import PacketSimConfig
from repro.topologies import comparable_configurations, star
from repro.topologies.configs import SizeClass
from repro.traffic.flows import Flow, Workload, poisson_workload, uniform_size_workload
from repro.traffic.patterns import random_permutation


TOPOLOGY_NAMES = ("SF", "FT3")


def assert_equivalent(reference, engine):
    """Bit-identical record-for-record comparison (no tolerances: the packet engine
    replays the reference's float expressions exactly)."""
    assert len(reference) == len(engine)
    assert reference.meta == engine.meta
    assert reference.records == engine.records


def run_both(topology, stack_name, workload, config=None, seed=0):
    """One workload under freshly built identical stacks on both implementations."""
    results = []
    for engine in ("reference", "engine"):
        stack = build_stack(topology, stack_name, seed=seed)
        results.append(simulate_packets(
            topology, stack.routing, workload, selector=stack.selector,
            transport=stack.transport, config=config, seed=seed, engine=engine))
    return results


@pytest.fixture(scope="module")
def topologies():
    return comparable_configurations(SizeClass.TINY, topologies=list(TOPOLOGY_NAMES),
                                     seed=0)


@pytest.fixture(scope="module")
def workloads(topologies):
    out = {}
    for name, topo in topologies.items():
        rng = np.random.default_rng(0)
        pattern = random_permutation(topo.num_endpoints, rng).subsample(0.2, rng)
        out[name] = {
            "uniform": uniform_size_workload(pattern, 96 * 1024),
            "poisson": poisson_workload(pattern, 2000.0, 0.001,
                                        rng=np.random.default_rng(2),
                                        fixed_size=64 * 1024),
        }
    return out


class TestAllStacks:
    """The acceptance grid: every simcommon stack (both transports) on two
    topology families."""

    @pytest.mark.parametrize("stack_name", STACKS)
    @pytest.mark.parametrize("topo_name", TOPOLOGY_NAMES)
    def test_uniform_workload(self, topologies, workloads, topo_name, stack_name):
        reference, engine = run_both(topologies[topo_name], stack_name,
                                     workloads[topo_name]["uniform"])
        assert_equivalent(reference, engine)

    @pytest.mark.parametrize("stack_name", ["fatpaths", "fatpaths_tcp", "ndp"])
    @pytest.mark.parametrize("topo_name", TOPOLOGY_NAMES)
    def test_poisson_arrivals(self, topologies, workloads, topo_name, stack_name):
        reference, engine = run_both(topologies[topo_name], stack_name,
                                     workloads[topo_name]["poisson"])
        assert_equivalent(reference, engine)


class TestSerializationTrace:
    """Beyond the records: the full per-link serialisation schedule must match
    element for element (same links, same departure floats, same order)."""

    @pytest.mark.parametrize("stack_name", ["fatpaths", "fatpaths_tcp", "ndp"])
    def test_trace_identical(self, topologies, workloads, stack_name, monkeypatch):
        topo = topologies["SF"]
        workload = workloads["SF"]["uniform"]

        stack = build_stack(topo, stack_name, seed=0)
        ref_sim = PacketLevelSimulator(topo, stack.routing, selector=stack.selector,
                                       transport=stack.transport, seed=0)
        ref_trace = []
        index_of = {id(link): i for i, link in enumerate(ref_sim.links)}
        orig = _Link.serialize

        def spying_serialize(self, now, size_bytes):
            departure, arrival = orig(self, now, size_bytes)
            ref_trace.append((index_of[id(self)], departure))
            return departure, arrival

        monkeypatch.setattr(_Link, "serialize", spying_serialize)
        ref_result = ref_sim.run(workload)
        monkeypatch.setattr(_Link, "serialize", orig)

        stack2 = build_stack(topo, stack_name, seed=0)
        eng_sim = PacketEngine(topo, stack2.routing, selector=stack2.selector,
                               transport=stack2.transport, seed=0)
        eng_sim.trace = []
        eng_result = eng_sim.run(workload)

        assert_equivalent(ref_result, eng_result)
        assert eng_sim.trace == ref_trace

    def test_final_link_state_identical(self, topologies, workloads):
        """The engine's flat link arrays end bit-identical to the reference's
        per-link objects (occupancy drains flushed, reservations matched)."""
        topo = topologies["SF"]
        workload = workloads["SF"]["uniform"]
        stack = build_stack(topo, "ndp", seed=0)
        ref_sim = PacketLevelSimulator(topo, stack.routing, selector=stack.selector,
                                       transport=stack.transport, seed=0)
        ref_result = ref_sim.run(workload)
        stack2 = build_stack(topo, "ndp", seed=0)
        eng_sim = PacketEngine(topo, stack2.routing, selector=stack2.selector,
                               transport=stack2.transport, seed=0)
        eng_result = eng_sim.run(workload)
        assert_equivalent(ref_result, eng_result)
        state = eng_sim.final_link_state
        assert state["next_free"] == [link.next_free for link in ref_sim.links]
        assert state["queued"] == [link.queued for link in ref_sim.links]
        assert state["trims"] == [link.trims for link in ref_sim.links]
        assert state["drops"] == [link.drops for link in ref_sim.links]


class TestEdgePaths:
    def test_same_router_flows(self, topologies):
        """Endpoints on one router take the synthetic single-hop candidate."""
        topo = topologies["SF"]
        workload = Workload([Flow(0.0, 0, 1, 256 * 1024), Flow(0.0, 2, 40, 512 * 1024)])
        reference, engine = run_both(topo, "fatpaths", workload)
        assert_equivalent(reference, engine)
        assert reference.records[0].path_hops == 1

    def test_single_path_flows(self, topologies):
        """A max_paths=1 routing never offers alternatives, so no switches happen."""
        topo = topologies["SF"]
        workload = uniform_size_workload(
            random_permutation(topo.num_endpoints,
                               np.random.default_rng(1)).subsample(0.2,
                                                                   np.random.default_rng(2)),
            64 * 1024)
        results = []
        for engine in ("reference", "engine"):
            routing = EcmpRouting(topo, max_paths=1, seed=0)
            results.append(simulate_packets(topo, routing, workload,
                                            selector=FlowletSelector(seed=0),
                                            seed=0, engine=engine))
        assert_equivalent(*results)
        assert all(r.num_path_switches == 0 for r in results[1].records)

    def test_sprayed_flows_on_star(self):
        """Packet-spray selector on a crossbar (NDP's home turf)."""
        topo = star(12)
        workload = uniform_size_workload(
            random_permutation(topo.num_endpoints, np.random.default_rng(3)),
            128 * 1024)
        reference, engine = run_both(topo, "ndp", workload)
        assert_equivalent(reference, engine)

    def test_ecmp_selector_static_paths(self, topologies):
        """Hash-based selector: no RNG at all, still pinned."""
        topo = topologies["FT3"]
        workload = uniform_size_workload(
            random_permutation(topo.num_endpoints,
                               np.random.default_rng(7)).subsample(0.3,
                                                                   np.random.default_rng(8)),
            256 * 1024)
        results = []
        for engine in ("reference", "engine"):
            routing = EcmpRouting(topo, max_paths=8, seed=0)
            results.append(simulate_packets(topo, routing, workload,
                                            selector=EcmpSelector(seed=0),
                                            seed=0, engine=engine))
        assert_equivalent(*results)


class TestMaxEventsDrain:
    """Truncation semantics depend on the exact pop sequence, which the fast loop's
    lazy dequeues cannot reproduce — these runs must detect the budget crossing,
    rewind the selector RNG and replay under the strict single-heap loop."""

    @pytest.mark.parametrize("budget", [3, 50, 500, 2000])
    @pytest.mark.parametrize("stack_name", ["fatpaths", "fatpaths_tcp", "ndp"])
    def test_truncated_runs_match(self, topologies, workloads, stack_name, budget):
        config = PacketSimConfig(max_events=budget)
        reference, engine = run_both(topologies["SF"], stack_name,
                                     workloads["SF"]["uniform"], config=config)
        assert_equivalent(reference, engine)
        assert reference.meta["events"] == budget
        # every flow still produces a record (open flows close at the drain time)
        assert len(reference) == len(workloads["SF"]["uniform"])

    def test_truncated_trace_is_rewound(self, topologies, workloads):
        """The fast loop's partial trace must be discarded before the strict replay
        so the recorded schedule has no duplicated prefix."""
        topo = topologies["SF"]
        workload = workloads["SF"]["uniform"]
        stack = build_stack(topo, "fatpaths", seed=0)
        eng_sim = PacketEngine(topo, stack.routing, selector=stack.selector,
                               transport=stack.transport,
                               config=PacketSimConfig(max_events=500), seed=0)
        eng_sim.trace = []
        eng_sim.run(workload)

        stack2 = build_stack(topo, "fatpaths", seed=0)
        strict_sim = PacketEngine(topo, stack2.routing, selector=stack2.selector,
                                  transport=stack2.transport,
                                  config=PacketSimConfig(max_events=500), seed=0)
        strict_sim.trace = []
        strict_sim._run_strict(workload)
        assert eng_sim.trace == strict_sim.trace


class TestDispatch:
    def test_unknown_engine_rejected(self, topologies, workloads):
        with pytest.raises(ValueError, match="warp-drive"):
            simulate_packets(topologies["SF"], None, workloads["SF"]["uniform"],
                             engine="warp-drive")

    def test_engine_names_exported(self):
        assert PACKET_ENGINES == ("engine", "reference")

    def test_default_engine_is_vectorized(self, topologies, workloads):
        """simulate_packets() without `engine=` runs the PacketEngine and matches
        an explicit reference run."""
        topo = topologies["SF"]
        stack = build_stack(topo, "ecmp", seed=0)
        default = simulate_packets(topo, stack.routing, workloads["SF"]["uniform"],
                                   selector=stack.selector,
                                   transport=stack.transport, seed=0)
        stack2 = build_stack(topo, "ecmp", seed=0)
        reference = simulate_packets(topo, stack2.routing,
                                     workloads["SF"]["uniform"],
                                     selector=stack2.selector,
                                     transport=stack2.transport, seed=0,
                                     engine="reference")
        assert_equivalent(reference, default)

    def test_fast_and_strict_loops_agree(self, topologies, workloads):
        """The engine's own strict loop (the truncation fallback) reproduces the
        fast loop exactly on untruncated runs."""
        topo = topologies["SF"]
        workload = workloads["SF"]["uniform"]
        stack = build_stack(topo, "fatpaths", seed=0)
        fast_sim = PacketEngine(topo, stack.routing, selector=stack.selector,
                                transport=stack.transport, seed=0)
        fast = fast_sim.run(workload)
        stack2 = build_stack(topo, "fatpaths", seed=0)
        strict_sim = PacketEngine(topo, stack2.routing, selector=stack2.selector,
                                  transport=stack2.transport, seed=0)
        strict = strict_sim._run_strict(workload)
        assert_equivalent(strict, fast)
