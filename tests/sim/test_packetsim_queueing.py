"""Tests for the packet-level simulator and the queueing model."""

import numpy as np
import pytest

from repro.core.config import FatPathsConfig
from repro.core.fatpaths import FatPathsRouting
from repro.core.loadbalance import EcmpSelector, FlowletSelector
from repro.core.transport import ndp_transport, tcp_transport
from repro.routing import EcmpRouting
from repro.sim.packetengine import PacketEngine
from repro.sim.packetsim import PacketLevelSimulator, PacketSimConfig
from repro.sim.queueing import mg1_ps_fct, offered_load, predict_fct_distribution
from repro.topologies import slim_fly, star
from repro.traffic.flows import Flow, Workload


LINE_RATE = 10e9 / 8


@pytest.fixture(scope="module")
def sf():
    return slim_fly(5)


@pytest.fixture(scope="module")
def sf_fatpaths(sf):
    return FatPathsRouting(sf, FatPathsConfig(num_layers=4, rho=0.7, seed=0))


class TestPacketSim:
    def test_single_flow_completes_with_sane_fct(self, sf, sf_fatpaths):
        size = 256 * 1024
        sim = PacketLevelSimulator(sf, sf_fatpaths, seed=0)
        result = sim.run(Workload([Flow(0.0, 0, 50, size)]))
        record = result.records[0]
        assert record.completion_time is not None
        ideal = size / LINE_RATE
        assert ideal <= record.fct < 20 * ideal

    def test_all_flows_complete(self, sf, sf_fatpaths):
        flows = [Flow(0.0, e, 100 + e, 64 * 1024) for e in range(8)]
        sim = PacketLevelSimulator(sf, sf_fatpaths, seed=0)
        result = sim.run(Workload(flows))
        assert len(result) == 8
        assert all(r.fct > 0 for r in result.records)

    def test_congestion_causes_trimming_with_ndp(self, sf):
        """Many senders into one destination router overflow its queues: NDP trims."""
        p = sf.concentration
        routing = EcmpRouting(sf, seed=0)
        flows = [Flow(0.0, e * p, 30 * p, 512 * 1024) for e in range(1, 8)]
        sim = PacketLevelSimulator(sf, routing, selector=EcmpSelector(),
                                   transport=ndp_transport(), seed=0)
        result = sim.run(Workload(flows))
        assert result.meta["total_trims"] > 0
        assert result.meta["total_drops"] == 0

    def test_congestion_causes_drops_with_tcp(self, sf):
        p = sf.concentration
        routing = EcmpRouting(sf, seed=0)
        flows = [Flow(0.0, e * p, 30 * p, 512 * 1024) for e in range(1, 8)]
        sim = PacketLevelSimulator(sf, routing, selector=EcmpSelector(),
                                   transport=tcp_transport(), seed=0)
        result = sim.run(Workload(flows))
        assert result.meta["total_drops"] > 0
        # flows still finish thanks to RTO-based retransmission
        assert all(r.fct > 0 for r in result.records)

    def test_flowlet_switching_uses_multiple_paths(self, sf, sf_fatpaths):
        flows = [Flow(0.0, 0, 50, 1024 * 1024)]
        sim = PacketLevelSimulator(sf, sf_fatpaths,
                                   selector=FlowletSelector(seed=0, adaptive=False,
                                                            length_bias=0.0),
                                   config=PacketSimConfig(flowlet_packets=4), seed=0)
        result = sim.run(Workload(flows))
        assert result.records[0].num_path_switches > 0

    def test_star_topology(self):
        topo = star(4)
        routing = EcmpRouting(topo)
        sim = PacketLevelSimulator(topo, routing, seed=0)
        result = sim.run(Workload([Flow(0.0, 0, 2, 64 * 1024)]))
        assert result.records[0].fct > 0

    def test_config_validation(self):
        with pytest.raises(ValueError):
            PacketSimConfig(packet_bytes=32, header_bytes=64)
        with pytest.raises(ValueError):
            PacketSimConfig(queue_packets=0)


class TestConfigValidation:
    """Every PacketSimConfig parameter rejects its degenerate values."""

    @pytest.mark.parametrize("kwargs", [
        {"packet_bytes": 64, "header_bytes": 64},
        {"queue_packets": 0},
        {"window_packets": 0},
        {"link_rate_bps": 0.0},
        {"link_rate_bps": -1e9},
        {"rto": 0.0},
        {"per_hop_latency": 0.0},
        {"host_latency": -1e-6},
        {"flowlet_packets": 0},
    ])
    def test_rejects_degenerate(self, kwargs):
        with pytest.raises(ValueError):
            PacketSimConfig(**kwargs)

    def test_defaults_are_valid(self):
        cfg = PacketSimConfig()
        assert cfg.packet_bytes > cfg.header_bytes
        assert cfg.queue_packets >= 1 and cfg.window_packets >= 1


class TestPacketInvariants:
    """Property checks on the engine's post-run counters and serialisation trace:
    packet conservation, bounded queues, the priority lane, the sender window and
    monotone per-link reservations."""

    @pytest.fixture(scope="class")
    def incast(self, sf):
        """An NDP incast that overflows the destination router's queues."""
        p = sf.concentration
        routing = EcmpRouting(sf, seed=0)
        flows = [Flow(0.0, e * p, 30 * p, 512 * 1024) for e in range(1, 8)]
        sim = PacketEngine(sf, routing, selector=EcmpSelector(),
                           transport=ndp_transport(), seed=0)
        sim.trace = []
        result = sim.run(Workload(flows))
        return sim, result

    def test_conservation(self, incast):
        """Every flow completes, and the per-flow congestion counters add up to
        the global trim/drop totals — no event is lost or double-counted."""
        _, result = incast
        assert all(r.completion_time > r.start_time for r in result.records)
        assert (sum(r.congestion_events for r in result.records)
                == result.meta["total_trims"] + result.meta["total_drops"])

    def test_queue_occupancy_bounded(self, incast):
        """Non-priority admissions never observe more than queue_packets queued."""
        sim, _ = incast
        assert 0 < sim.last_stats["max_queued"] <= sim.config.queue_packets

    def test_priority_headers_bypass_full_queues(self, incast):
        """Trimmed headers are admitted past full queues (the priority lane)."""
        sim, result = incast
        assert result.meta["total_trims"] > 0
        assert sim.last_stats["priority_bypass"] > 0

    def test_window_bounds_in_flight(self, incast):
        """No header-preserving flow ever exceeds the configured sender window."""
        sim, _ = incast
        assert max(sim.last_stats["max_in_flight"]) <= sim.config.window_packets

    def test_serialization_monotone_per_link(self, incast):
        """Each link's departure reservations are nondecreasing: serialisations
        never overlap on one link."""
        sim, _ = incast
        assert sim.trace
        last = {}
        for link, departure in sim.trace:
            assert departure >= last.get(link, 0.0)
            last[link] = departure

    def test_final_occupancy_drains_to_zero(self, incast):
        """After the run every queue has drained (all drains flushed)."""
        sim, _ = incast
        assert all(q == 0 for q in sim.final_link_state["queued"])

    def test_tcp_window_and_drops(self, sf):
        """The TCP path: drops happen, flows still finish via RTOs, and the
        queue bound holds without a priority lane."""
        p = sf.concentration
        routing = EcmpRouting(sf, seed=0)
        flows = [Flow(0.0, e * p, 30 * p, 256 * 1024) for e in range(1, 8)]
        sim = PacketEngine(sf, routing, selector=EcmpSelector(),
                           transport=tcp_transport(), seed=0)
        result = sim.run(Workload(flows))
        assert result.meta["total_drops"] > 0
        assert all(r.completion_time > r.start_time for r in result.records)
        assert sim.last_stats["max_queued"] <= sim.config.queue_packets
        assert sim.last_stats["priority_bypass"] == 0


class TestQueueingModel:
    def test_offered_load(self):
        load = offered_load(200, 1e6, 10e9)
        assert load == pytest.approx(200 * 1e6 / 1.25e9)

    def test_offered_load_validation(self):
        with pytest.raises(ValueError):
            offered_load(1, 0, 10e9)

    def test_fct_grows_with_load(self):
        low = mg1_ps_fct(1e6, 0.1, 10e9)
        high = mg1_ps_fct(1e6, 0.8, 10e9)
        assert high > low
        assert low == pytest.approx(1e6 / 1.25e9 / 0.9)

    def test_fct_validation(self):
        with pytest.raises(ValueError):
            mg1_ps_fct(1e6, 1.0, 10e9)
        with pytest.raises(ValueError):
            mg1_ps_fct(0, 0.5, 10e9)

    def test_distribution_prediction(self):
        sizes = np.full(1000, 1e6)
        samples = predict_fct_distribution(sizes, 0.5, 10e9, jitter=0.3,
                                           rng=np.random.default_rng(0))
        assert samples.shape == (1000,)
        # lognormal jitter with mean-one correction keeps the mean close to the model
        assert samples.mean() == pytest.approx(mg1_ps_fct(1e6, 0.5, 10e9), rel=0.1)

    def test_distribution_no_jitter(self):
        sizes = [1e6, 2e6]
        out = predict_fct_distribution(sizes, 0.2, 10e9, jitter=0.0)
        assert out[1] == pytest.approx(2 * out[0])
