"""Tests for the packet-level simulator and the queueing model."""

import numpy as np
import pytest

from repro.core.config import FatPathsConfig
from repro.core.fatpaths import FatPathsRouting
from repro.core.loadbalance import EcmpSelector, FlowletSelector
from repro.core.transport import ndp_transport, tcp_transport
from repro.routing import EcmpRouting
from repro.sim.packetsim import PacketLevelSimulator, PacketSimConfig
from repro.sim.queueing import mg1_ps_fct, offered_load, predict_fct_distribution
from repro.topologies import slim_fly, star
from repro.traffic.flows import Flow, Workload


LINE_RATE = 10e9 / 8


@pytest.fixture(scope="module")
def sf():
    return slim_fly(5)


@pytest.fixture(scope="module")
def sf_fatpaths(sf):
    return FatPathsRouting(sf, FatPathsConfig(num_layers=4, rho=0.7, seed=0))


class TestPacketSim:
    def test_single_flow_completes_with_sane_fct(self, sf, sf_fatpaths):
        size = 256 * 1024
        sim = PacketLevelSimulator(sf, sf_fatpaths, seed=0)
        result = sim.run(Workload([Flow(0.0, 0, 50, size)]))
        record = result.records[0]
        assert record.completion_time is not None
        ideal = size / LINE_RATE
        assert ideal <= record.fct < 20 * ideal

    def test_all_flows_complete(self, sf, sf_fatpaths):
        flows = [Flow(0.0, e, 100 + e, 64 * 1024) for e in range(8)]
        sim = PacketLevelSimulator(sf, sf_fatpaths, seed=0)
        result = sim.run(Workload(flows))
        assert len(result) == 8
        assert all(r.fct > 0 for r in result.records)

    def test_congestion_causes_trimming_with_ndp(self, sf):
        """Many senders into one destination router overflow its queues: NDP trims."""
        p = sf.concentration
        routing = EcmpRouting(sf, seed=0)
        flows = [Flow(0.0, e * p, 30 * p, 512 * 1024) for e in range(1, 8)]
        sim = PacketLevelSimulator(sf, routing, selector=EcmpSelector(),
                                   transport=ndp_transport(), seed=0)
        result = sim.run(Workload(flows))
        assert result.meta["total_trims"] > 0
        assert result.meta["total_drops"] == 0

    def test_congestion_causes_drops_with_tcp(self, sf):
        p = sf.concentration
        routing = EcmpRouting(sf, seed=0)
        flows = [Flow(0.0, e * p, 30 * p, 512 * 1024) for e in range(1, 8)]
        sim = PacketLevelSimulator(sf, routing, selector=EcmpSelector(),
                                   transport=tcp_transport(), seed=0)
        result = sim.run(Workload(flows))
        assert result.meta["total_drops"] > 0
        # flows still finish thanks to RTO-based retransmission
        assert all(r.fct > 0 for r in result.records)

    def test_flowlet_switching_uses_multiple_paths(self, sf, sf_fatpaths):
        flows = [Flow(0.0, 0, 50, 1024 * 1024)]
        sim = PacketLevelSimulator(sf, sf_fatpaths,
                                   selector=FlowletSelector(seed=0, adaptive=False,
                                                            length_bias=0.0),
                                   config=PacketSimConfig(flowlet_packets=4), seed=0)
        result = sim.run(Workload(flows))
        assert result.records[0].num_path_switches > 0

    def test_star_topology(self):
        topo = star(4)
        routing = EcmpRouting(topo)
        sim = PacketLevelSimulator(topo, routing, seed=0)
        result = sim.run(Workload([Flow(0.0, 0, 2, 64 * 1024)]))
        assert result.records[0].fct > 0

    def test_config_validation(self):
        with pytest.raises(ValueError):
            PacketSimConfig(packet_bytes=32, header_bytes=64)
        with pytest.raises(ValueError):
            PacketSimConfig(queue_packets=0)


class TestQueueingModel:
    def test_offered_load(self):
        load = offered_load(200, 1e6, 10e9)
        assert load == pytest.approx(200 * 1e6 / 1.25e9)

    def test_offered_load_validation(self):
        with pytest.raises(ValueError):
            offered_load(1, 0, 10e9)

    def test_fct_grows_with_load(self):
        low = mg1_ps_fct(1e6, 0.1, 10e9)
        high = mg1_ps_fct(1e6, 0.8, 10e9)
        assert high > low
        assert low == pytest.approx(1e6 / 1.25e9 / 0.9)

    def test_fct_validation(self):
        with pytest.raises(ValueError):
            mg1_ps_fct(1e6, 1.0, 10e9)
        with pytest.raises(ValueError):
            mg1_ps_fct(0, 0.5, 10e9)

    def test_distribution_prediction(self):
        sizes = np.full(1000, 1e6)
        samples = predict_fct_distribution(sizes, 0.5, 10e9, jitter=0.3,
                                           rng=np.random.default_rng(0))
        assert samples.shape == (1000,)
        # lognormal jitter with mean-one correction keeps the mean close to the model
        assert samples.mean() == pytest.approx(mg1_ps_fct(1e6, 0.5, 10e9), rel=0.1)

    def test_distribution_no_jitter(self):
        sizes = [1e6, 2e6]
        out = predict_fct_distribution(sizes, 0.2, 10e9, jitter=0.0)
        assert out[1] == pytest.approx(2 * out[0])
