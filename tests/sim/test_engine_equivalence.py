"""Engine/reference equivalence: the vectorized flow engine must reproduce the scalar
reference simulator *record for record* — flow ids, hops, path-switch and
congestion-episode counts exactly; completion times and throughputs to 1e-9 relative —
across every simcommon stack, multiple topologies, and the simulator's edge paths
(same-router flows, single-path flows, sprayed flows, the max-events drain)."""

import numpy as np
import pytest

from repro.core.loadbalance import EcmpSelector, FlowletSelector
from repro.experiments.simcommon import STACKS, build_stack
from repro.routing import EcmpRouting
from repro.sim.engine import SimCell, simulate_many
from repro.sim.faults import FaultSchedule, sample_link_faults
from repro.sim.flowsim import FlowSimConfig, simulate_workload
from repro.topologies import comparable_configurations, star
from repro.topologies.configs import SizeClass
from repro.traffic.flows import Flow, Workload, poisson_workload, uniform_size_workload
from repro.traffic.patterns import random_permutation


TOPOLOGY_NAMES = ("SF", "HX3")


def assert_equivalent(reference, engine):
    """Record-for-record comparison with the tolerances of the acceptance criteria."""
    assert len(reference) == len(engine)
    assert reference.meta["events"] == engine.meta["events"]
    for ref, eng in zip(reference.records, engine.records):
        assert ref.flow_id == eng.flow_id
        assert ref.source == eng.source
        assert ref.destination == eng.destination
        assert ref.size_bytes == eng.size_bytes
        assert ref.path_hops == eng.path_hops
        assert ref.num_path_switches == eng.num_path_switches
        assert ref.congestion_events == eng.congestion_events
        assert ref.start_time == eng.start_time
        assert eng.completion_time == pytest.approx(ref.completion_time, rel=1e-9)
        assert eng.throughput == pytest.approx(ref.throughput, rel=1e-9)


def run_both(topology, stack_name, workload, mapping=None, config=None, seed=0):
    """One workload under freshly built identical stacks on both implementations."""
    results = []
    for engine in ("reference", "engine"):
        stack = build_stack(topology, stack_name, seed=seed)
        results.append(simulate_workload(
            topology, stack.routing, workload, selector=stack.selector,
            transport=stack.transport, config=config, mapping=mapping, seed=seed,
            engine=engine))
    return results


@pytest.fixture(scope="module")
def topologies():
    return comparable_configurations(SizeClass.TINY, topologies=list(TOPOLOGY_NAMES), seed=0)


@pytest.fixture(scope="module")
def workloads(topologies):
    out = {}
    for name, topo in topologies.items():
        rng = np.random.default_rng(0)
        pattern = random_permutation(topo.num_endpoints, rng).subsample(0.3, rng)
        out[name] = {
            "uniform": uniform_size_workload(pattern, 512 * 1024),
            "poisson": poisson_workload(pattern, 300.0, 0.01, rng=np.random.default_rng(2)),
        }
    return out


class TestAllStacks:
    """The acceptance grid: every simcommon stack on at least two topologies."""

    @pytest.mark.parametrize("stack_name", STACKS)
    @pytest.mark.parametrize("topo_name", TOPOLOGY_NAMES)
    def test_uniform_workload(self, topologies, workloads, topo_name, stack_name):
        reference, engine = run_both(topologies[topo_name], stack_name,
                                     workloads[topo_name]["uniform"])
        assert_equivalent(reference, engine)

    @pytest.mark.parametrize("stack_name", ["fatpaths", "ndp", "ecmp"])
    @pytest.mark.parametrize("topo_name", TOPOLOGY_NAMES)
    def test_poisson_arrivals(self, topologies, workloads, topo_name, stack_name):
        reference, engine = run_both(topologies[topo_name], stack_name,
                                     workloads[topo_name]["poisson"])
        assert_equivalent(reference, engine)

    def test_with_random_mapping(self, topologies, workloads):
        topo = topologies["SF"]
        mapping = np.random.default_rng(5).permutation(topo.num_endpoints)
        reference, engine = run_both(topo, "fatpaths", workloads["SF"]["uniform"],
                                     mapping=mapping)
        assert_equivalent(reference, engine)


class TestEdgePaths:
    def test_same_router_flows(self, topologies):
        """Endpoints on one router take the synthetic single-hop candidate."""
        topo = topologies["SF"]
        workload = Workload([Flow(0.0, 0, 1, 1e6), Flow(0.0, 2, 40, 2e6)])
        reference, engine = run_both(topo, "fatpaths", workload)
        assert_equivalent(reference, engine)
        assert reference.records[0].path_hops == 1

    def test_single_path_flows(self, topologies):
        """A max_paths=1 routing never offers alternatives, so no switches happen."""
        topo = topologies["SF"]
        workload = uniform_size_workload(
            random_permutation(topo.num_endpoints,
                               np.random.default_rng(1)).subsample(0.2,
                                                                   np.random.default_rng(2)),
            256 * 1024)
        results = []
        for engine in ("reference", "engine"):
            routing = EcmpRouting(topo, max_paths=1, seed=0)
            results.append(simulate_workload(topo, routing, workload,
                                             selector=FlowletSelector(seed=0),
                                             seed=0, engine=engine))
        assert_equivalent(*results)
        assert all(r.num_path_switches == 0 for r in results[1].records)

    def test_sprayed_flows_on_star(self):
        """Packet-spray selector on a crossbar (NDP's home turf)."""
        topo = star(12)
        workload = uniform_size_workload(
            random_permutation(topo.num_endpoints, np.random.default_rng(3)), 128 * 1024)
        reference, engine = run_both(topo, "ndp", workload)
        assert_equivalent(reference, engine)

    def test_max_events_drain(self, topologies):
        """Hitting the event budget drains remaining flows identically."""
        topo = topologies["SF"]
        workload = uniform_size_workload(
            random_permutation(topo.num_endpoints,
                               np.random.default_rng(1)).subsample(0.2,
                                                                   np.random.default_rng(2)),
            512 * 1024)
        config = FlowSimConfig(max_events=3)
        reference, engine = run_both(topo, "fatpaths", workload, config=config)
        assert_equivalent(reference, engine)
        assert reference.meta["events"] == 3
        assert len(reference) == len(workload)   # every flow still produces a record

    def test_ecmp_selector_static_paths(self, topologies):
        """Hash-based selector: no RNG at all, still pinned."""
        topo = topologies["HX3"]
        workload = uniform_size_workload(
            random_permutation(topo.num_endpoints,
                               np.random.default_rng(7)).subsample(0.3,
                                                                   np.random.default_rng(8)),
            1024 * 1024)
        results = []
        for engine in ("reference", "engine"):
            routing = EcmpRouting(topo, max_paths=8, seed=0)
            results.append(simulate_workload(topo, routing, workload,
                                             selector=EcmpSelector(seed=0),
                                             seed=0, engine=engine))
        assert_equivalent(*results)


class TestSimulateMany:
    def test_batch_equals_sequential_runs(self, topologies, workloads):
        """simulate_many cells reproduce the equivalent sequence of single runs,
        including selector RNG state shared across cells of one stack."""
        topo = topologies["SF"]
        workload_a = workloads["SF"]["uniform"]
        workload_b = workloads["SF"]["poisson"]

        stack = build_stack(topo, "fatpaths", seed=0)
        sequential = [simulate_workload(topo, stack.routing, wl, selector=stack.selector,
                                        transport=stack.transport, seed=0)
                      for wl in (workload_a, workload_b)]

        stack2 = build_stack(topo, "fatpaths", seed=0)
        cells = [SimCell(topology=topo, routing=stack2.routing, workload=wl,
                         selector=stack2.selector, transport=stack2.transport, seed=0)
                 for wl in (workload_a, workload_b)]
        batched = simulate_many(cells)
        for seq, bat in zip(sequential, batched):
            assert_equivalent(seq, bat)

    def test_reference_escape_hatch(self, topologies, workloads):
        topo = topologies["SF"]
        stack = build_stack(topo, "ecmp", seed=0)
        cells = [SimCell(topology=topo, routing=stack.routing,
                         workload=workloads["SF"]["uniform"], selector=stack.selector,
                         transport=stack.transport, seed=0)]
        (result,) = simulate_many(cells, engine="reference")
        assert result.meta["engine"] == "reference"

    def test_unknown_engine_rejected(self, topologies, workloads):
        with pytest.raises(ValueError):
            simulate_many([], engine="warp-drive")
        with pytest.raises(ValueError):
            simulate_workload(next(iter(topologies.values())), None,
                              workloads["SF"]["uniform"], engine="warp-drive")

    def test_non_weakrefable_routing_gets_private_bank(self, topologies):
        """Routings that cannot be weak-referenced still work (private bank)."""
        from repro.sim.engine import candidate_bank_for, link_space_for

        class SlottedRouting:
            __slots__ = ()

        links = link_space_for(topologies["SF"])
        bank = candidate_bank_for(SlottedRouting(), links)
        other = candidate_bank_for(SlottedRouting(), links)
        assert bank is not other
        assert bank.links is links


class TestFaultedRuns:
    """The equivalence grid extended to fault schedules: link outages, switch
    outages (forcing stalls and revivals) and never-restored failures must keep
    the engine record-for-record identical to the scalar reference, including
    the fault meta counters."""

    @staticmethod
    def _fault_meta_equal(reference, engine):
        for key in ("fault_events", "reroutes", "stalls"):
            assert reference.meta[key] == engine.meta[key]

    @pytest.mark.parametrize("stack_name", STACKS)
    @pytest.mark.parametrize("topo_name", TOPOLOGY_NAMES)
    def test_link_outage_with_restore(self, topologies, workloads, topo_name,
                                      stack_name):
        """A sampled fraction of links fails mid-transfer and is restored later."""
        topo = topologies[topo_name]
        schedule = sample_link_faults(topo, 0.1, 0.0004, 0.0012,
                                      np.random.default_rng(11))
        config = FlowSimConfig(faults=schedule)
        reference, engine = run_both(topo, stack_name,
                                     workloads[topo_name]["uniform"], config=config)
        assert_equivalent(reference, engine)
        self._fault_meta_equal(reference, engine)
        # at least the fail epoch fires; the restore may land after the last
        # completion, in which case neither implementation processes it
        assert reference.meta["fault_events"] >= 1

    @pytest.mark.parametrize("stack_name", ["fatpaths", "ndp", "ecmp", "letflow"])
    def test_switch_outage_forces_stalls(self, topologies, stack_name):
        """Killing a whole switch mid-run disconnects some pairs entirely: flows
        stall (rate zero, out of the allocation) and revive on restore."""
        topo = topologies["SF"]
        rng = np.random.default_rng(4)
        workload = uniform_size_workload(
            random_permutation(topo.num_endpoints, rng).subsample(0.5, rng),
            512 * 1024)
        dur = 512 * 1024 / (10e9 / 8) * 4
        config = FlowSimConfig(
            faults=FaultSchedule.switch_outage([0], 0.3 * dur, 0.6 * dur))
        reference, engine = run_both(topo, stack_name, workload, config=config)
        assert_equivalent(reference, engine)
        self._fault_meta_equal(reference, engine)
        assert reference.meta["stalls"] > 0

    def test_no_restore_drains_identically(self, topologies, workloads):
        """Failures that never heal: displaced flows finish on detours (or stay
        stalled until the max-events drain) the same way in both implementations."""
        topo = topologies["HX3"]
        schedule = FaultSchedule.switch_outage([1], 0.0003)
        config = FlowSimConfig(faults=schedule)
        reference, engine = run_both(topo, "fatpaths", workloads["HX3"]["uniform"],
                                     config=config)
        assert_equivalent(reference, engine)
        self._fault_meta_equal(reference, engine)

    def test_zero_impact_schedule_matches_unfaulted(self, topologies, workloads):
        """A schedule whose outage window opens after the last completion leaves
        every record identical to the never-faulted run (RNG-stream parity)."""
        topo = topologies["SF"]
        schedule = FaultSchedule.link_outage([(0, 1)], 10.0, 20.0)
        plain_ref, plain_eng = run_both(topo, "fatpaths",
                                        workloads["SF"]["uniform"])
        fault_ref, fault_eng = run_both(topo, "fatpaths",
                                        workloads["SF"]["uniform"],
                                        config=FlowSimConfig(faults=schedule))
        assert_equivalent(plain_ref, fault_eng)
        assert_equivalent(fault_ref, plain_eng)
        assert fault_ref.meta["reroutes"] == 0
        assert fault_ref.meta["stalls"] == 0

    def test_incremental_allocator_under_faults(self, topologies, workloads):
        """The dirty-component allocator survives fault-driven removals/revivals
        and still matches the scalar reference."""
        topo = topologies["SF"]
        schedule = sample_link_faults(topo, 0.1, 0.0004, 0.0012,
                                      np.random.default_rng(11))
        stack = build_stack(topo, "fatpaths", seed=0)
        reference = simulate_workload(
            topo, stack.routing, workloads["SF"]["uniform"],
            selector=stack.selector, transport=stack.transport,
            config=FlowSimConfig(faults=schedule), seed=0, engine="reference")
        stack2 = build_stack(topo, "fatpaths", seed=0)
        engine = simulate_workload(
            topo, stack2.routing, workloads["SF"]["uniform"],
            selector=stack2.selector, transport=stack2.transport,
            config=FlowSimConfig(faults=schedule, allocator="incremental"),
            seed=0, engine="engine")
        assert_equivalent(reference, engine)
        self._fault_meta_equal(reference, engine)
