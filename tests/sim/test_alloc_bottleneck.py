"""Bottleneck-structure allocator suite (`repro.sim.bottleneck`).

The generic refiltering contract (randomized event sequences, 1e-9 agreement,
identical saturation sets, certificate) runs in
``tests/sim/test_alloc_incremental.py`` with ``challenger="bottleneck"``.  This
file covers what is *specific* to the bottleneck structure: the public
:func:`repro.sim.fairshare.bottleneck_levels` helper on hand-built incidences,
the two propagation patterns a naive level-splice gets wrong (downstream closure
and newly-saturated expansion), cache-consistency invariants under churn and
compaction, and engine-level agreement including faulted runs.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from test_alloc_incremental import SyntheticFlows

from repro.experiments.simcommon import build_stack
from repro.sim.allocstate import AllocationState, FullAllocator
from repro.sim.bottleneck import BottleneckAllocator
from repro.sim.fairshare import (
    bottleneck_certificate,
    bottleneck_levels,
    max_min_fair_rates,
)
from repro.sim.faults import FaultSchedule
from repro.sim.flowsim import FlowSimConfig, simulate_workload
from repro.topologies import comparable_configurations
from repro.topologies.configs import SizeClass
from repro.traffic.flows import poisson_workload
from repro.traffic.patterns import incast_pattern, random_permutation


# ----------------------------------------------------------- bottleneck_levels
class TestBottleneckLevels:
    def test_star_two_tiers(self):
        """Hub shared by three flows; one flow's thin private link freezes first."""
        #         hub  p0    p1    p2
        caps = [3.0, 10.0, 10.0, 0.5]
        links = np.array([0, 1, 0, 2, 0, 3])
        flows = np.array([0, 0, 1, 1, 2, 2])
        levels, rates = bottleneck_levels(links, flows, np.asarray(caps))
        # flow 2 freezes at 0.5 on its private link (level 0); the hub then
        # splits its remaining 2.5 between flows 0 and 1 (level 1 at 1.25)
        assert list(levels) == [1, -1, -1, 0]
        np.testing.assert_allclose(rates, [0.5, 1.25])

    def test_chain_staircase(self):
        """A chain of increasing capacities saturates front to back."""
        caps = np.array([1.0, 2.0, 3.0, 4.0])
        links = np.array([0, 1, 1, 2, 2, 3])
        flows = np.array([0, 0, 1, 1, 2, 2])
        levels, rates = bottleneck_levels(links, flows, caps)
        assert list(levels) == [0, 0, 1, -1]
        np.testing.assert_allclose(rates, [1.0, 2.0])

    def test_disjoint_saturation_tiers(self):
        """Disconnected groups still tier globally by saturation round."""
        caps = np.array([1.0, 10.0, 100.0, 100.0])
        links = np.array([0, 0, 1, 1])
        flows = np.array([0, 1, 2, 3])
        levels, rates = bottleneck_levels(links, flows, caps)
        assert list(levels) == [0, 1, -1, -1]
        np.testing.assert_allclose(rates, [0.5, 5.0])

    def test_zero_capacity_link_is_level_zero(self):
        caps = np.array([0.0, 5.0])
        links = np.array([0, 1])
        flows = np.array([0, 0])
        levels, rates = bottleneck_levels(links, flows, caps)
        assert levels[0] == 0 and rates[0] == 0.0

    def test_empty_incidence(self):
        levels, rates = bottleneck_levels(np.empty(0, dtype=np.int64),
                                          np.empty(0, dtype=np.int64),
                                          np.ones(4))
        assert list(levels) == [-1, -1, -1, -1] and rates.size == 0

    def test_rejects_out_of_range_links(self):
        with pytest.raises(ValueError):
            bottleneck_levels(np.array([5]), np.array([0]), np.ones(3))

    @given(seed=st.integers(0, 2_000))
    @settings(max_examples=30, deadline=None)
    def test_levels_tier_the_max_min_rates(self, seed):
        """level_rates is non-decreasing and every saturated link's bottlenecked
        flows run at exactly its level's rate."""
        rng = np.random.default_rng(seed)
        num_links, num_flows = 12, 9
        caps = rng.uniform(1.0, 8.0, size=num_links)
        paths = [list(rng.choice(num_links, size=int(rng.integers(1, 4)),
                                 replace=False)) for _ in range(num_flows)]
        entry_links = np.concatenate([np.asarray(p) for p in paths])
        entry_flows = np.repeat(np.arange(num_flows), [len(p) for p in paths])
        levels, level_rates = bottleneck_levels(entry_links, entry_flows, caps)
        assert np.all(np.diff(level_rates) >= 0)
        assert levels.max() == level_rates.size - 1
        rates = max_min_fair_rates(paths, caps)
        for link in np.flatnonzero(levels >= 0):
            on_link = entry_flows[entry_links == link]
            # the *bottlenecked* flows of a saturated link run at its level rate
            assert rates[on_link].max() == \
                pytest.approx(level_rates[levels[link]], rel=1e-9)


# ------------------------------------------------- propagation counterexamples
def _lockstep(num_flows, caps):
    """A (full, bottleneck) allocator pair over the same capacities."""
    caps = np.asarray(caps, dtype=np.float64)
    line = float(caps.max())
    full = FullAllocator(AllocationState(num_flows, caps.size), caps, line)
    bot = BottleneckAllocator(AllocationState(num_flows, caps.size), caps, line)
    return full, bot


def _recompute(full, bot, active, rates_full, rates_bot):
    active = np.asarray(sorted(active), dtype=np.int64)
    full.recompute(active, rates_full)
    bot.recompute(active, rates_bot)
    np.testing.assert_allclose(rates_bot[active], rates_full[active],
                               rtol=1e-9, atol=1e-9)


def _assert_structure_consistent(bot, rates, num_links):
    """The maintained loads/saturation must match the live incidence exactly."""
    links, slots = bot.state.live_entries()
    loads = np.bincount(links, weights=rates[slots], minlength=num_links)
    np.testing.assert_allclose(bot.link_load, loads, rtol=1e-9, atol=1e-9)
    caps = bot.capacities
    saturated = loads >= caps * (1.0 - 1e-7)
    assert (bot.sat_mask == saturated).all()
    assert bottleneck_certificate(links, slots, rates, caps, rtol=1e-7).size == 0


class TestDownstreamPropagation:
    """The two couplings a naive 'splice upstream levels' scheme would miss."""

    def _bystanders(self, full, bot, caps, start_slot, count, first_link):
        """Disjoint two-link flows that pad the active set (so the dense-delta
        full-fill guard does not mask the local-refill path under test)."""
        slots = []
        for i in range(count):
            slot = start_slot + i
            links = np.array([first_link + 2 * i, first_link + 2 * i + 1])
            full.add(slot, links, 2)
            bot.add(slot, links, 2)
            slots.append(slot)
        return slots

    def test_arrivals_on_slack_link_squeeze_upstream_flow(self):
        """New flows saturate a link that was slack — the old flow bottlenecked
        *elsewhere* must be pulled in and squeezed (expansion round)."""
        # link 0: thin private link (cap 2); link 1: big shared link (cap 10);
        # links 2..10: private links of the nine arrivals; 11..: bystanders
        caps = np.concatenate([[2.0, 10.0], np.full(9, 100.0),
                               np.full(28, 50.0)])
        full, bot = _lockstep(32, caps)
        rates_full = np.zeros(32)
        rates_bot = np.zeros(32)
        active = [0]
        full.add(0, np.array([0, 1]), 2)
        bot.add(0, np.array([0, 1]), 2)
        active += self._bystanders(full, bot, caps, 1, 14, 11)
        _recompute(full, bot, active, rates_full, rates_bot)
        assert rates_bot[0] == pytest.approx(2.0)     # bottlenecked on link 0
        for i in range(9):                            # nine arrivals on link 1
            slot = 15 + i
            full.add(slot, np.array([1, 2 + i]), 2)
            bot.add(slot, np.array([1, 2 + i]), 2)
            active.append(slot)
        _recompute(full, bot, active, rates_full, rates_bot)
        # link 1 saturates at 10/10: every flow on it (including flow 0, whose
        # own links the event never touched) now runs at 1.0
        np.testing.assert_allclose(rates_bot[[0] + list(range(15, 24))], 1.0,
                                   rtol=1e-9)
        assert bot.counters["expansions"] >= 1
        _assert_structure_consistent(bot, rates_bot, caps.size)

    def test_completion_propagates_through_newly_saturated_link(self):
        """A completion frees capacity; the refilled flow's rise saturates a
        previously-slack shared link and drags a third flow down with it."""
        # link 0: cap 2 (two flows), link 1: cap 2.5 (slack), link 2: cap 1.4,
        # link 3: cap 100, links 4..: bystanders
        caps = np.concatenate([[2.0, 2.5, 1.4, 100.0], np.full(12, 50.0)])
        full, bot = _lockstep(16, caps)
        rates_full = np.zeros(16)
        rates_bot = np.zeros(16)
        full.add(0, np.array([0, 1]), 2)   # squeezed on link 0, crosses link 1
        bot.add(0, np.array([0, 1]), 2)
        full.add(1, np.array([0, 3]), 2)   # shares link 0, completes below
        bot.add(1, np.array([0, 3]), 2)
        full.add(2, np.array([1, 2]), 2)   # bottlenecked on link 2 at 1.4
        bot.add(2, np.array([1, 2]), 2)
        active = [0, 1, 2] + self._bystanders(full, bot, caps, 3, 6, 4)
        _recompute(full, bot, active, rates_full, rates_bot)
        assert rates_bot[0] == pytest.approx(1.0)
        assert rates_bot[2] == pytest.approx(1.4)
        full.remove(1)
        bot.remove(1)
        active.remove(1)
        _recompute(full, bot, active, rates_full, rates_bot)
        # flow 0 would take 2.0, but link 1 (slack before the event, untouched
        # by it) saturates at 2.5 and caps both flows at 1.25
        assert rates_bot[0] == pytest.approx(1.25)
        assert rates_bot[2] == pytest.approx(1.25)
        assert bot.counters["expansions"] >= 1
        _assert_structure_consistent(bot, rates_bot, caps.size)


# ------------------------------------------------------------- cache invariants
class TestStructureInvariants:
    @given(seed=st.integers(0, 5_000))
    @settings(max_examples=20, deadline=None)
    def test_loads_and_saturation_track_the_incidence(self, seed):
        """After every event the maintained link loads equal a fresh bincount
        over the live incidence and sat_mask matches true saturation."""
        rng = np.random.default_rng(seed)
        sim = SyntheticFlows(rng, num_links=24, num_flows=24,
                             challenger="bottleneck")
        pending = list(range(24))
        rng.shuffle(pending)
        for _ in range(60):
            roll = rng.random()
            if pending and (roll < 0.45 or not sim.active):
                sim.add(pending.pop(), cand=int(rng.integers(0, 3)))
            elif sim.active and roll < 0.75:
                sim.switch(int(rng.choice(sim.active)), int(rng.integers(0, 3)))
            elif sim.active:
                sim.remove(int(rng.choice(sim.active)))
            if sim.recompute().size:
                _assert_structure_consistent(sim.incremental, sim.rates_inc,
                                             sim.num_links)

    def test_compaction_churn_preserves_agreement(self):
        """Heavy churn drives pool compaction under the bottleneck caches."""
        rng = np.random.default_rng(7)
        sim = SyntheticFlows(rng, num_links=20, num_flows=36, max_mids=6,
                             challenger="bottleneck")
        for slot in range(24):
            sim.add(slot)
        sim.recompute()
        for slot in range(20):
            sim.remove(slot)
            sim.recompute()
            sim.check_agreement()
        for slot in range(24, 36):
            sim.add(slot)
            sim.recompute()
            sim.check_agreement()
        _assert_structure_consistent(sim.incremental, sim.rates_inc,
                                     sim.num_links)

    def test_forced_rebuild_is_a_fixed_point(self):
        """An explicit structure rebuild must not change any cached quantity."""
        rng = np.random.default_rng(11)
        sim = SyntheticFlows(rng, num_links=24, num_flows=20,
                             challenger="bottleneck")
        for slot in range(16):
            sim.add(slot)
            sim.recompute()
        sim.check_agreement()
        bot = sim.incremental
        before_rates = sim.rates_inc.copy()
        before_load = bot.link_load.copy()
        before_sat = bot.sat_mask.copy()
        active = np.asarray(sorted(sim.active), dtype=np.int64)
        bot._rebuild(active, sim.rates_inc)
        np.testing.assert_allclose(sim.rates_inc, before_rates,
                                   rtol=1e-9, atol=1e-9)
        np.testing.assert_allclose(bot.link_load, before_load,
                                   rtol=1e-9, atol=1e-9)
        assert (bot.sat_mask == before_sat).all()
        # rebuild prunes member lists down to exactly the live incidence
        links, slots = bot.state.live_entries()
        for link, members in bot.link_members.items():
            expected = np.unique(slots[links == link]).tolist()
            assert members == expected
        sim.check_agreement()


# ------------------------------------------------------------------ engine level
class TestEngineBottleneck:
    @pytest.fixture(scope="class")
    def topo(self):
        return comparable_configurations(SizeClass.TINY, topologies=["SF"],
                                         seed=0)["SF"]

    def _run(self, topo, workload, allocator, stack_name="ecmp", faults=None):
        stack = build_stack(topo, stack_name, seed=0)
        return simulate_workload(topo, stack.routing, workload,
                                 selector=stack.selector, transport=stack.transport,
                                 config=FlowSimConfig(allocator=allocator,
                                                      faults=faults), seed=0)

    def _incast(self, topo, pattern_seed=0, flow_seed=1):
        rng = np.random.default_rng(pattern_seed)
        pattern = incast_pattern(topo.num_endpoints, num_hotspots=4, fanin=8,
                                 rng=rng, disjoint_senders=True)
        return poisson_workload(pattern, 400.0, 0.01,
                                rng=np.random.default_rng(flow_seed),
                                fixed_size=128 * 1024)

    def test_staggered_incast_matches_full(self, topo):
        workload = self._incast(topo)
        full = self._run(topo, workload, "full")
        bot = self._run(topo, workload, "bottleneck")
        assert bot.meta["allocator"] == "bottleneck"
        assert len(full) == len(bot)
        for f, b in zip(full.records, bot.records):
            assert f.flow_id == b.flow_id
            assert b.completion_time == pytest.approx(f.completion_time, rel=1e-6)
        stats = bot.meta["allocator_stats"]
        assert stats["refills"] > 0 and stats["rebuilds"] >= 1
        assert full.meta["allocator_stats"]["full_fills"] > 0

    def test_permutation_workload_matches_full(self, topo):
        rng = np.random.default_rng(2)
        pattern = random_permutation(topo.num_endpoints, rng).subsample(0.3, rng)
        workload = poisson_workload(pattern, 300.0, 0.01,
                                    rng=np.random.default_rng(3))
        full = self._run(topo, workload, "full")
        bot = self._run(topo, workload, "bottleneck")
        for f, b in zip(full.records, bot.records):
            assert b.completion_time == pytest.approx(f.completion_time, rel=1e-6)

    def test_adaptive_stack_aggregates_agree(self, topo):
        workload = self._incast(topo, pattern_seed=4, flow_seed=5)
        full = self._run(topo, workload, "full", stack_name="fatpaths")
        bot = self._run(topo, workload, "bottleneck", stack_name="fatpaths")
        fct_full = np.array([r.completion_time - r.start_time
                             for r in full.records])
        fct_bot = np.array([r.completion_time - r.start_time
                            for r in bot.records])
        assert fct_bot.mean() == pytest.approx(fct_full.mean(), rel=1e-2)
        assert np.median(fct_bot) == pytest.approx(np.median(fct_full), rel=1e-2)

    def test_faulted_run_matches_full(self, topo):
        """Outage + recovery epochs (displacements, stalls, revivals) keep the
        faulted trajectory pinned to the full allocator on a static stack."""
        workload = self._incast(topo, pattern_seed=6, flow_seed=7)
        faults = FaultSchedule.link_outage(topo.edges[:3], 2e-4,
                                           restore_time=6e-4)
        full = self._run(topo, workload, "full", faults=faults)
        bot = self._run(topo, workload, "bottleneck", faults=faults)
        for key in ("fault_events", "reroutes", "stalls"):
            assert full.meta[key] == bot.meta[key]
        assert full.meta["fault_events"] >= 1
        assert len(full) == len(bot)
        for f, b in zip(full.records, bot.records):
            assert f.flow_id == b.flow_id
            assert b.completion_time == pytest.approx(f.completion_time, rel=1e-6)
