"""Tests for the MCF maximum-achievable-throughput LPs."""

import numpy as np
import pytest

from repro.core.config import FatPathsConfig
from repro.core.fatpaths import FatPathsRouting
from repro.mcf.general import Commodity, general_max_throughput
from repro.mcf.layered import path_restricted_max_throughput
from repro.mcf.throughput import commodities_from_pattern, compare_schemes, scheme_max_throughput
from repro.routing import EcmpRouting, KShortestPathsRouting, PastRouting
from repro.topologies.base import Topology
from repro.traffic.patterns import off_diagonal, random_permutation


def ring(n, p=1):
    return Topology("ring", n, [(i, (i + 1) % n) for i in range(n)], p)


class TestCommodity:
    def test_validation(self):
        with pytest.raises(ValueError):
            Commodity(1, 1)
        with pytest.raises(ValueError):
            Commodity(0, 1, demand=0)


class TestGeneralMcf:
    def test_single_commodity_on_path(self):
        # path of 3 routers, one unit of capacity per direction: T = 1
        topo = Topology("path", 3, [(0, 1), (1, 2)], 1)
        result = general_max_throughput(topo, [Commodity(0, 2, 1.0)])
        assert result.throughput == pytest.approx(1.0, abs=1e-6)

    def test_two_commodities_share_a_link(self):
        topo = Topology("path", 3, [(0, 1), (1, 2)], 1)
        commodities = [Commodity(0, 2, 1.0), Commodity(1, 2, 1.0)]
        result = general_max_throughput(topo, commodities)
        # both commodities traverse link (1,2): each gets half
        assert result.throughput == pytest.approx(0.5, abs=1e-6)

    def test_ring_uses_both_directions(self):
        topo = ring(4)
        result = general_max_throughput(topo, [Commodity(0, 2, 1.0)])
        # two disjoint 2-hop paths, one per direction -> T = 2
        assert result.throughput == pytest.approx(2.0, abs=1e-6)

    def test_demand_scaling(self):
        topo = ring(4)
        heavy = general_max_throughput(topo, [Commodity(0, 2, 4.0)])
        light = general_max_throughput(topo, [Commodity(0, 2, 1.0)])
        assert heavy.throughput == pytest.approx(light.throughput / 4, abs=1e-6)

    def test_empty_commodities_rejected(self):
        with pytest.raises(ValueError):
            general_max_throughput(ring(4), [])


class TestPathRestrictedMcf:
    def test_single_path_routing_gets_single_path_throughput(self):
        topo = ring(6)
        past = PastRouting(topo, seed=0)
        result = path_restricted_max_throughput(topo, [Commodity(0, 3, 1.0)], past)
        # PAST uses one 3-hop path -> T = 1 (capacity of that path)
        assert result.throughput == pytest.approx(1.0, abs=1e-6)

    def test_multipath_beats_single_path(self):
        topo = ring(6)
        ksp = KShortestPathsRouting(topo, k=4)
        past = PastRouting(topo, seed=0)
        commodities = [Commodity(0, 3, 1.0)]
        multi = path_restricted_max_throughput(topo, commodities, ksp).throughput
        single = path_restricted_max_throughput(topo, commodities, past).throughput
        assert multi == pytest.approx(2.0, abs=1e-6)
        assert multi > single

    def test_restricted_never_exceeds_general(self, sf_tiny):
        rng = np.random.default_rng(0)
        pattern = random_permutation(sf_tiny.num_endpoints, rng)
        commodities = commodities_from_pattern(sf_tiny, pattern, max_commodities=25, rng=rng)
        general = general_max_throughput(sf_tiny, commodities).throughput
        fatpaths = FatPathsRouting(sf_tiny, FatPathsConfig(num_layers=5, rho=0.7, seed=0))
        restricted = path_restricted_max_throughput(sf_tiny, commodities, fatpaths).throughput
        assert restricted <= general + 1e-6
        assert restricted > 0

    def test_fatpaths_beats_single_shortest_path_on_slimfly(self, sf_tiny):
        """The paper's core claim (Fig 9): layered non-minimal routing achieves higher
        worst-case throughput than single-(shortest-)path schemes on Slim Fly."""
        rng = np.random.default_rng(1)
        pattern = random_permutation(sf_tiny.num_endpoints, rng)
        commodities = commodities_from_pattern(sf_tiny, pattern, max_commodities=30, rng=rng)
        fatpaths = FatPathsRouting(sf_tiny, FatPathsConfig(num_layers=6, rho=0.7, seed=0))
        past = PastRouting(sf_tiny, seed=0)
        t_fp = path_restricted_max_throughput(sf_tiny, commodities, fatpaths).throughput
        t_past = path_restricted_max_throughput(sf_tiny, commodities, past).throughput
        assert t_fp >= t_past - 1e-9
        assert t_fp > 0

    def test_empty_commodities_rejected(self, sf_tiny):
        with pytest.raises(ValueError):
            path_restricted_max_throughput(sf_tiny, [], EcmpRouting(sf_tiny))


class TestThroughputHarness:
    def test_commodities_aggregate_demand(self, sf_tiny):
        p = sf_tiny.concentration
        pattern = off_diagonal(sf_tiny.num_endpoints, p)  # router i -> router i+1 for all endpoints
        commodities = commodities_from_pattern(sf_tiny, pattern)
        assert all(c.demand == p for c in commodities)

    def test_commodities_drop_same_router_pairs(self, sf_tiny):
        pattern = off_diagonal(sf_tiny.num_endpoints, 1)  # mostly same-router neighbours
        commodities = commodities_from_pattern(sf_tiny, pattern)
        assert all(c.source != c.target for c in commodities)

    def test_max_commodities_subsample(self, sf_tiny):
        pattern = random_permutation(sf_tiny.num_endpoints, np.random.default_rng(0))
        commodities = commodities_from_pattern(sf_tiny, pattern, max_commodities=10)
        assert len(commodities) <= 10

    def test_scheme_none_is_general_bound(self):
        topo = ring(4)
        pattern = off_diagonal(4, 2)
        commodities = commodities_from_pattern(topo, pattern)
        assert scheme_max_throughput(topo, commodities, None) > 0

    def test_compare_schemes_returns_all_names(self, sf_tiny):
        pattern = random_permutation(sf_tiny.num_endpoints, np.random.default_rng(2))
        schemes = {
            "optimal": None,
            "ecmp": EcmpRouting(sf_tiny, seed=0),
            "past": PastRouting(sf_tiny, seed=0),
        }
        results = compare_schemes(sf_tiny, pattern, schemes, max_commodities=20)
        assert set(results) == set(schemes)
        assert results["optimal"] >= results["ecmp"] - 1e-9
        assert results["optimal"] >= results["past"] - 1e-9
