"""Unit tests for the CSR graph representation, batched BFS and the path cache."""

import numpy as np
import pytest

from repro.kernels import (
    CSRGraph,
    PathCache,
    edges_connected,
    fingerprint_edges,
    global_cache,
    kernels_for,
    layer_kernels,
    reachable_within,
    shortest_path_counts,
    shortest_path_dag_children,
    walk_count_matrix,
)
from repro.topologies.base import Topology


def path_graph(n):
    return CSRGraph.from_edges(n, [(i, i + 1) for i in range(n - 1)])


class TestCSRGraph:
    def test_from_edges_builds_sorted_neighbours(self):
        csr = CSRGraph.from_edges(4, [(2, 0), (0, 1), (1, 3)])
        assert csr.num_edges == 3
        assert list(csr.indices[csr.indptr[0]:csr.indptr[1]]) == [1, 2]
        assert list(csr.degrees()) == [2, 2, 1, 1]

    def test_empty_edge_list(self):
        csr = CSRGraph.from_edges(3, [])
        assert csr.num_edges == 0
        assert not csr.is_connected()
        dist = csr.bfs_distances_batch([0])[0]
        assert list(dist) == [0, -1, -1]

    def test_single_vertex_graph_is_connected(self):
        csr = CSRGraph.from_edges(1, [])
        assert csr.is_connected()
        assert list(csr.distance_matrix().ravel()) == [0]

    def test_isolated_vertex(self):
        csr = CSRGraph.from_edges(4, [(0, 1), (1, 2)])
        assert not csr.is_connected()
        dist = csr.bfs_distances_batch([3])[0]
        assert list(dist) == [-1, -1, -1, 0]

    def test_batched_bfs_matches_per_source(self):
        csr = path_graph(6)
        batch = csr.bfs_distances_batch([0, 3, 5])
        for row, src in zip(batch, [0, 3, 5]):
            single = csr.bfs_distances_batch([src])[0]
            assert (row == single).all()

    def test_duplicate_sources_allowed(self):
        csr = path_graph(4)
        batch = csr.bfs_distances_batch([2, 2])
        assert (batch[0] == batch[1]).all()

    def test_source_out_of_range_raises(self):
        with pytest.raises(ValueError):
            path_graph(3).bfs_distances_batch([3])
        with pytest.raises(ValueError):
            path_graph(3).bfs_distances_batch([-1])

    def test_distance_matrix_symmetric(self):
        csr = path_graph(5)
        mat = csr.distance_matrix()
        assert (mat == mat.T).all()
        assert mat[0, 4] == 4

    def test_multi_source_distances(self):
        csr = path_graph(7)
        dist = csr.multi_source_distances([0, 6])
        assert list(dist) == [0, 1, 2, 3, 2, 1, 0]

    def test_multi_source_empty_sources(self):
        dist = path_graph(3).multi_source_distances([])
        assert list(dist) == [-1, -1, -1]

    def test_edges_connected_helper(self):
        assert edges_connected(3, [(0, 1), (1, 2)])
        assert not edges_connected(3, [(0, 1)])
        assert edges_connected(1, [])


class TestPathKernels:
    def test_walk_count_matrix_is_power(self):
        csr = path_graph(4)
        a1 = walk_count_matrix(csr, 1)
        a2 = walk_count_matrix(csr, 2)
        assert (a2 == a1 @ a1).all()

    def test_walk_count_rejects_bad_length(self):
        with pytest.raises(ValueError):
            walk_count_matrix(path_graph(3), 0)

    def test_shortest_path_counts_cycle(self):
        # a 4-cycle: opposite corners have 2 shortest paths, neighbours 1
        csr = CSRGraph.from_edges(4, [(0, 1), (1, 2), (2, 3), (0, 3)])
        counts = shortest_path_counts(csr)
        assert counts[0, 2] == 2
        assert counts[0, 1] == 1
        assert counts[0, 0] == 0

    def test_shortest_path_counts_disconnected(self):
        csr = CSRGraph.from_edges(4, [(0, 1)])
        counts = shortest_path_counts(csr)
        assert counts[0, 2] == 0 and counts[2, 3] == 0

    def test_dag_children(self):
        csr = CSRGraph.from_edges(4, [(0, 1), (1, 2), (2, 3), (0, 3)])
        dist_to_3 = csr.bfs_distances_batch([3])[0]
        children = shortest_path_dag_children(dist_to_3, csr, 1)
        assert set(int(c) for c in children) == {2, 0}

    def test_reachable_within(self):
        csr = path_graph(5)
        row = csr.bfs_distances_batch([0])[0]
        assert reachable_within(row, 4, 4)
        assert not reachable_within(row, 4, 3)


class TestPathCache:
    def test_fingerprint_distinguishes_graphs(self):
        a = fingerprint_edges(4, [(0, 1)])
        b = fingerprint_edges(4, [(0, 2)])
        c = fingerprint_edges(5, [(0, 1)])
        assert len({a, b, c}) == 3

    def test_same_graph_same_kernels_object(self):
        cache = PathCache()
        k1 = cache.kernels(4, [(0, 1), (1, 2)])
        k2 = cache.kernels(4, [(0, 1), (1, 2)])
        assert k1 is k2
        assert cache.stats()["hits"] == 1

    def test_lru_eviction(self):
        cache = PathCache(maxsize=2)
        cache.kernels(3, [(0, 1)])
        cache.kernels(3, [(1, 2)])
        cache.kernels(3, [(0, 2)])
        assert len(cache) == 2

    def test_rows_are_read_only_but_topology_returns_writable(self):
        topo = Topology("t", 4, [(0, 1), (1, 2), (2, 3)], 1)
        row = kernels_for(topo).distances_from(0)
        with pytest.raises(ValueError):
            row[0] = 99
        writable = topo.bfs_distances(0)
        writable[0] = 99  # legacy contract: callers own the returned array
        assert kernels_for(topo).distances_from(0)[0] == 0

    def test_topology_fingerprint_shared_across_instances(self):
        t1 = Topology("a", 4, [(0, 1), (1, 2)], 1)
        t2 = Topology("b", 4, [(1, 2), (0, 1)], 2)  # same graph, different metadata
        assert t1.fingerprint() == t2.fingerprint()
        assert kernels_for(t1) is kernels_for(t2)

    def test_layer_kernels_keyed_by_index_and_edges(self):
        from repro.core.layers import Layer

        topo = Topology("t", 4, [(0, 1), (1, 2), (2, 3), (0, 3)], 1)
        full = Layer(index=0, edges=frozenset(topo.edges), is_full=True)
        sparse = Layer(index=1, edges=frozenset([(0, 1), (2, 3)]))
        k_full = layer_kernels(topo, full)
        k_sparse = layer_kernels(topo, sparse)
        assert k_full is not k_sparse
        assert layer_kernels(topo, sparse) is k_sparse
        assert k_sparse.distance_matrix()[0, 2] == -1

    def test_global_cache_hits_accumulate(self):
        topo = Topology("t", 3, [(0, 1), (1, 2)], 1)
        before = global_cache().stats()["hits"]
        topo.bfs_distances(0)
        topo.bfs_distances(1)
        assert global_cache().stats()["hits"] >= before + 1


class TestEdgesConnectedBatch:
    def test_matches_scalar_per_candidate(self):
        from repro.kernels import edges_connected_batch

        rng = np.random.default_rng(0)
        n = 9
        candidates = []
        for _ in range(12):
            m = int(rng.integers(0, 14))
            cand = set()
            while len(cand) < m:
                u, v = rng.integers(0, n, size=2)
                if u != v:
                    cand.add((min(int(u), int(v)), max(int(u), int(v))))
            candidates.append(sorted(cand))
        got = edges_connected_batch(n, candidates)
        expected = [edges_connected(n, cand) for cand in candidates]
        assert got.tolist() == expected

    def test_degenerate_inputs(self):
        from repro.kernels import edges_connected_batch

        assert edges_connected_batch(5, []).tolist() == []
        assert edges_connected_batch(1, [[], []]).tolist() == [True, True]
        assert edges_connected_batch(3, [[]]).tolist() == [False]
        assert edges_connected_batch(2, [[(0, 1)], []]).tolist() == [True, False]
