"""Kernel/legacy equivalence: the vectorized CSR engine must reproduce the seed
repository's pure-Python BFS results *exactly* — distances, connectivity, diameters,
shortest-path counts and next-hop sets — on every topology generator and on random
degenerate graphs (isolated routers, empty edge lists, disconnected layers)."""

import functools

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.diversity.matrixcount import count_paths_matrix, count_shortest_paths, next_hop_sets
from repro.kernels import CSRGraph, kernels_for
from repro.kernels import reference as legacy
from repro.topologies import (
    complete_graph,
    dragonfly,
    fat_tree,
    flattened_butterfly,
    hyperx,
    jellyfish,
    slim_fly,
    star,
    xpander,
)
from repro.topologies.base import Topology


@functools.lru_cache(maxsize=None)
def generator_instances():
    """One small instance per topology generator (all families of the paper)."""
    return [
        slim_fly(5),
        dragonfly(2),
        hyperx(2, 3),
        flattened_butterfly(3),
        xpander(4, seed=0),
        fat_tree(4),
        jellyfish(20, 4, 2, seed=0),
        complete_graph(6),
        star(8),
    ]


@pytest.fixture(scope="module", params=range(9))
def topo(request):
    return generator_instances()[request.param]


class TestGeneratorEquivalence:
    def test_bfs_distances_match_legacy(self, topo):
        adj = legacy.adjacency_lists(topo.num_routers, topo.edges)
        for source in range(topo.num_routers):
            expected = legacy.bfs_distances_python(topo.num_routers, adj, source)
            got = topo.bfs_distances(source)
            assert got.dtype == expected.dtype
            assert (got == expected).all()

    def test_distance_matrix_matches_legacy(self, topo):
        expected = legacy.distance_matrix_python(topo.num_routers, topo.edges)
        got = kernels_for(topo).distance_matrix()
        assert (got == expected).all()

    def test_connectivity_matches_legacy(self, topo):
        assert topo.is_connected() == legacy.is_connected_python(topo.num_routers, topo.edges)

    def test_diameter_matches_legacy_eccentricities(self, topo):
        expected = int(legacy.distance_matrix_python(topo.num_routers, topo.edges).max())
        assert topo.diameter() == expected

    def test_average_path_length_matches_legacy(self, topo):
        mat = legacy.distance_matrix_python(topo.num_routers, topo.edges)
        mask = mat > 0
        pairs = int(mask.sum())
        expected = float(mat[mask].sum()) / pairs if pairs else 0.0
        assert topo.average_path_length() == pytest.approx(expected)

    def test_shortest_path_counts_match_legacy(self, topo):
        expected = legacy.count_shortest_paths_python(topo.num_routers, topo.edges)
        assert (count_shortest_paths(topo) == expected).all()

    def test_next_hop_sets_match_legacy(self, topo):
        if topo.num_routers > 40:  # the legacy propagation is O(n^3 deg); keep CI fast
            pytest.skip("legacy next-hop propagation too slow at this size")
        expected = legacy.next_hop_sets_python(topo.num_routers, topo.edges, 3)
        assert next_hop_sets(topo, 3) == expected

    def test_walk_counts_match_dense_power(self, topo):
        adj = np.zeros((topo.num_routers, topo.num_routers), dtype=np.int64)
        for u, v in topo.edges:
            adj[u, v] = 1
            adj[v, u] = 1
        assert (count_paths_matrix(topo, 3) == adj @ adj @ adj).all()


def random_edges(n, m, seed):
    rng = np.random.default_rng(seed)
    edges = set()
    for _ in range(m):
        u, v = rng.integers(0, n, size=2)
        if u != v:
            edges.add((min(int(u), int(v)), max(int(u), int(v))))
    return sorted(edges)


@given(n=st.integers(min_value=1, max_value=40),
       density=st.integers(min_value=0, max_value=3),
       seed=st.integers(min_value=0, max_value=10_000))
@settings(max_examples=60, deadline=None)
def test_random_graph_distances_match_legacy(n, density, seed):
    """Property test over random (often disconnected/degenerate) graphs."""
    edges = random_edges(n, density * n, seed)
    csr = CSRGraph.from_edges(n, edges)
    expected = legacy.distance_matrix_python(n, edges)
    assert (csr.distance_matrix() == expected).all()
    assert csr.is_connected() == legacy.is_connected_python(n, edges)


@given(n=st.integers(min_value=2, max_value=25),
       density=st.integers(min_value=0, max_value=3),
       seed=st.integers(min_value=0, max_value=10_000),
       max_len=st.integers(min_value=1, max_value=4))
@settings(max_examples=40, deadline=None)
def test_random_graph_path_kernels_match_legacy(n, density, seed, max_len):
    edges = random_edges(n, density * n, seed)
    csr = CSRGraph.from_edges(n, edges)
    from repro.kernels.paths import next_hop_sets_from_distances, shortest_path_counts

    dist = csr.distance_matrix()
    assert (shortest_path_counts(csr, dist)
            == legacy.count_shortest_paths_python(n, edges)).all()
    assert (next_hop_sets_from_distances(csr, dist, max_len)
            == legacy.next_hop_sets_python(n, edges, max_len))


@given(n=st.integers(min_value=2, max_value=20),
       density=st.integers(min_value=1, max_value=3),
       seed=st.integers(min_value=0, max_value=10_000),
       max_len=st.integers(min_value=1, max_value=5))
@settings(max_examples=40, deadline=None)
def test_disjoint_path_pruning_matches_unpruned_search(n, density, seed, max_len):
    """The distance-bound pruning in the greedy CDP search must never change results:
    it only skips vertices that provably cannot sit on any qualifying path."""
    from repro.diversity.disjoint_paths import _bfs_path_within

    edges = random_edges(n, density * n, seed)
    topo = Topology("rand", n, edges, 1)
    csr = CSRGraph.from_edges(n, edges)
    rng = np.random.default_rng(seed)
    adj = [set(neigh) for neigh in topo.adjacency()]
    for _ in range(5):
        s, t = rng.integers(0, n, size=2)
        if s == t:
            continue
        bound = csr.multi_source_distances([int(t)])
        pruned = _bfs_path_within(adj, {int(s)}, {int(t)}, max_len, target_distance=bound)
        unpruned = _bfs_path_within(adj, {int(s)}, {int(t)}, max_len)
        assert pruned == unpruned
