"""Kernel/legacy equivalence: the vectorized CSR engine must reproduce the seed
repository's pure-Python BFS results *exactly* — distances, connectivity, diameters,
shortest-path counts and next-hop sets — on every topology generator and on random
degenerate graphs (isolated routers, empty edge lists, disconnected layers)."""

import functools

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.diversity.matrixcount import count_paths_matrix, count_shortest_paths, next_hop_sets
from repro.kernels import CSRGraph, batch_disjoint_paths, kernels_for, next_hop_table
from repro.kernels import reference as legacy
from repro.topologies import (
    complete_graph,
    dragonfly,
    fat_tree,
    flattened_butterfly,
    hyperx,
    jellyfish,
    slim_fly,
    star,
    xpander,
)


@functools.lru_cache(maxsize=None)
def generator_instances():
    """One small instance per topology generator (all families of the paper)."""
    return [
        slim_fly(5),
        dragonfly(2),
        hyperx(2, 3),
        flattened_butterfly(3),
        xpander(4, seed=0),
        fat_tree(4),
        jellyfish(20, 4, 2, seed=0),
        complete_graph(6),
        star(8),
    ]


@pytest.fixture(scope="module", params=range(9))
def topo(request):
    return generator_instances()[request.param]


class TestGeneratorEquivalence:
    def test_bfs_distances_match_legacy(self, topo):
        adj = legacy.adjacency_lists(topo.num_routers, topo.edges)
        for source in range(topo.num_routers):
            expected = legacy.bfs_distances_python(topo.num_routers, adj, source)
            got = topo.bfs_distances(source)
            assert got.dtype == expected.dtype
            assert (got == expected).all()

    def test_distance_matrix_matches_legacy(self, topo):
        expected = legacy.distance_matrix_python(topo.num_routers, topo.edges)
        got = kernels_for(topo).distance_matrix()
        assert (got == expected).all()

    def test_connectivity_matches_legacy(self, topo):
        assert topo.is_connected() == legacy.is_connected_python(topo.num_routers, topo.edges)

    def test_diameter_matches_legacy_eccentricities(self, topo):
        expected = int(legacy.distance_matrix_python(topo.num_routers, topo.edges).max())
        assert topo.diameter() == expected

    def test_average_path_length_matches_legacy(self, topo):
        mat = legacy.distance_matrix_python(topo.num_routers, topo.edges)
        mask = mat > 0
        pairs = int(mask.sum())
        expected = float(mat[mask].sum()) / pairs if pairs else 0.0
        assert topo.average_path_length() == pytest.approx(expected)

    def test_shortest_path_counts_match_legacy(self, topo):
        expected = legacy.count_shortest_paths_python(topo.num_routers, topo.edges)
        assert (count_shortest_paths(topo) == expected).all()

    def test_next_hop_sets_match_legacy(self, topo):
        if topo.num_routers > 40:  # the legacy propagation is O(n^3 deg); keep CI fast
            pytest.skip("legacy next-hop propagation too slow at this size")
        expected = legacy.next_hop_sets_python(topo.num_routers, topo.edges, 3)
        assert next_hop_sets(topo, 3) == expected

    @pytest.mark.parametrize("mode", ["edge", "vertex"])
    def test_disjoint_paths_match_scalar_reference(self, topo, mode):
        """Batched greedy CDP == scalar reference, pair for pair, counts and paths."""
        n = topo.num_routers
        if n < 2:
            pytest.skip("needs at least two routers to form a pair")
        rng = np.random.default_rng(7)
        pairs = []
        while len(pairs) < 12:
            s, t = rng.integers(0, n, size=2)
            if s != t:
                pairs.append((int(s), int(t)))
        max_len = (topo.diameter_hint or 2) + 1
        counts, paths = batch_disjoint_paths(
            kernels_for(topo).csr, np.asarray(pairs), max_len, mode=mode,
            return_paths=True)
        for (s, t), got, got_paths in zip(pairs, counts, paths):
            exp, exp_paths = legacy.greedy_disjoint_paths_python(
                n, topo.edges, [s], [t], max_len, mode=mode, return_paths=True)
            assert got == exp
            assert got_paths == exp_paths

    def test_next_hop_table_matches_scalar_reference(self, topo):
        """Vectorized next-hop tables == scalar reference, bit for bit, per seed."""
        kern = kernels_for(topo)
        dist = kern.distance_matrix()
        for seed in (0, 1, (3, 2)):
            expected = legacy.next_hop_table_python(
                topo.num_routers, topo.edges, kern.distance_matrix_float(), seed)
            assert (next_hop_table(kern.csr, dist, seed) == expected).all()

    def test_walk_counts_match_dense_power(self, topo):
        adj = np.zeros((topo.num_routers, topo.num_routers), dtype=np.int64)
        for u, v in topo.edges:
            adj[u, v] = 1
            adj[v, u] = 1
        assert (count_paths_matrix(topo, 3) == adj @ adj @ adj).all()


def random_edges(n, m, seed):
    rng = np.random.default_rng(seed)
    edges = set()
    for _ in range(m):
        u, v = rng.integers(0, n, size=2)
        if u != v:
            edges.add((min(int(u), int(v)), max(int(u), int(v))))
    return sorted(edges)


@given(n=st.integers(min_value=1, max_value=40),
       density=st.integers(min_value=0, max_value=3),
       seed=st.integers(min_value=0, max_value=10_000))
@settings(max_examples=60, deadline=None)
def test_random_graph_distances_match_legacy(n, density, seed):
    """Property test over random (often disconnected/degenerate) graphs."""
    edges = random_edges(n, density * n, seed)
    csr = CSRGraph.from_edges(n, edges)
    expected = legacy.distance_matrix_python(n, edges)
    assert (csr.distance_matrix() == expected).all()
    assert csr.is_connected() == legacy.is_connected_python(n, edges)


@given(n=st.integers(min_value=2, max_value=25),
       density=st.integers(min_value=0, max_value=3),
       seed=st.integers(min_value=0, max_value=10_000),
       max_len=st.integers(min_value=1, max_value=4))
@settings(max_examples=40, deadline=None)
def test_random_graph_path_kernels_match_legacy(n, density, seed, max_len):
    edges = random_edges(n, density * n, seed)
    csr = CSRGraph.from_edges(n, edges)
    from repro.kernels.paths import next_hop_sets_from_distances, shortest_path_counts

    dist = csr.distance_matrix()
    assert (shortest_path_counts(csr, dist)
            == legacy.count_shortest_paths_python(n, edges)).all()
    assert (next_hop_sets_from_distances(csr, dist, max_len)
            == legacy.next_hop_sets_python(n, edges, max_len))


@given(n=st.integers(min_value=2, max_value=20),
       density=st.integers(min_value=0, max_value=3),
       seed=st.integers(min_value=0, max_value=10_000),
       max_len=st.integers(min_value=1, max_value=5),
       mode=st.sampled_from(["edge", "vertex"]))
@settings(max_examples=40, deadline=None)
def test_random_graph_disjoint_paths_match_reference(n, density, seed, max_len, mode):
    """Batched greedy CDP on random (often degenerate) graphs: counts and concrete
    paths must match the scalar reference, with and without pruning (the distance
    -bound pruning and relevant-set restriction only skip vertices that provably
    cannot sit on any qualifying path)."""
    edges = random_edges(n, density * n, seed)
    csr = CSRGraph.from_edges(n, edges)
    rng = np.random.default_rng(seed)
    items = []
    for _ in range(4):
        sources = sorted(set(int(x) for x in rng.integers(0, n, size=rng.integers(1, 3))))
        targets = sorted(set(int(x) for x in rng.integers(0, n, size=rng.integers(1, 3))))
        items.append((sources, targets))
    pruned, pruned_paths = batch_disjoint_paths(csr, items, max_len, mode=mode,
                                                return_paths=True)
    unpruned = batch_disjoint_paths(csr, items, max_len, mode=mode, prune=False)
    for (sources, targets), got, got_paths, got_unpruned in zip(
            items, pruned, pruned_paths, unpruned):
        if set(sources) & set(targets):
            expected, expected_paths = 0, []
        else:
            expected, expected_paths = legacy.greedy_disjoint_paths_python(
                n, edges, sources, targets, max_len, mode=mode, return_paths=True)
        assert got == expected
        assert got_unpruned == expected
        assert got_paths == expected_paths


def test_chunked_kernels_match_unchunked(monkeypatch):
    """Shrinking the chunk budgets to one entry (every item/row in its own chunk)
    must not change any result — chunking is purely a memory bound."""
    from repro.kernels import disjoint as disjoint_mod
    from repro.kernels import nexthop as nexthop_mod

    edges = random_edges(24, 60, seed=3)
    csr = CSRGraph.from_edges(24, edges)
    rng = np.random.default_rng(3)
    pairs = np.asarray([[int(s), int(t)] for s, t in
                        [rng.choice(24, size=2, replace=False) for _ in range(15)]])
    full_counts = batch_disjoint_paths(csr, pairs, 4)
    table = next_hop_table(csr, csr.distance_matrix(), 9)
    monkeypatch.setattr(disjoint_mod, "_CHUNK_ENTRY_BUDGET", 1)
    monkeypatch.setattr(nexthop_mod, "_CHUNK_ENTRY_BUDGET", 1)
    assert (batch_disjoint_paths(csr, pairs, 4) == full_counts).all()
    assert (next_hop_table(csr, csr.distance_matrix(), 9) == table).all()


@given(n=st.integers(min_value=1, max_value=30),
       density=st.integers(min_value=0, max_value=3),
       seed=st.integers(min_value=0, max_value=10_000))
@settings(max_examples=40, deadline=None)
def test_random_graph_next_hop_tables_match_reference(n, density, seed):
    """Vectorized next-hop tables on random degenerate graphs (isolated routers,
    disconnected components): bit-identical to the scalar reference, for both the
    int (-1) and float (inf) distance-matrix forms."""
    edges = random_edges(n, density * n, seed)
    csr = CSRGraph.from_edges(n, edges)
    dist = csr.distance_matrix()
    dist_float = dist.astype(float)
    dist_float[dist < 0] = np.inf
    expected = legacy.next_hop_table_python(n, edges, dist_float, seed)
    assert (next_hop_table(csr, dist, seed) == expected).all()
    assert (next_hop_table(csr, dist_float, seed) == expected).all()
