"""Dirty-region cache invalidation: derived kernels must be bit-identical to
from-scratch builds while provably recomputing only the rows a fault's edge
delta can affect — including the PathCache edge cases the resilience guide
pins (an edge shared by multiple layers, fail-then-restore returning the
pristine entry, and eviction racing invalidation)."""

import numpy as np
import pytest

from repro.kernels.cache import GraphKernels, PathCache, fingerprint_edges
from repro.kernels.csr import CSRGraph
from repro.kernels.dirtyregion import (
    derive_kernels,
    faulted_kernels,
    faulted_layer_kernels,
)
from repro.topologies import comparable_configurations
from repro.topologies.configs import SizeClass


def random_connected_graph(n, extra_edges, rng):
    """A ring (always connected) plus random chords, normalized and deduped."""
    edges = {(i, (i + 1) % n) if i < (i + 1) % n else ((i + 1) % n, i)
             for i in range(n)}
    while len(edges) < n + extra_edges:
        u, v = rng.choice(n, size=2, replace=False)
        edges.add((min(int(u), int(v)), max(int(u), int(v))))
    return sorted(edges)


def fresh_kernels(num_nodes, edges):
    """An uncached from-scratch build with matrix + counts materialized."""
    entry = GraphKernels(CSRGraph.from_edges(num_nodes, edges),
                         fingerprint_edges(num_nodes, edges))
    entry.distance_matrix()
    entry.shortest_path_counts()
    return entry


@pytest.fixture(scope="module")
def topo():
    return comparable_configurations(SizeClass.TINY, topologies=["SF"], seed=0)["SF"]


class _Layer:
    """Minimal stand-in for repro.core.layers.Layer (index + edges)."""

    def __init__(self, index, edges):
        self.index = index
        self.edges = edges


class TestDeriveKernels:
    N = 24

    @pytest.mark.parametrize("seed", range(5))
    def test_removal_matches_scratch_build(self, seed):
        rng = np.random.default_rng(seed)
        edges = random_connected_graph(self.N, 14, rng)
        removed = [edges[int(i)] for i in rng.choice(len(edges), size=3,
                                                     replace=False)]
        new_edges = sorted(set(edges) - set(removed))
        base = fresh_kernels(self.N, edges)
        derived = derive_kernels(base, self.N, new_edges,
                                 fingerprint_edges(self.N, new_edges), removed, [])
        scratch = fresh_kernels(self.N, new_edges)
        np.testing.assert_array_equal(derived.distance_matrix(),
                                      scratch.distance_matrix())
        np.testing.assert_array_equal(derived.shortest_path_counts(),
                                      scratch.shortest_path_counts())

    @pytest.mark.parametrize("seed", range(5))
    def test_addition_matches_scratch_build(self, seed):
        rng = np.random.default_rng(100 + seed)
        full = random_connected_graph(self.N, 14, rng)
        added = [full[int(i)] for i in rng.choice(len(full) - self.N, size=3,
                                                  replace=False) + self.N]
        base_edges = sorted(set(full) - set(added))
        base = fresh_kernels(self.N, base_edges)
        derived = derive_kernels(base, self.N, full,
                                 fingerprint_edges(self.N, full), [], added)
        scratch = fresh_kernels(self.N, full)
        np.testing.assert_array_equal(derived.distance_matrix(),
                                      scratch.distance_matrix())
        np.testing.assert_array_equal(derived.shortest_path_counts(),
                                      scratch.shortest_path_counts())

    def test_only_dirty_rows_recomputed(self):
        """The invalidation stats prove the partial recompute really is partial:
        clean rows are shared with the base entry's arrays."""
        rng = np.random.default_rng(7)
        edges = random_connected_graph(self.N, 20, rng)
        removed = [edges[-1]]
        new_edges = sorted(set(edges) - set(removed))
        base = fresh_kernels(self.N, edges)
        derived = derive_kernels(base, self.N, new_edges,
                                 fingerprint_edges(self.N, new_edges), removed, [])
        stats = derived.invalidation
        assert stats["mode"] == "partial"
        assert 0 < stats["rows_dirty"] < stats["rows_total"] == self.N
        clean = np.flatnonzero(np.all(
            derived.distance_matrix() == base.distance_matrix(), axis=1))
        assert clean.size >= self.N - stats["rows_dirty"]


class TestFaultedKernels:
    def test_no_failures_is_the_pristine_entry(self, topo):
        cache = PathCache()
        pristine = faulted_kernels(topo, set(), cache=cache)
        assert faulted_kernels(topo, frozenset(), cache=cache) is pristine

    def test_fail_then_restore_returns_pristine_entry(self, topo):
        """A fail/restore cycle ends on the *same* cached object — no rebuild —
        because the restored edge set fingerprints back to the pristine key."""
        cache = PathCache()
        pristine = faulted_kernels(topo, set(), cache=cache)
        pristine.distance_matrix()
        failed = {topo.edges[0], topo.edges[5]}
        degraded = faulted_kernels(topo, failed, cache=cache)
        assert degraded is not pristine
        assert degraded.invalidation["mode"] == "partial"
        restored = faulted_kernels(topo, set(), cache=cache)
        assert restored is pristine
        assert cache.derive_partial == 1 and cache.derive_full == 0

    def test_restore_derivation_is_bit_identical_to_pristine(self, topo):
        """Deriving the restore *from the degraded entry* (pristine evicted, as
        after a long outage) reproduces the pristine arrays bit-for-bit."""
        cache = PathCache()
        pristine = faulted_kernels(topo, set(), cache=cache)
        pristine.distance_matrix()
        pristine.shortest_path_counts()
        failed = {topo.edges[0]}
        degraded = faulted_kernels(topo, failed, cache=cache)
        degraded.distance_matrix()
        degraded.shortest_path_counts()
        private = PathCache()
        private._entries[degraded.fingerprint] = degraded
        restored = private.mutated(topo.num_routers,
                                   sorted(set(topo.edges) - failed),
                                   added=sorted(failed),
                                   base_fingerprint=degraded.fingerprint)
        assert restored is not pristine
        np.testing.assert_array_equal(restored.distance_matrix(),
                                      pristine.distance_matrix())
        np.testing.assert_array_equal(restored.shortest_path_counts(),
                                      pristine.shortest_path_counts())

    def test_eviction_racing_invalidation_degrades_to_full_build(self, topo):
        """When the base entry was evicted before the fault arrives, mutated()
        falls back to a cold build (derive_full) — correct, just not partial."""
        cache = PathCache(maxsize=1)
        faulted_kernels(topo, set(), cache=cache)            # pristine entry
        cache.kernels(4, [(0, 1), (1, 2), (2, 3)])           # evicts the pristine
        failed = {topo.edges[0]}
        again = faulted_kernels(topo, failed, cache=cache)   # base gone: cold build
        assert again.invalidation["mode"] == "full"
        assert cache.derive_full == 1 and cache.derive_partial == 0
        scratch = fresh_kernels(topo.num_routers,
                                sorted(set(topo.edges) - failed))
        np.testing.assert_array_equal(again.distance_matrix(),
                                      scratch.distance_matrix())

    def test_stats_expose_derivation_counters(self, topo):
        cache = PathCache()
        faulted_kernels(topo, set(), cache=cache)
        faulted_kernels(topo, {topo.edges[0]}, cache=cache)
        stats = cache.stats()
        assert stats["derive_partial"] == 1
        assert stats["derive_full"] == 0
        assert stats["graphs"] == 2


class TestFaultedLayerKernels:
    def test_edge_shared_by_multiple_layers(self, topo):
        """Invalidation is per (layer, dirty region): every layer containing the
        failed edge derives its own patched entry; a layer that does not touch
        it keeps its cached entry ``is``-identical to the unfaulted call."""
        shared = topo.edges[0]
        layer_a = _Layer(0, [e for e in topo.edges if 0 in e or e == shared])
        layer_b = _Layer(1, [e for e in topo.edges[:30]] + [shared])
        untouched = _Layer(2, [e for e in topo.edges if e != shared][:25])
        assert shared in layer_a.edges and shared in layer_b.edges
        assert shared not in untouched.edges

        cache = PathCache()
        before = {layer.index: faulted_layer_kernels(topo, layer, set(),
                                                     cache=cache)
                  for layer in (layer_a, layer_b, untouched)}
        for layer in (layer_a, layer_b, untouched):
            before[layer.index].distance_matrix()

        failed = {shared}
        after_a = faulted_layer_kernels(topo, layer_a, failed, cache=cache)
        after_b = faulted_layer_kernels(topo, layer_b, failed, cache=cache)
        after_u = faulted_layer_kernels(topo, untouched, failed, cache=cache)

        assert after_u is before[untouched.index]       # untouched layer: cache hit
        assert after_a is not before[layer_a.index]     # touched layers: derived
        assert after_b is not before[layer_b.index]
        assert cache.derive_partial == 2                # one derivation per layer
        for layer, derived in ((layer_a, after_a), (layer_b, after_b)):
            scratch = fresh_kernels(topo.num_routers,
                                    sorted(set(layer.edges) - failed))
            np.testing.assert_array_equal(derived.distance_matrix(),
                                          scratch.distance_matrix())

    def test_layer_fail_restore_roundtrip_hits_cached_entry(self, topo):
        layer = _Layer(0, list(topo.edges[:40]))
        cache = PathCache()
        pristine = faulted_layer_kernels(topo, layer, set(), cache=cache)
        faulted_layer_kernels(topo, layer, {layer.edges[0]}, cache=cache)
        assert faulted_layer_kernels(topo, layer, set(), cache=cache) is pristine
