"""PathCache eviction edge cases.

The cache is doubly bounded — by entry count and by retained bytes — and entries
*grow after insertion* as distance matrices, path counts and next-hop tables are
lazily computed.  These tests pin the awkward corners: byte budgets smaller than a
single entry, growth-triggered eviction on the hit path, and layer-key reuse across
distinct ``Topology`` objects that share a graph fingerprint.
"""

import pytest

from repro.core.layers import Layer
from repro.kernels import PathCache, layer_kernels
from repro.kernels.cache import layer_fingerprint
from repro.topologies.base import Topology


def ring_edges(n, shift=0):
    return [((i + shift) % n, (i + 1 + shift) % n) for i in range(n)]


class TestByteBudgetSmallerThanOneEntry:
    def test_single_oversized_entry_is_retained(self):
        cache = PathCache(maxsize=8, max_bytes=1)
        kern = cache.kernels(16, ring_edges(16))
        kern.distance_matrix()  # grow far beyond the byte budget
        assert kern.retained_nbytes() > cache.max_bytes
        # the most recently used entry is never evicted: its caller holds it
        assert len(cache) == 1
        assert cache.kernels(16, ring_edges(16)) is kern

    def test_oversized_entries_evict_down_to_most_recent(self):
        cache = PathCache(maxsize=8, max_bytes=1)
        first = cache.kernels(12, ring_edges(12))
        first.distance_matrix()
        second = cache.kernels(13, ring_edges(13))
        second.distance_matrix()
        third = cache.kernels(14, ring_edges(14))
        # every insertion re-checks the budget: only the newest entry survives
        assert len(cache) == 1
        assert cache.kernels(14, ring_edges(14)) is third
        assert cache.stats()["hits"] == 1

    def test_growth_after_insertion_evicts_on_hit_path(self):
        """Entries that grow *after* insertion are reaped by the periodic
        budget re-check on cache hits (every 64 hits, keeping lookups O(1))."""
        cache = PathCache(maxsize=8, max_bytes=4096)
        small = cache.kernels(4, ring_edges(4))
        big = cache.kernels(32, ring_edges(32))
        assert len(cache) == 2
        big.distance_matrix()  # now far over budget, but no insertion happens
        assert big.retained_nbytes() > cache.max_bytes
        for _ in range(64):  # hits eventually trigger the periodic re-check
            cache.kernels(32, ring_edges(32))
        assert len(cache) == 1  # the LRU 'small' entry was evicted, MRU kept
        assert cache.kernels(32, ring_edges(32)) is big
        assert small.fingerprint not in cache._entries

    def test_zero_budgets_rejected(self):
        with pytest.raises(ValueError):
            PathCache(max_bytes=0)
        with pytest.raises(ValueError):
            PathCache(maxsize=0)


class TestLayerKeyReuseAcrossTopologies:
    def make_twins(self):
        """Two Topology objects over the same graph (equal fingerprints)."""
        edges = ring_edges(8)
        t1 = Topology("alpha", 8, list(edges), 1)
        t2 = Topology("beta", 8, list(reversed(edges)), 2)  # different metadata
        assert t1.fingerprint() == t2.fingerprint()
        return t1, t2

    def test_same_layer_same_edges_shares_one_entry(self):
        t1, t2 = self.make_twins()
        layer = Layer(index=1, edges=frozenset([(0, 1), (2, 3), (4, 5)]))
        k1 = layer_kernels(t1, layer)
        k2 = layer_kernels(t2, layer)
        assert k1 is k2  # identical fingerprints + layer keys => one computation

    def test_same_index_different_edges_never_collide(self):
        t1, t2 = self.make_twins()
        a = Layer(index=1, edges=frozenset([(0, 1), (2, 3)]))
        b = Layer(index=1, edges=frozenset([(0, 1), (4, 5)]))
        assert layer_kernels(t1, a) is not layer_kernels(t2, b)
        assert layer_fingerprint(t1, 1, sorted(a.edges)) != \
            layer_fingerprint(t2, 1, sorted(b.edges))

    def test_different_index_same_edges_never_collide(self):
        t1, _ = self.make_twins()
        edges = frozenset([(0, 1), (2, 3)])
        k1 = layer_kernels(t1, Layer(index=1, edges=edges))
        k2 = layer_kernels(t1, Layer(index=2, edges=edges))
        assert k1 is not k2

    def test_layer_reuse_survives_cache_pressure_on_other_entries(self):
        """Evicting unrelated grown entries must not corrupt live layer entries."""
        cache = PathCache(maxsize=4, max_bytes=64 << 10)
        base = cache.kernels(8, ring_edges(8))
        layer_key = layer_fingerprint(
            Topology("t", 8, ring_edges(8), 1), 1, ring_edges(8, shift=1))
        layer_entry = cache.kernels(8, ring_edges(8, shift=1), fingerprint=layer_key)
        table = layer_entry.next_hop_table((0, 1))
        for n in (24, 25, 26, 27):  # churn the cache with growing entries
            cache.kernels(n, ring_edges(n)).distance_matrix()
        fresh = cache.kernels(8, ring_edges(8, shift=1), fingerprint=layer_key)
        # whether or not the entry survived eviction, results stay deterministic
        assert (fresh.next_hop_table((0, 1)) == table).all()
        assert (base.distance_matrix() >= -1).all()

    def test_next_hop_tables_count_towards_retained_bytes(self):
        cache = PathCache()
        kern = cache.kernels(8, ring_edges(8))
        before = kern.retained_nbytes()
        table = kern.next_hop_table(7)
        assert kern.retained_nbytes() >= before + table.nbytes
        with pytest.raises(ValueError):
            table[0, 0] = 3  # read-only cache view

    def test_next_hop_table_seed_keying(self):
        cache = PathCache()
        kern = cache.kernels(10, ring_edges(10))
        assert kern.next_hop_table(0) is kern.next_hop_table(0)
        assert kern.next_hop_table((0, 1)) is kern.next_hop_table((0, 1))
        # int and 1-tuple seeds are the same SeedSequence entropy => same key
        assert kern.next_hop_table((0,)) is kern.next_hop_table(0)
        assert kern.next_hop_table(1) is not kern.next_hop_table(2)

    def test_next_hop_tables_bounded_per_graph(self):
        """A multi-seed sweep must not grow one table per seed without limit."""
        from repro.kernels.cache import _MAX_NEXT_HOP_TABLES

        cache = PathCache()
        kern = cache.kernels(10, ring_edges(10))
        for seed in range(3 * _MAX_NEXT_HOP_TABLES):
            kern.next_hop_table(seed)
        assert len(kern._next_hops) <= _MAX_NEXT_HOP_TABLES
        # the newest seed survives; results stay deterministic regardless
        assert kern.next_hop_table(3 * _MAX_NEXT_HOP_TABLES - 1) is \
            kern.next_hop_table(3 * _MAX_NEXT_HOP_TABLES - 1)

    def test_uncacheable_seeds_build_fresh_tables(self):
        """None and SeedSequence seeds are never cached (their streams differ)."""
        import numpy as np

        cache = PathCache()
        kern = cache.kernels(10, ring_edges(10))
        assert kern.next_hop_table(None) is not kern.next_hop_table(None)
        parent = np.random.SeedSequence(42)
        child = parent.spawn(1)[0]
        assert kern.next_hop_table(parent) is not kern.next_hop_table(child)
        assert len(kern._next_hops) == 0
