"""Adaptive round-robin retirement in the batched disjoint-path kernel.

The greedy search compacts finished items out of the working block between rounds;
these tests force that path (mixed-diversity batches, where low-count items retire
long before the high-diversity ones) and pin that retirement never changes results:
batched counts and paths equal item-at-a-time calls, which never trigger compaction
(a one-item block cannot halve).
"""

import numpy as np
import pytest

from repro.kernels.cache import kernels_for
from repro.kernels.disjoint import batch_disjoint_paths
from repro.topologies import SizeClass, build, slim_fly


def _mixed_diversity_items(topo, num_pairs=40, seed=7):
    """Pairs sampled so the batch mixes quickly-retiring and long-running items."""
    rng = np.random.default_rng(seed)
    n = topo.num_routers
    pairs = rng.integers(0, n, size=(num_pairs, 2))
    pairs = pairs[pairs[:, 0] != pairs[:, 1]]
    return pairs


@pytest.mark.parametrize("mode", ["edge", "vertex"])
@pytest.mark.parametrize("builder", [lambda: slim_fly(5), lambda: build("DF", SizeClass.TINY)])
def test_batch_equals_item_at_a_time(builder, mode):
    topo = builder()
    csr = kernels_for(topo).csr
    pairs = _mixed_diversity_items(topo)
    for max_len in (2, 3, 4):
        batched, batched_paths = batch_disjoint_paths(
            csr, pairs, max_len, mode=mode, return_paths=True)
        for i, pair in enumerate(pairs):
            single, single_paths = batch_disjoint_paths(
                csr, pair.reshape(1, 2), max_len, mode=mode, return_paths=True)
            assert single[0] == batched[i]
            assert single_paths[0] == batched_paths[i]


def test_retirement_with_set_items_and_unreachable_padding():
    """Set-form items with wildly different relevant-set sizes force both the row
    compaction and the padding-width shrink; degenerate items (overlapping sets)
    must stay zero throughout."""
    topo = slim_fly(5)
    csr = kernels_for(topo).csr
    rng = np.random.default_rng(3)
    items = []
    for size in (1, 1, 2, 4, 1, 3, 1, 1):
        sources = rng.choice(topo.num_routers, size=size, replace=False)
        targets = rng.choice(topo.num_routers, size=size, replace=False)
        items.append((sources, targets))
    items.append(([0], [0]))          # source == target: counts zero, retires round 0
    counts, paths = batch_disjoint_paths(csr, items, 3, return_paths=True)
    assert counts[-1] == 0 and paths[-1] == []
    for i, item in enumerate(items):
        single = batch_disjoint_paths(csr, [item], 3)
        assert single[0] == counts[i]


def test_unpruned_matches_pruned_with_retirement():
    """prune=False keeps every vertex in every block (no width shrink); results
    must still match the pruned, compacting run exactly."""
    topo = build("DF", SizeClass.TINY)
    csr = kernels_for(topo).csr
    pairs = _mixed_diversity_items(topo, num_pairs=25, seed=11)
    for max_len in (2, 4):
        pruned = batch_disjoint_paths(csr, pairs, max_len, prune=True)
        unpruned = batch_disjoint_paths(csr, pairs, max_len, prune=False)
        np.testing.assert_array_equal(pruned, unpruned)
