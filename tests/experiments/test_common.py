"""Tests for the experiment harness infrastructure (common + runner + simcommon)."""

import pytest

from repro.experiments.common import ExperimentResult, Scale, registry, run_experiment
from repro.experiments.runner import main as runner_main
from repro.experiments.simcommon import STACKS, build_stack, simulate_stack
from repro.topologies import SizeClass, slim_fly
from repro.traffic.flows import uniform_size_workload
from repro.traffic.patterns import off_diagonal


class TestScale:
    def test_size_class_mapping(self):
        assert Scale.TINY.size_class() == SizeClass.TINY
        assert Scale.MEDIUM.size_class() == SizeClass.MEDIUM

    def test_pick(self):
        assert Scale.SMALL.pick(1, 2, 3) == 2

    def test_from_string(self):
        assert Scale("tiny") is Scale.TINY


class TestExperimentResult:
    def _result(self):
        return ExperimentResult(
            name="demo", description="demo experiment", paper_reference="Figure 0",
            rows=[{"a": 1, "b": 2.5}, {"a": 3, "b": 0.001, "c": "x"}],
            notes=["a note"])

    def test_columns_union(self):
        assert self._result().columns() == ["a", "b", "c"]

    def test_table_and_report_render(self):
        result = self._result()
        table = result.to_table()
        assert "a" in table and "---" in table
        report = result.report()
        assert "demo experiment" in report and "a note" in report

    def test_empty_rows_table(self):
        empty = ExperimentResult("x", "d", "ref", rows=[])
        assert empty.to_table() == "(no rows)"

    def test_max_rows_limit(self):
        table = self._result().to_table(max_rows=1)
        assert table.count("\n") == 2  # header + separator + one row

    def test_filter_rows(self):
        assert len(self._result().filter_rows(a=1)) == 1


class TestRegistry:
    def test_registry_covers_all_eval_figures(self):
        names = set(registry())
        expected = {"fig02", "fig04", "fig06", "fig07", "fig08", "fig09", "fig10", "fig11",
                    "fig12", "fig13", "fig14", "fig15", "fig16", "fig17", "fig19", "fig20",
                    "tab01", "tab04", "tab05"}
        assert expected <= names

    def test_unknown_experiment_raises(self):
        with pytest.raises(KeyError):
            run_experiment("fig99")

    def test_runner_list(self, capsys):
        assert runner_main(["--list"]) == 0
        out = capsys.readouterr().out
        assert "fig09" in out

    def test_runner_runs_an_experiment(self, capsys):
        assert runner_main(["tab01", "--scale", "tiny"]) == 0
        out = capsys.readouterr().out
        assert "FatPaths" in out


class TestSimCommon:
    @pytest.fixture(scope="class")
    def topo(self):
        return slim_fly(5)

    @pytest.mark.parametrize("stack_name", STACKS)
    def test_build_every_stack(self, topo, stack_name):
        stack = build_stack(topo, stack_name, seed=0)
        assert stack.name == stack_name
        assert stack.routing.router_paths(0, 30)

    def test_unknown_stack_rejected(self, topo):
        with pytest.raises(ValueError):
            build_stack(topo, "carrier-pigeon")

    def test_rho_and_layer_overrides(self, topo):
        stack = build_stack(topo, "fatpaths", seed=0, num_layers=3, rho=0.5)
        assert stack.routing.config.num_layers == 3
        assert stack.routing.config.rho == 0.5

    def test_simulate_stack_runs(self, topo):
        stack = build_stack(topo, "fatpaths", seed=0)
        workload = uniform_size_workload(off_diagonal(topo.num_endpoints, 7), 64 * 1024)
        result = simulate_stack(topo, stack, workload, seed=0)
        assert len(result) == len(workload)
