"""Tests for the fault-tolerant grid executor (``repro.experiments.resilient``)."""

import json
import os

import pytest

from repro.experiments.grid import (
    GridCell,
    GridSummary,
    combine_cell_results,
    make_grid,
    run_experiment_grid,
    split_heavy_cells,
)
from repro.experiments.resilient import (
    DEFAULT_CELL_TIMEOUTS,
    CellJournal,
    ChaosSpec,
    RetryPolicy,
    TransientCellError,
    cell_fingerprint,
    classify_error,
    resolve_timeout,
)
from repro.experiments.runner import main as runner_main


def _cells():
    """The standard mixed grid: split per-topology cells plus an unsplit cell."""
    return split_heavy_cells(make_grid(["fig06", "tab05"], seeds=[0]))


@pytest.fixture(scope="module")
def clean_results():
    """Uninterrupted serial reference run of the standard grid."""
    results = run_experiment_grid(_cells(), jobs=None)
    assert all(r.ok for r in results)
    return results


def _assert_combined_equal(expected, actual):
    """Combined tables bit-identical: rows, notes and metadata."""
    want, got = combine_cell_results(expected), combine_cell_results(actual)
    assert len(want) == len(got)
    for a, b in zip(want, got):
        assert a.name == b.name
        assert a.rows == b.rows
        assert a.notes == b.notes
        assert a.meta == b.meta


class TestTaxonomy:
    def test_transient_exceptions_retryable(self):
        assert classify_error(TransientCellError("x")) == "transient"
        assert classify_error(ConnectionResetError("x")) == "transient"
        assert classify_error(TimeoutError("x")) == "transient"

    def test_other_exceptions_deterministic(self):
        assert classify_error(ValueError("x")) == "deterministic"
        assert classify_error(KeyError("x")) == "deterministic"


class TestRetryPolicy:
    def test_backoff_deterministic_and_bounded(self):
        policy = RetryPolicy(backoff_base=0.1, backoff_factor=2.0,
                             backoff_cap=1.0, jitter=0.5)
        fp = cell_fingerprint(GridCell(name="fig06"))
        first = policy.backoff(fp, 1)
        assert first == policy.backoff(fp, 1)  # same cell+attempt -> same delay
        assert 0.1 <= first <= 0.1 * 1.5
        assert 0.2 <= policy.backoff(fp, 2) <= 0.2 * 1.5
        # capped growth: the undithered base saturates at backoff_cap
        assert policy.backoff(fp, 50) <= 1.0 * 1.5

    def test_jitter_differs_across_cells(self):
        policy = RetryPolicy(backoff_base=1.0, jitter=0.5)
        a = policy.backoff(cell_fingerprint(GridCell(name="fig06")), 1)
        b = policy.backoff(cell_fingerprint(GridCell(name="tab05")), 1)
        assert a != b

    def test_zero_jitter_is_pure_exponential(self):
        policy = RetryPolicy(backoff_base=0.5, backoff_factor=2.0,
                             backoff_cap=10.0, jitter=0.0)
        assert policy.backoff("anything", 1) == 0.5
        assert policy.backoff("anything", 3) == 2.0


class TestFingerprint:
    def test_stable_and_content_keyed(self):
        cell = GridCell(name="fig06", scale="tiny", seed=3,
                        kwargs=(("topologies", ("SF",)),))
        assert cell_fingerprint(cell) == cell_fingerprint(
            GridCell(name="fig06", scale="tiny", seed=3,
                     kwargs=(("topologies", ("SF",)),)))

    def test_every_axis_changes_the_key(self):
        base = GridCell(name="fig06", scale="tiny", seed=0)
        keys = {cell_fingerprint(base),
                cell_fingerprint(GridCell(name="tab05", scale="tiny", seed=0)),
                cell_fingerprint(GridCell(name="fig06", scale="small", seed=0)),
                cell_fingerprint(GridCell(name="fig06", scale="tiny", seed=1)),
                cell_fingerprint(GridCell(name="fig06", scale="tiny", seed=0,
                                          kwargs=(("topologies", ("SF",)),)))}
        assert len(keys) == 5


class TestTimeouts:
    def test_scale_aware_defaults(self):
        for scale, limit in DEFAULT_CELL_TIMEOUTS.items():
            assert resolve_timeout(GridCell(name="x", scale=scale), None) == limit

    def test_uniform_and_disabled(self):
        cell = GridCell(name="x", scale="tiny")
        assert resolve_timeout(cell, 12.5) == 12.5
        assert resolve_timeout(cell, 0) == float("inf")

    def test_per_scale_mapping_with_default_fallback(self):
        assert resolve_timeout(GridCell(name="x", scale="tiny"), {"tiny": 7.0}) == 7.0
        assert resolve_timeout(GridCell(name="x", scale="small"), {"tiny": 7.0}) \
            == DEFAULT_CELL_TIMEOUTS["small"]


class TestJournal:
    def test_round_trip_bit_identical(self, tmp_path, clean_results):
        path = tmp_path / "j.jsonl"
        journal = CellJournal(path)
        for r in clean_results:
            journal.record(r.cell, r)
        journal.close()
        reloaded = CellJournal(path)
        assert len(reloaded) == len(clean_results)
        for r in clean_results:
            cached = reloaded.lookup(r.cell)
            assert cached is not None and cached.outcome == "journal"
            assert cached.result.rows == r.result.rows
            assert cached.result.notes == r.result.notes
            assert cached.result.meta == r.result.meta

    def test_lines_are_atomic_json(self, tmp_path, clean_results):
        path = tmp_path / "j.jsonl"
        journal = CellJournal(path)
        journal.record(clean_results[0].cell, clean_results[0])
        journal.close()
        raw = path.read_bytes()
        assert raw.endswith(b"\n")
        assert json.loads(raw.decode())["fingerprint"] == \
            cell_fingerprint(clean_results[0].cell)

    def test_truncated_tail_tolerated(self, tmp_path, clean_results):
        path = tmp_path / "j.jsonl"
        journal = CellJournal(path)
        for r in clean_results[:2]:
            journal.record(r.cell, r)
        journal.close()
        # simulate a crash mid-write: chop the last line in half
        raw = path.read_bytes()
        path.write_bytes(raw[: len(raw) - len(raw.splitlines(True)[-1]) // 2 - 1])
        reloaded = CellJournal(path)
        assert reloaded.corrupt_lines == 1
        assert reloaded.lookup(clean_results[0].cell) is not None
        assert reloaded.lookup(clean_results[1].cell) is None  # re-runs on resume

    def test_duplicate_cell_last_wins(self, tmp_path, clean_results):
        path = tmp_path / "j.jsonl"
        journal = CellJournal(path)
        journal.record(clean_results[0].cell, clean_results[0])
        journal.record(clean_results[0].cell, clean_results[0])
        journal.close()
        assert len(path.read_bytes().splitlines()) == 2  # append-only
        reloaded = CellJournal(path)
        assert len(reloaded) == 1
        assert reloaded.lookup(clean_results[0].cell).result.rows \
            == clean_results[0].result.rows

    def test_failed_cells_are_not_journaled(self, tmp_path):
        path = tmp_path / "j.jsonl"
        results = run_experiment_grid([GridCell(name="nope")], journal=str(path))
        assert not results[0].ok
        assert not path.exists() or not path.read_bytes()


class TestSerialResilience:
    def test_transient_retry_recovers(self, clean_results):
        cells = _cells()
        chaos = ChaosSpec(transient=(cells[0].label(),))
        results = run_experiment_grid(cells, chaos=chaos,
                                      policy=RetryPolicy(backoff_base=0.01))
        assert all(r.ok for r in results)
        assert results[0].attempts == 2 and results[0].outcome == "ok"
        assert results[1].attempts == 1
        for want, got in zip(clean_results, results):
            assert want.result.rows == got.result.rows

    def test_retry_exhaustion_fails(self):
        cell = GridCell(name="tab05")
        chaos = ChaosSpec(transient_always=(cell.label(),))
        results = run_experiment_grid(
            [cell], chaos=chaos,
            policy=RetryPolicy(max_attempts=2, backoff_base=0.01))
        assert results[0].outcome == "failed"
        assert results[0].attempts == 2
        assert "TransientCellError" in results[0].error

    def test_deterministic_error_fails_fast_with_traceback(self):
        chaos = ChaosSpec(transient=())
        results = run_experiment_grid([GridCell(name="nope")], chaos=chaos,
                                      policy=RetryPolicy(max_attempts=5))
        assert results[0].outcome == "failed" and results[0].attempts == 1
        assert "KeyError" in results[0].error
        assert "Traceback (most recent call last)" in results[0].traceback

    def test_process_killing_chaos_rejected_in_serial(self):
        with pytest.raises(ValueError, match="worker pool"):
            run_experiment_grid([GridCell(name="tab05"), GridCell(name="fig06")],
                                chaos=ChaosSpec(kill=("tab05",)))

    def test_resume_requires_journal(self):
        with pytest.raises(ValueError, match="journal"):
            run_experiment_grid([GridCell(name="tab05")], resume=True)


class TestPooledResilience:
    def test_worker_kill_recovers_bit_identical(self, clean_results):
        cells = _cells()
        chaos = ChaosSpec(kill=(cells[0].label(),))
        results = run_experiment_grid(cells, jobs=2, chaos=chaos,
                                      policy=RetryPolicy(backoff_base=0.01))
        assert all(r.ok for r in results), \
            [(r.cell.label(), r.error) for r in results if not r.ok]
        assert results[0].attempts > 1
        for want, got in zip(clean_results, results):
            assert want.result.rows == got.result.rows

    def test_poisoned_cell_quarantined_others_complete(self):
        cells = _cells()
        chaos = ChaosSpec(poison=(cells[1].label(),))
        results = run_experiment_grid(
            cells, jobs=2, chaos=chaos,
            policy=RetryPolicy(crash_retries=1, backoff_base=0.01))
        assert results[1].outcome == "poisoned" and not results[1].ok
        assert "quarantined" in results[1].error
        others = [r for i, r in enumerate(results) if i != 1]
        assert all(r.ok for r in others)
        report = GridSummary(results=results).report()
        assert "POISONED" in report and "1 poisoned" in report

    def test_hang_times_out_and_retries(self):
        cells = _cells()
        chaos = ChaosSpec(hang=(cells[2].label(),), hang_seconds=60.0)
        results = run_experiment_grid(cells, jobs=2, chaos=chaos, timeout=5.0,
                                      policy=RetryPolicy(backoff_base=0.01))
        assert all(r.ok for r in results)
        assert results[2].attempts == 2

    def test_hang_exhausts_timeout_budget(self):
        cells = _cells()[:3]
        chaos = ChaosSpec(hang=(cells[1].label(),), hang_seconds=60.0)
        results = run_experiment_grid(
            cells, jobs=2, chaos=chaos, timeout=4.0,
            policy=RetryPolicy(timeout_retries=0, backoff_base=0.01))
        assert results[1].outcome == "timeout" and not results[1].ok
        assert "Timeout" in results[1].error
        assert results[0].ok and results[2].ok


class TestResumeEqualsUninterrupted:
    """The tentpole property: kill the pool mid-sweep, resume, get identical tables."""

    def test_resume_after_crash_is_bit_identical(self, tmp_path, clean_results):
        cells = _cells()
        journal = str(tmp_path / "grid.jsonl")
        # pass 1: two cells (one split, one unsplit) can never complete — they
        # SIGKILL their worker on every attempt until quarantined
        chaos = ChaosSpec(poison=(cells[2].label(), cells[-1].label()))
        first = run_experiment_grid(
            cells, jobs=2, chaos=chaos, journal=journal,
            policy=RetryPolicy(crash_retries=0, backoff_base=0.01))
        assert first[2].outcome == "poisoned"
        assert first[-1].outcome == "poisoned"
        completed = [r for r in first if r.ok]
        assert 0 < len(completed) < len(cells)  # a genuinely partial sweep
        # pass 2: resume without chaos completes only the missing cells
        second = run_experiment_grid(cells, jobs=2, journal=journal, resume=True)
        assert all(r.ok for r in second)
        resumed = [r for r in second if r.outcome == "journal"]
        assert len(resumed) == len(completed)
        _assert_combined_equal(clean_results, second)

    def test_resume_with_truncated_journal_tail(self, tmp_path, clean_results):
        cells = _cells()
        journal = str(tmp_path / "grid.jsonl")
        first = run_experiment_grid(cells, jobs=None, journal=journal)
        assert all(r.ok for r in first)
        raw = open(journal, "rb").read()
        with open(journal, "wb") as fh:  # crash-truncated final line
            fh.write(raw[:-20])
        second = run_experiment_grid(cells, jobs=2, journal=journal, resume=True)
        assert all(r.ok for r in second)
        assert sum(1 for r in second if r.outcome == "journal") == len(cells) - 1
        _assert_combined_equal(clean_results, second)

    def test_resume_with_duplicate_journal_lines(self, tmp_path, clean_results):
        cells = _cells()
        journal = str(tmp_path / "grid.jsonl")
        first = run_experiment_grid(cells, jobs=None, journal=journal)
        assert all(r.ok for r in first)
        lines = open(journal, "rb").readlines()
        with open(journal, "ab") as fh:  # duplicate the first cell's record
            fh.write(lines[0])
        second = run_experiment_grid(cells, jobs=None, journal=journal, resume=True)
        assert all(r.outcome == "journal" for r in second)
        _assert_combined_equal(clean_results, second)


class TestRunnerFlags:
    def test_journal_then_resume_cli(self, tmp_path, capsys):
        journal = str(tmp_path / "grid.jsonl")
        assert runner_main(["tab05,fig10", "--journal", journal]) == 0
        capsys.readouterr()
        assert os.path.getsize(journal) > 0
        assert runner_main(["tab05,fig10", "--journal", journal, "--resume"]) == 0
        out = capsys.readouterr().out
        assert "2 from journal" in out
        assert "2/2 cells ok" in out

    def test_resume_without_journal_rejected(self, capsys):
        assert runner_main(["tab05", "--resume"]) == 2
        assert "--journal" in capsys.readouterr().err

    def test_verbose_errors_prints_traceback(self, capsys):
        assert runner_main(["tab05", "--seeds", "0", "--verbose-errors"]) == 0
        out = capsys.readouterr().out
        assert "traceback" not in out  # healthy cells stay quiet
        # force a failure: valid experiment, invalid option via bad topology
        cells_exit = runner_main(
            ["fig06", "--seeds", "0,1", "--verbose-errors"])
        assert cells_exit == 0

    def test_verbose_errors_surfaces_failed_cell(self, capsys, monkeypatch):
        import repro.experiments.grid as grid_mod

        real = grid_mod.run_experiment_grid

        def with_failure(cells, jobs=None, **kwargs):
            bad = [GridCell(name="nope")] + list(cells)
            return real(bad, jobs=jobs, **kwargs)

        monkeypatch.setattr("repro.experiments.runner.run_experiment_grid",
                            with_failure)
        assert runner_main(["tab05", "--seeds", "0", "--verbose-errors"]) == 1
        out = capsys.readouterr().out
        assert "-- traceback for nope" in out
        assert "Traceback (most recent call last)" in out

    def test_retries_and_cell_timeout_flags_accepted(self, capsys):
        assert runner_main(["tab05", "--seeds", "0", "--retries", "1",
                            "--cell-timeout", "0"]) == 0
        assert "1/1 cells ok" in capsys.readouterr().out
