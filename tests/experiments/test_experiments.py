"""Integration tests: every experiment runs at tiny scale and reproduces the paper's
qualitative findings (the 'shape' of each table/figure)."""

import numpy as np
import pytest

from repro.experiments.common import run_experiment

# Cache experiment results per module run: several tests inspect the same experiment.
_cache = {}


def result_of(name, **kwargs):
    key = (name, tuple(sorted(kwargs.items())))
    if key not in _cache:
        _cache[key] = run_experiment(name, scale="tiny", seed=0, **kwargs)
    return _cache[key]


class TestAnalysisExperiments:
    def test_fig04_low_diameter_needs_few_paths(self):
        result = result_of("fig04")
        assert len(result.rows) == 15
        for row in result.rows:
            if "Clique" in row["topology"]:
                continue
            # D>=2 topologies: fewer than ~2% of pairs see 4+ collisions
            assert row["frac_pairs_ge4"] < 0.05
        clique_worst = max(r["max_collisions"] for r in result.rows
                           if "Clique" in r["topology"])
        sf_worst = max(r["max_collisions"] for r in result.rows
                       if "Slim Fly" in r["topology"])
        assert clique_worst > sf_worst

    def test_fig06_shortest_paths_fall_short(self):
        result = result_of("fig06")
        by_name = {r["topology"]: r for r in result.rows}
        assert by_name["SF"]["frac_single_shortest"] > 0.5
        assert by_name["DF"]["frac_single_shortest"] > 0.5
        assert by_name["FT3"]["frac_single_shortest"] < 0.2
        # Jellyfish equivalents are "smoothed out" relative to SF
        assert by_name["SF-JF"]["frac_single_shortest"] < by_name["SF"]["frac_single_shortest"] + 0.2

    def test_fig07_almost_minimal_paths_plentiful(self):
        result = result_of("fig07")
        diameters = {"SF": 2, "SF-JF": 2, "DF": 3, "HX3": 3}
        for row in result.rows:
            # at "almost minimal" length (diameter + 1) most pairs have >= 3 paths
            if row["l"] >= diameters[row["topology"]] + 1:
                assert row["frac_ge3"] > 0.6
            # counts are bounded by the radix
            assert row["mean_frac_of_radix"] <= 1.0

    def test_fig08_interference_peaks_at_mid_lengths(self):
        result = result_of("fig08")
        sf_rows = {r["l"]: r for r in result.rows if r["topology"] == "SF"}
        # PI at l=3/4 is at least as large as at l=2 for SF
        assert sf_rows[3]["mean"] >= sf_rows[2]["mean"] - 0.5
        ft_rows = [r for r in result.rows if r["topology"] == "FT3"]
        # fat trees show (near-)zero interference
        assert all(r["mean"] <= 1.0 for r in ft_rows)

    def test_tab04_shape(self):
        result = result_of("tab04")
        by_name = {r["topology"]: r for r in result.rows}
        assert by_name["CLIQUE"]["CDP_mean_pct"] == pytest.approx(100, abs=5)
        assert by_name["FT3"]["PI_mean_pct"] <= 5
        assert by_name["SF"]["CDP_mean_pct"] > 50
        # deterministic SF has a worse 1% tail than its Jellyfish equivalent
        assert by_name["SF"]["CDP_tail1_pct"] <= by_name["SF-JF"]["CDP_tail1_pct"] + 5

    def test_tab05_parameters(self):
        result = result_of("tab05")
        by_name = {r["short_name"]: r for r in result.rows}
        assert by_name["SF"]["Nr"] == 50 and by_name["SF"]["k_prime"] == 7
        assert by_name["SF"]["measured_diameter"] == 2
        assert by_name["FT3"]["measured_diameter"] == 4

    def test_tab01_fatpaths_unique(self):
        result = result_of("tab01")
        assert result.rows[0]["name"] == "FatPaths"

    def test_fig10_costs_comparable(self):
        result = result_of("fig10")
        rel = {r["topology"]: r["relative_cost"] for r in result.rows}
        assert max(rel.values()) < 3.0
        assert rel["HX3"] >= min(rel.values())

    def test_fig19_density_and_radix(self):
        result = result_of("fig19")
        df_rows = [r for r in result.rows if r["topology"] == "DF"]
        sf_rows = [r for r in result.rows if r["topology"] == "SF"]
        # DF (diameter 3) needs more cables per endpoint than SF (diameter 2)
        assert np.mean([r["edge_density"] for r in df_rows]) > \
            np.mean([r["edge_density"] for r in sf_rows])
        # At the largest class in the sweep, the diameter-2 HyperX needs a larger radix
        # than the fat tree for a comparable N (the asymptotic trend of Fig 19).
        largest = max({r["size_class"] for r in result.rows},
                      key=lambda c: max(r["N"] for r in result.rows if r["size_class"] == c))
        rows = [r for r in result.rows if r["size_class"] == largest]
        ft = next(r for r in rows if r["topology"] == "FT3")
        hx2 = next(r for r in rows if r["topology"] == "HX2")
        assert ft["router_radix"] <= hx2["router_radix"]


class TestThroughputExperiments:
    def test_fig09_fatpaths_leads_on_low_diameter(self):
        result = result_of("fig09")
        for row in result.rows:
            best_fatpaths = max(row["fatpaths_interference"], row["fatpaths_random"])
            assert best_fatpaths >= row["past"] - 1e-9
            if row["topology"] in ("DF", "HX3", "XP"):
                assert best_fatpaths >= row["spain"] - 1e-9

    def test_fig02_low_diameter_beats_fat_tree(self):
        result = result_of("fig02")
        largest = max(r["flow_size_KiB"] for r in result.rows)
        rows = [r for r in result.rows if r["flow_size_KiB"] == largest]
        ft = next(r for r in rows if r["topology"] == "FT3")
        for name in ("SF", "XP"):
            low_diam = next(r for r in rows if r["topology"] == name)
            assert low_diam["throughput_mean_MiBs"] >= 0.95 * ft["throughput_mean_MiBs"]

    def test_fig11_nonminimal_multipathing_helps_sf_df(self):
        result = result_of("fig11")
        largest = max(r["flow_size_KiB"] for r in result.rows)

        def row_of(topo, stack):
            return next(r for r in result.rows
                        if r["topology"] == topo and r["stack"] == stack
                        and r["flow_size_KiB"] == largest)

        # Dragonfly is the clearest case in the paper: non-minimal multipathing must
        # improve both the tail and the mean over the minimal-path baseline.
        df_fat, df_ndp = row_of("DF", "fatpaths"), row_of("DF", "ndp")
        assert df_fat["throughput_tail1_MiBs"] > df_ndp["throughput_tail1_MiBs"]
        assert df_fat["throughput_mean_MiBs"] > df_ndp["throughput_mean_MiBs"]
        # On the tiny Slim Fly instance FatPaths must at least stay competitive.
        sf_fat, sf_ndp = row_of("SF", "fatpaths"), row_of("SF", "ndp")
        assert sf_fat["throughput_mean_MiBs"] >= 0.85 * sf_ndp["throughput_mean_MiBs"]

    def test_fig12_more_layers_do_not_hurt(self):
        result = result_of("fig12")
        for topo in ("SF", "DF"):
            rows = [r for r in result.rows if r["topology"] == topo]
            few = min(rows, key=lambda r: r["n_layers"])
            many = max(rows, key=lambda r: r["n_layers"])
            assert many["fct_p99_ms"] <= few["fct_p99_ms"] * 1.5
            assert many["mean_paths"] >= few["mean_paths"]

    def test_fig13_rows_present(self):
        result = result_of("fig13")
        assert {r["topology"] for r in result.rows} == {"SF", "SF-JF", "DF"}
        assert result.meta["fct_histograms"]

    def test_fig14_fatpaths_speedups(self):
        result = result_of("fig14")
        for row in result.rows:
            if row["variant"] == "ecmp":
                assert row["speedup_mean"] == pytest.approx(1.0)
        # FatPaths with non-minimal layers (rho=0.6) never loses to ECMP on mean FCT and
        # improves it somewhere on SF/DF; the larger tail gains of the paper emerge at
        # bigger scales (see EXPERIMENTS.md).
        fp_rows = [r for r in result.rows if r["variant"] == "fatpaths_rho0.6"
                   and r["topology"] in ("SF", "DF")]
        assert all(r["speedup_mean"] >= 0.98 and r["speedup_p99"] >= 0.9 for r in fp_rows)
        assert any(r["speedup_mean"] >= 1.03 for r in fp_rows)

    def test_fig15_ecmp_has_heavier_tail(self):
        result = result_of("fig15")
        by_series = {r["series"]: r for r in result.rows}
        assert by_series["ecmp"]["tail_over_mean"] >= by_series["fatpaths_tcp"]["tail_over_mean"] - 0.3
        assert by_series["queueing_model"]["fct_mean_ms"] > 0

    def test_fig16_nonminimal_rho_helps_sf_tail(self):
        result = result_of("fig16")
        sf_rows = {r["rho"]: r for r in result.rows if r["topology"] == "SF"}
        best_nonminimal = min(v["fct_p99_ms"] for rho, v in sf_rows.items() if rho < 1)
        assert best_nonminimal <= sf_rows[1.0]["fct_p99_ms"] * 1.1

    def test_fig17_fatpaths_best_completion(self):
        result = result_of("fig17")
        for topo in {r["topology"] for r in result.rows}:
            rows = [r for r in result.rows if r["topology"] == topo]
            fp = [r["speedup_vs_ecmp"] for r in rows if r["variant"].startswith("fatpaths")]
            assert max(fp) >= 0.95

    def test_fig20_saturation(self):
        result = result_of("fig20")
        rates = sorted(r["lambda"] for r in result.rows)
        fct_by_rate = {r["lambda"]: r["fct_mean_ms"] for r in result.rows}
        # FCT grows with the arrival rate once past saturation
        assert fct_by_rate[rates[-1]] > fct_by_rate[rates[0]]


class TestRegistryScenarios:
    """Qualitative shapes of the registry scenarios beyond the paper's figures."""

    def test_incast_hotspot_bound(self):
        result = result_of("incast")
        assert {r["stack"] for r in result.rows} == {"fatpaths", "ndp", "ecmp"}
        for row in result.rows:
            # the hotspot NIC bounds throughput: nobody exceeds the 10G line rate
            assert row["throughput_mean_MiBs"] <= 10e9 / 8 / 2**20 * 1.01
            assert row["fct_p99_ms"] >= row["fct_p50_ms"]
        # adaptive stacks never lose to static ECMP hashing on the same topology
        by_key = {(r["topology"], r["stack"]): r for r in result.rows}
        for topo in {r["topology"] for r in result.rows}:
            assert by_key[(topo, "fatpaths")]["fct_p99_ms"] <= \
                by_key[(topo, "ecmp")]["fct_p99_ms"] * 1.05

    def test_failures_reroutes_and_degradation(self):
        result = result_of("failures")
        assert {r["stack"] for r in result.rows} == {"fatpaths", "ndp", "ecmp"}
        # the fault machinery is stack-independent, so every stack on a topology
        # sees the same schedule (same sampled links) and the same flow count
        by_topo = {}
        for row in result.rows:
            by_topo.setdefault(row["topology"], []).append(row)
        for rows in by_topo.values():
            assert len({r["failed_links"] for r in rows}) == len(
                {r["fail_fraction"] for r in rows})
            assert len({r["flows"] for r in rows}) == 1
        for row in result.rows:
            assert row["failed_links"] >= 1
            assert row["reroutes"] >= 0 and row["stalls"] >= 0
            assert row["fct_p99_ms"] >= row["fct_p50_ms"]
        # the outage must actually displace someone somewhere in the sweep
        assert sum(r["reroutes"] + r["stalls"] for r in result.rows) > 0

    def test_shuffle_fatpaths_competitive(self):
        result = result_of("shuffle")
        assert {r["stack"] for r in result.rows} == {"fatpaths", "ndp", "letflow"}
        by_key = {(r["topology"], r["stack"]): r for r in result.rows}
        # on the single-shortest-path topologies FatPaths' non-minimal layers must
        # at least match the minimal-path stacks' mean throughput
        for topo in ("SF", "DF"):
            fat = by_key[(topo, "fatpaths")]["throughput_mean_MiBs"]
            ndp = by_key[(topo, "ndp")]["throughput_mean_MiBs"]
            assert fat >= 0.9 * ndp
