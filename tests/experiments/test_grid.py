"""Tests for the parallel experiment grid runner."""

import pytest

from repro.experiments.common import run_experiment
from repro.experiments.grid import (
    GridCell,
    GridSummary,
    make_grid,
    run_experiment_grid,
    split_heavy_cells,
    splittable_families,
)
from repro.experiments.runner import main as runner_main


class TestMakeGrid:
    def test_cross_product(self):
        cells = make_grid(["fig06", "tab05"], scales=["tiny"], seeds=[0, 1])
        assert len(cells) == 4
        assert {(c.name, c.seed) for c in cells} == {
            ("fig06", 0), ("fig06", 1), ("tab05", 0), ("tab05", 1)}

    def test_invalid_scale_rejected(self):
        with pytest.raises(ValueError):
            make_grid(["fig06"], scales=["huge"])

    def test_kwargs_frozen_into_cells(self):
        cells = make_grid(["fig06"], kwargs={"num_samples": 10})
        assert cells[0].kwargs == (("num_samples", 10),)


class TestSplitHeavyCells:
    def test_heavy_cells_fan_out_per_topology(self):
        cells = split_heavy_cells(make_grid(["fig07", "tab05"], seeds=[0]))
        families = splittable_families("fig07")
        assert families == ("SF", "SF-JF", "DF", "HX3")
        fig07_cells = [c for c in cells if c.name == "fig07"]
        topos = [dict(c.kwargs)["topologies"] for c in fig07_cells]
        assert topos == [(t,) for t in families]
        # non-splittable experiments pass through unchanged
        assert [c for c in cells if c.name == "tab05"] == [GridCell(name="tab05")]

    def test_explicit_topology_selection_not_resplit(self):
        cell = GridCell(name="fig07", kwargs=(("topologies", ("SF",)),))
        assert split_heavy_cells([cell]) == [cell]

    def test_splittable_families_derived_from_modules(self):
        """Families come from each module's TOPOLOGY_NAMES (no drift possible)."""
        assert splittable_families("fig06") == ("SF", "DF", "HX3", "XP", "FT3")
        assert splittable_families("tab04") == ("CLIQUE", "SF", "XP", "HX3", "DF", "FT3")
        assert splittable_families("tab05") is None   # no TOPOLOGY_NAMES attr
        assert splittable_families("nope") is None    # unknown experiment
        # the heavy simulation experiments are splittable since PR 3
        assert splittable_families("fig02") == ("SF", "DF", "HX3", "XP", "FT3")
        assert splittable_families("fig11") == ("SF", "DF", "HX3", "XP", "FT3")

    def test_fig02_split_rows_equal_unsplit_rows(self):
        """The simulation experiments keep the splittable contract: per-family cells
        reproduce the full run's rows exactly (per-family RNG + batched engine)."""
        full = run_experiment("fig02", scale="tiny", seed=1)
        cells = split_heavy_cells([GridCell(name="fig02", scale="tiny", seed=1)])
        results = run_experiment_grid(cells)
        combined = [row for r in results for row in r.result.rows]
        assert combined == full.rows

    def test_label_shows_topology(self):
        cell = split_heavy_cells([GridCell(name="fig07")])[0]
        assert "topo=SF" in cell.label()

    def test_split_rows_equal_unsplit_rows(self):
        """Per-topology cells must reproduce the full run's rows exactly."""
        full = run_experiment("fig07", scale="tiny", seed=3)
        cells = split_heavy_cells([GridCell(name="fig07", scale="tiny", seed=3)])
        results = run_experiment_grid(cells)
        combined = [row for r in results for row in r.result.rows]
        assert combined == full.rows

    def test_unknown_topology_selection_fails_loudly(self):
        with pytest.raises(ValueError):
            run_experiment("fig07", scale="tiny", seed=0, topologies=["NOPE"])


class TestRunGrid:
    def test_serial_grid_runs(self):
        results = run_experiment_grid(make_grid(["tab05"], seeds=[0]))
        assert len(results) == 1
        assert results[0].ok
        assert results[0].result.rows

    def test_parallel_matches_serial(self):
        cells = make_grid(["tab05", "fig06"], seeds=[0])
        serial = run_experiment_grid(cells, jobs=None)
        parallel = run_experiment_grid(cells, jobs=2)
        assert [r.cell for r in serial] == [r.cell for r in parallel]
        for s, p in zip(serial, parallel):
            assert s.ok and p.ok
            assert s.result.rows == p.result.rows

    def test_failures_are_captured_per_cell(self):
        cells = [GridCell(name="nope"), GridCell(name="tab05")]
        results = run_experiment_grid(cells)
        assert not results[0].ok and "KeyError" in results[0].error
        assert results[0].traceback and "KeyError" in results[0].traceback
        assert results[1].ok
        summary = GridSummary(results=results)
        assert summary.num_ok == 1 and summary.num_failed == 1
        assert "FAILED" in summary.report()

    def test_plain_executor_matches_resilient(self):
        cells = make_grid(["tab05"], seeds=[0, 1])
        plain = run_experiment_grid(cells, jobs=2, executor="plain")
        resilient = run_experiment_grid(cells, jobs=2)
        assert all(r.ok for r in plain)
        for p, r in zip(plain, resilient):
            assert p.result.rows == r.result.rows

    def test_plain_executor_rejects_resilience_options(self):
        with pytest.raises(ValueError):
            run_experiment_grid([GridCell(name="tab05")], executor="plain",
                                resume=True, journal="x.jsonl")
        with pytest.raises(ValueError):
            run_experiment_grid([GridCell(name="tab05")], executor="bogus")

    def test_report_aligns_labels_and_shows_attempts(self):
        cells = split_heavy_cells([GridCell(name="fig06")])[:2] \
            + [GridCell(name="tab05")]
        results = run_experiment_grid(cells)
        report = GridSummary(results=results).report()
        lines = report.splitlines()
        # every cell line pads its label to the longest label's width
        width = max(len(c.label()) for c in cells)
        for line in lines[:-1]:
            assert line.index(" rows=") > width
            assert "attempts=1" in line
        assert lines[-1].startswith("-- 3/3 cells ok")


class TestRunnerCLI:
    def test_grid_mode_via_cli(self, capsys):
        assert runner_main(["tab05", "--seeds", "0,1", "--jobs", "2"]) == 0
        out = capsys.readouterr().out
        assert "2/2 cells ok" in out
        assert "2 workers" in out

    def test_seed_range_spec(self, capsys):
        assert runner_main(["tab05", "--seeds", "0:2"]) == 0
        assert "3/3 cells ok" in capsys.readouterr().out

    def test_unknown_experiment_rejected(self, capsys):
        assert runner_main(["fig99"]) == 2

    def test_single_experiment_still_prints_report(self, capsys):
        assert runner_main(["tab05", "--scale", "tiny"]) == 0
        assert "reproduces" in capsys.readouterr().out
