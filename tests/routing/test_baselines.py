"""Tests for the baseline routing schemes (ECMP, k-SP, Valiant, SPAIN, PAST, Table I)."""

import numpy as np
import pytest

from repro.routing import (
    EcmpRouting,
    KShortestPathsRouting,
    PastRouting,
    SpainRouting,
    ValiantRouting,
)
from repro.routing.comparison import (
    FEATURES,
    ROUTING_SCHEME_TABLE,
    YES,
    feature_table,
    only_fully_supporting_scheme,
)
from repro.routing.spain import _is_acyclic, _vlan_compatible, build_spain_layers


def _assert_valid_paths(topology, paths, s, t):
    adjacency = topology.adjacency()
    for path in paths:
        assert path[0] == s and path[-1] == t
        for u, v in zip(path, path[1:]):
            assert v in adjacency[u]


class TestEcmp:
    def test_minimal_paths_only(self, sf_tiny):
        routing = EcmpRouting(sf_tiny, max_paths=4, seed=0)
        dist = sf_tiny.bfs_distances(0)
        for t in (7, 20, 45):
            paths = routing.router_paths(0, t)
            _assert_valid_paths(sf_tiny, paths, 0, t)
            for p in paths:
                assert len(p) - 1 == dist[t]

    def test_single_minimal_path_on_slim_fly(self, sf_tiny):
        """On SF most pairs have exactly one shortest path, so ECMP degenerates."""
        routing = EcmpRouting(sf_tiny, max_paths=8, seed=0)
        rng = np.random.default_rng(0)
        singles = 0
        total = 40
        for _ in range(total):
            s, t = rng.choice(sf_tiny.num_routers, size=2, replace=False)
            if len(routing.router_paths(int(s), int(t))) == 1:
                singles += 1
        assert singles / total > 0.5

    def test_fat_tree_has_multiple_minimal_paths(self, ft_tiny):
        routing = EcmpRouting(ft_tiny, max_paths=8, seed=0)
        edge_routers = ft_tiny.endpoint_routers
        # two edge switches in different pods
        s, t = edge_routers[0], edge_routers[-1]
        assert len(routing.router_paths(s, t)) >= 3

    def test_same_router(self, sf_tiny):
        assert EcmpRouting(sf_tiny).router_paths(3, 3) == [[3]]

    def test_cache(self, sf_tiny):
        routing = EcmpRouting(sf_tiny, seed=0)
        assert routing.router_paths(0, 10) is routing.router_paths(0, 10)

    def test_max_paths_validation(self, sf_tiny):
        with pytest.raises(ValueError):
            EcmpRouting(sf_tiny, max_paths=0)


class TestKsp:
    def test_paths_sorted_by_length(self, sf_tiny):
        routing = KShortestPathsRouting(sf_tiny, k=5)
        paths = routing.router_paths(0, 37)
        lengths = [len(p) for p in paths]
        assert lengths == sorted(lengths)
        assert len(paths) == 5
        _assert_valid_paths(sf_tiny, paths, 0, 37)

    def test_includes_nonminimal_paths(self, sf_tiny):
        routing = KShortestPathsRouting(sf_tiny, k=4)
        paths = routing.router_paths(0, 37)
        dmin = len(paths[0])
        assert any(len(p) > dmin for p in paths)

    def test_k_validation(self, sf_tiny):
        with pytest.raises(ValueError):
            KShortestPathsRouting(sf_tiny, k=0)

    def test_same_router(self, sf_tiny):
        assert KShortestPathsRouting(sf_tiny).router_paths(2, 2) == [[2]]


class TestValiant:
    def test_paths_valid_and_nonminimal(self, sf_tiny):
        routing = ValiantRouting(sf_tiny, num_paths=4, seed=0)
        paths = routing.router_paths(0, 37)
        _assert_valid_paths(sf_tiny, paths, 0, 37)
        assert 1 <= len(paths) <= 4

    def test_average_length_roughly_doubles(self, sf_tiny):
        """VLB approximately doubles the average path length vs minimal routing."""
        vlb = ValiantRouting(sf_tiny, num_paths=3, seed=0)
        ecmp = EcmpRouting(sf_tiny, seed=0)
        assert vlb.average_path_length(num_samples=60) > 1.4 * ecmp.average_path_length(num_samples=60)

    def test_num_paths_validation(self, sf_tiny):
        with pytest.raises(ValueError):
            ValiantRouting(sf_tiny, num_paths=0)


class TestSpain:
    def test_vlan_compatibility(self):
        assert _vlan_compatible([0, 1, 2, 9], [3, 1, 2, 9])
        assert not _vlan_compatible([0, 1, 2, 9], [3, 1, 4, 9])

    def test_acyclicity_check(self):
        assert _is_acyclic(4, {(0, 1), (1, 2), (2, 3)})
        assert not _is_acyclic(3, {(0, 1), (1, 2), (0, 2)})

    def test_layers_are_forests(self, sf_tiny):
        layer_set = build_spain_layers(sf_tiny, paths_per_pair=2,
                                       destinations=list(range(0, 50, 10)), seed=0)
        for layer in layer_set:
            assert _is_acyclic(sf_tiny.num_routers, set(layer.edges))
            assert len(layer) <= sf_tiny.num_routers - 1

    def test_routing_returns_valid_paths(self, sf_tiny):
        routing = SpainRouting(sf_tiny, paths_per_pair=2,
                               destinations=list(range(0, 50, 10)), seed=0)
        paths = routing.router_paths(3, 27)
        assert len(paths) >= 1
        _assert_valid_paths(sf_tiny, paths, 3, 27)

    def test_max_layers_cap(self, sf_tiny):
        layer_set = build_spain_layers(sf_tiny, paths_per_pair=2,
                                       destinations=list(range(0, 50, 10)),
                                       seed=0, max_layers=3)
        assert len(layer_set) <= 3

    def test_needs_more_layers_than_fatpaths(self, sf_tiny):
        """SPAIN's forest layers force many more layers than FatPaths' O(1) (paper §VI-B)."""
        layer_set = build_spain_layers(sf_tiny, paths_per_pair=3,
                                       destinations=list(range(0, 50, 5)), seed=0)
        assert len(layer_set) > 4


class TestPast:
    def test_single_path_per_pair(self, sf_tiny):
        routing = PastRouting(sf_tiny, seed=0)
        paths = routing.router_paths(0, 41)
        assert len(paths) == 1
        _assert_valid_paths(sf_tiny, paths, 0, 41)

    def test_shortest_variant_is_minimal(self, sf_tiny):
        routing = PastRouting(sf_tiny, variant="shortest", seed=0)
        dist = sf_tiny.bfs_distances(17)
        for s in (0, 5, 33):
            path = routing.router_path(s, 17)
            assert len(path) - 1 == dist[s]

    def test_nonminimal_variant_valid(self, sf_tiny):
        routing = PastRouting(sf_tiny, variant="nonminimal", seed=0)
        for s, t in [(0, 17), (5, 40), (22, 3)]:
            path = routing.router_path(s, t)
            _assert_valid_paths(sf_tiny, [path], s, t)

    def test_tree_count_is_linear_in_destinations(self, sf_tiny):
        assert PastRouting(sf_tiny).tree_count() == sf_tiny.num_routers

    def test_variant_validation(self, sf_tiny):
        with pytest.raises(ValueError):
            PastRouting(sf_tiny, variant="magic")

    def test_identity_pair(self, sf_tiny):
        assert PastRouting(sf_tiny).router_path(4, 4) == [4]


class TestComparisonTable:
    def test_fatpaths_is_unique_full_scheme(self):
        assert only_fully_supporting_scheme() == "FatPaths"

    def test_every_scheme_has_all_features(self):
        for scheme in ROUTING_SCHEME_TABLE.values():
            for f in FEATURES:
                assert getattr(scheme, f) in ("yes", "limited", "no")

    def test_known_rows(self):
        assert ROUTING_SCHEME_TABLE["ECMP"].NP == "no"
        assert ROUTING_SCHEME_TABLE["PAST"].MP == "no"
        assert ROUTING_SCHEME_TABLE["SPAIN"].MP == YES

    def test_feature_table_rows(self):
        rows = feature_table(sort_by_score=True)
        assert rows[0]["name"] == "FatPaths"
        assert len(rows) == len(ROUTING_SCHEME_TABLE)
