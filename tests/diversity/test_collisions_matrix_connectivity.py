"""Tests for collision analysis, matrix path counting and algebraic connectivity."""

import networkx as nx
import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.diversity.collisions import (
    collision_histogram,
    collisions_per_router_pair,
    fraction_with_at_least,
    max_collisions,
    required_disjoint_paths,
)
from repro.diversity.connectivity import (
    algebraic_edge_connectivity,
    algebraic_vertex_connectivity,
)
from repro.diversity.disjoint_paths import count_disjoint_paths
from repro.diversity.matrixcount import (
    count_paths_matrix,
    count_shortest_paths,
    next_hop_sets,
)
from repro.topologies import complete_graph, jellyfish
from repro.topologies.base import Topology


def ring(n):
    return Topology("ring", n, [(i, (i + 1) % n) for i in range(n)], 1)


class TestCollisions:
    def test_per_pair_counts(self, sf_tiny):
        p = sf_tiny.concentration
        # two endpoint pairs that map to the same router pair collide
        pairs = [(0, 3 * p), (1, 3 * p + 1), (2 * p, 5 * p)]
        counts = collisions_per_router_pair(sf_tiny, pairs)
        r0 = sf_tiny.router_of_endpoint(0)
        r3 = sf_tiny.router_of_endpoint(3 * p)
        assert counts[(r0, r3)] == 2

    def test_same_router_flows_skipped(self, sf_tiny):
        pairs = [(0, 1)]  # both endpoints on router 0
        assert collisions_per_router_pair(sf_tiny, pairs) == {}

    def test_mapping_applied(self, sf_tiny):
        p = sf_tiny.concentration
        pairs = [(0, 1)]
        mapping = list(range(sf_tiny.num_endpoints))
        mapping[1] = p  # move logical endpoint 1 to router 1
        counts = collisions_per_router_pair(sf_tiny, pairs, mapping)
        assert counts == {(sf_tiny.router_of_endpoint(0), sf_tiny.router_of_endpoint(p)): 1}

    def test_histogram_and_helpers(self, sf_tiny):
        p = sf_tiny.concentration
        pairs = [(0, 3 * p), (1, 3 * p + 1), (2 * p, 5 * p)]
        hist = collision_histogram(sf_tiny, pairs)
        assert hist == {1: 1, 2: 1}
        assert fraction_with_at_least(hist, 2) == pytest.approx(0.5)
        assert max_collisions(hist) == 2
        assert fraction_with_at_least({}, 2) == 0.0
        assert max_collisions({}) == 0

    def test_required_disjoint_paths_random_permutation(self, sf_tiny):
        """Random permutation traffic on a D=2 topology needs only a few disjoint paths."""
        rng = np.random.default_rng(0)
        n = sf_tiny.num_endpoints
        perm = rng.permutation(n)
        pairs = [(i, int(perm[i])) for i in range(n)]
        needed = required_disjoint_paths(sf_tiny, {"perm": pairs})
        assert 1 <= needed <= 4


class TestMatrixCounting:
    def test_walk_counts_match_theory_on_ring(self):
        t = ring(5)
        m2 = count_paths_matrix(t, 2)
        # two-step walks from a vertex back to itself: via both neighbours
        assert m2[0, 0] == 2
        assert m2[0, 2] == 1

    def test_rejects_bad_length(self):
        with pytest.raises(ValueError):
            count_paths_matrix(ring(4), 0)

    def test_shortest_path_counts_clique(self):
        t = complete_graph(5)
        counts = count_shortest_paths(t)
        assert (counts[np.triu_indices(5, 1)] == 1).all()
        assert (np.diag(counts) == 0).all()

    def test_shortest_path_counts_match_networkx(self, sf_tiny):
        counts = count_shortest_paths(sf_tiny)
        g = sf_tiny.to_networkx()
        rng = np.random.default_rng(0)
        for _ in range(5):
            s, t = rng.choice(sf_tiny.num_routers, size=2, replace=False)
            expected = len(list(nx.all_shortest_paths(g, int(s), int(t))))
            assert counts[s, t] == expected

    def test_next_hop_sets_ring(self):
        t = ring(6)
        hops = next_hop_sets(t, 3)
        # from 0 to 3 the ring needs 3 hops either way: both neighbours are valid
        assert hops[0][3] == {1, 5}
        # from 0 to 1, within 3 hops only the direct neighbour starts a valid walk
        assert 1 in hops[0][1]
        # diagonal empty
        assert hops[2][2] == set()

    def test_next_hop_sets_rejects_bad_length(self):
        with pytest.raises(ValueError):
            next_hop_sets(ring(4), 0)


class TestAlgebraicConnectivity:
    def test_edge_connectivity_matches_exact_on_small_graphs(self):
        t = jellyfish(12, 4, 1, seed=0)
        g = t.to_networkx()
        rng = np.random.default_rng(0)
        for _ in range(5):
            s, d = rng.choice(12, size=2, replace=False)
            exact = nx.edge_connectivity(g, int(s), int(d))
            algebraic = algebraic_edge_connectivity(t, int(s), int(d), max_len=12)
            assert algebraic == exact

    def test_edge_connectivity_length_limited_ring(self):
        t = ring(8)
        # opposite vertices: no path within 3 hops, both 4-hop paths at l=4
        assert algebraic_edge_connectivity(t, 0, 4, max_len=3) == 0
        assert algebraic_edge_connectivity(t, 0, 4, max_len=4) == 2

    def test_edge_connectivity_bounded_by_greedy_and_degree(self, sf_tiny):
        rng = np.random.default_rng(3)
        for _ in range(3):
            s, d = rng.choice(sf_tiny.num_routers, size=2, replace=False)
            alg = algebraic_edge_connectivity(sf_tiny, int(s), int(d), max_len=3)
            greedy = count_disjoint_paths(sf_tiny, int(s), int(d), 3)
            assert greedy <= alg <= sf_tiny.network_radix

    def test_vertex_connectivity_ring(self):
        t = ring(8)
        assert algebraic_vertex_connectivity(t, 0, 4, max_len=4) == 2

    def test_vertex_connectivity_rejects_adjacent(self):
        with pytest.raises(ValueError):
            algebraic_vertex_connectivity(ring(6), 0, 1, max_len=3)

    def test_vertex_connectivity_matches_networkx(self):
        t = jellyfish(14, 4, 1, seed=1)
        g = t.to_networkx()
        rng = np.random.default_rng(1)
        checked = 0
        for _ in range(20):
            s, d = (int(x) for x in rng.choice(14, size=2, replace=False))
            if g.has_edge(s, d):
                continue
            exact = nx.node_connectivity(g, s, d)
            alg = algebraic_vertex_connectivity(t, s, d, max_len=14)
            assert alg == exact
            checked += 1
            if checked >= 4:
                break
        assert checked > 0

    @given(seed=st.integers(min_value=0, max_value=50))
    @settings(max_examples=10, deadline=None)
    def test_edge_connectivity_never_exceeds_min_degree(self, seed):
        t = jellyfish(10, 3, 1, seed=seed)
        rng = np.random.default_rng(seed)
        s, d = (int(x) for x in rng.choice(10, size=2, replace=False))
        assert algebraic_edge_connectivity(t, s, d, max_len=10) <= 3

    def test_invalid_arguments(self):
        t = ring(6)
        with pytest.raises(ValueError):
            algebraic_edge_connectivity(t, 1, 1, 3)
        with pytest.raises(ValueError):
            algebraic_edge_connectivity(t, 0, 1, 0)
        with pytest.raises(ValueError):
            algebraic_vertex_connectivity(t, 2, 2, 3)
