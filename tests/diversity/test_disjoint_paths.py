"""Tests for length-limited disjoint-path counting (CDP)."""

import networkx as nx
import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.diversity.disjoint_paths import (
    count_disjoint_paths,
    count_disjoint_paths_sets,
    disjoint_path_distribution,
)
from repro.topologies import complete_graph, jellyfish
from repro.topologies.base import Topology


def ring(n):
    return Topology("ring", n, [(i, (i + 1) % n) for i in range(n)], 1)


class TestPairCounts:
    def test_single_path_graph(self):
        t = Topology("path", 4, [(0, 1), (1, 2), (2, 3)], 1)
        assert count_disjoint_paths(t, 0, 3, 3) == 1
        assert count_disjoint_paths(t, 0, 3, 2) == 0

    def test_ring_has_two_paths(self):
        t = ring(6)
        # distances 3 both ways around the ring
        assert count_disjoint_paths(t, 0, 3, 3) == 2
        # limiting the length to 2 hops removes both
        assert count_disjoint_paths(t, 0, 3, 2) == 0

    def test_clique_adjacent_pair(self):
        t = complete_graph(6)
        # one direct edge plus 4 two-hop paths through the other vertices
        assert count_disjoint_paths(t, 0, 1, 1) == 1
        assert count_disjoint_paths(t, 0, 1, 2) == 5

    def test_same_router_rejected(self):
        with pytest.raises(ValueError):
            count_disjoint_paths(ring(4), 1, 1, 2)

    def test_bad_length_rejected(self):
        with pytest.raises(ValueError):
            count_disjoint_paths(ring(4), 0, 1, 0)

    def test_return_paths_are_edge_disjoint(self, sf_tiny):
        count, paths = count_disjoint_paths(sf_tiny, 0, 30, 3, return_paths=True)
        assert count == len(paths)
        used = set()
        for path in paths:
            assert len(path) - 1 <= 3
            for u, v in zip(path, path[1:]):
                key = (min(u, v), max(u, v))
                assert key not in used
                used.add(key)

    def test_lower_bounds_maxflow_when_not_length_limited(self, sf_tiny):
        """The greedy count is a lower bound on the true edge connectivity and is
        close to it on well-connected graphs."""
        g = sf_tiny.to_networkx()
        rng = np.random.default_rng(1)
        for _ in range(5):
            s, t = rng.choice(sf_tiny.num_routers, size=2, replace=False)
            exact = nx.edge_connectivity(g, int(s), int(t))
            greedy = count_disjoint_paths(sf_tiny, int(s), int(t), sf_tiny.num_routers)
            assert greedy <= exact
            assert greedy >= max(3, exact - 2)


class TestSetCounts:
    def test_set_to_set(self):
        t = ring(8)
        # A = {0}, B = {4}: two disjoint 4-hop paths
        assert count_disjoint_paths_sets(t, [0], [4], 4) == 2
        # A = {0, 4}, B = {2, 6}: each source reaches a target 2 hops away on both sides
        assert count_disjoint_paths_sets(t, [0, 4], [2, 6], 2) == 4

    def test_empty_sets_rejected(self):
        with pytest.raises(ValueError):
            count_disjoint_paths_sets(ring(4), [], [1], 2)

    def test_overlapping_sets_skip_zero_length(self):
        t = ring(6)
        count = count_disjoint_paths_sets(t, [0, 1], [1, 3], 3)
        assert count >= 1


class TestDistribution:
    def test_distribution_shape_and_range(self, sf_tiny):
        values = disjoint_path_distribution(sf_tiny, 2, num_samples=30,
                                            rng=np.random.default_rng(0))
        assert values.shape == (30,)
        assert (values >= 0).all()
        assert (values <= sf_tiny.network_radix).all()

    def test_explicit_pairs(self, clique_tiny):
        values = disjoint_path_distribution(clique_tiny, 2, pairs=[(0, 1), (2, 3)])
        assert list(values) == [11, 11]

    def test_paper_takeaway_three_almost_minimal_paths(self, sf_tiny, df_tiny):
        """Low-diameter topologies typically offer >= 3 disjoint "almost minimal"
        (diameter + 1 hop) paths per router pair; the tail below that consists of
        directly connected pairs (as the paper notes for SF)."""
        rng = np.random.default_rng(2)
        for topo in (sf_tiny, df_tiny):
            l = (topo.diameter_hint or 2) + 1
            values = disjoint_path_distribution(topo, l, num_samples=60, rng=rng)
            assert np.median(values) >= 3
            assert np.mean(values >= 3) > 0.6


@given(n=st.integers(min_value=6, max_value=12), k=st.integers(min_value=2, max_value=3),
       seed=st.integers(min_value=0, max_value=100))
@settings(max_examples=20, deadline=None)
def test_count_bounded_by_degree(n, k, seed):
    """c_l(s,t) can never exceed min(deg(s), deg(t))."""
    if (n * (k + 1)) % 2:
        n += 1
    t = jellyfish(n, k + 1, 1, seed=seed)
    rng = np.random.default_rng(seed)
    s, d = rng.choice(n, size=2, replace=False)
    count = count_disjoint_paths(t, int(s), int(d), 4)
    deg = t.degrees()
    assert count <= min(deg[s], deg[d])
