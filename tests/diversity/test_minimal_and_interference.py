"""Tests for minimal-path statistics, path interference and summary metrics."""

import numpy as np
import pytest

from repro.diversity.interference import interference_distribution, path_interference
from repro.diversity.metrics import (
    cdp_summary,
    choose_table4_distance,
    pi_summary,
    total_network_load,
)
from repro.diversity.minimal_paths import (
    minimal_path_counts,
    minimal_path_lengths,
    minimal_path_statistics,
)
from repro.topologies import complete_graph
from repro.topologies.base import Topology


def ring(n):
    return Topology("ring", n, [(i, (i + 1) % n) for i in range(n)], 1)


class TestMinimalPaths:
    def test_lengths_matrix(self):
        t = ring(6)
        lengths = minimal_path_lengths(t, [0])
        assert list(lengths[0]) == [0, 1, 2, 3, 2, 1]

    def test_counts_on_ring(self):
        t = ring(6)
        # opposite vertices have two shortest paths, adjacent only one
        assert list(minimal_path_counts(t, [(0, 3), (0, 1)])) == [2, 1]

    def test_counts_reject_equal_pair(self):
        with pytest.raises(ValueError):
            minimal_path_counts(ring(4), [(1, 1)])

    def test_statistics_on_clique(self):
        t = complete_graph(8)
        stats = minimal_path_statistics(t, num_samples=100)
        assert stats.length_histogram == {1: 1.0}
        assert stats.mean_length == 1.0
        # the single direct edge is the only shortest path
        assert stats.fraction_single_shortest_path == 1.0

    def test_statistics_fraction_sums_to_one(self, sf_tiny):
        stats = minimal_path_statistics(sf_tiny, num_samples=80, rng=np.random.default_rng(0))
        assert sum(stats.length_histogram.values()) == pytest.approx(1.0)
        assert sum(stats.count_histogram.values()) == pytest.approx(1.0)
        assert stats.num_pairs == 80

    def test_paper_finding_shortest_paths_fall_short(self, sf_tiny, df_tiny):
        """In SF and DF most router pairs have exactly one shortest path (Fig 6)."""
        for topo in (sf_tiny, df_tiny):
            stats = minimal_path_statistics(topo, num_samples=150,
                                            rng=np.random.default_rng(1))
            assert stats.fraction_single_shortest_path > 0.5

    def test_fat_tree_has_high_minimal_diversity(self, ft_tiny):
        """Fat trees have many shortest paths between (endpoint-hosting) edge switches
        (Fig 6): sampling is restricted to edge switches, where diversity is k/2 = 4."""
        stats = minimal_path_statistics(ft_tiny, num_samples=150,
                                        rng=np.random.default_rng(1))
        assert stats.fraction_single_shortest_path < 0.1
        assert stats.mean_count >= 3.5

    def test_as_rows(self, clique_tiny):
        rows = minimal_path_statistics(clique_tiny, num_samples=20).as_rows()
        assert any(r["metric"] == "l_min" for r in rows)
        assert any(r["metric"] == "c_min" for r in rows)


class TestPathInterference:
    def test_requires_distinct_routers(self):
        with pytest.raises(ValueError):
            path_interference(ring(8), 0, 1, 0, 3, 3)

    def test_no_interference_on_disjoint_ring_segments(self):
        t = ring(12)
        # pairs (0,1) and (6,7) live on opposite sides; 1-hop paths never share links
        assert path_interference(t, 0, 1, 6, 7, 1) == 0

    def test_full_interference_when_paths_identical(self):
        # path graph: flows 0->3 and 1->2 must share the middle link at l=3
        t = Topology("path", 4, [(0, 1), (1, 2), (2, 3)], 1)
        pi = path_interference(t, 0, 3, 1, 2, 3)
        assert pi >= 1

    def test_distribution_properties(self, sf_tiny):
        values = interference_distribution(sf_tiny, 3, num_samples=40,
                                           rng=np.random.default_rng(0))
        assert values.shape == (40,)
        assert (values >= 0).all()

    def test_clique_interference_small(self, clique_tiny):
        """Cliques have near-zero PI at l=2 (paper Table IV: 2%)."""
        values = interference_distribution(clique_tiny, 2, num_samples=30,
                                           rng=np.random.default_rng(0))
        assert values.mean() <= 2.5


class TestMetrics:
    def test_tnl_clique(self):
        t = complete_graph(10)
        # d = 1, so TNL = k' * Nr
        assert total_network_load(t) == pytest.approx(9 * 10)

    def test_tnl_with_explicit_path_length(self, sf_tiny):
        tnl_short = total_network_load(sf_tiny, average_path_length=1.5)
        tnl_long = total_network_load(sf_tiny, average_path_length=3.0)
        assert tnl_short == pytest.approx(2 * tnl_long)

    def test_tnl_rejects_nonpositive_d(self, sf_tiny):
        with pytest.raises(ValueError):
            total_network_load(sf_tiny, average_path_length=0)

    def test_cdp_summary_fields(self, sf_tiny):
        summary = cdp_summary(sf_tiny, 3, num_samples=30, rng=np.random.default_rng(0))
        row = summary.as_row()
        assert 0 < summary.mean <= sf_tiny.network_radix
        assert 0 <= summary.mean_fraction_of_radix <= 1
        assert row["metric"] == "CDP"

    def test_pi_summary_fields(self, sf_tiny):
        summary = pi_summary(sf_tiny, 3, num_samples=30, rng=np.random.default_rng(0))
        assert summary.metric == "PI"
        assert summary.tail_999pct >= summary.mean >= 0

    def test_choose_table4_distance_clique(self, clique_tiny):
        # a clique already offers >= 3 disjoint paths at l = 2
        assert choose_table4_distance(clique_tiny, num_samples=20) == 2

    def test_choose_table4_distance_sf(self, sf_tiny):
        # Slim Fly needs "almost minimal" paths: one or two hops above the diameter
        # (the tiny q=5 instance has a large fraction of adjacent router pairs, which
        # pushes the strict tail criterion one hop further than the paper's d'=3).
        assert choose_table4_distance(sf_tiny, num_samples=30) in (3, 4)
