"""Tests for traffic patterns."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.traffic.patterns import (
    TrafficPattern,
    adversarial_offdiagonal,
    all_patterns,
    broadcast_shuffle_pattern,
    incast_pattern,
    multiple_permutations,
    off_diagonal,
    random_permutation,
    random_uniform,
    shuffle_pattern,
    stencil_pattern,
)


class TestBasicPatterns:
    def test_random_uniform_no_self_traffic(self):
        p = random_uniform(100, np.random.default_rng(0))
        assert len(p) == 100
        assert all(s != t for s, t in p)

    def test_random_permutation_is_permutation(self):
        p = random_permutation(64, np.random.default_rng(1))
        assert sorted(p.destinations()) == list(range(64))
        assert p.sources() == list(range(64))

    def test_multiple_permutations_oversubscription(self):
        p = multiple_permutations(32, count=4, rng=np.random.default_rng(0))
        assert len(p) == 4 * 32
        assert p.oversubscription == 4

    def test_off_diagonal(self):
        p = off_diagonal(10, 3)
        assert (0, 3) in p.pairs
        assert (8, 1) in p.pairs
        assert len(p) == 10

    def test_off_diagonal_rejects_zero_offset(self):
        with pytest.raises(ValueError):
            off_diagonal(10, 10)

    def test_shuffle_is_rotation(self):
        p = shuffle_pattern(16)
        # rotl on 4 bits: 0b0001 -> 0b0010, 0b1000 -> 0b0001
        pairs = dict(p.pairs)
        assert pairs[1] == 2
        assert pairs[8] == 1

    def test_stencil_has_four_offsets(self):
        p = stencil_pattern(100)
        assert p.oversubscription == 4
        assert len(p) == 400
        destinations_of_0 = {t for s, t in p.pairs if s == 0}
        assert destinations_of_0 == {1, 99, 42, 58}

    def test_adversarial_offsets_align_with_routers(self):
        p = adversarial_offdiagonal(120, concentration=4)
        offset = p.meta["base_offset"]
        assert offset % 4 == 0
        assert len(p) == 120

    def test_adversarial_repeats(self):
        p = adversarial_offdiagonal(60, concentration=3, repeats=4)
        assert len(p) == 240
        assert p.oversubscription == 4

    def test_all_patterns_keys(self):
        patterns = all_patterns(64, concentration=4)
        assert set(patterns) == {"random_permutation", "off_diagonal", "shuffle",
                                 "four_permutations", "stencil"}

    def test_too_few_endpoints_rejected(self):
        with pytest.raises(ValueError):
            random_uniform(1)


class TestPatternOperations:
    def test_remap(self):
        p = off_diagonal(6, 1)
        mapping = [5, 4, 3, 2, 1, 0]
        q = p.remap(mapping)
        assert q.pairs[0] == (5, 4)

    def test_subsample(self):
        p = off_diagonal(100, 7)
        q = p.subsample(0.25, np.random.default_rng(0))
        assert len(q) == 25
        assert set(q.pairs) <= set(p.pairs)

    def test_subsample_full_is_identity(self):
        p = off_diagonal(10, 1)
        assert p.subsample(1.0) is p

    def test_subsample_rejects_bad_fraction(self):
        with pytest.raises(ValueError):
            off_diagonal(10, 1).subsample(0)

    def test_pattern_normalises_pairs_to_ints(self):
        p = TrafficPattern("x", [(np.int64(1), np.int64(2))])
        assert p.pairs == ((1, 2),)


@given(n=st.integers(min_value=8, max_value=200), offset=st.integers(min_value=1, max_value=500))
@settings(max_examples=40, deadline=None)
def test_off_diagonal_property(n, offset):
    """Off-diagonals are permutations: every endpoint appears once as source and destination."""
    if offset % n == 0:
        offset += 1
    p = off_diagonal(n, offset)
    assert sorted(p.sources()) == list(range(n))
    assert sorted(p.destinations()) == list(range(n))


@given(n=st.integers(min_value=4, max_value=128), seed=st.integers(min_value=0, max_value=99))
@settings(max_examples=30, deadline=None)
def test_random_permutation_property(n, seed):
    p = random_permutation(n, np.random.default_rng(seed))
    assert sorted(p.destinations()) == list(range(n))


class TestIncastPattern:
    def test_fanin_sources_per_hotspot(self):
        p = incast_pattern(64, num_hotspots=2, fanin=8, rng=np.random.default_rng(0))
        assert len(p) == 16
        hotspots = p.meta["hotspots"]
        assert len(hotspots) == 2
        # every pair targets a hotspot; senders are distinct and never the hotspot
        for hot in hotspots:
            senders = [s for s, t in p if t == hot]
            assert len(senders) == 8
            assert len(set(senders)) == 8
            assert hot not in senders

    def test_fanin_clamped_to_available_endpoints(self):
        p = incast_pattern(5, num_hotspots=1, fanin=100, rng=np.random.default_rng(1))
        assert len(p) == 4

    def test_deterministic_per_stream(self):
        a = incast_pattern(50, num_hotspots=3, fanin=5, rng=np.random.default_rng(7))
        b = incast_pattern(50, num_hotspots=3, fanin=5, rng=np.random.default_rng(7))
        assert a.pairs == b.pairs

    def test_rejects_bad_arguments(self):
        with pytest.raises(ValueError):
            incast_pattern(10, num_hotspots=0)
        with pytest.raises(ValueError):
            incast_pattern(10, fanin=0)
        with pytest.raises(ValueError):
            incast_pattern(10, num_hotspots=11)


class TestBroadcastShufflePattern:
    def test_every_member_broadcasts_to_next_group(self):
        p = broadcast_shuffle_pattern(12, group_size=3)
        assert p.oversubscription == 3
        assert p.meta["num_groups"] == 4
        assert len(p) == 12 * 3
        # member 0 (group 0) sends to all of group 1
        assert {t for s, t in p if s == 0} == {3, 4, 5}
        # last group wraps to group 0
        assert {t for s, t in p if s == 11} == {0, 1, 2}

    def test_ragged_tail_endpoints_idle(self):
        p = broadcast_shuffle_pattern(14, group_size=4)   # 3 groups, 2 idle endpoints
        assert max(p.sources()) < 12
        assert max(p.destinations()) < 12

    def test_deterministic_without_rng(self):
        assert broadcast_shuffle_pattern(16).pairs == broadcast_shuffle_pattern(16).pairs

    def test_rejects_too_few_groups(self):
        with pytest.raises(ValueError):
            broadcast_shuffle_pattern(6, group_size=4)
