"""Tests for flow workload generation and the worst-case matching pattern."""

import numpy as np
import pytest

from repro.traffic.flows import (
    Flow,
    Workload,
    pfabric_flow_sizes,
    pfabric_mean_size,
    poisson_workload,
    uniform_size_workload,
)
from repro.traffic.patterns import off_diagonal
from repro.traffic.worstcase import worst_case_pattern, worst_case_router_pairing


class TestFlow:
    def test_flow_validation(self):
        with pytest.raises(ValueError):
            Flow(0.0, 1, 1, 100)
        with pytest.raises(ValueError):
            Flow(0.0, 1, 2, 0)

    def test_flows_order_by_start_time(self):
        a = Flow(1.0, 0, 1, 10)
        b = Flow(0.5, 2, 3, 10)
        assert sorted([a, b])[0] is b


class TestPfabricSizes:
    def test_sizes_positive_and_mean_near_1mb(self):
        sizes = pfabric_flow_sizes(20_000, np.random.default_rng(0))
        assert (sizes > 0).all()
        assert 0.5e6 < sizes.mean() < 2.5e6

    def test_mean_target_rescaling(self):
        sizes = pfabric_flow_sizes(20_000, np.random.default_rng(0), mean_target=1e6)
        assert abs(sizes.mean() - 1e6) / 1e6 < 0.1

    def test_mean_size_helper(self):
        assert 0.5e6 < pfabric_mean_size() < 2.5e6

    def test_count_validation(self):
        with pytest.raises(ValueError):
            pfabric_flow_sizes(0)


class TestWorkloads:
    def test_poisson_workload_counts(self):
        pattern = off_diagonal(50, 7)
        wl = poisson_workload(pattern, arrival_rate=100.0, duration=1.0,
                              rng=np.random.default_rng(0))
        # expectation: 50 endpoints * 100 flows = 5000; allow generous tolerance
        assert 3500 < len(wl) < 6500
        assert wl.time_span() <= 1.0
        assert all(f.flow_id == i for i, f in enumerate(wl.flows))

    def test_poisson_fixed_size(self):
        pattern = off_diagonal(10, 1)
        wl = poisson_workload(pattern, 50.0, 0.5, rng=np.random.default_rng(1),
                              fixed_size=4096)
        assert all(f.size_bytes == 4096 for f in wl)

    def test_poisson_validation(self):
        with pytest.raises(ValueError):
            poisson_workload(off_diagonal(10, 1), 0, 1.0)

    def test_uniform_size_workload(self):
        pattern = off_diagonal(20, 3)
        wl = uniform_size_workload(pattern, 1e6)
        assert len(wl) == 20
        assert wl.total_bytes() == pytest.approx(20e6)
        assert wl.time_span() == 0.0

    def test_uniform_size_validation(self):
        with pytest.raises(ValueError):
            uniform_size_workload(off_diagonal(10, 1), 0)

    def test_sorted_by_start(self):
        pattern = off_diagonal(10, 1)
        wl = poisson_workload(pattern, 20.0, 1.0, rng=np.random.default_rng(2))
        starts = [f.start_time for f in wl.sorted_by_start()]
        assert starts == sorted(starts)


class TestWorstCase:
    def test_pairing_is_a_matching(self, sf_tiny):
        pairs = worst_case_router_pairing(sf_tiny, rng=np.random.default_rng(0))
        used = [r for pair in pairs for r in pair]
        assert len(used) == len(set(used))
        assert len(pairs) == sf_tiny.num_routers // 2

    def test_pairing_prefers_distant_routers(self, sf_tiny):
        """The matching's average distance must exceed the topology average."""
        pairs = worst_case_router_pairing(sf_tiny, rng=np.random.default_rng(0))
        dist = {r: sf_tiny.bfs_distances(r) for r, _ in pairs}
        avg_matched = np.mean([dist[u][v] for u, v in pairs])
        assert avg_matched >= sf_tiny.average_path_length()

    def test_pattern_endpoints_belong_to_matched_routers(self, sf_tiny):
        pattern = worst_case_pattern(sf_tiny, intensity=1.0, rng=np.random.default_rng(0))
        for s, t in pattern.pairs:
            assert sf_tiny.router_of_endpoint(s) != sf_tiny.router_of_endpoint(t)

    def test_intensity_scales_pairs(self, sf_tiny):
        full = worst_case_pattern(sf_tiny, intensity=1.0, rng=np.random.default_rng(0))
        half = worst_case_pattern(sf_tiny, intensity=0.5, rng=np.random.default_rng(0))
        assert len(half) < len(full)

    def test_max_routers_restriction(self, df_tiny):
        pattern = worst_case_pattern(df_tiny, intensity=1.0, max_routers=20,
                                     rng=np.random.default_rng(0))
        assert pattern.meta["num_matched_routers"] <= 20

    def test_intensity_validation(self, sf_tiny):
        with pytest.raises(ValueError):
            worst_case_pattern(sf_tiny, intensity=0)
