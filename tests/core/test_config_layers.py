"""Tests for FatPathsConfig and layer construction (Listings 1 and 2)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import FatPathsConfig, recommended_config
from repro.core.layers import (
    LayerSet,
    build_layers,
    interference_minimizing_layers,
    random_edge_sampling_layers,
)
from repro.topologies import complete_graph


class TestConfig:
    def test_defaults_valid(self):
        cfg = FatPathsConfig()
        assert cfg.num_layers == 9
        assert 0 < cfg.rho <= 1

    @pytest.mark.parametrize("kwargs", [
        {"num_layers": 0},
        {"rho": 0.0},
        {"rho": 1.5},
        {"layer_algorithm": "magic"},
        {"min_extra_hops": 2, "max_extra_hops": 1},
        {"paths_per_pair_target": 0},
    ])
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            FatPathsConfig(**kwargs)

    def test_with_returns_modified_copy(self):
        cfg = FatPathsConfig()
        other = cfg.with_(rho=0.5)
        assert other.rho == 0.5
        assert cfg.rho != 0.5

    def test_recommended_config_by_family(self, sf_tiny, ft_tiny):
        sf_cfg = recommended_config(sf_tiny)
        assert sf_cfg.num_layers > 1
        ft_cfg = recommended_config(ft_tiny)
        assert ft_cfg.num_layers == 1  # fat trees keep minimal routing only
        tcp_cfg = recommended_config(sf_tiny, deployment="tcp")
        assert tcp_cfg.num_layers == 4

    def test_recommended_config_rejects_unknown_deployment(self, sf_tiny):
        with pytest.raises(ValueError):
            recommended_config(sf_tiny, deployment="quantum")

    def test_recommended_config_seed_override(self, sf_tiny):
        assert recommended_config(sf_tiny, seed=99).seed == 99


class TestRandomLayers:
    def test_layer_zero_is_full(self, sf_tiny):
        layers = random_edge_sampling_layers(sf_tiny, FatPathsConfig(num_layers=4, rho=0.6))
        assert layers[0].is_full
        assert len(layers[0]) == sf_tiny.num_edges

    def test_sparse_layers_have_rho_fraction(self, sf_tiny):
        cfg = FatPathsConfig(num_layers=5, rho=0.6, seed=3)
        layers = random_edge_sampling_layers(sf_tiny, cfg)
        for frac in layers.edge_fractions()[1:]:
            assert frac == pytest.approx(0.6, abs=0.05)

    def test_layers_are_subsets_of_topology(self, sf_tiny):
        layers = random_edge_sampling_layers(sf_tiny, FatPathsConfig(num_layers=4, rho=0.5, seed=1))
        all_edges = set(sf_tiny.edges)
        for layer in layers:
            assert set(layer.edges) <= all_edges

    def test_deterministic_given_seed(self, sf_tiny):
        cfg = FatPathsConfig(num_layers=3, rho=0.7, seed=5)
        a = random_edge_sampling_layers(sf_tiny, cfg)
        b = random_edge_sampling_layers(sf_tiny, cfg)
        assert [l.edges for l in a] == [l.edges for l in b]

    def test_different_layers_differ(self, sf_tiny):
        layers = random_edge_sampling_layers(sf_tiny, FatPathsConfig(num_layers=4, rho=0.5, seed=0))
        assert layers[1].edges != layers[2].edges

    def test_rho_one_keeps_all_edges(self, sf_tiny):
        layers = random_edge_sampling_layers(sf_tiny, FatPathsConfig(num_layers=3, rho=1.0))
        assert all(frac == 1.0 for frac in layers.edge_fractions())

    def test_single_layer_config(self, sf_tiny):
        layers = random_edge_sampling_layers(sf_tiny, FatPathsConfig(num_layers=1, rho=1.0))
        assert len(layers) == 1

    def test_layer_contains_edge_helper(self, sf_tiny):
        layers = random_edge_sampling_layers(sf_tiny, FatPathsConfig(num_layers=2, rho=0.9))
        u, v = next(iter(layers[1].edges))
        assert layers[1].contains_edge(u, v)
        assert layers[1].contains_edge(v, u)

    def test_subtopology_roundtrip(self, sf_tiny):
        layers = random_edge_sampling_layers(sf_tiny, FatPathsConfig(num_layers=2, rho=0.5, seed=2))
        sub = layers[1].subtopology(sf_tiny)
        assert sub.num_routers == sf_tiny.num_routers
        assert sub.num_edges == len(layers[1])

    @given(rho=st.floats(min_value=0.3, max_value=1.0), seed=st.integers(0, 50))
    @settings(max_examples=15, deadline=None)
    def test_property_fraction_and_subset(self, rho, seed):
        topo = complete_graph(12)
        cfg = FatPathsConfig(num_layers=3, rho=rho, seed=seed)
        layers = random_edge_sampling_layers(topo, cfg)
        for layer in list(layers)[1:]:
            assert len(layer) == max(1, int(np.floor(rho * topo.num_edges)))
            assert set(layer.edges) <= set(topo.edges)


class TestInterferenceLayers:
    def test_layers_built_and_nonempty(self, sf_tiny):
        cfg = FatPathsConfig(num_layers=3, layer_algorithm="interference", seed=1)
        layers = interference_minimizing_layers(sf_tiny, cfg, pairs_per_layer=60)
        assert len(layers) == 3
        assert layers[0].is_full
        assert len(layers[1]) > 0
        assert set(layers[1].edges) <= set(sf_tiny.edges)

    def test_prefers_paths_longer_than_minimal(self, sf_tiny):
        """Sparse layers should carry almost-minimal (not minimal) paths: the layer's
        distance between a sampled pair exceeds the true minimal distance for a clear
        majority of pairs that the layer connects."""
        from repro.core.forwarding import build_forwarding_tables

        cfg = FatPathsConfig(num_layers=2, layer_algorithm="interference", seed=0,
                             min_extra_hops=1, max_extra_hops=2)
        layers = interference_minimizing_layers(sf_tiny, cfg, pairs_per_layer=80)
        tables = build_forwarding_tables(layers)
        rng = np.random.default_rng(0)
        longer = equal = 0
        for _ in range(60):
            s, t = rng.choice(sf_tiny.num_routers, size=2, replace=False)
            d_full = tables.distances[0][s, t]
            d_layer = tables.distances[1][s, t]
            if not np.isfinite(d_layer):
                continue
            if d_layer > d_full:
                longer += 1
            elif d_layer == d_full:
                equal += 1
        assert longer > 0

    def test_build_layers_dispatch(self, sf_tiny):
        random_set = build_layers(sf_tiny, FatPathsConfig(num_layers=2, layer_algorithm="random"))
        assert random_set.meta["algorithm"] == "random"
        interf_set = build_layers(sf_tiny, FatPathsConfig(num_layers=2,
                                                          layer_algorithm="interference"))
        assert interf_set.meta["algorithm"] == "interference"

    def test_build_layers_default_config(self, clique_tiny):
        layers = build_layers(clique_tiny)
        assert isinstance(layers, LayerSet)
        assert len(layers) == FatPathsConfig().num_layers


class TestBatchedResampling:
    def test_low_rho_layers_connected_or_first_kept(self):
        """Very low rho forces the blocked resampling path: every sparsified layer is
        either connected or the (arbitrary) first candidate kept as fallback, and all
        layers keep exactly the target edge count."""
        topo = complete_graph(10)
        cfg = FatPathsConfig(num_layers=6, rho=0.25, seed=7)
        layers = random_edge_sampling_layers(topo, cfg)
        target = max(1, int(np.floor(cfg.rho * topo.num_edges)))
        for layer in list(layers)[1:]:
            assert len(layer) == target
            assert set(layer.edges) <= set(topo.edges)

    def test_batched_resampling_still_deterministic(self):
        topo = complete_graph(10)
        cfg = FatPathsConfig(num_layers=5, rho=0.25, seed=3)
        a = random_edge_sampling_layers(topo, cfg)
        b = random_edge_sampling_layers(topo, cfg)
        assert [layer.edges for layer in a] == [layer.edges for layer in b]

    def test_common_case_matches_seed_sequential_loop(self):
        """With a connected first draw the batched path consumes exactly one
        permutation per layer — replaying the seed's sequential loop draws the same
        layers."""
        topo = complete_graph(12)
        cfg = FatPathsConfig(num_layers=4, rho=0.8, seed=11)
        layers = random_edge_sampling_layers(topo, cfg)
        rng = np.random.default_rng(cfg.seed)
        all_edges = [(u, v) for u, v in topo.edges]
        target = max(1, int(np.floor(cfg.rho * len(all_edges))))
        for layer in list(layers)[1:]:
            idx = rng.permutation(len(all_edges))[:target]
            assert layer.edges == frozenset(all_edges[i] for i in idx)
