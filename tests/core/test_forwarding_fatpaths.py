"""Tests for forwarding tables (Listing 3) and the FatPathsRouting facade."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import FatPathsConfig
from repro.core.fatpaths import FatPathsRouting
from repro.core.forwarding import UNREACHABLE, build_forwarding_tables
from repro.core.layers import build_layers
from repro.topologies import complete_graph, slim_fly
from repro.topologies.base import Topology


@pytest.fixture(scope="module")
def sf_routing():
    topo = slim_fly(5)
    return FatPathsRouting(topo, FatPathsConfig(num_layers=5, rho=0.7, seed=1))


class TestForwardingTables:
    def test_full_layer_paths_are_minimal(self, sf_tiny):
        layers = build_layers(sf_tiny, FatPathsConfig(num_layers=1, rho=1.0, seed=0))
        tables = build_forwarding_tables(layers)
        rng = np.random.default_rng(0)
        for _ in range(20):
            s, t = rng.choice(sf_tiny.num_routers, size=2, replace=False)
            path = tables.path(0, int(s), int(t))
            assert path[0] == s and path[-1] == t
            assert len(path) - 1 == int(tables.distances[0][s, t])

    def test_paths_are_valid_walks(self, sf_tiny):
        layers = build_layers(sf_tiny, FatPathsConfig(num_layers=4, rho=0.6, seed=2))
        tables = build_forwarding_tables(layers)
        edge_set = set(sf_tiny.edges)
        rng = np.random.default_rng(1)
        for _ in range(20):
            s, t = rng.choice(sf_tiny.num_routers, size=2, replace=False)
            for layer in range(tables.num_layers):
                path = tables.path(layer, int(s), int(t))
                assert path is not None
                for u, v in zip(path, path[1:]):
                    assert (min(u, v), max(u, v)) in edge_set

    def test_sparse_layer_paths_stay_inside_layer(self, sf_tiny):
        layers = build_layers(sf_tiny, FatPathsConfig(num_layers=3, rho=0.5, seed=3))
        tables = build_forwarding_tables(layers)
        layer_edges = set(layers[1].edges)
        rng = np.random.default_rng(2)
        checked = 0
        for _ in range(60):
            s, t = rng.choice(sf_tiny.num_routers, size=2, replace=False)
            if not tables.reachable(1, int(s), int(t)):
                continue
            path = tables.path(1, int(s), int(t), fallback_to_full=False)
            for u, v in zip(path, path[1:]):
                assert (min(u, v), max(u, v)) in layer_edges
            checked += 1
        assert checked > 10

    def test_path_identity_pair(self, sf_tiny):
        layers = build_layers(sf_tiny, FatPathsConfig(num_layers=2, rho=0.8))
        tables = build_forwarding_tables(layers)
        assert tables.path(0, 7, 7) == [7]

    def test_fallback_to_full_layer(self):
        # a path graph with a very sparse layer: most pairs unreachable in layer 1
        topo = Topology("path", 6, [(i, i + 1) for i in range(5)], 1)
        layers = build_layers(topo, FatPathsConfig(num_layers=2, rho=0.2, seed=0))
        tables = build_forwarding_tables(layers)
        path = tables.path(1, 0, 5)  # falls back to the full layer
        assert path is not None and path[0] == 0 and path[-1] == 5
        assert tables.path(1, 0, 5, fallback_to_full=False) is None or \
            tables.reachable(1, 0, 5)

    def test_next_hop_consistency(self, sf_tiny):
        layers = build_layers(sf_tiny, FatPathsConfig(num_layers=2, rho=0.7, seed=1))
        tables = build_forwarding_tables(layers)
        s, t = 0, 40
        hop = tables.next_hop(0, s, t)
        assert hop != UNREACHABLE
        assert hop in sf_tiny.adjacency()[s]

    def test_table_entries_positive(self, sf_tiny):
        layers = build_layers(sf_tiny, FatPathsConfig(num_layers=3, rho=0.7))
        tables = build_forwarding_tables(layers)
        assert tables.table_entries() > 0

    def test_path_lengths_cover_all_layers(self, sf_tiny):
        layers = build_layers(sf_tiny, FatPathsConfig(num_layers=4, rho=0.7, seed=0))
        tables = build_forwarding_tables(layers)
        lengths = tables.path_lengths(0, 41)
        assert len(lengths) == 4
        assert all(l >= 1 for l in lengths)


class TestFatPathsRouting:
    def test_router_paths_start_end(self, sf_routing):
        paths = sf_routing.router_paths(0, 37)
        assert len(paths) >= 1
        for p in paths:
            assert p[0] == 0 and p[-1] == 37

    def test_paths_are_unique(self, sf_routing):
        paths = sf_routing.router_paths(3, 44)
        assert len({tuple(p) for p in paths}) == len(paths)

    def test_same_router_single_trivial_path(self, sf_routing):
        assert sf_routing.router_paths(5, 5) == [[5]]

    def test_endpoint_paths(self, sf_routing):
        topo = sf_routing.topology
        p = topo.concentration
        paths = sf_routing.endpoint_paths(0, 9 * p)
        assert paths[0][0] == topo.router_of_endpoint(0)
        assert paths[0][-1] == topo.router_of_endpoint(9 * p)

    def test_cache_returns_same_object(self, sf_routing):
        a = sf_routing.router_paths(1, 30)
        b = sf_routing.router_paths(1, 30)
        assert a is b

    def test_exposes_nonminimal_paths(self, sf_routing):
        """At least some pairs must see paths longer than minimal (the whole point)."""
        rng = np.random.default_rng(0)
        saw_nonminimal = False
        for _ in range(40):
            s, t = rng.choice(sf_routing.topology.num_routers, size=2, replace=False)
            dmin = sf_routing.minimal_distance(int(s), int(t))
            lengths = [len(p) - 1 for p in sf_routing.router_paths(int(s), int(t))]
            if any(l > dmin for l in lengths):
                saw_nonminimal = True
                break
        assert saw_nonminimal

    def test_enough_paths_for_collision_target(self, sf_routing):
        """FatPaths should expose >= 3 distinct paths for the typical router pair."""
        stats = sf_routing.path_statistics(num_samples=60, rng=np.random.default_rng(0))
        assert stats.mean_num_paths >= 2.5
        assert stats.mean_stretch >= 1.0

    def test_minimal_distance_matches_bfs(self, sf_routing):
        topo = sf_routing.topology
        dist = topo.bfs_distances(0)
        for t in (10, 20, 49):
            assert sf_routing.minimal_distance(0, t) == dist[t]

    def test_deployment_defaults(self, sf_tiny):
        ethernet = FatPathsRouting(sf_tiny, deployment="ethernet", seed=0)
        tcp = FatPathsRouting(sf_tiny, deployment="tcp", seed=0)
        assert ethernet.num_layers > tcp.num_layers

    def test_forwarding_entries_scale_with_layers(self, sf_tiny):
        small = FatPathsRouting(sf_tiny, FatPathsConfig(num_layers=2, rho=0.7, seed=0))
        large = FatPathsRouting(sf_tiny, FatPathsConfig(num_layers=6, rho=0.7, seed=0))
        assert large.forwarding_entries() > small.forwarding_entries()

    def test_clique_paths(self, clique_tiny):
        routing = FatPathsRouting(clique_tiny, FatPathsConfig(num_layers=4, rho=0.5, seed=0))
        paths = routing.router_paths(0, 5)
        assert [0, 5] in paths  # the direct link is always there via the full layer


@given(seed=st.integers(0, 30), rho=st.floats(min_value=0.4, max_value=1.0))
@settings(max_examples=10, deadline=None)
def test_property_all_paths_valid(seed, rho):
    """Every path FatPaths returns is a valid loop-free walk from source to target."""
    topo = complete_graph(10)
    routing = FatPathsRouting(topo, FatPathsConfig(num_layers=3, rho=rho, seed=seed))
    adjacency = topo.adjacency()
    rng = np.random.default_rng(seed)
    s, t = rng.choice(10, size=2, replace=False)
    for path in routing.router_paths(int(s), int(t)):
        assert path[0] == s and path[-1] == t
        assert len(set(path)) == len(path)
        for u, v in zip(path, path[1:]):
            assert v in adjacency[u]
