"""Tests for load-balancing selectors, transport models and workload mapping."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.loadbalance import EcmpSelector, FlowletSelector, PacketSpraySelector
from repro.core.mapping import identity_mapping, is_valid_mapping, random_mapping
from repro.core.transport import dctcp_transport, ndp_transport, tcp_transport


class TestEcmpSelector:
    def test_deterministic_per_flow(self):
        sel = EcmpSelector(seed=1)
        first = sel.initial_path(42, 8)
        assert all(sel.initial_path(42, 8) == first for _ in range(5))

    def test_never_rerutes(self):
        sel = EcmpSelector()
        assert sel.next_path(42, 3, 8) == 3

    def test_distributes_over_paths(self):
        sel = EcmpSelector(seed=0)
        picks = [sel.initial_path(f, 4) for f in range(400)]
        counts = np.bincount(picks, minlength=4)
        assert (counts > 50).all()

    def test_requires_a_path(self):
        with pytest.raises(ValueError):
            EcmpSelector().initial_path(1, 0)


class TestFlowletSelector:
    def test_repicks_paths(self):
        sel = FlowletSelector(seed=0, adaptive=False, length_bias=0.0)
        picks = {sel.next_path(1, 0, 4) for _ in range(50)}
        assert len(picks) > 1

    def test_single_path_stays(self):
        sel = FlowletSelector(seed=0)
        assert sel.next_path(1, 0, 1) == 0

    def test_adaptive_avoids_congested(self):
        sel = FlowletSelector(seed=0, adaptive=True, length_bias=0.0)
        congestion = lambda i: 10.0 if i == 0 else 0.1
        picks = [sel.next_path(1, 0, 3, congestion=congestion) for _ in range(60)]
        assert picks.count(0) == 0

    def test_adaptive_all_congested_falls_back_to_uniform(self):
        sel = FlowletSelector(seed=0, adaptive=True, length_bias=0.0)
        congestion = lambda i: 5.0
        picks = {sel.next_path(1, 0, 3, congestion=congestion) for _ in range(60)}
        assert len(picks) == 3

    def test_length_bias_prefers_short_paths(self):
        sel = FlowletSelector(seed=0, adaptive=False, length_bias=2.0)
        lengths = [2, 4, 4, 4]
        picks = [sel.next_path(1, 0, 4, path_lengths=lengths) for _ in range(400)]
        counts = np.bincount(picks, minlength=4)
        assert counts[0] > counts[1]

    def test_initial_path_validation(self):
        with pytest.raises(ValueError):
            FlowletSelector().initial_path(1, 0)


class TestPacketSpray:
    def test_sprays_flag(self):
        assert PacketSpraySelector().sprays
        assert not EcmpSelector().sprays

    def test_uniform_weights(self):
        w = PacketSpraySelector().spray_weights(5)
        assert w.shape == (5,)
        assert np.allclose(w.sum(), 1.0)
        assert np.allclose(w, 0.2)

    def test_next_path_random(self):
        sel = PacketSpraySelector(seed=0)
        picks = {sel.next_path(1, 0, 6) for _ in range(100)}
        assert len(picks) > 3


class TestTransportModels:
    def test_ndp_line_rate_start(self):
        ndp = ndp_transport()
        assert ndp.line_rate_start
        assert ndp.startup_rtts(1e6, 1e5) == 1.0

    def test_tcp_slow_start_grows_with_flow_size(self):
        tcp = tcp_transport()
        small = tcp.startup_rtts(15_000, 1e6)
        large = tcp.startup_rtts(1e6, 1e7)
        assert large > small >= 1.0

    def test_tcp_congestion_penalty_larger_than_dctcp(self):
        assert tcp_transport().congestion_rtt_penalty > dctcp_transport().congestion_rtt_penalty

    def test_startup_delay_scales_with_rtt(self):
        tcp = tcp_transport()
        assert tcp.startup_delay(1e6, 20e-6, 10e9) < tcp.startup_delay(1e6, 200e-6, 10e9)

    def test_congestion_delay(self):
        ndp = ndp_transport()
        assert ndp.congestion_delay(2, 1e-4) == pytest.approx(2 * ndp.congestion_rtt_penalty * 1e-4)

    def test_invalid_flow_size(self):
        with pytest.raises(ValueError):
            ndp_transport().startup_rtts(0, 1e6)

    def test_dctcp_has_ecn(self):
        assert dctcp_transport().ecn
        assert not tcp_transport().ecn
        assert ndp_transport().header_preserving


class TestMapping:
    def test_identity(self):
        m = identity_mapping(10)
        assert list(m) == list(range(10))
        assert is_valid_mapping(m, 10)

    def test_random_is_permutation(self):
        m = random_mapping(100, np.random.default_rng(0))
        assert is_valid_mapping(m, 100)

    def test_random_deterministic_with_rng(self):
        a = random_mapping(50, np.random.default_rng(7))
        b = random_mapping(50, np.random.default_rng(7))
        assert np.array_equal(a, b)

    def test_invalid_mapping_detected(self):
        assert not is_valid_mapping(np.array([0, 0, 1]), 3)
        assert not is_valid_mapping(np.array([0, 1]), 3)

    def test_validation(self):
        with pytest.raises(ValueError):
            identity_mapping(0)
        with pytest.raises(ValueError):
            random_mapping(0)

    @given(n=st.integers(min_value=1, max_value=500), seed=st.integers(0, 100))
    @settings(max_examples=25, deadline=None)
    def test_property_random_mapping_is_permutation(self, n, seed):
        assert is_valid_mapping(random_mapping(n, np.random.default_rng(seed)), n)


class TestBatchedSelectors:
    """next_path_batch must consume the selector RNG exactly as sequential calls do
    (the contract the vectorized simulation engine's equivalence rests on)."""

    @staticmethod
    def _random_batch(rng, num_flows, max_paths=6):
        counts = rng.integers(2, max_paths + 1, size=num_flows)
        width = int(counts.max())
        loads = np.full((num_flows, width), np.inf)
        lengths = np.full((num_flows, width), np.inf)
        for row, n in enumerate(counts):
            loads[row, :n] = rng.uniform(0.0, 1.5, size=n)
            lengths[row, :n] = rng.integers(1, 5, size=n)
        flow_ids = rng.integers(0, 1000, size=num_flows)
        currents = np.array([int(rng.integers(0, n)) for n in counts])
        return flow_ids, currents, counts, loads, lengths

    def _assert_batch_matches_sequential(self, make_selector, seed_pool=range(6)):
        for case_seed in seed_pool:
            rng = np.random.default_rng(case_seed)
            flow_ids, currents, counts, loads, lengths = self._random_batch(rng, 40)
            sequential_sel = make_selector()
            sequential = [sequential_sel.next_path(
                int(fid), int(cur), int(n),
                congestion=lambda i, row=row: float(loads[row, i]),
                path_lengths=lengths[row, :int(n)])
                for row, (fid, cur, n) in enumerate(zip(flow_ids, currents, counts))]
            batch_sel = make_selector()
            batch = batch_sel.next_path_batch(flow_ids, currents, counts, loads, lengths)
            assert list(batch) == sequential
            # the RNG streams must land in the same state, so later draws agree too
            if hasattr(sequential_sel, "_rng"):
                assert (sequential_sel._rng.bit_generator.state
                        == batch_sel._rng.bit_generator.state)

    def test_flowlet_adaptive(self):
        self._assert_batch_matches_sequential(lambda: FlowletSelector(seed=3, adaptive=True))

    def test_flowlet_nonadaptive_unbiased(self):
        self._assert_batch_matches_sequential(
            lambda: FlowletSelector(seed=4, adaptive=False, length_bias=0.0))

    def test_flowlet_nonadaptive_biased_falls_back(self):
        self._assert_batch_matches_sequential(
            lambda: FlowletSelector(seed=5, adaptive=False, length_bias=1.5))

    def test_packet_spray(self):
        self._assert_batch_matches_sequential(lambda: PacketSpraySelector(seed=6))

    def test_ecmp_returns_currents(self):
        self._assert_batch_matches_sequential(lambda: EcmpSelector(seed=7))

    def test_numpy_draw_consumption_identities(self):
        """The numpy facts the vectorized selectors rely on: bounded integers with an
        array of bounds and random(k) consume the bit stream element-by-element."""
        bounds = [3, 5, 1, 7, 2, 1, 9]
        a_rng = np.random.default_rng(42)
        b_rng = np.random.default_rng(42)
        assert [int(a_rng.integers(0, b)) for b in bounds] \
            == b_rng.integers(0, np.array(bounds)).tolist()
        assert a_rng.bit_generator.state == b_rng.bit_generator.state
        assert [a_rng.random() for _ in range(9)] == b_rng.random(9).tolist()
        assert a_rng.bit_generator.state == b_rng.bit_generator.state
