"""Tests for load-balancing selectors, transport models and workload mapping."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.loadbalance import EcmpSelector, FlowletSelector, PacketSpraySelector
from repro.core.mapping import identity_mapping, is_valid_mapping, random_mapping
from repro.core.transport import dctcp_transport, ndp_transport, tcp_transport


class TestEcmpSelector:
    def test_deterministic_per_flow(self):
        sel = EcmpSelector(seed=1)
        first = sel.initial_path(42, 8)
        assert all(sel.initial_path(42, 8) == first for _ in range(5))

    def test_never_rerutes(self):
        sel = EcmpSelector()
        assert sel.next_path(42, 3, 8) == 3

    def test_distributes_over_paths(self):
        sel = EcmpSelector(seed=0)
        picks = [sel.initial_path(f, 4) for f in range(400)]
        counts = np.bincount(picks, minlength=4)
        assert (counts > 50).all()

    def test_requires_a_path(self):
        with pytest.raises(ValueError):
            EcmpSelector().initial_path(1, 0)


class TestFlowletSelector:
    def test_repicks_paths(self):
        sel = FlowletSelector(seed=0, adaptive=False, length_bias=0.0)
        picks = {sel.next_path(1, 0, 4) for _ in range(50)}
        assert len(picks) > 1

    def test_single_path_stays(self):
        sel = FlowletSelector(seed=0)
        assert sel.next_path(1, 0, 1) == 0

    def test_adaptive_avoids_congested(self):
        sel = FlowletSelector(seed=0, adaptive=True, length_bias=0.0)
        congestion = lambda i: 10.0 if i == 0 else 0.1
        picks = [sel.next_path(1, 0, 3, congestion=congestion) for _ in range(60)]
        assert picks.count(0) == 0

    def test_adaptive_all_congested_falls_back_to_uniform(self):
        sel = FlowletSelector(seed=0, adaptive=True, length_bias=0.0)
        congestion = lambda i: 5.0
        picks = {sel.next_path(1, 0, 3, congestion=congestion) for _ in range(60)}
        assert len(picks) == 3

    def test_length_bias_prefers_short_paths(self):
        sel = FlowletSelector(seed=0, adaptive=False, length_bias=2.0)
        lengths = [2, 4, 4, 4]
        picks = [sel.next_path(1, 0, 4, path_lengths=lengths) for _ in range(400)]
        counts = np.bincount(picks, minlength=4)
        assert counts[0] > counts[1]

    def test_initial_path_validation(self):
        with pytest.raises(ValueError):
            FlowletSelector().initial_path(1, 0)


class TestPacketSpray:
    def test_sprays_flag(self):
        assert PacketSpraySelector().sprays
        assert not EcmpSelector().sprays

    def test_uniform_weights(self):
        w = PacketSpraySelector().spray_weights(5)
        assert w.shape == (5,)
        assert np.allclose(w.sum(), 1.0)
        assert np.allclose(w, 0.2)

    def test_next_path_random(self):
        sel = PacketSpraySelector(seed=0)
        picks = {sel.next_path(1, 0, 6) for _ in range(100)}
        assert len(picks) > 3


class TestTransportModels:
    def test_ndp_line_rate_start(self):
        ndp = ndp_transport()
        assert ndp.line_rate_start
        assert ndp.startup_rtts(1e6, 1e5) == 1.0

    def test_tcp_slow_start_grows_with_flow_size(self):
        tcp = tcp_transport()
        small = tcp.startup_rtts(15_000, 1e6)
        large = tcp.startup_rtts(1e6, 1e7)
        assert large > small >= 1.0

    def test_tcp_congestion_penalty_larger_than_dctcp(self):
        assert tcp_transport().congestion_rtt_penalty > dctcp_transport().congestion_rtt_penalty

    def test_startup_delay_scales_with_rtt(self):
        tcp = tcp_transport()
        assert tcp.startup_delay(1e6, 20e-6, 10e9) < tcp.startup_delay(1e6, 200e-6, 10e9)

    def test_congestion_delay(self):
        ndp = ndp_transport()
        assert ndp.congestion_delay(2, 1e-4) == pytest.approx(2 * ndp.congestion_rtt_penalty * 1e-4)

    def test_invalid_flow_size(self):
        with pytest.raises(ValueError):
            ndp_transport().startup_rtts(0, 1e6)

    def test_dctcp_has_ecn(self):
        assert dctcp_transport().ecn
        assert not tcp_transport().ecn
        assert ndp_transport().header_preserving


class TestMapping:
    def test_identity(self):
        m = identity_mapping(10)
        assert list(m) == list(range(10))
        assert is_valid_mapping(m, 10)

    def test_random_is_permutation(self):
        m = random_mapping(100, np.random.default_rng(0))
        assert is_valid_mapping(m, 100)

    def test_random_deterministic_with_rng(self):
        a = random_mapping(50, np.random.default_rng(7))
        b = random_mapping(50, np.random.default_rng(7))
        assert np.array_equal(a, b)

    def test_invalid_mapping_detected(self):
        assert not is_valid_mapping(np.array([0, 0, 1]), 3)
        assert not is_valid_mapping(np.array([0, 1]), 3)

    def test_validation(self):
        with pytest.raises(ValueError):
            identity_mapping(0)
        with pytest.raises(ValueError):
            random_mapping(0)

    @given(n=st.integers(min_value=1, max_value=500), seed=st.integers(0, 100))
    @settings(max_examples=25, deadline=None)
    def test_property_random_mapping_is_permutation(self, n, seed):
        assert is_valid_mapping(random_mapping(n, np.random.default_rng(seed)), n)
