"""Shared pytest fixtures: small topology instances reused across the test suite."""

import pytest

from repro.topologies import (
    SizeClass,
    build,
    complete_graph,
    dragonfly,
    equivalent_jellyfish,
    fat_tree,
    hyperx,
    jellyfish,
    slim_fly,
    xpander,
)


@pytest.fixture(scope="session")
def sf_tiny():
    """Slim Fly q=5: 50 routers, k'=7, diameter 2."""
    return slim_fly(5)


@pytest.fixture(scope="session")
def df_tiny():
    """Balanced Dragonfly p=3: 114 routers, k'=8, diameter 3."""
    return dragonfly(3)


@pytest.fixture(scope="session")
def hx_tiny():
    """HyperX L=3, S=4: 64 routers, diameter 3."""
    return hyperx(3, 4)


@pytest.fixture(scope="session")
def xp_tiny():
    """Xpander k'=8: 72 routers."""
    return xpander(8, seed=1)


@pytest.fixture(scope="session")
def ft_tiny():
    """Three-stage fat tree, radix 8."""
    return fat_tree(8)


@pytest.fixture(scope="session")
def jf_tiny():
    """Jellyfish with 50 routers, k'=7."""
    return jellyfish(50, 7, 4, seed=3)


@pytest.fixture(scope="session")
def clique_tiny():
    """Complete graph on 12 routers."""
    return complete_graph(12)


@pytest.fixture(scope="session")
def all_tiny(sf_tiny, df_tiny, hx_tiny, xp_tiny, ft_tiny, jf_tiny, clique_tiny):
    """Dict of all tiny fixtures, keyed by short name."""
    return {
        "SF": sf_tiny,
        "DF": df_tiny,
        "HX3": hx_tiny,
        "XP": xp_tiny,
        "FT3": ft_tiny,
        "JF": jf_tiny,
        "CLIQUE": clique_tiny,
    }
