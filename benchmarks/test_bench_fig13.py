"""Benchmark regenerating Figure 13 (largest practical networks).

Run ``pytest benchmarks/test_bench_fig13.py --benchmark-only -s`` to execute and print
the regenerated rows; set ``FATPATHS_BENCH_SCALE=small|medium`` for larger instances.
"""

from conftest import run_experiment_once


def test_bench_fig13(benchmark, scale):
    result = run_experiment_once(benchmark, "fig13", scale)
    print()
    print(result.report())
