"""Benchmark regenerating Figure 17 (stencil + barrier completion time).

Run ``pytest benchmarks/test_bench_fig17.py --benchmark-only -s`` to execute and print
the regenerated rows; set ``FATPATHS_BENCH_SCALE=small|medium`` for larger instances.
"""

from conftest import run_experiment_once


def test_bench_fig17(benchmark, scale):
    result = run_experiment_once(benchmark, "fig17", scale)
    print()
    print(result.report())
