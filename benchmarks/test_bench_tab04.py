"""Benchmark regenerating Table IV (CDP/PI diversity summaries at distance d').

Run ``pytest benchmarks/test_bench_tab04.py --benchmark-only -s`` to execute and print
the regenerated rows; set ``FATPATHS_BENCH_SCALE=small|medium`` for larger instances.
"""

from conftest import run_experiment_once


def test_bench_tab04(benchmark, scale):
    result = run_experiment_once(benchmark, "tab04", scale)
    print()
    print(result.report())
