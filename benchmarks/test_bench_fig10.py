"""Benchmark regenerating Figure 10 (cost per endpoint).

Run ``pytest benchmarks/test_bench_fig10.py --benchmark-only -s`` to execute and print
the regenerated rows; set ``FATPATHS_BENCH_SCALE=small|medium`` for larger instances.
"""

from conftest import run_experiment_once


def test_bench_fig10(benchmark, scale):
    result = run_experiment_once(benchmark, "fig10", scale)
    print()
    print(result.report())
