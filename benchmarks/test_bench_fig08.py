"""Benchmark regenerating Figure 8 (path-interference distributions).

Run ``pytest benchmarks/test_bench_fig08.py --benchmark-only -s`` to execute and print
the regenerated rows; set ``FATPATHS_BENCH_SCALE=small|medium`` for larger instances.
"""

from conftest import run_experiment_once


def test_bench_fig08(benchmark, scale):
    result = run_experiment_once(benchmark, "fig08", scale)
    print()
    print(result.report())
