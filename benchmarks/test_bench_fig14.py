"""Benchmark regenerating Figure 14 (TCP speedups vs ECMP and LetFlow).

Run ``pytest benchmarks/test_bench_fig14.py --benchmark-only -s`` to execute and print
the regenerated rows; set ``FATPATHS_BENCH_SCALE=small|medium`` for larger instances.
"""

from conftest import run_experiment_once


def test_bench_fig14(benchmark, scale):
    result = run_experiment_once(benchmark, "fig14", scale)
    print()
    print(result.report())
