"""Ablation benchmarks for the design choices DESIGN.md calls out.

* layer construction algorithm: random edge sampling vs interference-minimising;
* load balancing: adaptive flowlets vs static ECMP hashing vs per-packet spraying;
* transport: purified (NDP) vs TCP;
* workload mapping: randomized vs skewed (identity).

Each ablation runs the same small Slim Fly workload and reports the resulting mean FCT
in the benchmark's ``extra_info`` so regressions in either runtime or outcome are visible.
"""

import numpy as np
import pytest

from repro.core.config import FatPathsConfig
from repro.core.fatpaths import FatPathsRouting
from repro.core.layers import interference_minimizing_layers, random_edge_sampling_layers
from repro.core.loadbalance import EcmpSelector, FlowletSelector, PacketSpraySelector
from repro.core.mapping import identity_mapping, random_mapping
from repro.core.transport import ndp_transport, tcp_transport
from repro.sim.flowsim import simulate_workload
from repro.topologies import slim_fly
from repro.traffic.flows import uniform_size_workload
from repro.traffic.patterns import adversarial_offdiagonal


@pytest.fixture(scope="module")
def sf():
    return slim_fly(5)


@pytest.fixture(scope="module")
def sf_routing(sf):
    return FatPathsRouting(sf, FatPathsConfig(num_layers=6, rho=0.7, seed=0))


@pytest.fixture(scope="module")
def workload(sf):
    pattern = adversarial_offdiagonal(sf.num_endpoints, sf.concentration)
    pattern = pattern.subsample(0.4, np.random.default_rng(0))
    return uniform_size_workload(pattern, 1024 * 1024)


@pytest.mark.parametrize("algorithm", ["random", "interference"])
def test_bench_ablation_layer_algorithm(benchmark, sf, algorithm):
    config = FatPathsConfig(num_layers=5, rho=0.6, seed=0, layer_algorithm=algorithm)
    builder = (random_edge_sampling_layers if algorithm == "random"
               else interference_minimizing_layers)
    layers = benchmark.pedantic(builder, args=(sf, config), rounds=1, iterations=1,
                                warmup_rounds=0)
    benchmark.extra_info["mean_layer_fraction"] = float(np.mean(layers.edge_fractions()[1:]))
    assert len(layers) == 5


@pytest.mark.parametrize("balancer", ["flowlet_adaptive", "ecmp_hash", "packet_spray"])
def test_bench_ablation_load_balancing(benchmark, sf, sf_routing, workload, balancer):
    selector = {"flowlet_adaptive": FlowletSelector(seed=0, adaptive=True),
                "ecmp_hash": EcmpSelector(seed=0),
                "packet_spray": PacketSpraySelector(seed=0)}[balancer]

    def run():
        return simulate_workload(sf, sf_routing, workload, selector=selector, seed=0)

    result = benchmark.pedantic(run, rounds=1, iterations=1, warmup_rounds=0)
    benchmark.extra_info["fct_mean_ms"] = result.summary()["fct_mean"] * 1e3


@pytest.mark.parametrize("transport", ["ndp", "tcp"])
def test_bench_ablation_transport(benchmark, sf, sf_routing, workload, transport):
    model = ndp_transport() if transport == "ndp" else tcp_transport()

    def run():
        return simulate_workload(sf, sf_routing, workload, transport=model, seed=0)

    result = benchmark.pedantic(run, rounds=1, iterations=1, warmup_rounds=0)
    benchmark.extra_info["fct_mean_ms"] = result.summary()["fct_mean"] * 1e3


@pytest.mark.parametrize("mapping_kind", ["random", "skewed"])
def test_bench_ablation_workload_mapping(benchmark, sf, sf_routing, workload, mapping_kind):
    mapping = (random_mapping(sf.num_endpoints, np.random.default_rng(0))
               if mapping_kind == "random" else identity_mapping(sf.num_endpoints))

    def run():
        return simulate_workload(sf, sf_routing, workload, mapping=mapping, seed=0)

    result = benchmark.pedantic(run, rounds=1, iterations=1, warmup_rounds=0)
    benchmark.extra_info["fct_mean_ms"] = result.summary()["fct_mean"] * 1e3
