"""Benchmark regenerating the broadcast-shuffle registry scenario.

Run ``pytest benchmarks/test_bench_shuffle.py --benchmark-only -s`` to execute and
print the regenerated rows; set ``FATPATHS_BENCH_SCALE=small|medium`` for larger
instances.
"""

from conftest import run_experiment_once


def test_bench_shuffle(benchmark, scale):
    result = run_experiment_once(benchmark, "shuffle", scale)
    print()
    print(result.report())
