"""Benchmark regenerating Figure 6 (shortest-path length/diversity distributions).

Run ``pytest benchmarks/test_bench_fig06.py --benchmark-only -s`` to execute and print
the regenerated rows; set ``FATPATHS_BENCH_SCALE=small|medium`` for larger instances.
"""

from conftest import run_experiment_once


def test_bench_fig06(benchmark, scale):
    result = run_experiment_once(benchmark, "fig06", scale)
    print()
    print(result.report())
