"""Benchmark regenerating Figure 12 (layer count / density sweep).

Run ``pytest benchmarks/test_bench_fig12.py --benchmark-only -s`` to execute and print
the regenerated rows; set ``FATPATHS_BENCH_SCALE=small|medium`` for larger instances.
"""

from conftest import run_experiment_once


def test_bench_fig12(benchmark, scale):
    result = run_experiment_once(benchmark, "fig12", scale)
    print()
    print(result.report())
