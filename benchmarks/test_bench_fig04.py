"""Benchmark regenerating Figure 4 (flow-collision histograms).

Run ``pytest benchmarks/test_bench_fig04.py --benchmark-only -s`` to execute and print
the regenerated rows; set ``FATPATHS_BENCH_SCALE=small|medium`` for larger instances.
"""

from conftest import run_experiment_once


def test_bench_fig04(benchmark, scale):
    result = run_experiment_once(benchmark, "fig04", scale)
    print()
    print(result.report())
