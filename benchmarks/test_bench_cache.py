"""Cache and parallelism comparison benchmarks.

Two explicit before/after pairs:

* cached vs uncached all-pairs shortest paths — the value of the shared
  :class:`~repro.kernels.cache.PathCache` when several consumers (figures, routing
  schemes, forwarding builds) touch the same topology, and
* serial vs process-pool experiment grids — the wall-clock win of fanning
  independent (experiment, seed) cells across cores.
"""

from repro.core.config import FatPathsConfig
from repro.core.layers import build_layers
from repro.core.forwarding import build_forwarding_tables
from repro.experiments.grid import make_grid, run_experiment_grid
from repro.kernels import global_cache, kernels_for

# the scale-dependent `kgraph` Slim Fly instance is shared via conftest.py


def test_bench_apsp_uncached(benchmark, kgraph):
    """Cold APSP: every round recomputes the distance matrix from scratch."""
    def run():
        global_cache().clear()
        return kernels_for(kgraph).distance_matrix()

    result = benchmark(run)
    assert result.shape[0] == kgraph.num_routers


def test_bench_apsp_cached(benchmark, kgraph):
    """Warm APSP: rounds after the first hit the shared path cache."""
    kernels_for(kgraph).distance_matrix()  # warm

    result = benchmark(lambda: kernels_for(kgraph).distance_matrix())
    assert result.shape[0] == kgraph.num_routers


def test_bench_forwarding_tables_warm_cache(benchmark, kgraph):
    """Rebuilding forwarding tables over identical layers reuses cached layer APSP."""
    layers = build_layers(kgraph, FatPathsConfig(num_layers=4, rho=0.7, seed=0))
    build_forwarding_tables(layers, seed=0)  # warm the per-layer entries

    tables = benchmark(build_forwarding_tables, layers, seed=0)
    assert tables.num_layers == 4


def _grid_cells(scale):
    return make_grid(["fig06", "tab05"], scales=[scale.value], seeds=[0, 1])


def test_bench_grid_serial(benchmark, scale):
    def run():
        global_cache().clear()  # cold start, like a fresh worker process
        return run_experiment_grid(_grid_cells(scale), jobs=None)

    results = benchmark.pedantic(run, rounds=1, iterations=1, warmup_rounds=0)
    assert all(r.ok for r in results)


def test_bench_grid_process_pool(benchmark, scale):
    def run():
        return run_experiment_grid(_grid_cells(scale), jobs=4)

    results = benchmark.pedantic(run, rounds=1, iterations=1, warmup_rounds=0)
    assert all(r.ok for r in results)
