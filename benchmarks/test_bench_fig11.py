"""Benchmark regenerating Figure 11 (skewed adversarial traffic comparison).

Run ``pytest benchmarks/test_bench_fig11.py --benchmark-only -s`` to execute and print
the regenerated rows; set ``FATPATHS_BENCH_SCALE=small|medium`` for larger instances.
"""

from conftest import run_experiment_once


def test_bench_fig11(benchmark, scale):
    result = run_experiment_once(benchmark, "fig11", scale)
    print()
    print(result.report())
