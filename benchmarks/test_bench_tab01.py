"""Benchmark regenerating Table I (routing-scheme feature comparison).

Run ``pytest benchmarks/test_bench_tab01.py --benchmark-only -s`` to execute and print
the regenerated rows; set ``FATPATHS_BENCH_SCALE=small|medium`` for larger instances.
"""

from conftest import run_experiment_once


def test_bench_tab01(benchmark, scale):
    result = run_experiment_once(benchmark, "tab01", scale)
    print()
    print(result.report())
