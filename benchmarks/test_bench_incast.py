"""Benchmark regenerating the incast/hotspot registry scenario.

Run ``pytest benchmarks/test_bench_incast.py --benchmark-only -s`` to execute and
print the regenerated rows; set ``FATPATHS_BENCH_SCALE=small|medium`` for larger
instances.
"""

from conftest import run_experiment_once


def test_bench_incast(benchmark, scale):
    result = run_experiment_once(benchmark, "incast", scale)
    print()
    print(result.report())
