"""Flow-simulation engine benchmarks: reference vs engine, full vs incremental.

The first pair mirrors the other legacy-vs-kernel benchmarks: the *same* fig02-style
workload (randomly mapped permutation traffic, uniform flow sizes, FatPaths stack) on
the *same* scale-dependent Slim Fly, once through the preserved scalar simulator
(``repro.sim.reference``) and once through ``repro.sim.engine``; results are pinned
identical inside the speedup test.  A third benchmark sweeps a multi-cell
(stack, workload) grid through ``simulate_many`` — the batched entry point the
simulation experiments run on.

The second pair benchmarks the engine's *rate allocators*
(``FlowSimConfig.allocator``) on the staggered multi-tenant incast workload:
disjoint-sender hotspot groups with Poisson arrivals, where the link–flow
incidence decomposes into per-group components and churn is local — the regime the
incremental dirty-component allocator (``repro.sim.allocstate``) targets.  The
static-hash ``ecmp`` stack keeps both allocators on identical trajectories, so the
comparison isolates allocation cost.  ``tools/bench_report.py`` consolidates these
benchmarks' pytest-benchmark output into the committed ``BENCH_flowsim.json``.

A companion pair benchmarks the *dense* regime the bottleneck-structure allocator
(``repro.sim.bottleneck``) targets: shared-sender incast with every flow arriving
at t=0, which welds the link–flow incidence into one connected component.  There
the incremental allocator's component refiltering degenerates to a full
progressive fill per event, while the bottleneck allocator still refills only the
flows coupled to each event through *saturated* links — the hotspot's own fan-in
plus whatever the expansion frontier drags in.

A third pair benchmarks *fault recovery*: rebuilding a failed topology's routing
kernels from scratch vs deriving them from the resident pristine entry through
``PathCache.mutated`` (:mod:`repro.kernels.dirtyregion`), which recomputes only
the rows whose distances the failed links can affect — the cost a fault epoch
actually pays mid-run (see ``docs/resilience.md``).

Run ``pytest benchmarks/test_bench_flowsim.py --benchmark-only -s``; set
``FATPATHS_BENCH_SCALE=small|medium`` for larger instances.
"""

import time

import numpy as np
import pytest

from repro.core.mapping import random_mapping
from repro.experiments.simcommon import StackCell, build_stack, simulate_stack_many
from repro.kernels.cache import GraphKernels, PathCache, fingerprint_edges
from repro.kernels.csr import CSRGraph
from repro.kernels.dirtyregion import faulted_kernels
from repro.sim.flowsim import FlowSimConfig, simulate_workload
from repro.traffic.flows import Flow, Workload, poisson_workload, uniform_size_workload
from repro.traffic.patterns import incast_pattern, random_permutation

KIB = 1024

#: Engine-vs-reference speedup floor asserted at small/medium scale (the acceptance
#: bar for the vectorized engine); tiny instances are too noisy to gate.
_SPEEDUP_FLOOR = 5.0

#: Incremental-vs-full allocator event-rate speedup floor on the staggered incast
#: benchmark, asserted at small/medium scale (the PR's acceptance bar).
_ALLOC_SPEEDUP_FLOOR = 2.0

#: Bottleneck-vs-incremental event-rate speedup floor on the dense all-at-once
#: incast benchmark, asserted at small/medium scale (the PR's acceptance bar).
#: Tiny instances are dominated by per-event fixed costs and are not gated.
_BOTTLENECK_SPEEDUP_FLOOR = 2.0

#: Dirty-region derivation vs cold rebuild speedup floor for single-link fault
#: recovery, asserted at medium scale — the instance size where the derivation's
#: fixed costs (dirty-row masks, matrix copy) amortize.  Smaller scales assert the
#: structural bound instead (only a small fraction of rows recomputed).
_RECOVERY_SPEEDUP_FLOOR = 1.5

#: Staggered incast shape per scale: (hotspots, fanin, per-pair flow rate 1/s,
#: flows per pair).  Disjoint sender sets keep per-group injection links private,
#: Poisson arrivals keep concurrency moderate — both are what makes the incidence
#: decompose into components the incremental allocator can refill locally.
_INCAST_SHAPE = {"tiny": (8, 8, 500.0, 3), "small": (64, 8, 500.0, 4),
                 "medium": (160, 8, 500.0, 4)}

#: Dense incast shape per scale: (hotspots, fanin).  Senders are *shared* across
#: hotspot groups and every flow arrives at t=0, so the incidence is one giant
#: component from the first event to the last — the regime where component
#: refiltering degenerates to full fills but saturation-coupling stays local
#: (each hotspot's ejection link saturates; the shared sender links do not).
_DENSE_INCAST_SHAPE = {"tiny": (12, 12), "small": (96, 12), "medium": (200, 12)}


@pytest.fixture(scope="module")
def fig02_workload(kgraph):
    """Fig-2-style traffic on the scale-dependent Slim Fly: randomly mapped
    permutation pairs, one uniform 256 KiB flow each."""
    rng = np.random.default_rng(0)
    pattern = random_permutation(kgraph.num_endpoints, rng).subsample(0.25, rng)
    mapping = random_mapping(kgraph.num_endpoints, rng)
    return uniform_size_workload(pattern, 256 * KIB), mapping


def _run(kgraph, workload, mapping, engine):
    stack = build_stack(kgraph, "fatpaths", seed=0, num_layers=4)
    return simulate_workload(kgraph, stack.routing, workload, selector=stack.selector,
                             transport=stack.transport, mapping=mapping, seed=0,
                             engine=engine)


def test_bench_flowsim_reference_scalar(benchmark, kgraph, fig02_workload):
    workload, mapping = fig02_workload
    result = benchmark.pedantic(_run, args=(kgraph, workload, mapping, "reference"),
                                rounds=1, iterations=1, warmup_rounds=0)
    benchmark.extra_info["events"] = int(result.meta["events"])
    assert len(result) == len(workload)


def test_bench_flowsim_vectorized_engine(benchmark, kgraph, fig02_workload):
    workload, mapping = fig02_workload
    result = benchmark.pedantic(_run, args=(kgraph, workload, mapping, "engine"),
                                rounds=1, iterations=1, warmup_rounds=0)
    benchmark.extra_info["events"] = int(result.meta["events"])
    assert len(result) == len(workload)


def test_flowsim_engine_speedup_and_equivalence(kgraph, fig02_workload, scale):
    """Time both implementations on identical inputs, pin the records, and (at
    small/medium scale) assert the engine's speedup floor."""
    workload, mapping = fig02_workload
    _run(kgraph, workload, mapping, "engine")          # warm shared caches
    start = time.perf_counter()
    reference = _run(kgraph, workload, mapping, "reference")
    reference_seconds = time.perf_counter() - start
    start = time.perf_counter()
    engine = _run(kgraph, workload, mapping, "engine")
    engine_seconds = time.perf_counter() - start

    assert len(reference) == len(engine)
    for ref, eng in zip(reference.records, engine.records):
        assert ref.flow_id == eng.flow_id
        assert ref.num_path_switches == eng.num_path_switches
        assert ref.congestion_events == eng.congestion_events
        assert eng.completion_time == pytest.approx(ref.completion_time, rel=1e-9)

    speedup = reference_seconds / max(engine_seconds, 1e-9)
    print(f"\nflowsim {scale.value}: reference {reference_seconds * 1e3:.1f} ms, "
          f"engine {engine_seconds * 1e3:.1f} ms, speedup {speedup:.1f}x")
    if scale.value != "tiny":
        assert speedup >= _SPEEDUP_FLOOR


@pytest.fixture(scope="module")
def incast_workload(kgraph, scale):
    """Staggered multi-tenant incast: disjoint-sender hotspot groups, Poisson
    arrivals of fixed-size flows (see ``_INCAST_SHAPE``)."""
    hotspots, fanin, rate, reps = _INCAST_SHAPE[scale.value]
    pattern = incast_pattern(kgraph.num_endpoints, num_hotspots=hotspots,
                             fanin=fanin, rng=np.random.default_rng(0),
                             disjoint_senders=True)
    return poisson_workload(pattern, rate, reps / rate,
                            rng=np.random.default_rng(1), fixed_size=256 * KIB)


def _run_alloc(kgraph, workload, allocator):
    stack = build_stack(kgraph, "ecmp", seed=0)
    return simulate_workload(kgraph, stack.routing, workload,
                             selector=stack.selector, transport=stack.transport,
                             config=FlowSimConfig(allocator=allocator), seed=0)


def test_bench_alloc_full(benchmark, kgraph, incast_workload):
    result = benchmark.pedantic(_run_alloc, args=(kgraph, incast_workload, "full"),
                                rounds=1, iterations=1, warmup_rounds=1)
    benchmark.extra_info["events"] = int(result.meta["events"])
    benchmark.extra_info["flows"] = len(result)
    assert len(result) == len(incast_workload)


def test_bench_alloc_incremental(benchmark, kgraph, incast_workload):
    result = benchmark.pedantic(_run_alloc,
                                args=(kgraph, incast_workload, "incremental"),
                                rounds=1, iterations=1, warmup_rounds=1)
    benchmark.extra_info["events"] = int(result.meta["events"])
    benchmark.extra_info["flows"] = len(result)
    assert len(result) == len(incast_workload)


def test_alloc_incremental_speedup_and_agreement(kgraph, incast_workload, scale):
    """Time both allocators on the staggered incast, pin the records, and (at
    small/medium scale) assert the incremental event-rate speedup floor."""
    _run_alloc(kgraph, incast_workload, "incremental")     # warm shared caches
    start = time.perf_counter()
    full = _run_alloc(kgraph, incast_workload, "full")
    full_seconds = time.perf_counter() - start
    start = time.perf_counter()
    incremental = _run_alloc(kgraph, incast_workload, "incremental")
    incremental_seconds = time.perf_counter() - start

    assert full.meta["events"] == incremental.meta["events"]
    for ref, inc in zip(full.records, incremental.records):
        assert ref.flow_id == inc.flow_id
        assert inc.completion_time == pytest.approx(ref.completion_time, rel=1e-6)

    events = full.meta["events"]
    speedup = full_seconds / max(incremental_seconds, 1e-9)
    print(f"\nallocator {scale.value}: full {full_seconds * 1e3:.1f} ms "
          f"({events / full_seconds:.0f} ev/s), incremental "
          f"{incremental_seconds * 1e3:.1f} ms "
          f"({events / incremental_seconds:.0f} ev/s), speedup {speedup:.2f}x")
    if scale.value != "tiny":
        assert speedup >= _ALLOC_SPEEDUP_FLOOR


@pytest.fixture(scope="module")
def dense_incast_workload(kgraph, scale):
    """Dense all-at-once incast: shared-sender hotspot groups, every flow at t=0.

    Sizes are drawn uniformly in [128, 512) KiB so completions stagger into a long
    sequence of single-flow events instead of collapsing into a few simultaneous
    batch completions (which would make every event's perturbation global).
    """
    hotspots, fanin = _DENSE_INCAST_SHAPE[scale.value]
    pattern = incast_pattern(kgraph.num_endpoints, num_hotspots=hotspots,
                             fanin=fanin, rng=np.random.default_rng(2),
                             disjoint_senders=False)
    rng = np.random.default_rng(3)
    flows = [Flow(start_time=0.0, source=s, destination=t,
                  size_bytes=float(rng.uniform(128, 512) * KIB))
             for s, t in pattern.pairs if s != t]
    return Workload(flows, name=f"dense({pattern.name})",
                    meta={"pattern": pattern.name})


def test_bench_alloc_incremental_dense(benchmark, kgraph, dense_incast_workload):
    result = benchmark.pedantic(_run_alloc,
                                args=(kgraph, dense_incast_workload, "incremental"),
                                rounds=1, iterations=1, warmup_rounds=1)
    benchmark.extra_info["events"] = int(result.meta["events"])
    benchmark.extra_info["flows"] = len(result)
    benchmark.extra_info["full_fills"] = int(
        result.meta["allocator_stats"]["full_fills"])
    assert len(result) == len(dense_incast_workload)


def test_bench_alloc_bottleneck_dense(benchmark, kgraph, dense_incast_workload):
    result = benchmark.pedantic(_run_alloc,
                                args=(kgraph, dense_incast_workload, "bottleneck"),
                                rounds=1, iterations=1, warmup_rounds=1)
    benchmark.extra_info["events"] = int(result.meta["events"])
    benchmark.extra_info["flows"] = len(result)
    benchmark.extra_info["full_fills"] = int(
        result.meta["allocator_stats"]["full_fills"])
    assert len(result) == len(dense_incast_workload)


def test_alloc_bottleneck_speedup_and_agreement(kgraph, dense_incast_workload,
                                                scale):
    """Time both refiltering allocators on the dense incast, pin the records, and
    (at small/medium scale) assert the bottleneck event-rate speedup floor."""
    _run_alloc(kgraph, dense_incast_workload, "bottleneck")    # warm shared caches
    start = time.perf_counter()
    incremental = _run_alloc(kgraph, dense_incast_workload, "incremental")
    incremental_seconds = time.perf_counter() - start
    start = time.perf_counter()
    bottleneck = _run_alloc(kgraph, dense_incast_workload, "bottleneck")
    bottleneck_seconds = time.perf_counter() - start

    assert incremental.meta["events"] == bottleneck.meta["events"]
    for inc, bot in zip(incremental.records, bottleneck.records):
        assert inc.flow_id == bot.flow_id
        assert bot.completion_time == pytest.approx(inc.completion_time, rel=1e-6)

    # The counters explain the gap: the one-component incidence forces the
    # incremental allocator into full fills on most events, while the bottleneck
    # allocator's saturation-coupled downstream regions stay near the fan-in.
    inc_stats = incremental.meta["allocator_stats"]
    bot_stats = bottleneck.meta["allocator_stats"]
    events = bottleneck.meta["events"]
    assert inc_stats["full_fills"] >= events // 2
    assert bot_stats["full_fills"] <= events // 10
    assert bot_stats["refills"] > 0
    fanin = _DENSE_INCAST_SHAPE[scale.value][1]
    assert bot_stats["downstream_flows"] <= bot_stats["refills"] * 4 * fanin

    speedup = incremental_seconds / max(bottleneck_seconds, 1e-9)
    print(f"\ndense allocator {scale.value}: incremental "
          f"{incremental_seconds * 1e3:.1f} ms "
          f"({events / incremental_seconds:.0f} ev/s), bottleneck "
          f"{bottleneck_seconds * 1e3:.1f} ms "
          f"({events / bottleneck_seconds:.0f} ev/s), speedup {speedup:.2f}x")
    if scale.value != "tiny":
        assert speedup >= _BOTTLENECK_SPEEDUP_FLOOR


@pytest.fixture(scope="module")
def recovery_inputs(kgraph):
    """A warmed pristine kernels entry plus one random failed link.

    The pristine entry has its distance matrix and path counts materialized —
    the state a running simulation holds when a fault epoch arrives.  A single
    link is the canonical localized recovery event; scattered mass failures on a
    diameter-2 graph dirty nearly every row and degrade to rebuild cost (the
    tradeoff ``docs/resilience.md`` documents).
    """
    base = GraphKernels(CSRGraph.from_edges(kgraph.num_routers, kgraph.edges),
                        kgraph.fingerprint())
    base.distance_matrix()
    base.shortest_path_counts()
    rng = np.random.default_rng(0)
    failed = [kgraph.edges[int(rng.integers(kgraph.num_edges))]]
    return base, failed


def _recover_cold(kgraph, failed):
    """Full rebuild of the degraded graph's kernels (matrix + counts)."""
    edges = sorted(set(kgraph.edges) - set(failed))
    entry = GraphKernels(CSRGraph.from_edges(kgraph.num_routers, edges),
                         fingerprint_edges(kgraph.num_routers, edges))
    entry.distance_matrix()
    entry.shortest_path_counts()
    return entry


def _recover_derived(kgraph, base, failed):
    """Dirty-region derivation from the resident pristine entry.

    A fresh single-entry cache per call keeps every round an actual derivation
    (a shared cache would hit the derived key from the previous round).
    """
    cache = PathCache()
    cache._entries[base.fingerprint] = base
    return faulted_kernels(kgraph, failed, cache=cache)


def test_bench_recovery_cold_rebuild(benchmark, kgraph, recovery_inputs):
    _, failed = recovery_inputs
    entry = benchmark.pedantic(_recover_cold, args=(kgraph, failed),
                               rounds=3, iterations=1, warmup_rounds=1)
    benchmark.extra_info["failed_links"] = len(failed)
    assert entry.distance_matrix().shape == (kgraph.num_routers, kgraph.num_routers)


def test_bench_recovery_dirty_region(benchmark, kgraph, recovery_inputs):
    base, failed = recovery_inputs
    entry = benchmark.pedantic(_recover_derived, args=(kgraph, base, failed),
                               rounds=3, iterations=1, warmup_rounds=1)
    benchmark.extra_info["failed_links"] = len(failed)
    benchmark.extra_info["rows_dirty"] = int(entry.invalidation["rows_dirty"])
    benchmark.extra_info["rows_total"] = int(entry.invalidation["rows_total"])
    assert entry.invalidation["mode"] == "partial"


def test_recovery_speedup_and_bit_identity(kgraph, recovery_inputs, scale):
    """Time both recovery paths, pin the derived arrays to the rebuild, and (at
    small/medium scale) assert the dirty-region speedup floor."""
    base, failed = recovery_inputs
    _recover_derived(kgraph, base, failed)                 # warm code paths
    start = time.perf_counter()
    rebuilt = _recover_cold(kgraph, failed)
    rebuild_seconds = time.perf_counter() - start
    start = time.perf_counter()
    derived = _recover_derived(kgraph, base, failed)
    derive_seconds = time.perf_counter() - start

    np.testing.assert_array_equal(derived.distance_matrix(),
                                  rebuilt.distance_matrix())
    np.testing.assert_array_equal(derived.shortest_path_counts(),
                                  rebuilt.shortest_path_counts())
    assert derived.invalidation["mode"] == "partial"

    speedup = rebuild_seconds / max(derive_seconds, 1e-9)
    stats = derived.invalidation
    print(f"\nrecovery {scale.value}: rebuild {rebuild_seconds * 1e3:.1f} ms, "
          f"derived {derive_seconds * 1e3:.1f} ms "
          f"({stats['rows_dirty']}/{stats['rows_total']} rows dirty), "
          f"speedup {speedup:.1f}x")
    # structural floor at every scale: only the dirty region was recomputed
    assert 0 < stats["rows_dirty"] <= stats["rows_total"] // 2
    if scale.value == "medium":
        assert speedup >= _RECOVERY_SPEEDUP_FLOOR


def test_bench_simulate_many_cell_sweep(benchmark, kgraph):
    """A fig02/fig14-shaped cell sweep (two stacks x three flow sizes) through the
    batched entry point, sharing the link space and candidate pools across cells."""
    rng = np.random.default_rng(0)
    pattern = random_permutation(kgraph.num_endpoints, rng).subsample(0.2, rng)
    mapping = random_mapping(kgraph.num_endpoints, rng)
    sizes = (32 * KIB, 256 * KIB, 1024 * KIB)

    def sweep():
        routing_cache = {}
        cells = [StackCell(stack=build_stack(kgraph, stack_name, seed=0, num_layers=4,
                                             routing_cache=routing_cache),
                           workload=uniform_size_workload(pattern, size),
                           mapping=mapping, seed=0)
                 for stack_name in ("fatpaths", "ecmp") for size in sizes]
        return simulate_stack_many(kgraph, cells)

    results = benchmark.pedantic(sweep, rounds=1, iterations=1, warmup_rounds=0)
    assert len(results) == 6
    assert all(len(result) for result in results)
