"""Flow-simulation engine benchmarks: scalar reference vs vectorized engine.

The pair mirrors the other legacy-vs-kernel benchmarks: the *same* fig02-style
workload (randomly mapped permutation traffic, uniform flow sizes, FatPaths stack) on
the *same* scale-dependent Slim Fly, once through the preserved scalar simulator
(``repro.sim.reference``) and once through ``repro.sim.engine``; results are pinned
identical inside the speedup test.  A third benchmark sweeps a multi-cell
(stack, workload) grid through ``simulate_many`` — the batched entry point the
simulation experiments run on.

Run ``pytest benchmarks/test_bench_flowsim.py --benchmark-only -s``; set
``FATPATHS_BENCH_SCALE=small|medium`` for larger instances.
"""

import time

import numpy as np
import pytest

from repro.core.mapping import random_mapping
from repro.experiments.simcommon import StackCell, build_stack, simulate_stack_many
from repro.sim.flowsim import simulate_workload
from repro.traffic.flows import uniform_size_workload
from repro.traffic.patterns import random_permutation

KIB = 1024

#: Engine-vs-reference speedup floor asserted at small/medium scale (the acceptance
#: bar for the vectorized engine); tiny instances are too noisy to gate.
_SPEEDUP_FLOOR = 5.0


@pytest.fixture(scope="module")
def fig02_workload(kgraph):
    """Fig-2-style traffic on the scale-dependent Slim Fly: randomly mapped
    permutation pairs, one uniform 256 KiB flow each."""
    rng = np.random.default_rng(0)
    pattern = random_permutation(kgraph.num_endpoints, rng).subsample(0.25, rng)
    mapping = random_mapping(kgraph.num_endpoints, rng)
    return uniform_size_workload(pattern, 256 * KIB), mapping


def _run(kgraph, workload, mapping, engine):
    stack = build_stack(kgraph, "fatpaths", seed=0, num_layers=4)
    return simulate_workload(kgraph, stack.routing, workload, selector=stack.selector,
                             transport=stack.transport, mapping=mapping, seed=0,
                             engine=engine)


def test_bench_flowsim_reference_scalar(benchmark, kgraph, fig02_workload):
    workload, mapping = fig02_workload
    result = benchmark.pedantic(_run, args=(kgraph, workload, mapping, "reference"),
                                rounds=1, iterations=1, warmup_rounds=0)
    assert len(result) == len(workload)


def test_bench_flowsim_vectorized_engine(benchmark, kgraph, fig02_workload):
    workload, mapping = fig02_workload
    result = benchmark.pedantic(_run, args=(kgraph, workload, mapping, "engine"),
                                rounds=1, iterations=1, warmup_rounds=0)
    assert len(result) == len(workload)


def test_flowsim_engine_speedup_and_equivalence(kgraph, fig02_workload, scale):
    """Time both implementations on identical inputs, pin the records, and (at
    small/medium scale) assert the engine's speedup floor."""
    workload, mapping = fig02_workload
    _run(kgraph, workload, mapping, "engine")          # warm shared caches
    start = time.perf_counter()
    reference = _run(kgraph, workload, mapping, "reference")
    reference_seconds = time.perf_counter() - start
    start = time.perf_counter()
    engine = _run(kgraph, workload, mapping, "engine")
    engine_seconds = time.perf_counter() - start

    assert len(reference) == len(engine)
    for ref, eng in zip(reference.records, engine.records):
        assert ref.flow_id == eng.flow_id
        assert ref.num_path_switches == eng.num_path_switches
        assert ref.congestion_events == eng.congestion_events
        assert eng.completion_time == pytest.approx(ref.completion_time, rel=1e-9)

    speedup = reference_seconds / max(engine_seconds, 1e-9)
    print(f"\nflowsim {scale.value}: reference {reference_seconds * 1e3:.1f} ms, "
          f"engine {engine_seconds * 1e3:.1f} ms, speedup {speedup:.1f}x")
    if scale.value != "tiny":
        assert speedup >= _SPEEDUP_FLOOR


def test_bench_simulate_many_cell_sweep(benchmark, kgraph):
    """A fig02/fig14-shaped cell sweep (two stacks x three flow sizes) through the
    batched entry point, sharing the link space and candidate pools across cells."""
    rng = np.random.default_rng(0)
    pattern = random_permutation(kgraph.num_endpoints, rng).subsample(0.2, rng)
    mapping = random_mapping(kgraph.num_endpoints, rng)
    sizes = (32 * KIB, 256 * KIB, 1024 * KIB)

    def sweep():
        routing_cache = {}
        cells = [StackCell(stack=build_stack(kgraph, stack_name, seed=0, num_layers=4,
                                             routing_cache=routing_cache),
                           workload=uniform_size_workload(pattern, size),
                           mapping=mapping, seed=0)
                 for stack_name in ("fatpaths", "ecmp") for size in sizes]
        return simulate_stack_many(kgraph, cells)

    results = benchmark.pedantic(sweep, rounds=1, iterations=1, warmup_rounds=0)
    assert len(results) == 6
    assert all(len(result) for result in results)
