"""Packet-simulation engine benchmarks: scalar reference vs vectorized engine.

The pair mirrors ``test_bench_flowsim.py``: the *same* deep-incast workload (many
senders converging on one receiver, FatPaths stack with NDP-style trimming — the
NACK-heavy regime where per-event Python overhead dominates the scalar loop) on the
*same* scale-dependent Slim Fly, once through the preserved scalar simulator
(``repro.sim.packetsim_reference``) and once through ``repro.sim.packetengine``;
records are pinned bit-identical inside the speedup test.
``tools/bench_report.py`` consolidates this module's pytest-benchmark output into
the committed ``BENCH_flowsim.json`` alongside the flow-level numbers.

The speedup test times each implementation with ``time.process_time`` over
interleaved rounds and compares the per-side minima — packet runs are hundreds of
milliseconds, where one scheduler preemption under ``perf_counter`` would swamp
the ratio.

Run ``pytest benchmarks/test_bench_packetsim.py --benchmark-only -s``; set
``FATPATHS_BENCH_SCALE=small|medium`` for larger instances.
"""

import time

import pytest

from repro.experiments.simcommon import build_stack
from repro.sim.packetsim import simulate_packets
from repro.traffic.flows import Flow, Workload

KIB = 1024
MIB = 1024 * 1024

#: Engine-vs-reference speedup floor asserted at small/medium scale.  The engine's
#: structural win is the ~1.8x event-visit reduction (lazy dequeues, fused
#: delivery dispatch) plus a cheaper per-visit body; with the record-for-record
#: pin (exact event order, exact selector RNG replay) the measured speedup on this
#: workload sits at 2.4-2.8x across machines, so the floor is set below that band
#: with margin for runner noise rather than at the aspirational 3x.
_PACKET_SPEEDUP_FLOOR = 2.0

#: Deep-incast shape per scale: (senders, flow size).  Every sender targets
#: endpoint 0, overflowing the destination router's shallow queues — sustained
#: trimming, priority-lane headers and NACK retransmit storms.
_INCAST_SHAPE = {"tiny": (32, 512 * KIB), "small": (64, 2 * MIB),
                 "medium": (64, 2 * MIB)}


@pytest.fixture(scope="module")
def incast_workload(kgraph, scale):
    """The scale-dependent deep incast: n senders, one fixed receiver."""
    senders, size = _INCAST_SHAPE[scale.value]
    flows = [Flow(start_time=0.0, source=s, destination=0, size_bytes=size)
             for s in range(1, senders + 1)]
    return Workload(flows, name=f"deep_incast({senders})")


def _run(kgraph, workload, engine):
    stack = build_stack(kgraph, "fatpaths", seed=0)
    return simulate_packets(kgraph, stack.routing, workload,
                            selector=stack.selector, transport=stack.transport,
                            seed=0, engine=engine)


def test_bench_packetsim_reference_scalar(benchmark, kgraph, incast_workload):
    result = benchmark.pedantic(_run, args=(kgraph, incast_workload, "reference"),
                                rounds=1, iterations=1, warmup_rounds=0)
    benchmark.extra_info["events"] = int(result.meta["events"])
    assert len(result) == len(incast_workload)


def test_bench_packetsim_vectorized_engine(benchmark, kgraph, incast_workload):
    result = benchmark.pedantic(_run, args=(kgraph, incast_workload, "engine"),
                                rounds=1, iterations=1, warmup_rounds=0)
    benchmark.extra_info["events"] = int(result.meta["events"])
    assert len(result) == len(incast_workload)


def test_packetsim_engine_speedup_and_equivalence(kgraph, incast_workload, scale):
    """Time both implementations on identical inputs (interleaved, min-of-N CPU
    time), pin the records bit-identical, and (at small/medium scale) assert the
    engine's speedup floor."""
    rounds = 3
    _run(kgraph, incast_workload, "engine")            # warm shared caches
    best = {"reference": float("inf"), "engine": float("inf")}
    results = {}
    for _ in range(rounds):
        for engine in ("reference", "engine"):
            start = time.process_time()
            results[engine] = _run(kgraph, incast_workload, engine)
            best[engine] = min(best[engine], time.process_time() - start)

    reference, engine = results["reference"], results["engine"]
    assert reference.meta == engine.meta
    assert reference.records == engine.records

    speedup = best["reference"] / max(best["engine"], 1e-9)
    print(f"\npacketsim {scale.value}: reference {best['reference'] * 1e3:.1f} ms, "
          f"engine {best['engine'] * 1e3:.1f} ms "
          f"({reference.meta['events']} events), speedup {speedup:.2f}x")
    if scale.value != "tiny":
        assert speedup >= _PACKET_SPEEDUP_FLOOR
