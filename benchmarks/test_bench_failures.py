"""Benchmark regenerating the link-failure/recovery registry scenario.

Run ``pytest benchmarks/test_bench_failures.py --benchmark-only -s`` to execute and
print the regenerated rows; set ``FATPATHS_BENCH_SCALE=small|medium`` for larger
instances.
"""

from conftest import run_experiment_once


def test_bench_failures(benchmark, scale):
    result = run_experiment_once(benchmark, "failures", scale)
    print()
    print(result.report())
