"""Pooled-vs-sequential and plain-vs-resilient benchmarks for grid execution.

The scenario pipeline makes every topology-axis experiment splittable into
per-family grid cells, each carrying its family's whole batched ``simulate_many``
StackCell group — so the engine's multi-cell sweeps fan out over the process pool.
This pair times the same splittable simulation scenarios once sequentially
in-process and once split across a two-worker pool, and pins the split contract
(identical rows) while reporting the wall-clock ratio.

The executor pair times the same healthy pooled sweep under the bare ``pool.map``
executor and under the fault-tolerant executor
(:mod:`repro.experiments.resilient`: future-based dispatch, per-cell deadlines,
retry bookkeeping) and asserts the resilient path stays within **1.15x** of
plain — fault tolerance must be effectively free when nothing fails.  The pair
is consolidated into ``BENCH_flowsim.json`` (section ``grid_executor``) by
``tools/bench_report.py``.

Run ``pytest benchmarks/test_bench_grid.py --benchmark-only -s``; set
``FATPATHS_BENCH_SCALE=small|medium`` for larger instances.
"""

import time

from repro.experiments.grid import (
    GridCell,
    run_experiment_grid,
    split_heavy_cells,
)

#: Healthy-sweep overhead ceiling: resilient executor vs plain ``pool.map``.
RESILIENT_OVERHEAD_CEILING = 1.15

#: Splittable simulation scenarios swept by the pooled-vs-sequential pair.
SCENARIOS = ("fig12", "incast")


def _cells(scale):
    return split_heavy_cells(
        [GridCell(name=name, scale=scale.value, seed=0) for name in SCENARIOS])


def test_bench_simulate_many_sequential(benchmark, scale):
    results = benchmark.pedantic(run_experiment_grid, args=(_cells(scale),),
                                 kwargs={"jobs": None},
                                 rounds=1, iterations=1, warmup_rounds=0)
    assert all(r.ok for r in results)


def test_bench_simulate_many_pooled(benchmark, scale):
    results = benchmark.pedantic(run_experiment_grid, args=(_cells(scale),),
                                 kwargs={"jobs": 2},
                                 rounds=1, iterations=1, warmup_rounds=0)
    assert all(r.ok for r in results)


def test_bench_grid_plain_pool(benchmark, scale):
    """Baseline: the healthy sweep on the bare ``pool.map`` executor."""
    results = benchmark.pedantic(run_experiment_grid, args=(_cells(scale),),
                                 kwargs={"jobs": 2, "executor": "plain"},
                                 rounds=1, iterations=1, warmup_rounds=0)
    assert all(r.ok for r in results)


def test_bench_grid_resilient_pool(benchmark, scale):
    """The same healthy sweep on the fault-tolerant executor (default path)."""
    results = benchmark.pedantic(run_experiment_grid, args=(_cells(scale),),
                                 kwargs={"jobs": 2},
                                 rounds=1, iterations=1, warmup_rounds=0)
    assert all(r.ok for r in results)


def test_grid_resilient_overhead(scale):
    """Resilient-executor overhead on a healthy sweep stays within the ceiling.

    Interleaved min-of-3 wall-clock comparison (the same protocol as the
    packet-engine floor): per-run pool startup and scheduler noise cancel in
    the minimum, so the ratio isolates the executor's own bookkeeping.
    """
    cells = _cells(scale)
    plain_times, resilient_times = [], []
    for _ in range(3):
        start = time.perf_counter()
        plain = run_experiment_grid(cells, jobs=2, executor="plain")
        plain_times.append(time.perf_counter() - start)
        start = time.perf_counter()
        resilient = run_experiment_grid(cells, jobs=2)
        resilient_times.append(time.perf_counter() - start)
        assert all(r.ok for r in plain) and all(r.ok for r in resilient)
        for p, r in zip(plain, resilient):
            assert p.result.rows == r.result.rows
    ratio = min(resilient_times) / max(min(plain_times), 1e-9)
    print(f"\ngrid executor {scale.value}: plain {min(plain_times):.2f}s, "
          f"resilient {min(resilient_times):.2f}s over {len(cells)} cells "
          f"(overhead {ratio:.3f}x, ceiling {RESILIENT_OVERHEAD_CEILING}x)")
    assert ratio <= RESILIENT_OVERHEAD_CEILING, (
        f"resilient executor overhead {ratio:.3f}x exceeds the "
        f"{RESILIENT_OVERHEAD_CEILING}x ceiling on a healthy sweep")


def test_pooled_rows_match_sequential(scale):
    """Time both executions on identical cells and pin the split contract."""
    cells = _cells(scale)
    start = time.perf_counter()
    sequential = run_experiment_grid(cells, jobs=None)
    sequential_seconds = time.perf_counter() - start
    start = time.perf_counter()
    pooled = run_experiment_grid(cells, jobs=2)
    pooled_seconds = time.perf_counter() - start
    assert all(r.ok for r in sequential) and all(r.ok for r in pooled)
    for s, p in zip(sequential, pooled):
        assert s.cell == p.cell
        assert s.result.rows == p.result.rows
    print(f"\ngrid {scale.value}: sequential {sequential_seconds:.2f}s, "
          f"2-worker pool {pooled_seconds:.2f}s over {len(cells)} cells "
          f"(ratio {sequential_seconds / max(pooled_seconds, 1e-9):.2f}x)")
