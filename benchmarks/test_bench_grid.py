"""Pooled-vs-sequential benchmark for batched ``simulate_many`` scenario cells.

The scenario pipeline makes every topology-axis experiment splittable into
per-family grid cells, each carrying its family's whole batched ``simulate_many``
StackCell group — so the engine's multi-cell sweeps fan out over the process pool.
This pair times the same splittable simulation scenarios once sequentially
in-process and once split across a two-worker pool, and pins the split contract
(identical rows) while reporting the wall-clock ratio.

Run ``pytest benchmarks/test_bench_grid.py --benchmark-only -s``; set
``FATPATHS_BENCH_SCALE=small|medium`` for larger instances.
"""

import time

from repro.experiments.grid import (
    GridCell,
    run_experiment_grid,
    split_heavy_cells,
)

#: Splittable simulation scenarios swept by the pooled-vs-sequential pair.
SCENARIOS = ("fig12", "incast")


def _cells(scale):
    return split_heavy_cells(
        [GridCell(name=name, scale=scale.value, seed=0) for name in SCENARIOS])


def test_bench_simulate_many_sequential(benchmark, scale):
    results = benchmark.pedantic(run_experiment_grid, args=(_cells(scale),),
                                 kwargs={"jobs": None},
                                 rounds=1, iterations=1, warmup_rounds=0)
    assert all(r.ok for r in results)


def test_bench_simulate_many_pooled(benchmark, scale):
    results = benchmark.pedantic(run_experiment_grid, args=(_cells(scale),),
                                 kwargs={"jobs": 2},
                                 rounds=1, iterations=1, warmup_rounds=0)
    assert all(r.ok for r in results)


def test_pooled_rows_match_sequential(scale):
    """Time both executions on identical cells and pin the split contract."""
    cells = _cells(scale)
    start = time.perf_counter()
    sequential = run_experiment_grid(cells, jobs=None)
    sequential_seconds = time.perf_counter() - start
    start = time.perf_counter()
    pooled = run_experiment_grid(cells, jobs=2)
    pooled_seconds = time.perf_counter() - start
    assert all(r.ok for r in sequential) and all(r.ok for r in pooled)
    for s, p in zip(sequential, pooled):
        assert s.cell == p.cell
        assert s.result.rows == p.result.rows
    print(f"\ngrid {scale.value}: sequential {sequential_seconds:.2f}s, "
          f"2-worker pool {pooled_seconds:.2f}s over {len(cells)} cells "
          f"(ratio {sequential_seconds / max(pooled_seconds, 1e-9):.2f}x)")
