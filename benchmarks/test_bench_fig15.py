"""Benchmark regenerating Figure 15 (FCT distribution vs queueing model).

Run ``pytest benchmarks/test_bench_fig15.py --benchmark-only -s`` to execute and print
the regenerated rows; set ``FATPATHS_BENCH_SCALE=small|medium`` for larger instances.
"""

from conftest import run_experiment_once


def test_bench_fig15(benchmark, scale):
    result = run_experiment_once(benchmark, "fig15", scale)
    print()
    print(result.report())
