"""Benchmark regenerating Figure 19 (edge density and radix vs network size).

Run ``pytest benchmarks/test_bench_fig19.py --benchmark-only -s`` to execute and print
the regenerated rows; set ``FATPATHS_BENCH_SCALE=small|medium`` for larger instances.
"""

from conftest import run_experiment_once


def test_bench_fig19(benchmark, scale):
    result = run_experiment_once(benchmark, "fig19", scale)
    print()
    print(result.report())
