"""Benchmark regenerating Figure 7 (non-minimal disjoint-path distributions).

Run ``pytest benchmarks/test_bench_fig07.py --benchmark-only -s`` to execute and print
the regenerated rows; set ``FATPATHS_BENCH_SCALE=small|medium`` for larger instances.
"""

from conftest import run_experiment_once


def test_bench_fig07(benchmark, scale):
    result = run_experiment_once(benchmark, "fig07", scale)
    print()
    print(result.report())
