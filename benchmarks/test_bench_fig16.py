"""Benchmark regenerating Figure 16 (rho sweep on TCP).

Run ``pytest benchmarks/test_bench_fig16.py --benchmark-only -s`` to execute and print
the regenerated rows; set ``FATPATHS_BENCH_SCALE=small|medium`` for larger instances.
"""

from conftest import run_experiment_once


def test_bench_fig16(benchmark, scale):
    result = run_experiment_once(benchmark, "fig16", scale)
    print()
    print(result.report())
