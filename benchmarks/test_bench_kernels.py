"""Microbenchmarks of the library's computational kernels.

These complement the per-figure benchmarks: they measure the building blocks (layer
construction, forwarding-table population, max-min fair allocation, disjoint-path
counting, the flow simulator event loop) whose performance determines how far the
reproduction scales.
"""

import numpy as np
import pytest

from repro.core.config import FatPathsConfig
from repro.core.fatpaths import FatPathsRouting
from repro.core.forwarding import build_forwarding_tables
from repro.core.layers import build_layers, random_edge_sampling_layers
from repro.diversity.disjoint_paths import disjoint_path_distribution
from repro.routing import EcmpRouting
from repro.sim.fairshare import max_min_fair_rates
from repro.sim.flowsim import simulate_workload
from repro.topologies import slim_fly
from repro.traffic.flows import uniform_size_workload
from repro.traffic.patterns import random_permutation


@pytest.fixture(scope="module")
def sf():
    return slim_fly(9)   # 162 routers, k' = 13


def test_bench_layer_construction(benchmark, sf):
    config = FatPathsConfig(num_layers=9, rho=0.7, seed=0)
    layers = benchmark(random_edge_sampling_layers, sf, config)
    assert len(layers) == 9


def test_bench_forwarding_tables(benchmark, sf):
    layers = build_layers(sf, FatPathsConfig(num_layers=4, rho=0.7, seed=0))
    tables = benchmark(build_forwarding_tables, layers)
    assert tables.num_layers == 4


def test_bench_disjoint_path_distribution(benchmark, sf):
    rng = np.random.default_rng(0)
    values = benchmark(disjoint_path_distribution, sf, 3, 50, rng)
    assert len(values) == 50


def test_bench_max_min_fair(benchmark):
    rng = np.random.default_rng(0)
    num_links, num_flows = 500, 2000
    caps = np.full(num_links, 1.25e9)
    paths = [list(rng.choice(num_links, size=4, replace=False)) for _ in range(num_flows)]
    rates = benchmark(max_min_fair_rates, paths, caps)
    assert rates.shape == (num_flows,)


def test_bench_flow_simulation(benchmark, sf):
    routing = FatPathsRouting(sf, FatPathsConfig(num_layers=4, rho=0.7, seed=0))
    pattern = random_permutation(sf.num_endpoints, np.random.default_rng(0)).subsample(
        0.2, np.random.default_rng(1))
    workload = uniform_size_workload(pattern, 256 * 1024)

    def run():
        return simulate_workload(sf, routing, workload, seed=0)

    result = benchmark.pedantic(run, rounds=1, iterations=1, warmup_rounds=0)
    assert len(result) == len(workload)


def test_bench_ecmp_path_computation(benchmark, sf):
    routing = EcmpRouting(sf, max_paths=8, seed=0)
    rng = np.random.default_rng(0)
    pairs = [tuple(rng.choice(sf.num_routers, size=2, replace=False)) for _ in range(100)]

    def run():
        routing._cache.clear()
        return [routing.router_paths(int(s), int(t)) for s, t in pairs]

    paths = benchmark(run)
    assert len(paths) == 100
