"""Microbenchmarks of the library's computational kernels.

These complement the per-figure benchmarks: they measure the building blocks (layer
construction, forwarding-table population, max-min fair allocation, disjoint-path
counting, the flow simulator event loop) whose performance determines how far the
reproduction scales.
"""

import numpy as np
import pytest

from repro.core.config import FatPathsConfig
from repro.core.fatpaths import FatPathsRouting
from repro.core.forwarding import build_forwarding_tables
from repro.core.layers import build_layers, random_edge_sampling_layers
from repro.diversity.disjoint_paths import disjoint_path_distribution
from repro.kernels import batch_disjoint_paths, global_cache, kernels_for, next_hop_table
from repro.kernels import reference as legacy
from repro.kernels.paths import shortest_path_counts
from repro.routing import EcmpRouting
from repro.sim.fairshare import max_min_fair_rates
from repro.sim.flowsim import simulate_workload
from repro.topologies import slim_fly
from repro.traffic.flows import uniform_size_workload
from repro.traffic.patterns import random_permutation

@pytest.fixture(scope="module")
def sf():
    return slim_fly(9)   # 162 routers, k' = 13


# the scale-dependent `kgraph` Slim Fly for the legacy-vs-kernel pairs is shared
# with test_bench_cache.py via conftest.py


def test_bench_layer_construction(benchmark, sf):
    config = FatPathsConfig(num_layers=9, rho=0.7, seed=0)
    layers = benchmark(random_edge_sampling_layers, sf, config)
    assert len(layers) == 9


def test_bench_forwarding_tables(benchmark, sf):
    # cold: next-hop tables and layer distance matrices are cached since PR 2, so
    # the cache is cleared inside the timed region to measure real construction
    # (the warm-path counterpart lives in test_bench_cache.py)
    layers = build_layers(sf, FatPathsConfig(num_layers=4, rho=0.7, seed=0))

    def run():
        global_cache().clear()
        return build_forwarding_tables(layers)

    tables = benchmark(run)
    assert tables.num_layers == 4


def test_bench_disjoint_path_distribution(benchmark, sf):
    rng = np.random.default_rng(0)
    values = benchmark(disjoint_path_distribution, sf, 3, 50, rng)
    assert len(values) == 50


def test_bench_max_min_fair(benchmark):
    rng = np.random.default_rng(0)
    num_links, num_flows = 500, 2000
    caps = np.full(num_links, 1.25e9)
    paths = [list(rng.choice(num_links, size=4, replace=False)) for _ in range(num_flows)]
    rates = benchmark(max_min_fair_rates, paths, caps)
    assert rates.shape == (num_flows,)


def test_bench_flow_simulation(benchmark, sf):
    routing = FatPathsRouting(sf, FatPathsConfig(num_layers=4, rho=0.7, seed=0))
    pattern = random_permutation(sf.num_endpoints, np.random.default_rng(0)).subsample(
        0.2, np.random.default_rng(1))
    workload = uniform_size_workload(pattern, 256 * 1024)

    def run():
        return simulate_workload(sf, routing, workload, seed=0)

    result = benchmark.pedantic(run, rounds=1, iterations=1, warmup_rounds=0)
    assert len(result) == len(workload)


def test_bench_ecmp_path_computation(benchmark, sf):
    routing = EcmpRouting(sf, max_paths=8, seed=0)
    rng = np.random.default_rng(0)
    pairs = [tuple(rng.choice(sf.num_routers, size=2, replace=False)) for _ in range(100)]

    def run():
        routing._cache.clear()
        return [routing.router_paths(int(s), int(t)) for s, t in pairs]

    paths = benchmark(run)
    assert len(paths) == 100


# --------------------------------------------------------------------------------------
# Legacy-vs-kernel pairs: the *same* computation on the *same* inputs via the seed
# repository's pure-Python implementations (repro.kernels.reference) and via the
# vectorized CSR engine.  Kernel variants run cold — the shared cache is cleared (or
# the computation includes its own APSP) inside the timed region — so the pairs are
# directly comparable.

def test_bench_apsp_legacy_python(benchmark, kgraph):
    result = benchmark(legacy.distance_matrix_python, kgraph.num_routers, kgraph.edges)
    assert result.shape == (kgraph.num_routers, kgraph.num_routers)


def test_bench_apsp_csr_kernels(benchmark, kgraph):
    def run():
        global_cache().clear()
        return kernels_for(kgraph).distance_matrix()

    result = benchmark(run)
    assert result.shape == (kgraph.num_routers, kgraph.num_routers)


def test_bench_path_counts_legacy_python(benchmark, kgraph):
    result = benchmark(legacy.count_shortest_paths_python, kgraph.num_routers, kgraph.edges)
    assert result.shape == (kgraph.num_routers, kgraph.num_routers)


def test_bench_path_counts_csr_kernels(benchmark, kgraph):
    # cold: the kernel computes its own distance matrix inside the timed region,
    # matching the legacy variant's from-scratch reachability bookkeeping
    csr = kernels_for(kgraph).csr

    result = benchmark(shortest_path_counts, csr)
    assert result.shape == (kgraph.num_routers, kgraph.num_routers)


#: Pairs per disjoint-path benchmark round — identical for both variants.
_DISJOINT_BENCH_PAIRS = 50

#: Path-length bound of the disjoint-path benchmark (the Fig 7 "almost minimal" l).
_DISJOINT_BENCH_MAXLEN = 3


def _disjoint_bench_pairs(kgraph):
    rng = np.random.default_rng(0)
    return [tuple(int(x) for x in rng.choice(kgraph.num_routers, size=2, replace=False))
            for _ in range(_DISJOINT_BENCH_PAIRS)]


def test_bench_disjoint_paths_legacy_python(benchmark, kgraph):
    pairs = _disjoint_bench_pairs(kgraph)

    def run():
        return [legacy.greedy_disjoint_paths_python(
            kgraph.num_routers, kgraph.edges, [s], [t], _DISJOINT_BENCH_MAXLEN)
            for s, t in pairs]

    result = benchmark(run)
    assert len(result) == len(pairs)


def test_bench_disjoint_paths_batched_kernel(benchmark, kgraph):
    # cold bounds: none are passed, so every round includes the kernel's own bound
    # computation (batched BFS over sources and targets).  The dense adjacency is
    # memoised on the CSRGraph after the first round — deliberately kept, since
    # sharing it across calls is the kernel's real steady-state behavior (the
    # legacy variant has no equivalent reusable state to warm).
    pairs = _disjoint_bench_pairs(kgraph)
    pair_arr = np.asarray(pairs)
    csr = kernels_for(kgraph).csr

    result = benchmark(batch_disjoint_paths, csr, pair_arr, _DISJOINT_BENCH_MAXLEN)
    assert len(result) == len(pairs)


def test_bench_next_hop_table_legacy_python(benchmark, kgraph):
    dist = kernels_for(kgraph).distance_matrix_float()

    result = benchmark(legacy.next_hop_table_python, kgraph.num_routers,
                       kgraph.edges, dist, 0)
    assert result.shape == (kgraph.num_routers, kgraph.num_routers)


def test_bench_next_hop_table_vectorized_kernel(benchmark, kgraph):
    kern = kernels_for(kgraph)
    csr, dist = kern.csr, kern.distance_matrix()

    result = benchmark(next_hop_table, csr, dist, 0)
    assert result.shape == (kgraph.num_routers, kgraph.num_routers)


#: Sources per BFS benchmark round — identical for the legacy and batched variants.
_BFS_BENCH_SOURCES = 64


def test_bench_multi_source_bfs_legacy_python(benchmark, kgraph):
    adj = legacy.adjacency_lists(kgraph.num_routers, kgraph.edges)
    sources = list(range(min(_BFS_BENCH_SOURCES, kgraph.num_routers)))

    def run():
        return [legacy.bfs_distances_python(kgraph.num_routers, adj, s) for s in sources]

    result = benchmark(run)
    assert len(result) == len(sources)


def test_bench_multi_source_bfs_csr_kernels(benchmark, kgraph):
    csr = kernels_for(kgraph).csr
    sources = list(range(min(_BFS_BENCH_SOURCES, kgraph.num_routers)))

    result = benchmark(csr.bfs_distances_batch, sources)
    assert result.shape == (len(sources), kgraph.num_routers)
