"""Streaming-service benchmark: sustained event rate over an open-ended stream.

The service benchmark answers the question the batch benchmarks cannot: what does
the streaming layer (:mod:`repro.sim.stream`) sustain on an *open-ended* arrival
process, and does its memory stay bounded while the arrival count grows?  A lazy
Poisson stream (:func:`repro.traffic.streams.poisson_flow_stream`) over randomly
drawn permutation pairs feeds an ECMP stack (static hashing — the cheapest
selector, isolating the service overhead, mirroring the allocator benchmark's
choice) with the incremental allocator on the scale-dependent Slim Fly; the
stream is never materialised.  Per ``FATPATHS_BENCH_SCALE`` the stream carries
20k (tiny), 200k (small) or one million (medium) arrivals — the acceptance run:
peak active-set/slot/pool sizes must stay proportional to the flows in flight,
not to the arrivals.

Two gates hold at small/medium scale: a conservative absolute sustained-rate
floor (catches accidental per-event scans over retired state), and an overhead
ceiling against the batch engine on the same materialised workload (the service
may not cost more than ``_OVERHEAD_CEILING`` times the batch run it wraps).
``tools/bench_report.py`` folds the sustained numbers into the committed
``BENCH_flowsim.json`` (``stream_sustained`` section).

Run ``pytest benchmarks/test_bench_stream.py --benchmark-only -s``; set
``FATPATHS_BENCH_SCALE=small|medium`` for the larger streams.
"""

import time

import numpy as np
import pytest

from repro.experiments.simcommon import build_stack
from repro.sim.flowsim import (
    FlowSimConfig,
    StreamConfig,
    StreamSimulator,
    simulate_workload,
)
from repro.traffic.flows import Workload
from repro.traffic.patterns import random_permutation
from repro.traffic.streams import poisson_flow_stream

KIB = 1024

#: Arrivals per FATPATHS_BENCH_SCALE; medium is the 10^6-arrival acceptance run.
_ARRIVALS = {"tiny": 20_000, "small": 200_000, "medium": 1_000_000}

#: Per-pair Poisson arrival rate (1/s).  Concurrency is set by rate x pair count
#: x service time, so it tracks the topology scale, never the stream length.
_PAIR_RATE = 2000.0

#: Absolute sustained-rate floor (events/sec) asserted at small/medium — set far
#: below the measured rate so only pathological regressions (per-event work that
#: scales with *retired* flows) trip it on slow CI machines.
_RATE_FLOOR = 500.0

#: Streaming overhead ceiling versus the batch engine on the same workload: the
#: service adds window accounting and compaction, not a different asymptotic.
_OVERHEAD_CEILING = 2.0


def _pattern(kgraph):
    rng = np.random.default_rng(0)
    return random_permutation(kgraph.num_endpoints, rng).subsample(0.5, rng)


def _stream(pattern, arrivals):
    return poisson_flow_stream(pattern, _PAIR_RATE, rng=np.random.default_rng(1),
                               max_flows=arrivals, fixed_size=64 * KIB)


def _service(kgraph):
    stack = build_stack(kgraph, "ecmp", seed=0)
    return StreamSimulator(kgraph, stack.routing, selector=stack.selector,
                           transport=stack.transport, seed=0,
                           config=FlowSimConfig(allocator="incremental"),
                           stream_config=StreamConfig(window=0.05),
                           record_sink=lambda record: None)


def _assert_bounded(summary, arrivals):
    """The acceptance bound: peaks track the in-flight population, not the stream."""
    assert summary["completions"] == arrivals
    assert summary["peak_slots"] < arrivals / 10
    assert summary["peak_pool"] < arrivals / 10
    assert summary["slot_compactions"] > 0


def test_bench_stream_sustained(benchmark, kgraph, scale):
    arrivals = _ARRIVALS[scale.value]
    pattern = _pattern(kgraph)

    def run():
        return _service(kgraph).run(_stream(pattern, arrivals))

    summary = benchmark.pedantic(run, rounds=1, iterations=1, warmup_rounds=0)
    seconds = benchmark.stats.stats.mean
    benchmark.extra_info["events"] = int(summary["events"])
    benchmark.extra_info["arrivals"] = int(summary["arrivals"])
    benchmark.extra_info["peak_active"] = int(summary["peak_active"])
    benchmark.extra_info["peak_slots"] = int(summary["peak_slots"])
    benchmark.extra_info["events_per_second"] = round(summary["events"] / seconds, 1)
    _assert_bounded(summary, arrivals)


def test_stream_sustained_rate_floor(kgraph, scale):
    """Time the service against the batch engine on identical arrivals and (at
    small/medium scale) assert the sustained-rate floor and overhead ceiling."""
    arrivals = _ARRIVALS[scale.value]
    pattern = _pattern(kgraph)
    flows = list(_stream(pattern, arrivals))

    start = time.perf_counter()
    summary = _service(kgraph).run(iter(flows))
    stream_seconds = time.perf_counter() - start
    rate = summary["events"] / stream_seconds
    _assert_bounded(summary, arrivals)

    stack = build_stack(kgraph, "ecmp", seed=0)
    start = time.perf_counter()
    batch = simulate_workload(kgraph, stack.routing, Workload(list(flows)),
                              selector=stack.selector, transport=stack.transport,
                              config=FlowSimConfig(allocator="incremental"), seed=0)
    batch_seconds = time.perf_counter() - start
    assert len(batch) == arrivals

    overhead = stream_seconds / max(batch_seconds, 1e-9)
    print(f"\nstream {scale.value}: {arrivals} arrivals, "
          f"{summary['events']} events in {stream_seconds:.1f} s "
          f"({rate:,.0f} events/s), peak_active {summary['peak_active']}, "
          f"peak_slots {summary['peak_slots']}; "
          f"batch {batch_seconds:.1f} s, overhead {overhead:.2f}x")
    if scale.value != "tiny":
        assert rate >= _RATE_FLOOR
        assert overhead <= _OVERHEAD_CEILING
