"""Benchmark regenerating Figure 20 (flow behaviour vs arrival rate).

Run ``pytest benchmarks/test_bench_fig20.py --benchmark-only -s`` to execute and print
the regenerated rows; set ``FATPATHS_BENCH_SCALE=small|medium`` for larger instances.
"""

from conftest import run_experiment_once


def test_bench_fig20(benchmark, scale):
    result = run_experiment_once(benchmark, "fig20", scale)
    print()
    print(result.report())
