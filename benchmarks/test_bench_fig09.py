"""Benchmark regenerating Figure 9 (LP maximum achievable throughput comparison).

Run ``pytest benchmarks/test_bench_fig09.py --benchmark-only -s`` to execute and print
the regenerated rows; set ``FATPATHS_BENCH_SCALE=small|medium`` for larger instances.
"""

from conftest import run_experiment_once


def test_bench_fig09(benchmark, scale):
    result = run_experiment_once(benchmark, "fig09", scale)
    print()
    print(result.report())
