"""Benchmark regenerating Figure 2 (throughput per flow vs flow size (randomized workload)).

Run ``pytest benchmarks/test_bench_fig02.py --benchmark-only -s`` to execute and print
the regenerated rows; set ``FATPATHS_BENCH_SCALE=small|medium`` for larger instances.
"""

from conftest import run_experiment_once


def test_bench_fig02(benchmark, scale):
    result = run_experiment_once(benchmark, "fig02", scale)
    print()
    print(result.report())
