"""Benchmark regenerating Table V (topology configuration parameters).

Run ``pytest benchmarks/test_bench_tab05.py --benchmark-only -s`` to execute and print
the regenerated rows; set ``FATPATHS_BENCH_SCALE=small|medium`` for larger instances.
"""

from conftest import run_experiment_once


def test_bench_tab05(benchmark, scale):
    result = run_experiment_once(benchmark, "tab05", scale)
    print()
    print(result.report())
