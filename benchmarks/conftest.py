"""Shared helpers for the benchmark harness.

Each paper table/figure has one benchmark module that regenerates it via the experiment
harness (``repro.experiments``).  Experiment benchmarks run a single round (they are
end-to-end reproductions, not microbenchmarks); the microbenchmarks in
``test_bench_kernels.py`` use pytest-benchmark's default calibration.

Set the environment variable ``FATPATHS_BENCH_SCALE`` to ``small`` or ``medium`` to run
the benchmarks closer to the paper's instance sizes (default: ``tiny``).
"""

import os

import pytest

from repro.experiments.common import Scale, run_experiment
from repro.topologies import slim_fly

#: Slim Fly size per FATPATHS_BENCH_SCALE for the legacy-vs-kernel and
#: cached-vs-uncached comparisons (tiny: 50 routers, small: 162, medium: 578).
#: Shared here so both suites always benchmark the same graphs.
SCALE_Q = {"tiny": 5, "small": 9, "medium": 17}


def bench_scale() -> Scale:
    return Scale(os.environ.get("FATPATHS_BENCH_SCALE", "tiny"))


@pytest.fixture(scope="session")
def scale() -> Scale:
    return bench_scale()


@pytest.fixture(scope="session")
def kgraph(scale):
    """Scale-dependent Slim Fly instance for the before/after benchmark pairs."""
    return slim_fly(SCALE_Q[scale.value])


def run_experiment_once(benchmark, name: str, scale: Scale, **kwargs):
    """Benchmark one experiment with a single round and return its result."""
    result = benchmark.pedantic(
        run_experiment, args=(name,), kwargs={"scale": scale, "seed": 0, **kwargs},
        rounds=1, iterations=1, warmup_rounds=0)
    assert result.rows, f"experiment {name} produced no rows"
    return result
