"""Worst-case traffic pattern via maximum-weight matching (paper §VI-C).

Following Jyothi et al. ("Measuring and understanding throughput of network
topologies", the TopoBench methodology the paper reuses), the worst-case pattern for a
given topology pairs up endpoint-hosting routers so that the *average shortest-path
length* between the paired routers is maximised — a maximum-weight perfect matching on
the complete graph over routers, with shortest-path distances as weights.  Longer
forced paths consume more link capacity per flow, which maximises stress on the
interconnect and hampers effective routing.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import networkx as nx
import numpy as np

from repro.topologies.base import Topology
from repro.traffic.patterns import TrafficPattern


def worst_case_router_pairing(topology: Topology,
                              max_routers: Optional[int] = None,
                              rng: Optional[np.random.Generator] = None) -> List[Tuple[int, int]]:
    """Maximum-weight matching of endpoint-hosting routers by shortest-path distance.

    ``max_routers`` optionally restricts the matching to a random subset of routers
    (maximum-weight matching is O(n^3) and the full matching is not needed for the
    scaled-down theoretical analysis).
    """
    rng = rng or np.random.default_rng(0)
    routers = list(topology.endpoint_routers)
    if max_routers is not None and len(routers) > max_routers:
        idx = rng.choice(len(routers), size=max_routers, replace=False)
        routers = [routers[int(i)] for i in idx]
    if len(routers) < 2:
        raise ValueError("need at least two endpoint-hosting routers")

    distances: Dict[int, np.ndarray] = {r: topology.bfs_distances(r) for r in routers}
    graph = nx.Graph()
    for i, u in enumerate(routers):
        for v in routers[i + 1:]:
            d = int(distances[u][v])
            if d > 0:
                graph.add_edge(u, v, weight=d)
    matching = nx.max_weight_matching(graph, maxcardinality=True)
    return [(min(u, v), max(u, v)) for u, v in matching]


def worst_case_pattern(topology: Topology, intensity: float = 1.0,
                       elephant_fraction: float = 0.5,
                       max_routers: Optional[int] = None,
                       rng: Optional[np.random.Generator] = None) -> TrafficPattern:
    """Worst-case endpoint pattern for ``topology`` (paper §VI-C, Figure 9).

    Endpoints of each matched router pair exchange traffic in both directions.  The
    ``intensity`` is the fraction of endpoint pairs that actually communicate, and
    ``elephant_fraction`` marks that fraction of pairs as elephant flows (weight 4, the
    remainder weight 1) in the pattern metadata, mirroring the mixed elephant/mice
    demand of the original worst-case generator.
    """
    if not 0 < intensity <= 1:
        raise ValueError("intensity must be in (0, 1]")
    rng = rng or np.random.default_rng(0)
    pairing = worst_case_router_pairing(topology, max_routers=max_routers, rng=rng)
    p = topology.concentration
    pairs: List[Tuple[int, int]] = []
    weights: List[float] = []
    for u, v in pairing:
        eps_u = topology.endpoints_of_router(u)
        eps_v = topology.endpoints_of_router(v)
        for a, b in zip(eps_u, eps_v):
            if rng.random() > intensity:
                continue
            weight = 4.0 if rng.random() < elephant_fraction else 1.0
            pairs.append((a, b))
            weights.append(weight)
            pairs.append((b, a))
            weights.append(weight)
    if not pairs:  # extremely low intensity on a tiny machine: keep at least one pair
        u, v = pairing[0]
        pairs = [(topology.endpoints_of_router(u)[0], topology.endpoints_of_router(v)[0])]
        weights = [1.0]
    return TrafficPattern(
        "worst_case_matching",
        pairs,
        meta={
            "intensity": intensity,
            "weights": tuple(weights),
            "num_matched_routers": 2 * len(pairing),
            "concentration": p,
        },
    )
