"""Endpoint-level traffic patterns (paper §II-C).

A traffic pattern is a set of communicating endpoint pairs ``(s, t(s))`` over the
endpoint id space ``{0, ..., N-1}``.  The paper's selection:

* **random uniform** — ``t(s)`` chosen uniformly at random (irregular workloads such as
  graph computations);
* **random permutation** — ``t = pi_N(s)`` for a random permutation (same motivation);
* **off-diagonal** — ``t(s) = (s + c) mod N`` for a fixed offset ``c`` (collectives);
* **shuffle** — ``t(s) = rotl_i(s)``, bitwise left rotation with ``2**i <= N < 2**(i+1)``;
* **stencil** — four off-diagonals at fixed offsets (e.g. ±1, ±42), modelling 2D stencils;
* **adversarial off-diagonal** — a skewed off-diagonal with a large offset, optionally
  repeated (oversubscribed), chosen to maximise colliding router pairs.

Beyond the paper's selection, two datacenter workload shapes back the ``incast`` and
``shuffle`` scenarios of the experiment registry:

* **incast/hotspot** — many sources converge on few hot destinations (partition/
  aggregate, parameter servers);
* **broadcast shuffle** — every member of a group broadcasts to the whole next group
  (the stage-to-stage all-to-all of a map/reduce shuffle).

Patterns are represented as a :class:`TrafficPattern`, a thin wrapper over a list of
``(source endpoint, destination endpoint)`` pairs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np


@dataclass
class TrafficPattern:
    """A named set of communicating endpoint pairs."""

    name: str
    pairs: Sequence[Tuple[int, int]]
    oversubscription: int = 1
    meta: Dict[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.pairs = tuple((int(s), int(t)) for s, t in self.pairs)

    def __len__(self) -> int:
        return len(self.pairs)

    def __iter__(self) -> Iterator[Tuple[int, int]]:
        return iter(self.pairs)

    def sources(self) -> List[int]:
        return [s for s, _ in self.pairs]

    def destinations(self) -> List[int]:
        return [t for _, t in self.pairs]

    def remap(self, mapping: Sequence[int]) -> "TrafficPattern":
        """Apply an endpoint mapping (logical -> physical), e.g. random placement."""
        remapped = [(mapping[s], mapping[t]) for s, t in self.pairs]
        return TrafficPattern(f"{self.name}|remapped", remapped,
                              oversubscription=self.oversubscription, meta=dict(self.meta))

    def subsample(self, fraction: float, rng: Optional[np.random.Generator] = None) -> "TrafficPattern":
        """Keep a random ``fraction`` of pairs (used as the paper's "traffic intensity")."""
        if not 0 < fraction <= 1:
            raise ValueError("fraction must be in (0, 1]")
        if fraction == 1:
            return self
        rng = rng or np.random.default_rng(0)
        k = max(1, int(round(fraction * len(self.pairs))))
        idx = rng.choice(len(self.pairs), size=k, replace=False)
        return TrafficPattern(f"{self.name}|{fraction:.2f}", [self.pairs[i] for i in idx],
                              oversubscription=self.oversubscription, meta=dict(self.meta))


def _check_n(num_endpoints: int) -> None:
    if num_endpoints < 2:
        raise ValueError("need at least two endpoints")


def random_uniform(num_endpoints: int, rng: Optional[np.random.Generator] = None,
                   exclude_self: bool = True) -> TrafficPattern:
    """Every endpoint sends to a destination chosen uniformly at random."""
    _check_n(num_endpoints)
    rng = rng or np.random.default_rng(0)
    destinations = rng.integers(0, num_endpoints, size=num_endpoints)
    pairs = []
    for s in range(num_endpoints):
        t = int(destinations[s])
        if exclude_self and t == s:
            t = (t + 1) % num_endpoints
        pairs.append((s, t))
    return TrafficPattern("random_uniform", pairs)


def random_permutation(num_endpoints: int, rng: Optional[np.random.Generator] = None) -> TrafficPattern:
    """``t = pi_N(s)`` for a permutation drawn uniformly at random (fixed points allowed)."""
    _check_n(num_endpoints)
    rng = rng or np.random.default_rng(0)
    perm = rng.permutation(num_endpoints)
    pairs = [(s, int(perm[s])) for s in range(num_endpoints)]
    return TrafficPattern("random_permutation", pairs)


def multiple_permutations(num_endpoints: int, count: int = 4,
                          rng: Optional[np.random.Generator] = None) -> TrafficPattern:
    """``count`` random permutations in parallel — the paper's 4x-oversubscribed pattern."""
    _check_n(num_endpoints)
    if count < 1:
        raise ValueError("count must be >= 1")
    rng = rng or np.random.default_rng(0)
    pairs: List[Tuple[int, int]] = []
    for _ in range(count):
        perm = rng.permutation(num_endpoints)
        pairs.extend((s, int(perm[s])) for s in range(num_endpoints))
    return TrafficPattern(f"{count}x_random_permutation", pairs, oversubscription=count)


def off_diagonal(num_endpoints: int, offset: int) -> TrafficPattern:
    """``t(s) = (s + offset) mod N`` — one diagonal of an all-to-all."""
    _check_n(num_endpoints)
    offset = offset % num_endpoints
    if offset == 0:
        raise ValueError("offset must be non-zero modulo N")
    pairs = [(s, (s + offset) % num_endpoints) for s in range(num_endpoints)]
    return TrafficPattern(f"off_diagonal(c={offset})", pairs, meta={"offset": offset})


def shuffle_pattern(num_endpoints: int) -> TrafficPattern:
    """Bitwise shuffle: ``t(s) = rotl_i(s) mod N`` with ``2**i <= N < 2**(i+1)``."""
    _check_n(num_endpoints)
    bits = int(np.floor(np.log2(num_endpoints)))
    mask = (1 << bits) - 1
    pairs = []
    for s in range(num_endpoints):
        x = s & mask
        rotated = ((x << 1) | (x >> (bits - 1))) & mask
        t = rotated % num_endpoints
        if t == s:
            t = (t + 1) % num_endpoints
        pairs.append((s, t))
    return TrafficPattern("shuffle", pairs, meta={"bits": bits})


def stencil_pattern(num_endpoints: int, offsets: Optional[Sequence[int]] = None) -> TrafficPattern:
    """2D stencil modelled as four off-diagonals (paper: offsets ±1, ±42 or ±1, ±1337)."""
    _check_n(num_endpoints)
    if offsets is None:
        offsets = (1, -1, 42, -42) if num_endpoints <= 10_000 else (1, -1, 1337, -1337)
    pairs: List[Tuple[int, int]] = []
    for c in offsets:
        c_mod = c % num_endpoints
        if c_mod == 0:
            continue
        pairs.extend((s, (s + c_mod) % num_endpoints) for s in range(num_endpoints))
    return TrafficPattern("stencil", pairs, oversubscription=len(offsets), meta={"offsets": tuple(offsets)})


def adversarial_offdiagonal(num_endpoints: int, concentration: int,
                            repeats: int = 1) -> TrafficPattern:
    """Skewed off-diagonal with a large offset aligned to the concentration.

    Choosing the offset as a multiple of the concentration ``p`` (plus roughly half the
    machine) makes entire routers send to entire routers, maximising colliding paths —
    the paper's "skewed adversarial" pattern used in Figure 11.
    """
    _check_n(num_endpoints)
    if concentration < 1:
        raise ValueError("concentration must be >= 1")
    base = (num_endpoints // 2 // concentration) * concentration
    if base % num_endpoints == 0:
        base = concentration
    pairs: List[Tuple[int, int]] = []
    for r in range(repeats):
        offset = (base + r * concentration) % num_endpoints
        if offset == 0:
            offset = concentration
        pairs.extend((s, (s + offset) % num_endpoints) for s in range(num_endpoints))
    return TrafficPattern("adversarial_offdiagonal", pairs, oversubscription=repeats,
                          meta={"base_offset": base, "repeats": repeats})


def incast_pattern(num_endpoints: int, num_hotspots: int = 1, fanin: int = 16,
                   rng: Optional[np.random.Generator] = None,
                   disjoint_senders: bool = False) -> TrafficPattern:
    """Incast/hotspot: ``fanin`` distinct sources converge on each hot destination.

    Models the many-to-one aggregation step of partition/aggregate and parameter-
    server workloads — the flows share the hotspot's ejection link, so router-level
    path diversity moves contention to the NIC and stresses tail FCT.  Hotspots and
    their senders are drawn without replacement from ``rng``; hotspots never send
    to themselves.

    With ``disjoint_senders=True`` the sender sets of different hotspots are
    additionally disjoint (one global draw without replacement), modelling
    multi-tenant aggregation where jobs do not share machines.  Disjoint senders
    keep the hotspot groups' injection links private, which is what makes the
    link–flow incidence decompose into per-group components — the workload shape
    the incremental allocator benchmark
    (``benchmarks/test_bench_flowsim.py``) exercises.
    """
    _check_n(num_endpoints)
    if num_hotspots < 1:
        raise ValueError("num_hotspots must be >= 1")
    if fanin < 1:
        raise ValueError("fanin must be >= 1")
    if num_hotspots > num_endpoints:
        raise ValueError("more hotspots than endpoints")
    rng = rng or np.random.default_rng(0)
    pairs: List[Tuple[int, int]] = []
    if disjoint_senders:
        need = num_hotspots + num_hotspots * fanin
        if need > num_endpoints:
            raise ValueError(
                f"disjoint senders need {need} distinct endpoints, "
                f"have {num_endpoints}")
        draw = rng.permutation(num_endpoints)[:need]
        hotspots = draw[:num_hotspots]
        senders = draw[num_hotspots:].reshape(num_hotspots, fanin)
        for hot, group in zip(hotspots, senders):
            pairs.extend((int(s), int(hot)) for s in group)
    else:
        hotspots = rng.choice(num_endpoints, size=num_hotspots, replace=False)
        for hot in hotspots:
            hot = int(hot)
            others = np.delete(np.arange(num_endpoints), hot)
            senders = rng.choice(others, size=min(fanin, others.size), replace=False)
            pairs.extend((int(s), hot) for s in senders)
    return TrafficPattern("incast", pairs,
                          meta={"hotspots": tuple(int(h) for h in hotspots),
                                "fanin": int(fanin),
                                "disjoint_senders": bool(disjoint_senders)})


def broadcast_shuffle_pattern(num_endpoints: int, group_size: int = 4) -> TrafficPattern:
    """Broadcast-shuffle: every member of group g sends to every member of group g+1.

    Endpoints are partitioned into consecutive groups of ``group_size``; each source
    broadcasts to the whole next group (mod the group count) — the all-to-all
    exchange between pipeline stages of a map/reduce-style shuffle.  The pattern is
    ``group_size``-times oversubscribed and deterministic (no random stream), so it
    splits cleanly across per-topology grid cells.
    """
    _check_n(num_endpoints)
    if group_size < 1:
        raise ValueError("group_size must be >= 1")
    if group_size * 2 > num_endpoints:
        raise ValueError("need at least two groups")
    num_groups = num_endpoints // group_size
    pairs: List[Tuple[int, int]] = []
    for s in range(num_groups * group_size):
        group = s // group_size
        target_base = ((group + 1) % num_groups) * group_size
        pairs.extend((s, target_base + j) for j in range(group_size))
    return TrafficPattern("broadcast_shuffle", pairs, oversubscription=group_size,
                          meta={"group_size": group_size, "num_groups": num_groups})


def all_patterns(num_endpoints: int, concentration: int,
                 rng: Optional[np.random.Generator] = None) -> Dict[str, TrafficPattern]:
    """The paper's Figure 4 pattern set: permutation, off-diagonal, shuffle, 4x
    permutations, and a 4-point stencil."""
    rng = rng or np.random.default_rng(0)
    return {
        "random_permutation": random_permutation(num_endpoints, rng),
        "off_diagonal": off_diagonal(num_endpoints, max(1, num_endpoints // 3)),
        "shuffle": shuffle_pattern(num_endpoints),
        "four_permutations": multiple_permutations(num_endpoints, 4, rng),
        "stencil": stencil_pattern(num_endpoints),
    }
