"""Flow/message workload generation (paper §VII-A4).

The simulation workloads draw flow sizes from the pFabric web-search distribution
(discretised to 20 sizes, mean ~1 MB), arrival times from a Poisson process with a
per-endpoint rate ``lambda``, and source/destination endpoints from a traffic pattern.
A *flow* is equivalent to a *message* in the paper's terminology.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence

import numpy as np

from repro.traffic.patterns import TrafficPattern

KIB = 1024
MIB = 1024 * KIB

#: Discretised pFabric web-search flow-size distribution (bytes -> probability).
#: 20 buckets spanning ~4 KiB to ~30 MiB with a heavy small-flow head and an
#: elephant tail; the mean is ~1 MB as in the paper.
_PFABRIC_SIZES = np.array([
    4 * KIB, 6 * KIB, 8 * KIB, 10 * KIB, 13 * KIB,
    18 * KIB, 24 * KIB, 32 * KIB, 48 * KIB, 64 * KIB,
    96 * KIB, 128 * KIB, 256 * KIB, 512 * KIB, 1 * MIB,
    2 * MIB, 4 * MIB, 8 * MIB, 16 * MIB, 30 * MIB,
], dtype=np.float64)
_PFABRIC_PROBS = np.array([
    0.15, 0.11, 0.09, 0.08, 0.07,
    0.06, 0.05, 0.05, 0.04, 0.04,
    0.035, 0.03, 0.03, 0.028, 0.025,
    0.022, 0.02, 0.017, 0.012, 0.01,
])
_PFABRIC_PROBS = _PFABRIC_PROBS / _PFABRIC_PROBS.sum()


@dataclass(order=True)
class Flow:
    """One flow (= message): source/destination endpoints, size in bytes, start time in seconds."""

    start_time: float
    source: int = field(compare=False)
    destination: int = field(compare=False)
    size_bytes: float = field(compare=False)
    flow_id: int = field(compare=False, default=-1)

    def __post_init__(self) -> None:
        if self.size_bytes <= 0:
            raise ValueError("flow size must be positive")
        if self.source == self.destination:
            raise ValueError("flow source and destination must differ")


@dataclass
class Workload:
    """A collection of flows plus bookkeeping helpers."""

    flows: List[Flow]
    name: str = "workload"
    meta: Dict[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        for i, f in enumerate(self.flows):
            f.flow_id = i

    def __len__(self) -> int:
        return len(self.flows)

    def __iter__(self) -> Iterator[Flow]:
        return iter(self.flows)

    def total_bytes(self) -> float:
        return float(sum(f.size_bytes for f in self.flows))

    def time_span(self) -> float:
        if not self.flows:
            return 0.0
        return max(f.start_time for f in self.flows) - min(f.start_time for f in self.flows)

    def sorted_by_start(self) -> List[Flow]:
        return sorted(self.flows, key=lambda f: f.start_time)


def pfabric_flow_sizes(count: int, rng: Optional[np.random.Generator] = None,
                       mean_target: Optional[float] = None) -> np.ndarray:
    """Sample ``count`` flow sizes (bytes) from the discretised pFabric distribution.

    ``mean_target`` optionally rescales the distribution so its mean matches the target
    (the paper uses an average of ~1 MB).
    """
    if count < 1:
        raise ValueError("count must be >= 1")
    rng = rng or np.random.default_rng(0)
    sizes = rng.choice(_PFABRIC_SIZES, size=count, p=_PFABRIC_PROBS)
    if mean_target is not None:
        scale = mean_target / float((_PFABRIC_SIZES * _PFABRIC_PROBS).sum())
        sizes = sizes * scale
    return sizes


def pfabric_mean_size() -> float:
    """Mean of the discretised pFabric distribution in bytes."""
    return float((_PFABRIC_SIZES * _PFABRIC_PROBS).sum())


def poisson_workload(pattern: TrafficPattern, arrival_rate: float, duration: float,
                     rng: Optional[np.random.Generator] = None,
                     flow_sizes: Optional[Sequence[float]] = None,
                     fixed_size: Optional[float] = None) -> Workload:
    """Poisson-arrival workload over the communicating pairs of ``pattern``.

    Each communicating source endpoint independently generates flows at ``arrival_rate``
    flows per second for ``duration`` seconds towards its pattern destination.  Flow
    sizes come from ``fixed_size`` (if given), ``flow_sizes`` (cycled), or the pFabric
    distribution.
    """
    if arrival_rate <= 0 or duration <= 0:
        raise ValueError("arrival_rate and duration must be positive")
    rng = rng or np.random.default_rng(0)
    flows: List[Flow] = []
    size_pool = None if flow_sizes is None else list(flow_sizes)
    for idx, (src, dst) in enumerate(pattern.pairs):
        if src == dst:
            continue  # self-traffic never enters the network
        t = 0.0
        while True:
            t += float(rng.exponential(1.0 / arrival_rate))
            if t >= duration:
                break
            if fixed_size is not None:
                size = float(fixed_size)
            elif size_pool is not None:
                size = float(size_pool[(idx + len(flows)) % len(size_pool)])
            else:
                size = float(pfabric_flow_sizes(1, rng)[0])
            flows.append(Flow(start_time=t, source=src, destination=dst, size_bytes=size))
    return Workload(flows, name=f"poisson({pattern.name})",
                    meta={"pattern": pattern.name, "arrival_rate": arrival_rate,
                          "duration": duration})


def uniform_size_workload(pattern: TrafficPattern, size_bytes: float,
                          start_time: float = 0.0) -> Workload:
    """All pattern pairs send one flow of ``size_bytes`` at ``start_time`` (bulk-synchronous step)."""
    if size_bytes <= 0:
        raise ValueError("size must be positive")
    flows = [Flow(start_time=start_time, source=s, destination=t, size_bytes=float(size_bytes))
             for s, t in pattern.pairs if s != t]
    return Workload(flows, name=f"bulk({pattern.name},{int(size_bytes)}B)",
                    meta={"pattern": pattern.name, "size_bytes": size_bytes})
