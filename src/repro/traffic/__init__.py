"""Traffic patterns and flow workloads (paper §II-C and §VII-A4).

* :mod:`repro.traffic.patterns` — endpoint-level traffic patterns: random uniform,
  random permutation, off-diagonal, shuffle, 2D stencils, and skewed adversarial
  variants.
* :mod:`repro.traffic.worstcase` — the worst-case pattern that maximises average flow
  path length via maximum-weight matching (used by the theoretical analysis, Fig 9).
* :mod:`repro.traffic.flows` — flow/message workload generation: pFabric web-search
  flow sizes, Poisson arrivals, and the stencil-with-barrier workload of Fig 17.
"""

from repro.traffic.flows import (
    Flow,
    Workload,
    pfabric_flow_sizes,
    poisson_workload,
    uniform_size_workload,
)
from repro.traffic.patterns import (
    TrafficPattern,
    adversarial_offdiagonal,
    all_patterns,
    multiple_permutations,
    off_diagonal,
    random_permutation,
    random_uniform,
    shuffle_pattern,
    stencil_pattern,
)
from repro.traffic.worstcase import worst_case_pattern

__all__ = [
    "Flow",
    "Workload",
    "pfabric_flow_sizes",
    "poisson_workload",
    "uniform_size_workload",
    "TrafficPattern",
    "adversarial_offdiagonal",
    "all_patterns",
    "multiple_permutations",
    "off_diagonal",
    "random_permutation",
    "random_uniform",
    "shuffle_pattern",
    "stencil_pattern",
    "worst_case_pattern",
]
