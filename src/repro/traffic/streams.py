"""Open-ended flow arrival streams (the workload side of the streaming service).

:func:`poisson_flow_stream` is the lazy counterpart of
:func:`repro.traffic.flows.poisson_workload`: every communicating pair of a
traffic pattern generates flows at an exponential interarrival rate, and the
per-pair arrival processes are merged through a heap so flows come out one at a
time in global start-time order — exactly the ordering contract
:class:`repro.sim.stream.StreamSimulator` ingests.  Nothing is materialised up
front, so a ``duration=None`` stream is genuinely infinite and the consumer
bounds it (by ``max_flows``, an ``itertools.islice``, or an ``advance`` horizon).
"""

from __future__ import annotations

import heapq
from typing import Iterator, Optional

import numpy as np

from repro.traffic.flows import Flow, pfabric_flow_sizes
from repro.traffic.patterns import TrafficPattern


def poisson_flow_stream(pattern: TrafficPattern, arrival_rate: float,
                        rng: Optional[np.random.Generator] = None,
                        duration: Optional[float] = None,
                        max_flows: Optional[int] = None,
                        fixed_size: Optional[float] = None,
                        mean_target: Optional[float] = None,
                        start_id: int = 0) -> Iterator[Flow]:
    """Lazily generate Poisson flows over ``pattern``'s pairs in start-time order.

    Each communicating pair draws independent exponential interarrivals at
    ``arrival_rate`` flows per second; a heap merges the per-pair processes so
    the yielded flows are globally nondecreasing in ``start_time`` (ties broken
    by pair index — deterministic).  Sizes come from ``fixed_size`` or the
    pFabric distribution (optionally rescaled to ``mean_target``); flow ids are
    assigned sequentially from ``start_id``.  ``duration`` stops each pair's
    process at that simulated time, ``max_flows`` caps the total yield; with
    neither the stream is infinite.

    All draws (interarrivals and sizes) happen at yield order, so the stream is
    a pure function of ``rng``'s state — two iterations with equal seeds are
    identical, and resuming a half-consumed stream just means not re-creating it.
    """
    if arrival_rate <= 0:
        raise ValueError("arrival_rate must be positive")
    if duration is not None and duration <= 0:
        raise ValueError("duration must be positive (or None for unbounded)")
    rng = rng or np.random.default_rng(0)
    pairs = [(s, d) for s, d in pattern.pairs if s != d]
    if not pairs:
        return
    heap: list = []
    for idx, _ in enumerate(pairs):
        t = float(rng.exponential(1.0 / arrival_rate))
        if duration is None or t < duration:
            heapq.heappush(heap, (t, idx))
    flow_id = start_id
    emitted = 0
    while heap:
        t, idx = heapq.heappop(heap)
        src, dst = pairs[idx]
        if fixed_size is not None:
            size = float(fixed_size)
        else:
            size = float(pfabric_flow_sizes(1, rng, mean_target=mean_target)[0])
        yield Flow(start_time=t, source=src, destination=dst, size_bytes=size,
                   flow_id=flow_id)
        flow_id += 1
        emitted += 1
        if max_flows is not None and emitted >= max_flows:
            return
        nxt = t + float(rng.exponential(1.0 / arrival_rate))
        if duration is None or nxt < duration:
            heapq.heappush(heap, (nxt, idx))
