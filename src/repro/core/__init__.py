"""The FatPaths routing architecture (paper §III and §V).

* :mod:`repro.core.config` — configuration (number of layers ``n``, layer density
  ``rho``, construction algorithm, transport and load-balancing choices).
* :mod:`repro.core.layers` — layer construction: random uniform edge sampling
  (Listing 1) and the interference-minimising heuristic (Listing 2).
* :mod:`repro.core.forwarding` — per-layer forwarding functions / tables (Listing 3,
  Appendix C.A).
* :mod:`repro.core.fatpaths` — the :class:`FatPathsRouting` facade that builds layers +
  tables for a topology and exposes multi-path routing to the simulators and LPs.
* :mod:`repro.core.loadbalance` — flowlet switching, LetFlow, ECMP hashing and
  per-packet spraying path selectors.
* :mod:`repro.core.transport` — transport models: purified (NDP-like), TCP, DCTCP.
* :mod:`repro.core.mapping` — randomized workload mapping.
"""

from repro.core.config import FatPathsConfig, recommended_config
from repro.core.fatpaths import FatPathsRouting
from repro.core.forwarding import ForwardingTables, build_forwarding_tables
from repro.core.layers import Layer, LayerSet, build_layers
from repro.core.loadbalance import (
    EcmpSelector,
    FlowletSelector,
    PacketSpraySelector,
    PathSelector,
)
from repro.core.mapping import identity_mapping, random_mapping
from repro.core.transport import TransportModel, ndp_transport, tcp_transport, dctcp_transport

__all__ = [
    "FatPathsConfig",
    "recommended_config",
    "FatPathsRouting",
    "ForwardingTables",
    "build_forwarding_tables",
    "Layer",
    "LayerSet",
    "build_layers",
    "EcmpSelector",
    "FlowletSelector",
    "PacketSpraySelector",
    "PathSelector",
    "identity_mapping",
    "random_mapping",
    "TransportModel",
    "ndp_transport",
    "tcp_transport",
    "dctcp_transport",
]
