"""The FatPaths routing facade: layers + forwarding + multi-path queries.

:class:`FatPathsRouting` ties the architecture together for one topology: it builds the
layer set (Listing 1 or 2), populates per-layer forwarding tables (Listing 3) and
exposes the multi-path view consumed by the load balancer, the simulators and the
throughput LPs — "give me the candidate router paths between these two routers (or
endpoints), one per layer".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.config import FatPathsConfig, recommended_config
from repro.core.forwarding import ForwardingTables, build_forwarding_tables
from repro.core.layers import LayerSet, build_layers
from repro.topologies.base import Topology


@dataclass
class PathStatistics:
    """Summary of the candidate paths FatPaths exposes (used in reports/tests)."""

    mean_num_paths: float
    mean_path_length: float
    mean_minimal_length: float
    mean_stretch: float
    num_pairs: int


class FatPathsRouting:
    """FatPaths layered routing over one topology.

    Parameters
    ----------
    topology:
        The router-level network.
    config:
        Layer configuration; defaults to :func:`repro.core.config.recommended_config`
        for the topology family and the given ``deployment``.
    deployment:
        "ethernet" (paper §VII-B defaults, n=9) or "tcp" (§VII-C defaults, n=4); only
        used when ``config`` is not given.
    seed:
        Overrides the config seed when provided.
    """

    def __init__(self, topology: Topology, config: Optional[FatPathsConfig] = None,
                 deployment: str = "ethernet", seed: Optional[int] = None) -> None:
        self.topology = topology
        if config is None:
            config = recommended_config(topology, deployment=deployment, seed=seed)
        elif seed is not None:
            config = config.with_(seed=seed)
        self.config = config
        self.layer_set: LayerSet = build_layers(topology, config)
        self.tables: ForwardingTables = build_forwarding_tables(self.layer_set)
        self._path_cache: Dict[Tuple[int, int], List[List[int]]] = {}

    # ------------------------------------------------------------------ basic
    @property
    def num_layers(self) -> int:
        return len(self.layer_set)

    def layer_edge_fractions(self) -> List[float]:
        """Fraction of links per layer (layer 0 is always 1.0)."""
        return self.layer_set.edge_fractions()

    # ------------------------------------------------------------------ paths
    def router_paths(self, source_router: int, target_router: int,
                     unique: bool = True) -> List[List[int]]:
        """Candidate router paths (one per layer, deduplicated) between two routers."""
        if source_router == target_router:
            return [[source_router]]
        key = (source_router, target_router)
        if unique and key in self._path_cache:
            return self._path_cache[key]
        paths = self.tables.paths(source_router, target_router, unique=unique)
        if unique:
            self._path_cache[key] = paths
        return paths

    def endpoint_paths(self, source_endpoint: int, target_endpoint: int) -> List[List[int]]:
        """Candidate router paths between the routers hosting two endpoints."""
        rs = self.topology.router_of_endpoint(source_endpoint)
        rt = self.topology.router_of_endpoint(target_endpoint)
        return self.router_paths(rs, rt)

    def path_in_layer(self, layer: int, source_router: int, target_router: int) -> Optional[List[int]]:
        """The (single) path of one layer, with full-layer fallback for missing routes."""
        return self.tables.path(layer, source_router, target_router)

    def minimal_distance(self, source_router: int, target_router: int) -> int:
        """Shortest-path distance in the full network (layer 0)."""
        return int(self.tables.distances[0][source_router, target_router])

    # -------------------------------------------------------------- statistics
    def path_statistics(self, num_samples: int = 200,
                        rng: Optional[np.random.Generator] = None) -> PathStatistics:
        """Sampled statistics of the exposed multi-path diversity."""
        rng = rng or np.random.default_rng(0)
        candidates = list(self.topology.endpoint_routers)
        num_paths: List[int] = []
        path_lengths: List[float] = []
        minimal: List[float] = []
        pairs = 0
        while pairs < num_samples:
            s, t = rng.choice(candidates, size=2)
            if s == t:
                continue
            pairs += 1
            paths = self.router_paths(int(s), int(t))
            num_paths.append(len(paths))
            lengths = [len(p) - 1 for p in paths]
            path_lengths.append(float(np.mean(lengths)))
            minimal.append(float(self.minimal_distance(int(s), int(t))))
        mean_len = float(np.mean(path_lengths))
        mean_min = float(np.mean(minimal))
        return PathStatistics(
            mean_num_paths=float(np.mean(num_paths)),
            mean_path_length=mean_len,
            mean_minimal_length=mean_min,
            mean_stretch=mean_len / mean_min if mean_min > 0 else float("nan"),
            num_pairs=pairs,
        )

    def forwarding_entries(self) -> int:
        """Total forwarding-table entries across all layers (hardware cost, §VI-B)."""
        return self.tables.table_entries()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"FatPathsRouting({self.topology.name}, n={self.config.num_layers}, "
                f"rho={self.config.rho}, algo={self.config.layer_algorithm})")
