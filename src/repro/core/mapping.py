"""Randomized workload mapping (paper §III-D).

FatPaths optionally places communicating endpoints on routers chosen uniformly at
random, which spreads load over the whole network and exploits the rich inter-group
path diversity of low-diameter topologies.  A *mapping* is a permutation array: logical
endpoint ``e`` executes on physical endpoint ``mapping[e]``.
"""

from __future__ import annotations

from typing import Optional

import numpy as np


def identity_mapping(num_endpoints: int) -> np.ndarray:
    """Endpoints stay where the workload numbered them (locality-preserving / skewed)."""
    if num_endpoints < 1:
        raise ValueError("num_endpoints must be >= 1")
    return np.arange(num_endpoints, dtype=np.int64)


def random_mapping(num_endpoints: int, rng: Optional[np.random.Generator] = None) -> np.ndarray:
    """A uniformly random permutation of endpoints (the paper's randomized mapping)."""
    if num_endpoints < 1:
        raise ValueError("num_endpoints must be >= 1")
    rng = rng or np.random.default_rng(0)
    return rng.permutation(num_endpoints).astype(np.int64)


def is_valid_mapping(mapping: np.ndarray, num_endpoints: int) -> bool:
    """True if ``mapping`` is a permutation of ``0 .. num_endpoints-1``."""
    if len(mapping) != num_endpoints:
        return False
    return bool(np.array_equal(np.sort(np.asarray(mapping)), np.arange(num_endpoints)))
