"""Per-layer forwarding functions and tables (paper §V-A, §V-C, Appendix C.A).

FatPaths uses destination-based forwarding: within layer ``i`` a routing function
``sigma_i(s, t)`` returns the next-hop router on a *minimal path inside that layer*
from ``s`` towards ``t``.  This module computes those functions as dense next-hop
tables (one ``Nr x Nr`` int array per layer) plus the per-layer distance matrices, and
provides path extraction by iterating the forwarding function.

Both distances and next-hop tables come from the vectorized CSR kernels through the
process-wide path cache, keyed by (topology fingerprint, layer index, edge digest):
the tables are built by :mod:`repro.kernels.nexthop` — a fully vectorized permuted
-neighbour scan over the cached distance matrix, no per-source Python loop — and
cached per ``(layer, seed)``, so repeated forwarding builds over identical layers
(common across figures of one experiment sweep) reuse one APSP *and* one table
construction.  Next hops are chosen uniformly at random among the neighbours that
make progress (Listing 3: "choose a random first step port, if there are multiple
options"); each layer draws its randomness from the deterministic per-layer seed
``(base_seed, layer_index)``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.core.layers import Layer, LayerSet
from repro.kernels.cache import layer_kernels
from repro.topologies.base import Topology

UNREACHABLE = -1


def _layer_distance_matrix(topology: Topology, layer: Layer) -> np.ndarray:
    """All-pairs hop distances within one layer (inf for unreachable), shared-cached."""
    return layer_kernels(topology, layer).distance_matrix_float()


def _next_hop_table(topology: Topology, layer: Layer, seed) -> np.ndarray:
    """Dense next-hop table for one layer: ``table[s, t]`` = next router from s towards t.

    Served read-only from the layer's cached kernels (built vectorized by
    :func:`repro.kernels.nexthop.next_hop_table`); equal ``(layer, seed)`` pairs
    share one table.
    """
    return layer_kernels(topology, layer).next_hop_table(seed)


@dataclass
class ForwardingTables:
    """Forwarding state for all layers of a FatPaths deployment.

    Attributes
    ----------
    topology, layer_set:
        The network and its layers.
    next_hops:
        ``next_hops[i][s, t]`` = next router from ``s`` towards ``t`` inside layer ``i``
        (or ``UNREACHABLE``).
    distances:
        ``distances[i][s, t]`` = hop distance inside layer ``i`` (``inf`` if unreachable).
    """

    topology: Topology
    layer_set: LayerSet
    next_hops: List[np.ndarray]
    distances: List[np.ndarray]
    meta: Dict[str, object] = field(default_factory=dict)

    @property
    def num_layers(self) -> int:
        return len(self.next_hops)

    def next_hop(self, layer: int, source: int, target: int) -> int:
        """``sigma_layer(source, target)`` — the next router, or ``UNREACHABLE``."""
        return int(self.next_hops[layer][source, target])

    def reachable(self, layer: int, source: int, target: int) -> bool:
        return np.isfinite(self.distances[layer][source, target])

    def path(self, layer: int, source: int, target: int,
             fallback_to_full: bool = True) -> Optional[List[int]]:
        """The router path obtained by iterating ``sigma_layer`` from source to target.

        If the pair is unreachable within the layer and ``fallback_to_full`` is set, the
        full (first) layer is used instead — mirroring a deployment where a missing
        route in a sparsified layer falls back to default forwarding.
        """
        if source == target:
            return [source]
        use_layer = layer
        if not self.reachable(layer, source, target):
            if not fallback_to_full:
                return None
            use_layer = 0
            if not self.reachable(0, source, target):
                return None
        table = self.next_hops[use_layer]
        path = [source]
        current = source
        limit = self.topology.num_routers + 1
        for _ in range(limit):
            current = int(table[current, target])
            if current == UNREACHABLE:
                return None
            path.append(current)
            if current == target:
                return path
        raise RuntimeError("forwarding loop detected")  # pragma: no cover - defensive

    def paths(self, source: int, target: int, unique: bool = True) -> List[List[int]]:
        """One path per layer from source to target (deduplicated when ``unique``)."""
        seen = set()
        out: List[List[int]] = []
        for layer in range(self.num_layers):
            p = self.path(layer, source, target)
            if p is None:
                continue
            key = tuple(p)
            if unique and key in seen:
                continue
            seen.add(key)
            out.append(p)
        return out

    def path_lengths(self, source: int, target: int) -> List[int]:
        """Hop count of the per-layer path for every layer (full-layer fallback applies)."""
        return [len(p) - 1 for p in self.paths(source, target, unique=False)]

    def table_entries(self) -> int:
        """Total number of forwarding entries (the hardware-resource metric of §VI-B)."""
        return sum(int((t != UNREACHABLE).sum()) - self.topology.num_routers
                   for t in self.next_hops)


def build_forwarding_tables(layer_set: LayerSet, seed: Optional[int] = None) -> ForwardingTables:
    """Populate per-layer forwarding tables for ``layer_set`` (Listing 3).

    Each layer's table is built by the vectorized kernel from the layer's cached
    distance matrix under the deterministic seed ``(base_seed, layer_index)`` (where
    ``base_seed`` is ``seed`` or the layer-set config seed), and is itself cached —
    rebuilding over identical layers with the same seed returns the cached tables.
    The returned next-hop arrays are read-only views of the cache.
    """
    topology = layer_set.topology
    base_seed = layer_set.config.seed if seed is None else seed
    next_hops: List[np.ndarray] = []
    distances: List[np.ndarray] = []
    for layer in layer_set:
        distances.append(_layer_distance_matrix(topology, layer))
        next_hops.append(_next_hop_table(topology, layer, (base_seed, layer.index)))
    return ForwardingTables(topology=topology, layer_set=layer_set,
                            next_hops=next_hops, distances=distances,
                            meta={"algorithm": layer_set.meta.get("algorithm", "random")})
