"""Layer construction for FatPaths layered routing (paper §V-B, Listings 1 and 2).

A *layer* is a subset of the physical links.  Minimal routing *inside* a sparsified
layer yields paths that are non-minimal with respect to the full network — this is how
FatPaths encodes non-minimal path diversity in commodity forwarding hardware.  The
first layer always contains every link (it hosts the true shortest paths).

Two constructors are provided:

* :func:`random_edge_sampling_layers` — Listing 1: each additional layer keeps a
  ``rho`` fraction of links sampled uniformly at random (optionally oriented by a
  random vertex permutation for acyclicity), re-sampling if the layer disconnects the
  network badly.
* :func:`interference_minimizing_layers` — Listing 2: a heuristic that, per layer,
  routes router pairs over paths slightly longer than minimal while minimising overlap
  with paths already placed (edge weights track usage; pairs with fewest paths placed
  get priority).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.core.config import FatPathsConfig
from repro.kernels.cache import kernels_for
from repro.kernels.csr import edges_connected, edges_connected_batch
from repro.topologies.base import Topology

Edge = Tuple[int, int]

#: Total resampling attempts per sparsified layer (unchanged from the seed loop).
_MAX_RESAMPLE_ATTEMPTS = 20


@dataclass(frozen=True)
class Layer:
    """One routing layer: an (undirected) subset of the topology's links."""

    index: int
    edges: FrozenSet[Edge]
    is_full: bool = False

    def __len__(self) -> int:
        return len(self.edges)

    def contains_edge(self, u: int, v: int) -> bool:
        return (min(u, v), max(u, v)) in self.edges

    def subtopology(self, topology: Topology) -> Topology:
        """The layer as a Topology (same routers, restricted links)."""
        return topology.subgraph(sorted(self.edges))


@dataclass
class LayerSet:
    """All layers of one FatPaths deployment over one topology."""

    topology: Topology
    layers: List[Layer]
    config: FatPathsConfig
    meta: Dict[str, object] = field(default_factory=dict)

    def __len__(self) -> int:
        return len(self.layers)

    def __iter__(self):
        return iter(self.layers)

    def __getitem__(self, index: int) -> Layer:
        return self.layers[index]

    def edge_fractions(self) -> List[float]:
        """Fraction of physical links present in each layer."""
        total = self.topology.num_edges
        return [len(layer) / total for layer in self.layers]


def _normalize(u: int, v: int) -> Edge:
    return (u, v) if u < v else (v, u)


def _is_connected(num_routers: int, edges: Sequence[Edge]) -> bool:
    """Vectorized CSR connectivity check on a candidate layer's edge subset."""
    return edges_connected(num_routers, edges)


# --------------------------------------------------------------------------- Listing 1
def random_edge_sampling_layers(topology: Topology, config: FatPathsConfig) -> LayerSet:
    """Listing 1: layer 1 keeps all links; each further layer samples ``rho |E|`` links u.a.r.

    The listing's ``pi(u) < pi(v)`` condition (a random vertex permutation per layer)
    acyclically *orients* each layer for deployments that forward over directed link
    sets; since FatPaths routes minimally over the undirected layer subgraph, the
    orientation does not change which links belong to the layer, so this implementation
    keeps the undirected subset only (``config.acyclic_layers`` merely records the
    intent in the layer-set metadata).

    Sparsified layers that disconnect the network are re-sampled a bounded number of
    times; if the graph stubbornly disconnects (very low ``rho`` on a sparse topology)
    the first attempt is kept — forwarding simply falls back to the full layer for
    unreachable pairs, as in a real deployment.

    Resampling is batched: candidates are drawn in geometrically growing blocks
    (1, 1, 2, 4, 8, ...) and each block is decided through one
    :func:`~repro.kernels.csr.edges_connected_batch` sweep instead of one
    Python-driven traversal per attempt.  The common cases — a connected draw within
    the first two attempts — consume exactly the permutations the seed's per-attempt
    loop did; layers whose first two attempts both disconnect (very low ``rho``)
    draw whole blocks up front, advancing the RNG by the block size rather than by
    the exact number of failed attempts — acceptable there, since which
    near-disconnected candidate is kept is already an arbitrary choice among
    statistically identical samples.
    """
    rng = np.random.default_rng(config.seed)
    all_edges = [(u, v) for u, v in topology.edges]
    layers = [Layer(index=0, edges=frozenset(all_edges), is_full=True)]
    target = max(1, int(np.floor(config.rho * len(all_edges))))

    def draw() -> List[Edge]:
        idx = rng.permutation(len(all_edges))[:target]
        return [all_edges[i] for i in idx]

    for layer_index in range(1, config.num_layers):
        chosen: Optional[List[Edge]] = None
        first = draw()
        if config.rho >= 1.0 or _is_connected(topology.num_routers, first):
            chosen = first
        attempts, block_size = 1, 1
        while chosen is None and attempts < _MAX_RESAMPLE_ATTEMPTS:
            block = [draw() for _ in range(min(block_size,
                                               _MAX_RESAMPLE_ATTEMPTS - attempts))]
            attempts += len(block)
            block_size *= 2
            connected = edges_connected_batch(topology.num_routers, block)
            for candidate, ok in zip(block, connected):
                if ok:
                    chosen = candidate
                    break
        layers.append(Layer(index=layer_index, edges=frozenset(chosen if chosen is not None
                                                               else first)))
    return LayerSet(topology=topology, layers=layers, config=config,
                    meta={"algorithm": "random", "acyclic": config.acyclic_layers})


# --------------------------------------------------------------------------- Listing 2
def _bounded_min_weight_path(adj: List[List[int]], weights: Dict[Edge, float],
                             source: int, target: int, min_len: int, max_len: int,
                             banned_edges: Set[Edge]) -> Optional[List[int]]:
    """Minimum-weight simple path from source to target with hop count in [min_len, max_len].

    Implemented as a bounded Dijkstra over (vertex, hops) states; the hop bound keeps
    the state space small (max_len is diameter + 2 in practice).
    """
    # state: (accumulated weight, vertex, hops); parents keyed by (vertex, hops)
    start = (0.0, source, 0)
    best_cost: Dict[Tuple[int, int], float] = {(source, 0): 0.0}
    parent: Dict[Tuple[int, int], Tuple[int, int]] = {}
    heap = [start]
    best_final: Optional[Tuple[float, int]] = None  # (cost, hops) at target
    while heap:
        cost, vertex, hops = heapq.heappop(heap)
        if best_cost.get((vertex, hops), float("inf")) < cost:
            continue
        if vertex == target and hops >= min_len:
            best_final = (cost, hops)
            break
        if hops == max_len:
            continue
        for nxt in adj[vertex]:
            edge = _normalize(vertex, nxt)
            if edge in banned_edges:
                continue
            ncost = cost + weights.get(edge, 0.0) + 1e-6  # small bias toward short paths
            key = (nxt, hops + 1)
            if ncost < best_cost.get(key, float("inf")):
                best_cost[key] = ncost
                parent[key] = (vertex, hops)
                heapq.heappush(heap, (ncost, nxt, hops + 1))
    if best_final is None:
        return None
    # reconstruct
    path = [target]
    key = (target, best_final[1])
    while key in parent:
        key = parent[key]
        path.append(key[0])
    path.reverse()
    if path[0] != source:
        return None
    # reject paths with repeated vertices (possible in the (vertex, hops) graph)
    if len(set(path)) != len(path):
        return None
    return path


def interference_minimizing_layers(topology: Topology, config: FatPathsConfig,
                                   pairs_per_layer: Optional[int] = None,
                                   candidate_pairs: Optional[Sequence[Tuple[int, int]]] = None
                                   ) -> LayerSet:
    """Listing 2: build layers from explicitly chosen low-overlap, slightly-non-minimal paths.

    For every additional layer, router pairs are processed in order of how few paths
    they have been given so far (a priority queue).  Each pair receives a minimum-weight
    path whose length lies within ``[l_min + min_extra_hops, l_min + max_extra_hops]``,
    where edge weights count prior usage across all layers — so later paths avoid the
    links earlier paths already claimed.  The chosen path's links are added to the layer,
    and "shortcut" links between non-consecutive path vertices are excluded from it
    (Listing 2's incidence-matrix update) so the path remains minimal inside the layer.

    ``candidate_pairs`` optionally restricts/prioritises the router pairs that receive
    explicit paths (the paper's constant ``M`` bounds the same work); by default pairs
    are sampled from the endpoint-hosting routers.
    """
    rng = np.random.default_rng(config.seed)
    adj = topology.adjacency()
    nr = topology.num_routers
    all_edges = [(u, v) for u, v in topology.edges]
    layers = [Layer(index=0, edges=frozenset(all_edges), is_full=True)]

    # usage weight per edge across all layers; path counts per router pair
    weights: Dict[Edge, float] = {e: 0.0 for e in all_edges}
    endpoint_routers = list(topology.endpoint_routers)
    pair_path_count: Dict[Tuple[int, int], int] = {}

    # minimal pair lengths served by the shared path cache (one CSR BFS per source
    # across all layer builds on this topology)
    kernels = kernels_for(topology)

    def lmin(s: int, t: int) -> int:
        return int(kernels.distances_from(s)[t])

    if candidate_pairs is not None:
        candidate_pool = [(int(s), int(t)) for s, t in candidate_pairs if s != t]
        if pairs_per_layer is None:
            pairs_per_layer = len(candidate_pool)
    else:
        candidate_pool = None
        if pairs_per_layer is None:
            pairs_per_layer = max(nr, len(endpoint_routers) * 2)

    for layer_index in range(1, config.num_layers):
        layer_edges: Set[Edge] = set()
        # priority queue of (paths already placed, random tiebreak, s, t)
        heap: List[Tuple[int, float, int, int]] = []
        if candidate_pool is not None:
            candidates = list(candidate_pool)
        else:
            # sample candidate pairs: all pairs for small networks, a random subset otherwise
            candidates = []
            max_candidates = 4 * pairs_per_layer
            if len(endpoint_routers) ** 2 <= max_candidates:
                candidates = [(s, t) for s in endpoint_routers for t in endpoint_routers if s != t]
            else:
                while len(candidates) < max_candidates:
                    s, t = rng.choice(endpoint_routers, size=2)
                    if s != t:
                        candidates.append((int(s), int(t)))
        for s, t in candidates:
            heapq.heappush(heap, (pair_path_count.get((s, t), 0), rng.random(), s, t))

        placed = 0
        # Listing 2's incidence-matrix exclusion: once a pair gets a path, "shortcut"
        # edges between non-consecutive path vertices are banned from this layer so the
        # chosen (almost-minimal) path stays the minimal route inside the layer.
        banned: Set[Edge] = set()
        while heap and placed < pairs_per_layer:
            _, _, s, t = heapq.heappop(heap)
            base = lmin(s, t)
            if base <= 0:
                continue
            path = _bounded_min_weight_path(
                adj, weights, s, t,
                min_len=base + config.min_extra_hops,
                max_len=base + config.max_extra_hops,
                banned_edges=banned,
            )
            if path is None:
                # fall back to any path of at least minimal length
                path = _bounded_min_weight_path(adj, weights, s, t, min_len=base,
                                                max_len=base + config.max_extra_hops,
                                                banned_edges=banned)
            if path is None:
                continue
            placed += 1
            pair_path_count[(s, t)] = pair_path_count.get((s, t), 0) + 1
            length = len(path) - 1
            for i, (u, v) in enumerate(zip(path, path[1:])):
                edge = _normalize(u, v)
                layer_edges.add(edge)
                # Listing 2's weight update: centre edges of long paths get penalised most
                weights[edge] += i * (length - 1 - i) + 1.0
            adjacency_sets = None
            for i in range(len(path)):
                for j in range(i + 2, len(path)):
                    if adjacency_sets is None:
                        adjacency_sets = [set(neigh) for neigh in adj]
                    if path[j] in adjacency_sets[path[i]]:
                        shortcut = _normalize(path[i], path[j])
                        if shortcut not in layer_edges:
                            banned.add(shortcut)
        layers.append(Layer(index=layer_index,
                            edges=frozenset(layer_edges) if layer_edges else frozenset(all_edges)))
    return LayerSet(topology=topology, layers=layers, config=config,
                    meta={"algorithm": "interference", "pairs_per_layer": pairs_per_layer})


def build_layers(topology: Topology, config: Optional[FatPathsConfig] = None) -> LayerSet:
    """Build a layer set according to ``config.layer_algorithm`` (default: random sampling)."""
    config = config or FatPathsConfig()
    if config.layer_algorithm == "random":
        return random_edge_sampling_layers(topology, config)
    return interference_minimizing_layers(topology, config)
