"""Load-balancing path selectors (paper §III-B, §V-F).

A *path selector* decides, for a flow and a point in time, which of the flow's candidate
paths (one per FatPaths layer, or the set of minimal paths for ECMP-style schemes) the
next batch of bytes travels on.  The selectors model the schemes compared in the paper:

* :class:`EcmpSelector` — static, flow-hash based: one path for the whole flow.
* :class:`FlowletSelector` — flowlet switching (LetFlow / FatPaths adaptivity): a new
  path is picked at every flowlet boundary; optionally congestion-aware (FatPaths: the
  receiver requests a layer change when it observes trimmed payloads) and optionally
  biased towards shorter paths (flowlet elasticity sends more bytes over shorter, less
  congested paths).
* :class:`PacketSpraySelector` — per-packet / per-chunk oblivious spraying (NDP's
  default on Clos): all candidate paths are used simultaneously in equal shares.

Selectors are deliberately simulator-agnostic: they only need the candidate paths and a
callable reporting current path congestion, so both the flow-level and the packet-level
simulator (and unit tests) drive them directly.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Callable, Optional, Sequence

import numpy as np

#: Signature of the congestion oracle handed to selectors: path index -> load estimate
#: (0 = idle, 1 = fully utilised, >1 = oversubscribed).
CongestionOracle = Callable[[int], float]


def _fnv1a(value: int) -> int:
    """Fowler–Noll–Vo hash (the paper's ECMP hash), over the integer's 8 bytes."""
    data = int(value) & 0xFFFFFFFFFFFFFFFF
    h = 0xCBF29CE484222325
    for _ in range(8):
        h ^= data & 0xFF
        h = (h * 0x100000001B3) & 0xFFFFFFFFFFFFFFFF
        data >>= 8
    return h


class PathSelector(abc.ABC):
    """Interface: pick a candidate-path index for the next flowlet/packet batch."""

    #: True if the selector distributes a flow over all paths simultaneously.
    sprays: bool = False

    @abc.abstractmethod
    def initial_path(self, flow_id: int, num_paths: int,
                     path_lengths: Optional[Sequence[int]] = None) -> int:
        """Path used when the flow starts."""

    @abc.abstractmethod
    def next_path(self, flow_id: int, current: int, num_paths: int,
                  congestion: Optional[CongestionOracle] = None,
                  path_lengths: Optional[Sequence[int]] = None) -> int:
        """Path used after a flowlet boundary / congestion signal."""

    def next_path_batch(self, flow_ids: np.ndarray, currents: np.ndarray,
                        num_paths: np.ndarray, loads: np.ndarray,
                        path_lengths: np.ndarray) -> np.ndarray:
        """Batched :meth:`next_path` over many flows at once.

        ``loads`` and ``path_lengths`` are ``(flows, max_paths)`` float arrays padded
        with ``+inf`` beyond each flow's ``num_paths``; every row must have
        ``num_paths > 1`` (single-path flows never reach a selector in the reference
        simulator either).  Returns the new path index per flow.

        Contract (relied on by the vectorized simulation engine, and pinned by
        ``tests/core/test_loadbalance_transport_mapping.py``): the batch call consumes
        the selector's RNG stream *exactly* as the equivalent sequence of scalar
        :meth:`next_path` calls in row order would, so batch and sequential execution
        produce identical decisions.  The base implementation simply makes those
        scalar calls; subclasses override it with vectorized draws that preserve the
        consumption pattern (``Generator.integers`` with an array of bounds and
        ``Generator.random(k)`` consume the PCG stream element-by-element in order,
        which the selector test suite asserts).
        """
        out = np.empty(len(currents), dtype=np.int64)
        for row, (fid, current, n) in enumerate(zip(flow_ids, currents, num_paths)):
            row_loads = loads[row]
            out[row] = self.next_path(
                int(fid), int(current), int(n),
                congestion=lambda i, values=row_loads: float(values[i]),
                path_lengths=path_lengths[row, :int(n)])
        return out

    def spray_weights(self, num_paths: int,
                      path_lengths: Optional[Sequence[int]] = None) -> np.ndarray:
        """Per-path traffic shares for spraying selectors (uniform by default)."""
        return np.full(num_paths, 1.0 / num_paths)


@dataclass
class EcmpSelector(PathSelector):
    """Static flow-level hashing over the candidate paths (classic ECMP)."""

    seed: int = 0

    def initial_path(self, flow_id, num_paths, path_lengths=None):
        if num_paths < 1:
            raise ValueError("need at least one candidate path")
        return _fnv1a(flow_id ^ _fnv1a(self.seed)) % num_paths

    def next_path(self, flow_id, current, num_paths, congestion=None, path_lengths=None):
        # ECMP never re-routes a flow.
        return current

    def next_path_batch(self, flow_ids, currents, num_paths, loads, path_lengths):
        """Batched form: ECMP never re-routes, so the current indices come back."""
        return np.asarray(currents, dtype=np.int64).copy()


@dataclass
class FlowletSelector(PathSelector):
    """Flowlet switching over layers (LetFlow and the FatPaths adaptivity variant).

    ``adaptive=False`` reproduces LetFlow: a uniformly random path per flowlet
    (optionally biased towards shorter paths via ``length_bias``).

    ``adaptive=True`` reproduces FatPaths' endpoint adaptivity and the elasticity of
    flowlets: a flow stays on (one of) the *shortest* candidate paths while that path
    is uncongested, and spills to longer, less-loaded layers only when the load on the
    preferred path exceeds ``congestion_threshold`` — "larger flowlets travel the short
    uncongested paths, smaller flowlets the longer congested ones".
    """

    seed: int = 0
    adaptive: bool = True
    congestion_threshold: float = 0.9
    length_bias: float = 1.0

    def __post_init__(self) -> None:
        self._rng = np.random.default_rng(self.seed)
        # single-row fast-path memo: id(path_lengths row) -> (row object, lengths
        # list, shortest-candidate indices); the strong reference pins the id
        self._row_memo: dict = {}

    def _weights(self, num_paths: int, path_lengths: Optional[Sequence[int]]) -> np.ndarray:
        if path_lengths is None or self.length_bias <= 0:
            return np.full(num_paths, 1.0 / num_paths)
        lengths = np.asarray(path_lengths, dtype=float)[:num_paths]
        weights = 1.0 / np.power(np.maximum(lengths, 1.0), self.length_bias)
        return weights / weights.sum()

    def _shortest_choice(self, num_paths: int, path_lengths: Optional[Sequence[int]],
                         mask: Optional[np.ndarray] = None) -> int:
        """A random path among the shortest candidates (optionally restricted by mask)."""
        if path_lengths is None:
            pool = np.arange(num_paths) if mask is None else np.flatnonzero(mask)
            return int(self._rng.choice(pool))
        lengths = np.asarray(path_lengths, dtype=float)[:num_paths]
        if mask is not None:
            lengths = np.where(mask, lengths, np.inf)
        shortest = np.flatnonzero(lengths == lengths.min())
        return int(self._rng.choice(shortest))

    def initial_path(self, flow_id, num_paths, path_lengths=None):
        if num_paths < 1:
            raise ValueError("need at least one candidate path")
        if self.adaptive:
            return self._shortest_choice(num_paths, path_lengths)
        weights = self._weights(num_paths, path_lengths)
        return int(self._rng.choice(num_paths, p=weights))

    def next_path(self, flow_id, current, num_paths, congestion=None, path_lengths=None):
        if num_paths <= 1:
            return current
        if self.adaptive:
            if congestion is None:
                return self._shortest_choice(num_paths, path_lengths)
            loads = np.array([congestion(i) for i in range(num_paths)])
            acceptable = loads < self.congestion_threshold
            if acceptable.any():
                # prefer the shortest path among the uncongested candidates
                return self._shortest_choice(num_paths, path_lengths, mask=acceptable)
            # everything congested: move to the least-loaded path
            least = np.flatnonzero(loads == loads.min())
            return int(self._rng.choice(least))
        weights = self._weights(num_paths, path_lengths)
        return int(self._rng.choice(num_paths, p=weights))

    def next_path_batch(self, flow_ids, currents, num_paths, loads, path_lengths):
        """Vectorized flowlet switching with reference-identical RNG consumption.

        Each scalar :meth:`next_path` consumes exactly one RNG draw — a bounded
        integer over its candidate pool (adaptive) or one uniform double (the
        non-adaptive ``choice(..., p=...)``).  ``Generator.integers`` with an array
        of bounds and ``Generator.random(k)`` perform those draws element-by-element
        in row order, so the vectorized forms below replay the exact sequential
        stream.  The biased non-adaptive variant (``length_bias > 0``) involves a
        per-flow float reduction whose padded batch form could round differently, so
        it falls back to the base class's scalar loop.
        """
        if len(currents) == 1:
            return self._next_path_row(loads, path_lengths, num_paths, flow_ids,
                                       currents)
        currents = np.asarray(currents, dtype=np.int64)
        if self.adaptive:
            acceptable = loads < self.congestion_threshold
            any_acceptable = acceptable.any(axis=1)
            # rows with an acceptable path pick uniformly among the shortest of
            # those; fully congested rows pick uniformly among the least loaded
            masked_lengths = np.where(acceptable, path_lengths, np.inf)
            pool = np.where(any_acceptable[:, None],
                            masked_lengths == masked_lengths.min(axis=1)[:, None],
                            loads == loads.min(axis=1)[:, None])
            draws = self._rng.integers(0, pool.sum(axis=1))
            return (pool.cumsum(axis=1) == (draws + 1)[:, None]).argmax(axis=1)
        if self.length_bias > 0:
            return super().next_path_batch(flow_ids, currents, num_paths, loads,
                                           path_lengths)
        # non-adaptive, unbiased: choice(n, p=uniform) consumes one double per flow
        # and inverts the uniform CDF (searchsorted from the right = count of
        # partial sums <= u); padded columns carry weight 0 so the row CDF matches
        # the sequential n-element cumsum bit-for-bit and its padding sits at 1.0
        uniforms = self._rng.random(len(currents))
        counts = np.asarray(num_paths, dtype=np.int64)
        weights = np.where(np.arange(loads.shape[1]) < counts[:, None],
                           1.0 / counts[:, None], 0.0)
        cdf = np.cumsum(weights, axis=1)
        cdf /= cdf[:, -1][:, None]
        return (cdf <= uniforms[:, None]).sum(axis=1).astype(np.int64)

    def _next_path_row(self, loads, path_lengths, num_paths, flow_ids, currents):
        """Single-row fast path of :meth:`next_path_batch` (same draws, plain Python).

        The packet engine re-picks paths one flow at a time, so this hot shape
        skips the row-wise numpy machinery while consuming the identical RNG
        stream: one bounded-integer draw (adaptive) or one uniform double plus the
        sequential-cumsum CDF inversion (non-adaptive, unbiased).  Padded columns
        (``+inf`` loads/lengths) are never acceptable and never minimal, exactly
        as in the batched formulas.
        """
        if self.adaptive:
            lrow = loads[0]
            if not isinstance(lrow, list):
                lrow = lrow.tolist()
            threshold = self.congestion_threshold
            acceptable = [load < threshold for load in lrow]
            memo = self._row_memo
            key = id(path_lengths)
            got = memo.get(key)
            if got is None or got[0] is not path_lengths:
                lens = np.asarray(path_lengths)[0].tolist()
                finite = [length for length in lens if length != float("inf")]
                best = min(finite)
                got = (path_lengths, lens,
                       [i for i, length in enumerate(lens) if length == best], {})
                memo[key] = got
            if False not in acceptable:
                # every path acceptable (the flowlet-boundary call): the pool is
                # the precomputed shortest set
                cands = got[2]
            elif True in acceptable:
                hot = acceptable.index(False)
                if False not in acceptable[hot + 1:]:
                    # exactly one congested path (the engine's one-hot NACK
                    # signal): pool memoised per congested index
                    pools = got[3]
                    cands = pools.get(hot)
                    if cands is None:
                        lens = got[1]
                        best = min(length for i, length in enumerate(lens)
                                   if i != hot and length != float("inf"))
                        cands = [i for i, length in enumerate(lens)
                                 if i != hot and length == best]
                        pools[hot] = cands
                else:
                    # prefer the shortest path among the uncongested candidates
                    lens = got[1]
                    best = min(length for length, ok in zip(lens, acceptable)
                               if ok)
                    cands = [i for i, (length, ok)
                             in enumerate(zip(lens, acceptable))
                             if ok and length == best]
            else:
                # everything congested: move to the least-loaded path
                least = min(lrow)
                cands = [i for i, load in enumerate(lrow) if load == least]
            draw = int(self._rng.integers(0, len(cands)))
            return np.array([cands[draw]], dtype=np.int64)
        if self.length_bias > 0:
            return PathSelector.next_path_batch(self, flow_ids, currents, num_paths,
                                                loads, path_lengths)
        n = int(num_paths[0])
        uniform = float(self._rng.random(1)[0])
        weight = 1.0 / n
        acc = 0.0
        partials = []
        for _ in range(n):
            acc += weight
            partials.append(acc)
        total = acc
        index = 0
        for partial in partials:
            if partial / total <= uniform:
                index += 1
        return np.array([index], dtype=np.int64)


@dataclass
class PacketSpraySelector(PathSelector):
    """Per-packet oblivious load balancing (NDP on Clos): equal shares on all paths."""

    seed: int = 0
    sprays: bool = True

    def __post_init__(self) -> None:
        self._rng = np.random.default_rng(self.seed)

    def initial_path(self, flow_id, num_paths, path_lengths=None):
        if num_paths < 1:
            raise ValueError("need at least one candidate path")
        return int(self._rng.integers(num_paths))

    def next_path(self, flow_id, current, num_paths, congestion=None, path_lengths=None):
        return int(self._rng.integers(num_paths))

    def next_path_batch(self, flow_ids, currents, num_paths, loads, path_lengths):
        """Vectorized spraying: one bounded-integer draw per flow, in row order."""
        if len(currents) == 1:
            # single-row fast path (the packet engine's per-event shape): the
            # scalar draw consumes the stream exactly like a 1-element bound array
            return np.array([self._rng.integers(0, int(num_paths[0]))],
                            dtype=np.int64)
        return self._rng.integers(0, np.asarray(num_paths, dtype=np.int64))

    def spray_weights(self, num_paths, path_lengths=None):
        return np.full(num_paths, 1.0 / num_paths)
