"""FatPaths configuration (layer count ``n``, layer density ``rho``, algorithm choices).

The paper's §V-B discusses the interplay of ``n`` and ``rho``:  more, sparser layers
expose more (longer) non-minimal paths but waste bandwidth; fewer, denser layers keep
paths short but may not break enough collisions.  The evaluation (Figures 12, 14, 16)
settles on roughly nine layers with ``rho ~ 0.7-0.8`` for bare-Ethernet runs and four
layers with ``rho ~ 0.6`` when TCP routing-table size matters.  :func:`recommended_config`
encodes those defaults per topology family.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, Optional

from repro.topologies.base import Topology


@dataclass(frozen=True)
class FatPathsConfig:
    """Parameters of a FatPaths deployment.

    Attributes
    ----------
    num_layers:
        Total number of layers ``n`` (including the first, all-links layer).
    rho:
        Fraction of links kept in each sparsified layer (layer 1 always keeps all links).
    layer_algorithm:
        ``"random"`` for Listing 1 (random uniform edge sampling) or ``"interference"``
        for Listing 2 (path-overlap-minimising heuristic).
    acyclic_layers:
        If True, the random sampler additionally orients each layer by a random vertex
        permutation (the Listing 1 ``pi(u) < pi(v)`` condition), guaranteeing acyclicity.
    min_extra_hops / max_extra_hops:
        Path length window (relative to the minimal distance) used by the
        interference-minimising constructor ("prefer paths one hop longer than minimal").
    paths_per_pair_target:
        Desired number of disjoint paths per router pair (the paper's answer: 3).
    seed:
        Seed for all randomized construction steps.
    """

    num_layers: int = 9
    rho: float = 0.75
    layer_algorithm: str = "random"
    acyclic_layers: bool = False
    min_extra_hops: int = 1
    max_extra_hops: int = 2
    paths_per_pair_target: int = 3
    seed: int = 0

    def __post_init__(self) -> None:
        if self.num_layers < 1:
            raise ValueError("num_layers must be >= 1")
        if not 0.0 < self.rho <= 1.0:
            raise ValueError("rho must be in (0, 1]")
        if self.layer_algorithm not in ("random", "interference"):
            raise ValueError("layer_algorithm must be 'random' or 'interference'")
        if self.min_extra_hops < 0 or self.max_extra_hops < self.min_extra_hops:
            raise ValueError("need 0 <= min_extra_hops <= max_extra_hops")
        if self.paths_per_pair_target < 1:
            raise ValueError("paths_per_pair_target must be >= 1")

    def with_(self, **kwargs) -> "FatPathsConfig":
        """A copy with the given fields replaced (convenience for sweeps)."""
        return replace(self, **kwargs)


#: Layer configurations that the paper found to work well, per topology family and
#: deployment style ("ethernet" = bare Ethernet / htsim-like, n=9; "tcp" = full TCP
#: stacks where forwarding state is at a premium, n=4).
_RECOMMENDED: Dict[str, Dict[str, FatPathsConfig]] = {
    "ethernet": {
        "slimfly": FatPathsConfig(num_layers=9, rho=0.75),
        "dragonfly": FatPathsConfig(num_layers=9, rho=0.75),
        "jellyfish": FatPathsConfig(num_layers=9, rho=0.8),
        "xpander": FatPathsConfig(num_layers=9, rho=0.8),
        "hyperx": FatPathsConfig(num_layers=9, rho=0.9),
        "complete": FatPathsConfig(num_layers=16, rho=0.7),
        "fattree": FatPathsConfig(num_layers=1, rho=1.0),
        "default": FatPathsConfig(num_layers=9, rho=0.75),
    },
    "tcp": {
        "slimfly": FatPathsConfig(num_layers=4, rho=0.6),
        "dragonfly": FatPathsConfig(num_layers=4, rho=0.6),
        "jellyfish": FatPathsConfig(num_layers=4, rho=0.7),
        "xpander": FatPathsConfig(num_layers=4, rho=0.7),
        "hyperx": FatPathsConfig(num_layers=4, rho=0.9),
        "complete": FatPathsConfig(num_layers=4, rho=0.6),
        "fattree": FatPathsConfig(num_layers=1, rho=1.0),
        "default": FatPathsConfig(num_layers=4, rho=0.6),
    },
}


def recommended_config(topology: Topology, deployment: str = "ethernet",
                       seed: Optional[int] = None) -> FatPathsConfig:
    """The paper-recommended layer configuration for ``topology``.

    ``deployment`` selects between the bare-Ethernet defaults (n=9) and the TCP
    defaults (n=4, smaller routing tables).  Fat trees get a single (all-links) layer
    since their minimal-path diversity already suffices.
    """
    if deployment not in _RECOMMENDED:
        raise ValueError(f"deployment must be one of {sorted(_RECOMMENDED)}")
    family = str(topology.meta.get("family", "default"))
    table = _RECOMMENDED[deployment]
    config = table.get(family, table["default"])
    if seed is not None:
        config = config.with_(seed=seed)
    return config
