"""Transport-layer models (paper §III-C and §VIII).

The simulators in :mod:`repro.sim` are flow-level: they resolve bandwidth sharing and
path choice, and charge each flow an analytic transport overhead that captures the
behavioural differences the paper relies on:

* **Purified / NDP-like transport** — senders start at line rate (no probing), headers
  are never dropped, and retransmitted/trimmed packets are prioritised, so the only
  startup cost is a single RTT of receiver-driven pull latency and congestion costs
  essentially no extra timeouts.
* **TCP** — slow start costs ``~log2`` RTTs before the window covers the
  bandwidth-delay product, and loss recovery under congestion costs extra RTTs.
* **DCTCP** — TCP with ECN: same slow start, but much cheaper congestion reaction.

A :class:`TransportModel` is a small value object consumed by the simulator; the
factory functions encode the three stacks above.
"""

from __future__ import annotations

import math
from dataclasses import dataclass


@dataclass(frozen=True)
class TransportModel:
    """Analytic transport parameters used by the flow-level simulator.

    Attributes
    ----------
    name:
        Identifier ("ndp", "tcp", "dctcp").
    line_rate_start:
        True if the first RTT is sent at line rate (no slow start).
    initial_window_bytes:
        Slow-start initial congestion window (ignored when ``line_rate_start``).
    slow_start_doubling:
        True if the window doubles each RTT until reaching the BDP.
    congestion_rtt_penalty:
        Extra RTTs charged per congestion event (timeouts / fast retransmits for TCP,
        ~0 for NDP where trimming preserves headers).
    header_preserving:
        True if packet trimming keeps headers (NDP) — used by the packet simulator.
    ecn:
        True if ECN-style early congestion feedback is available (DCTCP / FatPaths
        layer-switch signal).
    """

    name: str
    line_rate_start: bool
    initial_window_bytes: float
    slow_start_doubling: bool
    congestion_rtt_penalty: float
    header_preserving: bool
    ecn: bool

    def startup_rtts(self, flow_bytes: float, bandwidth_delay_product: float) -> float:
        """Number of RTTs spent ramping up before the flow runs at full rate.

        For line-rate-start transports this is the single request/grant RTT.  For
        window-based transports it is the number of doublings needed for the window to
        reach min(flow size, BDP), as in the standard slow-start completion model.
        """
        if flow_bytes <= 0:
            raise ValueError("flow_bytes must be positive")
        if self.line_rate_start or not self.slow_start_doubling:
            return 1.0
        target = min(flow_bytes, max(bandwidth_delay_product, self.initial_window_bytes))
        doublings = math.ceil(math.log2(max(target / self.initial_window_bytes, 1.0)))
        return 1.0 + doublings

    def startup_delay(self, flow_bytes: float, rtt_seconds: float, link_rate_bps: float) -> float:
        """Absolute startup latency in seconds for a flow of ``flow_bytes``."""
        bdp = link_rate_bps / 8.0 * rtt_seconds
        return self.startup_rtts(flow_bytes, bdp) * rtt_seconds

    def congestion_delay(self, congestion_events: float, rtt_seconds: float) -> float:
        """Extra completion delay caused by congestion events (loss/ECN reactions)."""
        return self.congestion_rtt_penalty * congestion_events * rtt_seconds


def ndp_transport() -> TransportModel:
    """The paper's purified transport (NDP-like receiver-driven protocol)."""
    return TransportModel(
        name="ndp",
        line_rate_start=True,
        initial_window_bytes=8 * 9000.0,   # 8 jumbo frames, as in §VII-A6
        slow_start_doubling=False,
        congestion_rtt_penalty=0.25,
        header_preserving=True,
        ecn=False,
    )


def tcp_transport(initial_window_bytes: float = 10 * 1460.0) -> TransportModel:
    """Standard TCP (Reno-style slow start, loss-based congestion reaction)."""
    return TransportModel(
        name="tcp",
        line_rate_start=False,
        initial_window_bytes=initial_window_bytes,
        slow_start_doubling=True,
        congestion_rtt_penalty=4.0,
        header_preserving=False,
        ecn=False,
    )


def dctcp_transport(initial_window_bytes: float = 10 * 1460.0) -> TransportModel:
    """DCTCP: TCP with ECN-based, much gentler congestion reaction."""
    return TransportModel(
        name="dctcp",
        line_rate_start=False,
        initial_window_bytes=initial_window_bytes,
        slow_start_doubling=True,
        congestion_rtt_penalty=1.0,
        header_preserving=False,
        ecn=True,
    )
