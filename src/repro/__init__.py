"""FatPaths reproduction library.

A from-scratch Python implementation of the systems described in

    Besta et al., "FatPaths: Routing in Supercomputers and Data Centers when Shortest
    Paths Fall Short", ACM/IEEE Supercomputing (SC) 2020.

Subpackages
-----------
``repro.topologies``
    Low-diameter topology generators (Slim Fly, Dragonfly, Jellyfish, Xpander, HyperX,
    fat tree, clique) and fair-cost configuration classes.
``repro.diversity``
    Path-diversity analysis: minimal path counts, length-limited disjoint paths, path
    interference, total network load, flow-collision analysis and the appendix's
    algebraic connectivity algorithms.
``repro.core``
    The FatPaths architecture: layered routing (layer construction, forwarding tables),
    flowlet load balancing, purified transport models and workload mapping.
``repro.routing``
    Baseline routing schemes: ECMP/shortest paths, k-shortest paths, SPAIN, PAST,
    Valiant, plus the paper's Table I feature comparison.
``repro.traffic``
    Traffic patterns (uniform, permutation, off-diagonal, shuffle, stencil,
    adversarial, worst-case matching) and flow workload generation (pFabric sizes,
    Poisson arrivals).
``repro.mcf``
    Multi-commodity-flow linear programs for maximum achievable throughput.
``repro.sim``
    Flow-level and packet-level network simulators plus queueing-model predictions.
``repro.cost``
    The cost model used for fair-cost comparisons (Figure 10).
``repro.experiments``
    One module per paper table/figure, regenerating its rows/series.
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
