"""Table IV: CDP and PI summary statistics at the per-topology distance d'.

For each topology (and its equivalent Jellyfish) the paper reports, at a distance d'
chosen such that the tail of the disjoint-path count is at least 3:

* CDP mean and 1% tail, as a fraction of the router radix k';
* PI mean and 99.9% tail, as a fraction of k'.

The qualitative shape to reproduce: the clique and FT3 reach ~100% CDP with ~0 PI;
SF has a high mean CDP but a low 1% tail (directly connected pairs) and non-negligible
PI at d' = 3; deterministic topologies beat their Jellyfish equivalents on the mean but
have worse tails.
"""

from __future__ import annotations

from repro.diversity.metrics import cdp_summary, pi_summary
from repro.experiments.scenario import ScenarioContext, ScenarioSpec
from repro.topologies import build, equivalent_jellyfish

#: The evaluation distances d' used in the paper's Table IV.
PAPER_DISTANCES = {"CLIQUE": 2, "SF": 3, "XP": 3, "HX3": 3, "DF": 4, "FT3": 4}

#: Base topology families this scenario iterates (each non-clique family brings
#: its Jellyfish equivalent along; grid cells may select a subset).
TOPOLOGY_NAMES = tuple(PAPER_DISTANCES)


def _plan(ctx: ScenarioContext):
    size_class = ctx.scale.size_class()
    num_samples = ctx.scale.pick(60, 150, 300)
    ctx.meta["num_samples"] = num_samples
    include_jellyfish = bool(ctx.options.get("include_jellyfish", True))
    for short_name in ctx.topologies:
        distance = PAPER_DISTANCES[short_name]
        topo = build(short_name, size_class, seed=ctx.seed)
        variants = {short_name: topo}
        if include_jellyfish and short_name not in ("CLIQUE",):
            variants[f"{short_name}-JF"] = equivalent_jellyfish(topo, seed=ctx.seed + 1)
        for name, variant in variants.items():
            # per-topology generator: filtered runs yield the same rows as full ones
            rng = ctx.rng(name)
            cdp = cdp_summary(variant, distance, num_samples=num_samples, rng=rng)
            pi = pi_summary(variant, distance, num_samples=max(20, num_samples // 2),
                            rng=rng)
            yield {
                "topology": name,
                "d_prime": distance,
                "k_prime": variant.network_radix,
                "CDP_mean_pct": round(100 * cdp.mean_fraction_of_radix, 1),
                "CDP_tail1_pct": round(100 * cdp.tail_1pct / variant.network_radix, 1),
                "PI_mean_pct": round(100 * pi.mean_fraction_of_radix, 1),
                "PI_tail999_pct": round(100 * pi.tail_999pct / variant.network_radix, 1),
            }


SCENARIO = ScenarioSpec(
    name="tab04",
    title="CDP and PI summaries at distance d' (fractions of router radix)",
    paper_reference="Table IV",
    plan=_plan,
    topology_names=TOPOLOGY_NAMES,
    option_names=("include_jellyfish",),
    base_columns=("topology", "d_prime", "k_prime", "CDP_mean_pct", "CDP_tail1_pct",
                  "PI_mean_pct", "PI_tail999_pct"),
    notes=(
        "Paper values (medium size): clique 100/100/2/2, SF 89/10/26/79, XP 49/34/20/41, "
        "HX 25/10/9/67, DF 25/13/8/74, FT3 100/100/0/0 (CDP mean/1% tail, PI mean/99.9% "
        "tail, all % of k').",
    ),
)

run = SCENARIO.runner()
