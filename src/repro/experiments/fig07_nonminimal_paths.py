"""Figure 7: distribution of non-minimal edge-disjoint path counts ``c_l(A, B)``.

For Slim Fly, Dragonfly, HyperX and an equivalent Jellyfish the paper plots the number
of disjoint paths of length at most l (l = 2, 3, 4) between random router pairs.  The
takeaway: at "almost minimal" lengths (diameter + 1) every topology offers at least
three disjoint paths for virtually all pairs, saturating towards the router radix.
"""

from __future__ import annotations

import numpy as np

from repro.diversity.disjoint_paths import disjoint_path_distribution
from repro.experiments.scenario import ScenarioContext, ScenarioSpec
from repro.topologies import build, equivalent_jellyfish

#: Topology families this scenario iterates (grid cells may select a subset).
TOPOLOGY_NAMES = ("SF", "SF-JF", "DF", "HX3")


def _plan(ctx: ScenarioContext):
    size_class = ctx.scale.size_class()
    num_samples = ctx.scale.pick(60, 150, 250)
    ctx.meta["num_samples"] = num_samples
    built = {}

    def base(name):
        if name not in built:  # memo: "SF" and "SF-JF" share one SlimFly build
            built[name] = build(name, size_class)
        return built[name]

    builders = {
        "SF": lambda: base("SF"),
        "SF-JF": lambda: equivalent_jellyfish(base("SF"), seed=ctx.seed + 1),
        "DF": lambda: base("DF"),
        "HX3": lambda: base("HX3"),
    }
    for name in ctx.topologies:
        topo = builders[name]()
        # per-topology generator: a filtered run yields the same rows as a full one
        rng = ctx.rng(name)
        for length in (2, 3, 4):
            values = disjoint_path_distribution(topo, length, num_samples=num_samples,
                                                rng=rng)
            yield {
                "topology": name,
                "l": length,
                "mean": round(float(values.mean()), 2),
                "median": float(np.median(values)),
                "p1": float(np.percentile(values, 1)),
                "p99": float(np.percentile(values, 99)),
                "frac_ge3": round(float((values >= 3).mean()), 3),
                "mean_frac_of_radix": round(float(values.mean()) / topo.network_radix, 3),
            }


SCENARIO = ScenarioSpec(
    name="fig07",
    title="Non-minimal edge-disjoint path count distributions c_l(A,B)",
    paper_reference="Figure 7",
    plan=_plan,
    topology_names=TOPOLOGY_NAMES,
    base_columns=("topology", "l", "mean", "median", "p1", "p99", "frac_ge3",
                  "mean_frac_of_radix"),
    notes=(
        "Paper finding: counts saturate towards k' as l grows; at l = diameter+1 "
        "essentially all pairs have >= 3 disjoint paths.",
    ),
)

run = SCENARIO.runner()
