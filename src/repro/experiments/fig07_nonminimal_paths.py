"""Figure 7: distribution of non-minimal edge-disjoint path counts ``c_l(A, B)``.

For Slim Fly, Dragonfly, HyperX and an equivalent Jellyfish the paper plots the number
of disjoint paths of length at most l (l = 2, 3, 4) between random router pairs.  The
takeaway: at "almost minimal" lengths (diameter + 1) every topology offers at least
three disjoint paths for virtually all pairs, saturating towards the router radix.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.diversity.disjoint_paths import disjoint_path_distribution
from repro.experiments.common import ExperimentResult, Scale, select_topologies, topology_rng
from repro.topologies import build, equivalent_jellyfish

#: Topology families this experiment iterates (grid cells may select a subset).
TOPOLOGY_NAMES = ("SF", "SF-JF", "DF", "HX3")


def run(scale: Scale = Scale.TINY, seed: int = 0,
        topologies: Optional[Sequence[str]] = None) -> ExperimentResult:
    scale = Scale(scale)
    size_class = scale.size_class()
    num_samples = scale.pick(60, 150, 250)
    selected = select_topologies(TOPOLOGY_NAMES, topologies)
    built = {}

    def base(name):
        if name not in built:  # memo: "SF" and "SF-JF" share one SlimFly build
            built[name] = build(name, size_class)
        return built[name]

    builders = {
        "SF": lambda: base("SF"),
        "SF-JF": lambda: equivalent_jellyfish(base("SF"), seed=seed + 1),
        "DF": lambda: base("DF"),
        "HX3": lambda: base("HX3"),
    }
    rows = []
    for name in selected:
        topo = builders[name]()
        # per-topology generator: a filtered run yields the same rows as a full one
        rng = topology_rng(seed, name)
        for length in (2, 3, 4):
            values = disjoint_path_distribution(topo, length, num_samples=num_samples, rng=rng)
            rows.append({
                "topology": name,
                "l": length,
                "mean": round(float(values.mean()), 2),
                "median": float(np.median(values)),
                "p1": float(np.percentile(values, 1)),
                "p99": float(np.percentile(values, 99)),
                "frac_ge3": round(float((values >= 3).mean()), 3),
                "mean_frac_of_radix": round(float(values.mean()) / topo.network_radix, 3),
            })
    notes = [
        "Paper finding: counts saturate towards k' as l grows; at l = diameter+1 "
        "essentially all pairs have >= 3 disjoint paths.",
    ]
    return ExperimentResult(
        name="fig07",
        description="Non-minimal edge-disjoint path count distributions c_l(A,B)",
        paper_reference="Figure 7",
        rows=rows,
        notes=notes,
        meta={"scale": str(scale), "num_samples": num_samples,
              "topologies": list(selected)},
    )
