"""Figure 9: theoretical maximum achievable throughput of layered routing schemes.

Using the worst-case (maximum-weight-matching) traffic pattern at intensity 0.55, the
paper compares the LP-derived maximum achievable throughput of FatPaths layered routing
(interference-minimising variant) against SPAIN, PAST and k-shortest-paths on SF, DF,
HX3, XP, FT3 and SF-JF.  The shape to reproduce: FatPaths matches or beats the
baselines on the low-diameter topologies; SPAIN (designed for Clos) is closest on the
fat tree; PAST (single path) is the weakest.

Instance sizes are scaled down relative to the paper (the LPs and SPAIN's
precomputation grow quickly); the comparison is relative throughput per topology.
Each family's worst-case matching and commodity subsampling draw from their own
deterministic per-``(seed, family)`` streams, so the scenario declares a
``topology_names`` split axis: a per-family grid cell reproduces exactly the rows
of the full run.
"""

from __future__ import annotations

import numpy as np

from repro.core.config import FatPathsConfig
from repro.core.layers import interference_minimizing_layers, random_edge_sampling_layers
from repro.experiments.scenario import ScenarioContext, ScenarioSpec
from repro.mcf.throughput import commodities_from_pattern, scheme_max_throughput
from repro.routing import KShortestPathsRouting, PastRouting, SpainRouting
from repro.routing.base import LayerSetRouting
from repro.topologies import build, equivalent_jellyfish
from repro.traffic.worstcase import worst_case_pattern

#: Equal layer budget for all layered schemes.
NUM_LAYERS = 9

#: Topology families of the split axis (SF-JF is the Jellyfish twin of SF).
TOPOLOGY_NAMES = ("SF", "DF", "HX3", "XP", "FT3", "SF-JF")


def _plan(ctx: ScenarioContext):
    size_class = ctx.scale.size_class()
    max_routers = ctx.scale.pick(24, 40, 60)      # matching size for the worst-case pattern
    max_commodities = ctx.scale.pick(60, 120, 200)
    intensity = float(ctx.options.get("intensity", 0.55))
    ctx.meta["intensity"] = intensity
    ctx.note(
        f"All layered schemes use the same layer budget (n = {NUM_LAYERS}); the "
        f"worst-case matching is restricted to {max_routers} routers and "
        f"{max_commodities} commodities for LP tractability; the interference-minimising "
        "constructor prioritises the router pairs stressed by the pattern (the paper's "
        "M-bounded pair processing).")

    for name in ctx.active(TOPOLOGY_NAMES):
        if name == "SF-JF":
            topo = equivalent_jellyfish(build("SF", size_class, seed=ctx.seed),
                                        seed=ctx.seed + 1)
        else:
            topo = build(name, size_class, seed=ctx.seed)
        # per-family streams: the worst-case matching already used a fresh
        # per-family generator; commodity subsampling now does too
        pattern = worst_case_pattern(topo, intensity=intensity, max_routers=max_routers,
                                     rng=np.random.default_rng(ctx.seed))
        commodities = commodities_from_pattern(topo, pattern,
                                               max_commodities=max_commodities,
                                               rng=ctx.rng(name))
        spain_destinations = sorted({c.target for c in commodities})
        commodity_pairs = [(c.source, c.target) for c in commodities]
        random_cfg = FatPathsConfig(num_layers=NUM_LAYERS, rho=0.6, seed=ctx.seed)
        interference_cfg = random_cfg.with_(layer_algorithm="interference")
        schemes = {
            "fatpaths_interference": LayerSetRouting(
                topo,
                interference_minimizing_layers(topo, interference_cfg,
                                               candidate_pairs=commodity_pairs),
                name="fatpaths_interference"),
            "fatpaths_random": LayerSetRouting(
                topo, random_edge_sampling_layers(topo, random_cfg),
                name="fatpaths_random"),
            "spain": SpainRouting(topo, paths_per_pair=3, destinations=spain_destinations,
                                  seed=ctx.seed, max_layers=NUM_LAYERS),
            "past": PastRouting(topo, seed=ctx.seed),
            "ksp": KShortestPathsRouting(topo, k=5),
        }
        throughputs = {}
        for scheme_name, routing in schemes.items():
            throughputs[scheme_name] = scheme_max_throughput(topo, commodities, routing)
        best = max(throughputs.values()) or 1.0
        row = {"topology": name, "N": topo.num_endpoints, "commodities": len(commodities)}
        for scheme_name, value in throughputs.items():
            row[scheme_name] = round(value, 4)
            row[f"{scheme_name}_rel"] = round(value / best, 3)
        yield row


SCENARIO = ScenarioSpec(
    name="fig09",
    title="LP maximum achievable throughput: FatPaths vs SPAIN/PAST/k-SP",
    paper_reference="Figure 9",
    plan=_plan,
    topology_names=TOPOLOGY_NAMES,
    option_names=("intensity",),
    base_columns=("topology", "N", "commodities", "fatpaths_interference",
                  "fatpaths_random", "spain", "past", "ksp"),
    notes=(
        "Paper finding (Fig 9): FatPaths layered routing achieves the highest throughput "
        "on the low-diameter topologies; SPAIN is tuned for Clos and weakest elsewhere; "
        "PAST (single path) is the weakest overall; the interference-minimising variant "
        "improves on random edge sampling.",
    ),
)

run = SCENARIO.runner()
