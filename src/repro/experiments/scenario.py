"""Declarative scenario registry + the shared execution pipeline for all experiments.

Every paper table/figure (and every new workload scenario) is described by one
:class:`ScenarioSpec`: a declarative header (name, paper reference, topology axis,
allowed options, row schema) plus a ``plan`` callable that expands the spec into
*units* — either finished result rows or :class:`SimSweep` batches of
:class:`~repro.experiments.simcommon.StackCell` cells.  :func:`run_scenario` is the
one pipeline every spec executes through:

1. resolve the topology axis (``topologies=`` filters select per-family subsets,
   validated against the spec's family list),
2. iterate the plan's units, pushing every :class:`SimSweep` through the batched
   vectorized engine (:func:`repro.experiments.simcommon.simulate_stack_many`, which
   shares link spaces, candidate pools and — via ``ctx.routing_cache`` — routing
   construction across the sweep),
3. validate each produced row against the spec's row schema and assemble the final
   :class:`~repro.experiments.common.ExperimentResult`.

Scenarios declare a ``topology_names`` axis when (and only when) each family's
random stream is independent (one generator per ``(seed, family)``, see
:func:`repro.experiments.common.topology_rng`, or a fresh ``default_rng(seed)`` per
family).  That contract is what makes a scenario *splittable*: the grid runner
(:func:`repro.experiments.grid.split_heavy_cells`) may fan one scenario into
per-family cells — each carrying its own batched ``SimSweep`` group — across the
process pool, and the concatenated split rows equal the unsplit run's rows exactly
(pinned by ``tests/experiments/test_scenario.py``).

The central registry maps scenario names to their defining modules; each module
exposes a module-level ``SCENARIO`` spec and a thin ``run()`` alias
(``SCENARIO.runner()``) for direct use.
"""

from __future__ import annotations

import importlib
from dataclasses import dataclass, field
from typing import (
    Callable,
    Dict,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

import numpy as np

from repro.experiments.common import (
    ExperimentResult,
    Scale,
    select_topologies,
    topology_rng,
)

#: A result row: one typed record of a scenario's output table.  Values must be
#: scalars (str/int/float/bool/None, NumPy scalars included) — the common row schema
#: consumed by the CLI summary, the grid merger and the examples.
Row = Dict[str, object]

_SCALARS = (str, int, float, bool, np.integer, np.floating, np.bool_)


# -------------------------------------------------------------------- registry
#: scenario name -> defining module (one per paper table/figure or new workload).
SCENARIO_MODULES: Dict[str, str] = {
    "fig02": "repro.experiments.fig02_throughput_randomized",
    "fig04": "repro.experiments.fig04_collisions",
    "fig06": "repro.experiments.fig06_minimal_paths",
    "fig07": "repro.experiments.fig07_nonminimal_paths",
    "fig08": "repro.experiments.fig08_interference",
    "fig09": "repro.experiments.fig09_theoretical_mat",
    "fig10": "repro.experiments.fig10_cost",
    "fig11": "repro.experiments.fig11_adversarial",
    "fig12": "repro.experiments.fig12_layer_setup",
    "fig13": "repro.experiments.fig13_large_scale",
    "fig14": "repro.experiments.fig14_tcp_speedups",
    "fig15": "repro.experiments.fig15_fct_distribution",
    "fig16": "repro.experiments.fig16_rho_impact",
    "fig17": "repro.experiments.fig17_stencil",
    "fig19": "repro.experiments.fig19_edge_density",
    "fig20": "repro.experiments.fig20_flow_arrival",
    "failures": "repro.experiments.failures",
    "fidelity": "repro.experiments.fidelity",
    "incast": "repro.experiments.incast_hotspot",
    "shuffle": "repro.experiments.broadcast_shuffle",
    "steady": "repro.experiments.steady_state",
    "tab01": "repro.experiments.tab01_scheme_comparison",
    "tab04": "repro.experiments.tab04_diversity_summary",
    "tab05": "repro.experiments.tab05_topologies",
}


def scenario_spec(name: str) -> "ScenarioSpec":
    """The registered :class:`ScenarioSpec` called ``name`` (modules import lazily)."""
    if name not in SCENARIO_MODULES:
        raise KeyError(
            f"unknown scenario {name!r}; available: {sorted(SCENARIO_MODULES)}")
    module = importlib.import_module(SCENARIO_MODULES[name])
    spec = getattr(module, "SCENARIO", None)
    if spec is None:
        raise AttributeError(
            f"module {SCENARIO_MODULES[name]} defines no SCENARIO spec")
    return spec


def all_scenario_specs() -> Dict[str, "ScenarioSpec"]:
    """All registered specs by name (imports every scenario module)."""
    return {name: scenario_spec(name) for name in SCENARIO_MODULES}


# --------------------------------------------------------------------- context
@dataclass
class ScenarioContext:
    """Everything a scenario plan sees: inputs, shared caches and output hooks.

    ``routing_cache`` deduplicates routing construction across a run's stack builds
    (pass it to :func:`repro.experiments.simcommon.build_stack`); ``note``/``meta``
    accumulate run-computed notes and metadata into the final result.
    """

    scale: Scale
    seed: int
    topologies: Optional[Tuple[str, ...]]
    options: Mapping[str, object]
    routing_cache: Dict[tuple, object] = field(default_factory=dict)
    notes: List[str] = field(default_factory=list)
    meta: Dict[str, object] = field(default_factory=dict)

    def rng(self, family: Optional[str] = None) -> np.random.Generator:
        """A deterministic generator: per run, or per ``(seed, family)`` when named.

        Use the named form for every family of a split axis — independent streams
        are what keeps split rows equal to unsplit rows.
        """
        if family is None:
            return np.random.default_rng(self.seed)
        return topology_rng(self.seed, family)

    def active(self, families: Sequence[str]) -> List[str]:
        """``families`` (a scale-dependent subset of the axis) filtered by selection."""
        if self.topologies is None:
            return list(families)
        return [name for name in families if name in self.topologies]

    def note(self, text: str) -> None:
        """Append a run-computed note (static notes live on the spec)."""
        self.notes.append(text)


# ----------------------------------------------------------------------- units
@dataclass
class SimSweep:
    """One batched simulation unit: StackCells on one topology plus an aggregator.

    The pipeline runs ``cells`` through
    :func:`repro.experiments.simcommon.simulate_stack_many` (cells in order, link
    space / candidate pools / routing shared) and passes the results — positionally
    matching ``cells`` — to ``aggregate``, which returns the unit's result rows.
    """

    topology: object
    cells: List[object]
    aggregate: Callable[[List[object]], Iterable[Row]]

    @classmethod
    def per_cell(cls, topology, cells, row_fn) -> "SimSweep":
        """A sweep aggregating one row per cell: ``row_fn(cell, result)``.

        The common aggregation shape; binding ``cells`` here (instead of in a
        caller-side lambda) removes the late-binding footgun of closures created
        inside a topology loop.
        """
        cells = list(cells)
        return cls(topology=topology, cells=cells,
                   aggregate=lambda results: [row_fn(cell, result)
                                              for cell, result in zip(cells, results)])


#: What a plan may yield: a finished row, or a batched simulation sweep.
Unit = object


# -------------------------------------------------------------------- the spec
@dataclass(frozen=True)
class ScenarioSpec:
    """Declarative description of one experiment scenario.

    ``plan(ctx)`` yields units (:class:`Row` dicts or :class:`SimSweep` batches);
    everything else is a declarative header the pipeline, grid runner, docs and
    tests consume without executing the scenario.
    """

    #: Registry name (``fig02`` ... ``tab05``, or a new workload name).
    name: str
    #: One-line description (the ExperimentResult description).
    title: str
    #: Which paper table/figure the scenario reproduces ("—" for new workloads).
    paper_reference: str
    #: Expand the spec into units under a :class:`ScenarioContext`.
    plan: Callable[[ScenarioContext], Iterable[Unit]]
    #: Split axis: topology families with independent per-family random streams.
    #: ``None`` means the scenario has no topology axis (not splittable, and the
    #: ``topologies=`` option is rejected).
    topology_names: Optional[Tuple[str, ...]] = None
    #: Optional ``scale -> families`` narrowing of the axis: which of
    #: ``topology_names`` the scenario actually runs at a given scale.  The grid
    #: splitter consults it so no zero-row per-family cells are dispatched;
    #: ``None`` means every family runs at every scale.
    scale_families: Optional[Callable[[Scale], Sequence[str]]] = None
    #: Option names accepted via ``run_scenario(**options)`` (beyond ``topologies``).
    option_names: Tuple[str, ...] = ()
    #: Static notes (run-computed notes append via ``ctx.note``).
    notes: Tuple[str, ...] = ()
    #: Columns every result row must carry (rows may add more, e.g. histogram bins).
    base_columns: Tuple[str, ...] = ()
    #: Simulation engine for SimSweep units ("engine" or "reference").
    engine: str = "engine"

    @property
    def splittable(self) -> bool:
        """True iff the grid may fan this scenario into per-family cells."""
        return self.topology_names is not None

    def families_at(self, scale: Scale | str) -> Optional[Tuple[str, ...]]:
        """The axis families that actually run at ``scale`` (``None``: no axis)."""
        if self.topology_names is None:
            return None
        if self.scale_families is None:
            return self.topology_names
        return tuple(self.scale_families(Scale(scale)))

    def runner(self) -> Callable[..., ExperimentResult]:
        """A module-level ``run(scale, seed, **kwargs)`` entry point for this spec."""
        def run(scale: Scale | str = Scale.TINY, seed: int = 0,
                **kwargs) -> ExperimentResult:
            """Run this scenario through the shared pipeline."""
            return run_scenario(self, scale=scale, seed=seed, **kwargs)
        run.__doc__ = f"Run the {self.name} scenario ({self.title})."
        return run


def normalized_rows(rows: Iterable[Row]) -> List[Row]:
    """Rows with every value as a JSON-stable Python scalar.

    The one normalisation used for golden-row fixtures: ``tools/make_golden_rows.py``
    writes fixtures through it and ``tests/experiments/test_scenario.py`` compares
    through it, so the two can never drift.
    """
    def convert(value):
        if isinstance(value, np.integer):
            return int(value)
        if isinstance(value, np.floating):
            return float(value)
        if isinstance(value, np.bool_):
            return bool(value)
        return value

    return [{str(key): convert(value) for key, value in row.items()} for row in rows]


def _check_row(spec: ScenarioSpec, row: object) -> Row:
    """Validate one produced row against the common row schema."""
    if not isinstance(row, dict):
        raise TypeError(f"scenario {spec.name} produced a non-dict row: {row!r}")
    for key, value in row.items():
        if not isinstance(key, str):
            raise TypeError(f"scenario {spec.name} row has a non-string column {key!r}")
        if value is not None and not isinstance(value, _SCALARS):
            raise TypeError(
                f"scenario {spec.name} row column {key!r} holds a non-scalar "
                f"{type(value).__name__}; result rows must be flat typed records")
    missing = [c for c in spec.base_columns if c not in row]
    if missing:
        raise ValueError(
            f"scenario {spec.name} row is missing base column(s) {missing}: {row}")
    return row


# ------------------------------------------------------------------- pipeline
def run_scenario(spec: ScenarioSpec, scale: Scale | str = Scale.TINY, seed: int = 0,
                 topologies: Optional[Sequence[str]] = None,
                 **options) -> ExperimentResult:
    """Execute one scenario spec through the shared pipeline.

    ``topologies`` selects a subset of the spec's family axis (rows are identical
    to the matching subset of a full run — the split contract); other keyword
    options must be declared in ``spec.option_names``.
    """
    scale = Scale(scale)
    unknown = [k for k in options if k not in spec.option_names]
    if unknown:
        raise TypeError(f"scenario {spec.name} accepts no option(s) {unknown}; "
                        f"declared: {list(spec.option_names)}")
    if spec.topology_names is None:
        if topologies is not None:
            raise TypeError(f"scenario {spec.name} has no topology axis; "
                            "the topologies= filter is not applicable")
        selected = None
    else:
        selected = tuple(select_topologies(spec.topology_names, topologies))
        # fail loudly on families that exist on the axis but do not run at this
        # scale (the same spirit as select_topologies: no silent zero-row runs)
        inactive = [n for n in selected if n not in spec.families_at(scale)]
        if topologies is not None and inactive:
            raise ValueError(
                f"scenario {spec.name} does not run topologies {inactive} at "
                f"scale {scale.value}; active: {list(spec.families_at(scale))}")
    ctx = ScenarioContext(scale=scale, seed=seed, topologies=selected,
                          options=dict(options))
    from repro.experiments.simcommon import simulate_stack_many

    rows: List[Row] = []
    # an explicitly empty selection means "no families": skip the plan entirely
    # (some builders treat an empty topology list as "everything")
    units = spec.plan(ctx) if selected is None or selected else ()
    for unit in units:
        if isinstance(unit, SimSweep):
            results = simulate_stack_many(unit.topology, unit.cells,
                                          engine=spec.engine)
            for row in unit.aggregate(results):
                rows.append(_check_row(spec, row))
        else:
            rows.append(_check_row(spec, unit))
    meta: Dict[str, object] = {"scale": str(scale)}
    if selected is not None:
        # record only the families that actually ran at this scale, so unsplit
        # metadata agrees with recombined split-cell metadata
        active = spec.families_at(scale)
        meta["topologies"] = [name for name in selected if name in active]
    meta.update(ctx.meta)
    return ExperimentResult(
        name=spec.name, description=spec.title, paper_reference=spec.paper_reference,
        rows=rows, notes=list(spec.notes) + ctx.notes, meta=meta)
