"""Figure 17: stencil-with-barrier completion time, FatPaths vs ECMP and LetFlow (TCP).

The paper measures the total time to complete a bulk-synchronous stencil step (each
process exchanges messages with four off-diagonal neighbours, then a barrier) — i.e.
the completion time of the *slowest* flow — under ECMP, LetFlow and FatPaths with
rho = 0.6 and rho = 1.  The shape to reproduce: FatPaths shortens the total completion
time (the barrier waits for the stragglers) most on SF and DF, with speedups growing
for larger messages.
"""

from __future__ import annotations

import numpy as np

from repro.core.mapping import random_mapping
from repro.experiments.common import ExperimentResult, Scale
from repro.experiments.simcommon import build_stack, simulate_stack
from repro.topologies import comparable_configurations
from repro.traffic.flows import uniform_size_workload
from repro.traffic.patterns import stencil_pattern

FLOW_SIZES = {"20K": 20_000, "200K": 200_000, "2M": 2_000_000}


def run(scale: Scale = Scale.TINY, seed: int = 0) -> ExperimentResult:
    scale = Scale(scale)
    size_class = scale.size_class()
    sizes = scale.pick(["200K"], ["20K", "200K", "2M"], ["20K", "200K", "2M"])
    topo_names = scale.pick(["SF", "DF"], ["SF", "DF", "HX3", "XP", "FT3"],
                            ["SF", "DF", "HX3", "XP", "FT3"])
    fraction = scale.pick(0.2, 0.25, 0.2)
    configs = comparable_configurations(size_class, topologies=topo_names, seed=seed)
    variants = {
        "ecmp": dict(stack="ecmp"),
        "letflow": dict(stack="letflow"),
        "fatpaths_rho0.6": dict(stack="fatpaths_tcp", num_layers=4, rho=0.6),
        "fatpaths_rho1": dict(stack="fatpaths_tcp", num_layers=4, rho=1.0),
    }
    rows = []
    for topo_name, topo in configs.items():
        rng = np.random.default_rng(seed)
        pattern = stencil_pattern(topo.num_endpoints).subsample(fraction, rng)
        mapping = random_mapping(topo.num_endpoints, rng)
        for size_label in sizes:
            workload = uniform_size_workload(pattern, FLOW_SIZES[size_label])
            completion = {}
            for variant, kwargs in variants.items():
                stack = build_stack(topo, seed=seed, **kwargs)
                result = simulate_stack(topo, stack, workload, mapping=mapping, seed=seed)
                # barrier semantics: the step finishes when the last flow finishes
                completion[variant] = float(max(r.completion_time for r in result.records))
            baseline = completion["ecmp"]
            for variant, value in completion.items():
                rows.append({
                    "topology": topo_name,
                    "flow_size": size_label,
                    "variant": variant,
                    "completion_ms": round(value * 1e3, 4),
                    "speedup_vs_ecmp": round(baseline / value, 3),
                })
    notes = [
        "Paper finding (Fig 17): FatPaths yields the best stencil completion times, e.g. "
        ">2.5x on SF for 200K flows and ~2x on XP for 2M flows; LetFlow can even hurt "
        "total completion time on JF-like topologies due to losses.",
    ]
    return ExperimentResult(
        name="fig17",
        description="Stencil + barrier completion time speedups (TCP)",
        paper_reference="Figure 17",
        rows=rows,
        notes=notes,
        meta={"scale": str(scale)},
    )
