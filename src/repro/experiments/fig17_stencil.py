"""Figure 17: stencil-with-barrier completion time, FatPaths vs ECMP and LetFlow (TCP).

The paper measures the total time to complete a bulk-synchronous stencil step (each
process exchanges messages with four off-diagonal neighbours, then a barrier) — i.e.
the completion time of the *slowest* flow — under ECMP, LetFlow and FatPaths with
rho = 0.6 and rho = 1.  The shape to reproduce: FatPaths shortens the total completion
time (the barrier waits for the stragglers) most on SF and DF, with speedups growing
for larger messages.
"""

from __future__ import annotations

import numpy as np

from repro.core.mapping import random_mapping
from repro.experiments.scenario import ScenarioContext, ScenarioSpec, SimSweep
from repro.experiments.simcommon import (
    TCP_STACK_VARIANTS,
    StackCell,
    build_stack,
    grouped_baseline_rows,
)
from repro.topologies import comparable_configurations
from repro.traffic.flows import uniform_size_workload
from repro.traffic.patterns import stencil_pattern

FLOW_SIZES = {"20K": 20_000, "200K": 200_000, "2M": 2_000_000}

#: Topology families this scenario iterates (per-family random streams; grid cells
#: may select a subset without changing rows).
TOPOLOGY_NAMES = ("SF", "DF", "HX3", "XP", "FT3")

#: The four compared stacks (Figure 17's series), in row order.
STACK_VARIANTS = TCP_STACK_VARIANTS


def _families(scale):
    """Axis families that actually run at ``scale``."""
    return scale.pick(["SF", "DF"], ["SF", "DF", "HX3", "XP", "FT3"],
                      ["SF", "DF", "HX3", "XP", "FT3"])


def _plan(ctx: ScenarioContext):
    size_class = ctx.scale.size_class()
    sizes = ctx.scale.pick(["200K"], ["20K", "200K", "2M"], ["20K", "200K", "2M"])
    fraction = ctx.scale.pick(0.2, 0.25, 0.2)
    for topo_name in ctx.active(_families(ctx.scale)):
        topo = comparable_configurations(size_class, topologies=[topo_name],
                                         seed=ctx.seed)[topo_name]
        rng = np.random.default_rng(ctx.seed)
        pattern = stencil_pattern(topo.num_endpoints).subsample(fraction, rng)
        mapping = random_mapping(topo.num_endpoints, rng)
        cells = [
            StackCell(stack=build_stack(topo, seed=ctx.seed,
                                        routing_cache=ctx.routing_cache, **kwargs),
                      workload=uniform_size_workload(pattern, FLOW_SIZES[size_label]),
                      mapping=mapping, seed=ctx.seed,
                      meta={"topology": topo_name, "flow_size": size_label,
                            "variant": variant})
            for size_label in sizes for variant, kwargs in STACK_VARIANTS.items()]
        yield SimSweep(topology=topo, cells=cells,
                       aggregate=lambda results, cells=cells: grouped_baseline_rows(
                           cells, results, len(STACK_VARIANTS), _row))


def _completion(result) -> float:
    """Barrier semantics: a stencil step finishes when its last flow finishes."""
    return float(max(r.completion_time for r in result.records))


def _row(cell: StackCell, result, baseline) -> dict:
    """One completion row, relative to the group's ECMP baseline."""
    value = _completion(result)
    return {
        **cell.meta,
        "completion_ms": round(value * 1e3, 4),
        "speedup_vs_ecmp": round(_completion(baseline) / value, 3),
    }


SCENARIO = ScenarioSpec(
    name="fig17",
    title="Stencil + barrier completion time speedups (TCP)",
    paper_reference="Figure 17",
    plan=_plan,
    topology_names=TOPOLOGY_NAMES,
    scale_families=_families,
    base_columns=("topology", "flow_size", "variant", "completion_ms",
                  "speedup_vs_ecmp"),
    notes=(
        "Paper finding (Fig 17): FatPaths yields the best stencil completion times, e.g. "
        ">2.5x on SF for 200K flows and ~2x on XP for 2M flows; LetFlow can even hurt "
        "total completion time on JF-like topologies due to losses.",
    ),
)

run = SCENARIO.runner()
