"""Fault-tolerant grid execution: crash-surviving pool, retries, journal, resume.

``run_experiment_grid`` used to be a bare ``pool.map``: one OOM-killed or
segfaulted worker raised :class:`~concurrent.futures.process.BrokenProcessPool`
and discarded every completed cell, a hung cell stalled the sweep forever, and a
multi-hour sweep could not be resumed after a crash.  This module is the
execution-layer counterpart of the *simulated* fault tolerance added by the
failure-injection subsystem (``docs/resilience.md``): the sweep itself now
survives worker crashes, hangs and transient errors, and can be resumed from an
append-only journal with bit-identical results.

Four pieces, all wired through :func:`repro.experiments.grid.run_experiment_grid`
and the ``fatpaths-experiment`` CLI:

* **Crash-surviving dispatch** — cells are submitted future-by-future (at most
  one outstanding cell per worker).  When the pool breaks, the executor respawns
  it, re-enqueues every in-flight cell, and *attributes* the crash: with several
  cells in flight the blame is uncertain, so all of them become **suspects** and
  re-run one at a time; a cell that crashes the pool while running alone is
  certainly the offender, and after ``RetryPolicy.crash_retries`` such solo
  crashes it is quarantined with outcome ``"poisoned"`` instead of wedging the
  sweep.
* **Per-cell wall-clock timeouts** — scale-aware defaults
  (:data:`DEFAULT_CELL_TIMEOUTS`), enforced by killing the stuck pool and
  re-enqueueing the innocent in-flight cells (no blame); a cell that times out
  more than ``RetryPolicy.timeout_retries`` times ends with outcome
  ``"timeout"``.
* **Retry policy with error taxonomy** — exceptions raised *inside* a cell are
  classified: :class:`TransientCellError` (and :data:`TRANSIENT_EXCEPTIONS`)
  retry with exponential backoff and deterministic per-cell jitter
  (:meth:`RetryPolicy.backoff`); everything else is deterministic and fails
  fast.  Attempts and the final outcome are recorded on
  :class:`~repro.experiments.grid.GridCellResult`.
* **Journaled resume** — completed cells append one JSON line to a
  :class:`CellJournal` keyed by :func:`cell_fingerprint` (name, scale, seed,
  kwargs — deliberately code-irrelevant).  Lines are written atomically
  (single ``write`` + flush + fsync), the loader tolerates a truncated tail and
  duplicate cells (last wins), and ``resume=True`` skips journaled cells.
  Because every scenario derives its rows from per-``(seed, family)`` random
  streams, a resumed run's combined tables are bit-identical to an
  uninterrupted run — ``tools/chaos_grid.py`` proves it under forced aborts.

Chaos hooks (:class:`ChaosSpec`) inject worker SIGKILLs, hangs and transient
errors at cell granularity so tests and the chaos harness can drive every
recovery path deterministically.
"""

from __future__ import annotations

import hashlib
import json
import os
import signal
import time
import traceback
import zlib
from collections import deque
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor
from concurrent.futures import wait as futures_wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Tuple, Union

import numpy as np

from repro.experiments.common import ExperimentResult, run_experiment
from repro.experiments.grid import GridCell, GridCellResult


class TransientCellError(RuntimeError):
    """A retryable, non-deterministic cell failure.

    Raise this from experiment code (or inject it via :class:`ChaosSpec`) to
    signal the executor that the failure is transient — flaky I/O, a resource
    blip — and the cell should be retried under the
    :class:`RetryPolicy`.  Any other exception type is treated as
    deterministic and fails fast (re-running identical code on identical
    inputs would fail identically).
    """


#: Exception types the taxonomy classifies as transient (retry); every other
#: in-cell exception is deterministic (fail fast).  ``ConnectionError`` and
#: ``TimeoutError`` cover flaky OS-level resources a cell may touch.
TRANSIENT_EXCEPTIONS = (TransientCellError, ConnectionError, TimeoutError)

#: Scale-aware per-cell wall-clock timeout defaults, in seconds.  Generous on
#: purpose: a healthy cell must never hit them — they exist to unwedge a sweep
#: whose worker is livelocked or swapping, not to police slow cells.
DEFAULT_CELL_TIMEOUTS: Dict[str, float] = {
    "tiny": 300.0,
    "small": 1800.0,
    "medium": 7200.0,
}

#: ``timeout=`` argument shape: ``None`` (scale defaults), one number for every
#: cell, or a per-scale mapping overlaid on the defaults.
TimeoutSpec = Union[None, float, int, Mapping[str, float]]


def classify_error(exc: BaseException) -> str:
    """The taxonomy bucket of an in-cell exception: ``transient`` or ``deterministic``."""
    return "transient" if isinstance(exc, TRANSIENT_EXCEPTIONS) else "deterministic"


def resolve_timeout(cell: GridCell, timeout: TimeoutSpec) -> float:
    """The wall-clock limit for one cell under a ``timeout=`` specification.

    ``None`` uses :data:`DEFAULT_CELL_TIMEOUTS` by scale; a number applies to
    every cell (``0`` or ``inf`` disables); a mapping overrides per scale and
    falls back to the defaults for unlisted scales.
    """
    if timeout is None:
        return DEFAULT_CELL_TIMEOUTS.get(cell.scale, max(DEFAULT_CELL_TIMEOUTS.values()))
    if isinstance(timeout, Mapping):
        if cell.scale in timeout:
            return float(timeout[cell.scale])
        return DEFAULT_CELL_TIMEOUTS.get(cell.scale, max(DEFAULT_CELL_TIMEOUTS.values()))
    limit = float(timeout)
    return float("inf") if limit <= 0 else limit


@dataclass(frozen=True)
class RetryPolicy:
    """How failures retry: attempt budgets per taxonomy bucket plus backoff shape.

    ``max_attempts`` bounds *transient* in-cell failures; ``crash_retries`` is
    the number of certain (solo) pool crashes a cell may cause before it is
    quarantined as poisoned; ``timeout_retries`` the number of wall-clock
    timeouts before the cell ends with outcome ``"timeout"``.  Backoff grows
    exponentially from ``backoff_base`` by ``backoff_factor`` up to
    ``backoff_cap``, with multiplicative jitter in ``[0, jitter]`` drawn from a
    deterministic per-(cell, attempt) stream — re-running a sweep reproduces
    the exact same schedule.
    """

    max_attempts: int = 3
    crash_retries: int = 2
    timeout_retries: int = 1
    backoff_base: float = 0.1
    backoff_factor: float = 2.0
    backoff_cap: float = 30.0
    jitter: float = 0.5

    def backoff(self, fingerprint: str, attempt: int) -> float:
        """Delay in seconds before re-running ``fingerprint``'s attempt ``attempt + 1``.

        Deterministic: the jitter stream is seeded from the cell fingerprint
        and the attempt number, so two runs of the same sweep back off
        identically (and distinct cells desynchronise instead of thundering
        back in lockstep).
        """
        base = min(self.backoff_cap,
                   self.backoff_base * self.backoff_factor ** max(0, attempt - 1))
        if self.jitter <= 0 or base <= 0:
            return base
        rng = np.random.default_rng((zlib.crc32(fingerprint.encode("utf-8")), attempt))
        return base * (1.0 + self.jitter * float(rng.random()))


# ---------------------------------------------------------------- fingerprints
def _canonical(value):
    """``value`` reduced to JSON-stable primitives (tuples become lists)."""
    if isinstance(value, dict):
        return {str(k): _canonical(v) for k, v in sorted(value.items())}
    if isinstance(value, (list, tuple)):
        return [_canonical(v) for v in value]
    if isinstance(value, np.integer):
        return int(value)
    if isinstance(value, np.floating):
        return float(value)
    if isinstance(value, np.bool_):
        return bool(value)
    return value


def cell_fingerprint(cell: GridCell) -> str:
    """A stable content key for one grid cell: what it computes, not how.

    Hashes the canonical JSON of ``(name, scale, seed, kwargs)`` — deliberately
    *code-irrelevant*, so a journal written before a refactor still resumes
    after it (the golden-row suite is what guards result drift across code
    changes).
    """
    payload = json.dumps(
        {"name": cell.name, "scale": cell.scale, "seed": cell.seed,
         "kwargs": [[k, _canonical(v)] for k, v in cell.kwargs]},
        sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:32]


# -------------------------------------------------------------------- journal
def _encode(value):
    """Round-trippable JSON encoding of a result value (tuples are tagged)."""
    if isinstance(value, dict):
        return {str(k): _encode(v) for k, v in value.items()}
    if isinstance(value, tuple):
        return {"__tuple__": [_encode(v) for v in value]}
    if isinstance(value, list):
        return [_encode(v) for v in value]
    if isinstance(value, np.integer):
        return int(value)
    if isinstance(value, np.floating):
        return float(value)
    if isinstance(value, np.bool_):
        return bool(value)
    if value is None or isinstance(value, (str, int, float, bool)):
        return value
    raise TypeError(f"cannot journal value of type {type(value).__name__}: {value!r}")


def _decode(value):
    """Inverse of :func:`_encode`."""
    if isinstance(value, dict):
        if set(value) == {"__tuple__"}:
            return tuple(_decode(v) for v in value["__tuple__"])
        return {k: _decode(v) for k, v in value.items()}
    if isinstance(value, list):
        return [_decode(v) for v in value]
    return value


class CellJournal:
    """Append-only JSONL journal of completed grid cells, keyed by fingerprint.

    One line per completed cell: the fingerprint, a human-readable cell label,
    attempt/elapsed bookkeeping and the full serialized
    :class:`~repro.experiments.common.ExperimentResult`.  Lines are written in
    a single ``write`` call and fsynced, so a crash can at worst truncate the
    final line — the loader skips undecodable lines (counted in
    ``corrupt_lines``) and lets duplicates resolve last-wins, which makes
    re-journaling a re-run cell safe.
    """

    def __init__(self, path) -> None:
        self.path = str(path)
        self.corrupt_lines = 0
        self._records: Dict[str, dict] = {}
        self._fh = None
        self._load()

    def _load(self) -> None:
        """Read existing journal lines, tolerating a truncated/corrupt tail."""
        if not os.path.exists(self.path):
            return
        with open(self.path, "rb") as fh:
            for raw in fh:
                try:
                    record = json.loads(raw.decode("utf-8"))
                    fingerprint = record["fingerprint"]
                except (ValueError, KeyError, UnicodeDecodeError):
                    self.corrupt_lines += 1
                    continue
                self._records[fingerprint] = record

    def __len__(self) -> int:
        return len(self._records)

    def __contains__(self, fingerprint: str) -> bool:
        return fingerprint in self._records

    def record(self, cell: GridCell, result: GridCellResult) -> None:
        """Append one completed cell atomically (no-op if the result has no rows payload).

        Results whose rows/notes/meta cannot be serialized round-trippably are
        skipped rather than journaled lossily — the cell simply re-runs on
        resume.
        """
        if result.result is None:
            return
        try:
            payload = {
                "fingerprint": cell_fingerprint(cell),
                "label": cell.label(),
                "attempts": result.attempts,
                "elapsed_seconds": result.elapsed_seconds,
                "result": {
                    "name": result.result.name,
                    "description": result.result.description,
                    "paper_reference": result.result.paper_reference,
                    "rows": _encode(result.result.rows),
                    "notes": _encode(result.result.notes),
                    "meta": _encode(result.result.meta),
                },
            }
            line = (json.dumps(payload, separators=(",", ":")) + "\n").encode("utf-8")
        except TypeError:
            return
        if self._fh is None:
            self._fh = open(self.path, "ab")
        self._fh.write(line)
        self._fh.flush()
        os.fsync(self._fh.fileno())
        self._records[payload["fingerprint"]] = payload

    def lookup(self, cell: GridCell) -> Optional[GridCellResult]:
        """The journaled result for ``cell`` (outcome ``"journal"``), or ``None``."""
        record = self._records.get(cell_fingerprint(cell))
        if record is None:
            return None
        stored = record["result"]
        result = ExperimentResult(
            name=stored["name"], description=stored["description"],
            paper_reference=stored["paper_reference"], rows=_decode(stored["rows"]),
            notes=_decode(stored["notes"]), meta=_decode(stored["meta"]))
        return GridCellResult(cell=cell, result=result,
                              elapsed_seconds=float(record.get("elapsed_seconds", 0.0)),
                              attempts=int(record.get("attempts", 1)),
                              outcome="journal")

    def close(self) -> None:
        """Close the append handle (loaded records stay available)."""
        if self._fh is not None:
            self._fh.close()
            self._fh = None


# ---------------------------------------------------------------- chaos hooks
@dataclass(frozen=True)
class ChaosSpec:
    """Injectable worker faults, matched by substring against ``cell.label()``.

    ``kill`` SIGKILLs the worker on a cell's first attempt (one pool crash,
    then recovery); ``poison`` SIGKILLs on *every* attempt (the cell can never
    complete — it must end quarantined); ``hang`` sleeps ``hang_seconds`` on
    the first attempt (drives the timeout path); ``transient`` raises
    :class:`TransientCellError` on the first attempt and ``transient_always``
    on every attempt (drives retry exhaustion).  Hooks that kill or block the
    process are rejected in serial mode, where the "worker" is the caller.
    """

    kill: Tuple[str, ...] = ()
    poison: Tuple[str, ...] = ()
    hang: Tuple[str, ...] = ()
    transient: Tuple[str, ...] = ()
    transient_always: Tuple[str, ...] = ()
    hang_seconds: float = 3600.0

    @staticmethod
    def _matches(patterns: Tuple[str, ...], label: str) -> bool:
        """True iff any pattern is a substring of the cell label."""
        return any(p in label for p in patterns)

    @property
    def needs_pool(self) -> bool:
        """True iff any hook kills or blocks the executing process."""
        return bool(self.kill or self.poison or self.hang)

    def apply(self, cell: GridCell, attempt: int) -> None:
        """Fire the configured faults for ``cell``'s ``attempt`` (1-based)."""
        label = cell.label()
        if self._matches(self.poison, label):
            os.kill(os.getpid(), signal.SIGKILL)
        if self._matches(self.transient_always, label):
            raise TransientCellError(f"chaos: injected transient failure in {label}")
        if attempt == 1:
            if self._matches(self.kill, label):
                os.kill(os.getpid(), signal.SIGKILL)
            if self._matches(self.hang, label):
                time.sleep(self.hang_seconds)
            if self._matches(self.transient, label):
                raise TransientCellError(f"chaos: injected transient failure in {label}")


# -------------------------------------------------------------------- workers
def _run_cell_attempt(cell: GridCell, attempt: int,
                      chaos: Optional[ChaosSpec]) -> Tuple[GridCellResult, str]:
    """Execute one attempt of one cell (module-level so workers can import it).

    Returns the cell result plus its taxonomy bucket (``"ok"``, ``"transient"``
    or ``"deterministic"``); chaos hooks fire before the experiment runs.
    """
    start = time.perf_counter()
    try:
        if chaos is not None:
            chaos.apply(cell, attempt)
        result = run_experiment(cell.name, scale=cell.scale, seed=cell.seed,
                                **dict(cell.kwargs))
        return GridCellResult(cell=cell, result=result,
                              elapsed_seconds=time.perf_counter() - start), "ok"
    except Exception as exc:  # noqa: BLE001 - cell isolation is the point
        return GridCellResult(cell=cell, error=f"{type(exc).__name__}: {exc}",
                              traceback=traceback.format_exc(), outcome="failed",
                              elapsed_seconds=time.perf_counter() - start), \
            classify_error(exc)


def _kill_pool(pool: ProcessPoolExecutor) -> None:
    """SIGKILL every worker and discard the pool (used for timeouts and crashes)."""
    for process in list(getattr(pool, "_processes", {}).values()):
        try:
            process.kill()
        except OSError:  # already gone
            pass
    pool.shutdown(wait=False, cancel_futures=True)


@dataclass
class _CellState:
    """Executor-side bookkeeping for one cell across attempts."""

    attempts: int = 0
    crashes: int = 0
    timeouts: int = 0
    suspect: bool = False


# ------------------------------------------------------------------- executor
def run_resilient_grid(cells: Iterable[GridCell], jobs: Optional[int] = None, *,
                       policy: Optional[RetryPolicy] = None,
                       timeout: TimeoutSpec = None,
                       journal: Optional[str] = None,
                       resume: bool = False,
                       chaos: Optional[ChaosSpec] = None) -> List[GridCellResult]:
    """Run a grid fault-tolerantly; results come back in cell order.

    Serial mode (``jobs`` absent or ``<= 1``) applies the retry policy and the
    journal but cannot preempt a cell, so wall-clock timeouts (and chaos hooks
    that kill or block the process) require a pool.  ``resume=True`` with a
    ``journal`` path skips already-journaled cells, returning their stored
    results with outcome ``"journal"``.
    """
    cell_list = list(cells)
    policy = policy or RetryPolicy()
    if resume and journal is None:
        raise ValueError("resume=True requires a journal path")
    journal_obj = CellJournal(journal) if journal is not None else None
    results: Dict[int, GridCellResult] = {}
    todo: List[int] = []
    for index, cell in enumerate(cell_list):
        cached = journal_obj.lookup(cell) if (journal_obj is not None and resume) else None
        if cached is not None:
            results[index] = cached
        else:
            todo.append(index)
    try:
        if jobs is None or jobs <= 1 or len(todo) <= 1:
            _run_serial(cell_list, todo, results, policy, chaos, journal_obj)
        else:
            _run_pooled(cell_list, todo, results, min(jobs, len(todo)), policy,
                        timeout, chaos, journal_obj)
    finally:
        if journal_obj is not None:
            journal_obj.close()
    return [results[index] for index in range(len(cell_list))]


def _finalize(result: GridCellResult, attempts: int, outcome: str) -> GridCellResult:
    """Stamp executor bookkeeping onto a finished cell result."""
    result.attempts = attempts
    result.outcome = outcome
    return result


def _run_serial(cell_list, todo, results, policy, chaos, journal_obj) -> None:
    """In-process execution with retry/backoff and journaling (no preemption)."""
    if chaos is not None and chaos.needs_pool:
        raise ValueError("chaos kill/poison/hang hooks require a worker pool "
                         "(jobs >= 2); serial mode would kill or block the caller")
    for index in todo:
        cell = cell_list[index]
        attempt = 0
        while True:
            attempt += 1
            result, kind = _run_cell_attempt(cell, attempt, chaos)
            if result.ok or kind != "transient" or attempt >= policy.max_attempts:
                break
            time.sleep(policy.backoff(cell_fingerprint(cell), attempt))
        results[index] = _finalize(result, attempt, "ok" if result.ok else "failed")
        if journal_obj is not None and result.ok:
            journal_obj.record(cell, results[index])


def _run_pooled(cell_list, todo, results, workers, policy, timeout, chaos,
                journal_obj) -> None:
    """Future-based pool execution surviving crashes, hangs and transient errors.

    The scheduler keeps at most one outstanding cell per worker so crash blame
    stays tight.  While any *suspect* exists (a cell that was in flight during
    an uncertain pool crash), the pool drains and suspects re-run one at a
    time: a solo crash is certain attribution, counted against
    ``policy.crash_retries``.
    """
    state = {index: _CellState() for index in todo}
    queue = deque(todo)
    waiting: List[Tuple[float, int]] = []   # (ready_at, index) backoff-delayed retries
    inflight: Dict[object, Tuple[int, float]] = {}  # future -> (index, deadline)
    pool = ProcessPoolExecutor(max_workers=workers)

    def settle(index: int, result: GridCellResult, outcome: str) -> None:
        results[index] = _finalize(result, state[index].attempts, outcome)
        if journal_obj is not None and result.ok:
            journal_obj.record(cell_list[index], results[index])

    def requeue(index: int, backoff_attempt: Optional[int] = None) -> None:
        if backoff_attempt:
            delay = policy.backoff(cell_fingerprint(cell_list[index]), backoff_attempt)
            waiting.append((time.monotonic() + delay, index))
        else:
            queue.append(index)

    def handle_crash(crashed_indices: List[int]) -> None:
        """Attribute a broken pool: certain when one cell was in flight, else suspects."""
        if len(crashed_indices) == 1:
            index = crashed_indices[0]
            cell_state = state[index]
            cell_state.suspect = True
            cell_state.crashes += 1
            if cell_state.crashes > policy.crash_retries:
                cell = cell_list[index]
                settle(index, GridCellResult(
                    cell=cell,
                    error=(f"BrokenProcessPool: cell crashed the worker "
                           f"{cell_state.crashes} times; quarantined")), "poisoned")
            else:
                requeue(index, backoff_attempt=cell_state.attempts)
            return
        for index in crashed_indices:
            state[index].suspect = True
            requeue(index)

    try:
        while queue or waiting or inflight:
            now = time.monotonic()
            still_waiting = []
            for ready_at, index in waiting:
                (queue.append(index) if ready_at <= now
                 else still_waiting.append((ready_at, index)))
            waiting = still_waiting

            # Submission: a *ready* suspect runs alone (drain first, then solo,
            # so a repeat crash is certain attribution); otherwise fill the
            # pool with ordinary cells.
            while queue and len(inflight) < workers:
                if any(state[i].suspect for i, _ in inflight.values()):
                    break  # a suspect is running alone; nothing rides along
                ready_suspects = [i for i in queue if state[i].suspect]
                if ready_suspects and inflight:
                    break  # drain before running a suspect alone
                solo = bool(ready_suspects)
                if solo:
                    index = ready_suspects[0]
                    queue.remove(index)
                else:
                    index = queue.popleft()
                state[index].attempts += 1
                cell = cell_list[index]
                try:
                    future = pool.submit(_run_cell_attempt, cell,
                                         state[index].attempts, chaos)
                except BrokenProcessPool:
                    # the pool broke between loops; put the cell back, blame the
                    # in-flight cells, and respawn before resubmitting
                    state[index].attempts -= 1
                    queue.appendleft(index)
                    crashed = [i for i, _ in inflight.values()]
                    inflight.clear()
                    if crashed:
                        handle_crash(crashed)
                    _kill_pool(pool)
                    pool = ProcessPoolExecutor(max_workers=workers)
                    break
                inflight[future] = (index, now + resolve_timeout(cell, timeout))
                if solo:
                    break  # exactly one suspect in flight at a time

            if not inflight:
                if queue:
                    continue
                if waiting:
                    time.sleep(max(0.0, min(t for t, _ in waiting) - time.monotonic()))
                continue

            next_deadline = min(deadline for _, deadline in inflight.values())
            budget = next_deadline - time.monotonic()
            if waiting:
                budget = min(budget, min(t for t, _ in waiting) - time.monotonic())
            wait_timeout = None if budget == float("inf") else max(0.0, budget)
            done, _ = futures_wait(set(inflight), timeout=wait_timeout,
                                   return_when=FIRST_COMPLETED)

            crashed_done: List[int] = []
            for future in done:
                index, _deadline = inflight.pop(future)
                cell_state = state[index]
                exc = future.exception()
                if exc is not None:
                    if isinstance(exc, BrokenProcessPool):
                        crashed_done.append(index)
                    else:
                        # infrastructure error (e.g. unpicklable payload): the
                        # retry would fail identically, so fail fast
                        settle(index, GridCellResult(
                            cell=cell_list[index],
                            error=f"{type(exc).__name__}: {exc}",
                            traceback=traceback.format_exc()), "failed")
                    continue
                result, kind = future.result()
                cell_state.suspect = False
                if result.ok:
                    settle(index, result, "ok")
                elif kind == "transient" and cell_state.attempts < policy.max_attempts:
                    requeue(index, backoff_attempt=cell_state.attempts)
                else:
                    settle(index, result, "failed")

            if crashed_done:
                # every cell still in flight shares the broken pool; re-enqueue
                # all of them and attribute the crash
                survivors = [index for index, _ in inflight.values()]
                inflight.clear()
                handle_crash(crashed_done + survivors)
                _kill_pool(pool)
                pool = ProcessPoolExecutor(max_workers=workers)
                continue

            if not done:
                now = time.monotonic()
                expired = [(future, index) for future, (index, deadline)
                           in inflight.items() if deadline <= now]
                if not expired:
                    continue
                # a worker is stuck: kill the whole pool, charge the timed-out
                # cells, and re-enqueue the innocent in-flight cells unblamed
                expired_indices = {index for _, index in expired}
                for future, (index, _deadline) in list(inflight.items()):
                    cell_state = state[index]
                    if index in expired_indices:
                        cell_state.timeouts += 1
                        if cell_state.timeouts > policy.timeout_retries:
                            limit = resolve_timeout(cell_list[index], timeout)
                            settle(index, GridCellResult(
                                cell=cell_list[index],
                                error=(f"Timeout: cell exceeded {limit:.0f}s "
                                       f"wall clock {cell_state.timeouts} times")),
                                "timeout")
                        else:
                            requeue(index, backoff_attempt=cell_state.attempts)
                    else:
                        requeue(index)
                inflight.clear()
                _kill_pool(pool)
                pool = ProcessPoolExecutor(max_workers=workers)
    finally:
        _kill_pool(pool)
