"""Table V / Table IV (top): topology configuration parameters.

Prints, for every topology in a size class, the structural parameters the paper
tabulates: router count, endpoint count, network radix, concentration, diameter and
edge density — verifying the fair-comparison configurations.
"""

from __future__ import annotations

from repro.experiments.common import ExperimentResult, Scale
from repro.topologies import comparable_configurations
from repro.topologies.configs import summary_row


def run(scale: Scale = Scale.TINY, seed: int = 0,
        include_jellyfish: bool = True) -> ExperimentResult:
    scale = Scale(scale)
    configs = comparable_configurations(
        scale.size_class(),
        topologies=["SF", "DF", "HX2", "HX3", "XP", "FT3", "CLIQUE"],
        include_jellyfish=include_jellyfish, seed=seed)
    rows = []
    for name, topo in configs.items():
        row = {"short_name": name}
        row.update(summary_row(topo))
        # measure the diameter on small instances (sampled on larger ones)
        sample = None if topo.num_routers <= 600 else 50
        row["measured_diameter"] = topo.diameter(sample=sample)
        rows.append(row)
    notes = [
        "Medium scale reproduces the paper's Table IV parameters exactly for SF "
        "(Nr=722, k'=29), XP (1056, 32), HX3 (1331, 30) and DF (2064, 23).",
    ]
    return ExperimentResult(
        name="tab05",
        description="Topology configuration parameters per size class",
        paper_reference="Table V (and Table IV topology parameters)",
        rows=rows,
        notes=notes,
        meta={"scale": str(scale)},
    )
