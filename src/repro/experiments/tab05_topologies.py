"""Table V / Table IV (top): topology configuration parameters.

Prints, for every topology in a size class, the structural parameters the paper
tabulates: router count, endpoint count, network radix, concentration, diameter and
edge density — verifying the fair-comparison configurations.
"""

from __future__ import annotations

from repro.experiments.scenario import ScenarioContext, ScenarioSpec
from repro.topologies import comparable_configurations
from repro.topologies.configs import summary_row


def _plan(ctx: ScenarioContext):
    configs = comparable_configurations(
        ctx.scale.size_class(),
        topologies=["SF", "DF", "HX2", "HX3", "XP", "FT3", "CLIQUE"],
        include_jellyfish=bool(ctx.options.get("include_jellyfish", True)),
        seed=ctx.seed)
    for name, topo in configs.items():
        row = {"short_name": name}
        row.update(summary_row(topo))
        # measure the diameter on small instances (sampled on larger ones)
        sample = None if topo.num_routers <= 600 else 50
        row["measured_diameter"] = topo.diameter(sample=sample)
        yield row


SCENARIO = ScenarioSpec(
    name="tab05",
    title="Topology configuration parameters per size class",
    paper_reference="Table V (and Table IV topology parameters)",
    plan=_plan,
    option_names=("include_jellyfish",),
    base_columns=("short_name", "Nr", "N", "k_prime", "p", "k", "diameter_hint",
                  "edges", "edge_density", "measured_diameter"),
    notes=(
        "Medium scale reproduces the paper's Table IV parameters exactly for SF "
        "(Nr=722, k'=29), XP (1056, 32), HX3 (1331, 30) and DF (2064, 23).",
    ),
)

run = SCENARIO.runner()
