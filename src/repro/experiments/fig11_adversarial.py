"""Figure 11: skewed adversarial traffic — FatPaths vs minimal-path NDP baseline.

On a skewed (non-randomized) off-diagonal pattern that forces whole routers to talk to
whole routers, the paper compares each low-diameter topology running FatPaths against
the same topology running the NDP baseline restricted to minimal paths.  The shape to
reproduce: non-minimal layered routing improves throughput/FCT dramatically on SF and
DF (up to ~30x FCT in the paper), modestly on HyperX (which already has minimal-path
diversity), and the fat tree serves as the reference.
"""

from __future__ import annotations

import numpy as np

from repro.experiments.scenario import ScenarioContext, ScenarioSpec, SimSweep
from repro.experiments.simcommon import StackCell, build_stack, tail_and_mean_throughput
from repro.topologies import comparable_configurations
from repro.traffic.flows import uniform_size_workload
from repro.traffic.patterns import adversarial_offdiagonal

KIB = 1024

#: Topology families this scenario iterates (grid cells may select a subset; each
#: family's sampling stream is independent, so filtered rows equal full-run rows).
TOPOLOGY_NAMES = ("SF", "DF", "HX3", "XP", "FT3")


def _plan(ctx: ScenarioContext):
    size_class = ctx.scale.size_class()
    flow_sizes = ctx.scale.pick([64 * KIB, 1024 * KIB], [32 * KIB, 256 * KIB, 2048 * KIB],
                                [32 * KIB, 256 * KIB, 2048 * KIB])
    fraction = ctx.scale.pick(0.3, 0.3, 0.25)
    configs = comparable_configurations(size_class, topologies=list(ctx.topologies),
                                        seed=ctx.seed)
    for topo_name, topo in configs.items():
        rng = np.random.default_rng(ctx.seed)
        pattern = adversarial_offdiagonal(topo.num_endpoints, topo.concentration)
        pattern = pattern.subsample(fraction, rng)
        stacks = ["ndp"] if topo_name == "FT3" else ["fatpaths", "ndp"]
        cells = []
        for stack_name in stacks:
            stack = build_stack(topo, stack_name, seed=ctx.seed,
                                routing_cache=ctx.routing_cache)
            cells.extend(
                StackCell(stack=stack, workload=uniform_size_workload(pattern, size),
                          seed=ctx.seed,
                          meta={"topology": topo_name, "stack": stack_name,
                                "flow_size_KiB": size // KIB})
                for size in flow_sizes)
        yield SimSweep.per_cell(topo, cells, _row)


def _row(cell: StackCell, result) -> dict:
    tail, mean = tail_and_mean_throughput(result)
    return {
        **cell.meta,
        "throughput_mean_MiBs": round(mean, 2),
        "throughput_tail1_MiBs": round(tail, 2),
        "fct_mean_ms": round(result.summary()["fct_mean"] * 1e3, 4),
        "fct_p99_ms": round(result.summary()["fct_p99"] * 1e3, 4),
    }


SCENARIO = ScenarioSpec(
    name="fig11",
    title="Skewed adversarial traffic: FatPaths vs minimal-path baseline",
    paper_reference="Figure 11",
    plan=_plan,
    topology_names=TOPOLOGY_NAMES,
    base_columns=("topology", "stack", "flow_size_KiB", "throughput_mean_MiBs",
                  "throughput_tail1_MiBs", "fct_mean_ms", "fct_p99_ms"),
    notes=(
        "Paper finding (Fig 11): FatPaths' non-minimal multipathing outperforms the "
        "minimal-path NDP baseline on every low-diameter topology under skewed traffic; "
        "the gain is largest on SF/DF (single shortest paths) and smallest on HyperX.",
    ),
)

run = SCENARIO.runner()
