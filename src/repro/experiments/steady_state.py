"""Steady-state streaming scenario: sustained arrivals through the stream service.

The paper's evaluation runs fixed workloads to completion; a deployed fabric
instead sees an *open-ended* arrival process, where the interesting numbers are
steady-state ones — FCT percentiles past warm-up, sustained completion throughput
and the concurrency the service had to hold.  This registry scenario drives the
streaming service layer (:class:`repro.sim.stream.StreamSimulator` over a lazy
:func:`repro.traffic.streams.poisson_flow_stream`) with sustained Poisson traffic
per stack and reports its windowed steady-state estimates: the P² FCT percentiles
accumulated past the warm-up windows, plus the bounded-memory evidence (peak
active flows and slot-array peak versus total arrivals, and how often the slot
space was compacted).

Every family draws its pattern and arrivals from its own ``(seed, family)``
streams, so the grid may fan this scenario into per-family cells (split rows ==
unsplit rows); each stack replays the *identical* arrival stream by re-deriving
the same generator.  Walkthrough: ``docs/streaming.md``.
"""

from __future__ import annotations

from repro.experiments.scenario import ScenarioContext, ScenarioSpec
from repro.experiments.simcommon import build_stack
from repro.sim.simconfig import StreamConfig
from repro.sim.stream import StreamSimulator
from repro.topologies import comparable_configurations
from repro.traffic.patterns import random_permutation
from repro.traffic.streams import poisson_flow_stream

#: Topology families this scenario iterates (per-family random streams; grid cells
#: may select a subset without changing rows).
TOPOLOGY_NAMES = ("SF", "HX3")

#: Compared stacks, in row order.
STACKS = ("fatpaths", "ndp", "ecmp")


def _plan(ctx: ScenarioContext):
    size_class = ctx.scale.size_class()
    arrival_rate = ctx.scale.pick(300.0, 400.0, 500.0)
    duration = ctx.scale.pick(0.05, 0.2, 0.5)
    stream_config = StreamConfig(
        window=ctx.scale.pick(0.005, 0.02, 0.05), warmup_windows=2,
        min_retired=ctx.scale.pick(64, 512, 1024),
        initial_slots=ctx.scale.pick(64, 512, 1024))
    configs = comparable_configurations(size_class, topologies=list(ctx.topologies),
                                        seed=ctx.seed)
    for topo_name, topo in configs.items():
        rng = ctx.rng(topo_name)
        pattern = random_permutation(topo.num_endpoints, rng).subsample(0.5, rng)
        for stack_name in STACKS:
            stack = build_stack(topo, stack_name, seed=ctx.seed,
                                routing_cache=ctx.routing_cache)
            sim = StreamSimulator(topo, stack.routing, selector=stack.selector,
                                  transport=stack.transport, seed=ctx.seed,
                                  stream_config=stream_config,
                                  record_sink=lambda record: None)
            # every stack replays the identical arrival stream: the generator is
            # re-derived from the same (seed, family) key for each of them
            arrivals = poisson_flow_stream(
                pattern, arrival_rate, rng=ctx.rng(f"{topo_name}-arrivals"),
                duration=duration)
            summary = sim.run(arrivals)
            yield _row(topo_name, stack_name, summary)


def _row(topo_name: str, stack_name: str, summary: dict) -> dict:
    return {
        "topology": topo_name,
        "stack": stack_name,
        "arrivals": int(summary["arrivals"]),
        "completions": int(summary["completions"]),
        "windows": int(summary["windows"]),
        "steady_completions": int(summary["steady_completions"]),
        "fct_p50_ms": round(summary["steady_fct_p50"] * 1e3, 4),
        "fct_p90_ms": round(summary["steady_fct_p90"] * 1e3, 4),
        "fct_p99_ms": round(summary["steady_fct_p99"] * 1e3, 4),
        "fct_mean_ms": round(summary["steady_fct_mean"] * 1e3, 4),
        "peak_active": int(summary["peak_active"]),
        "peak_slots": int(summary["peak_slots"]),
        "slot_compactions": int(summary["slot_compactions"]),
    }


SCENARIO = ScenarioSpec(
    name="steady",
    title="Steady-state streaming service: windowed FCT under sustained arrivals",
    paper_reference="— (registry scenario beyond the paper)",
    plan=_plan,
    topology_names=TOPOLOGY_NAMES,
    base_columns=("topology", "stack", "arrivals", "completions", "windows",
                  "steady_completions", "fct_p50_ms", "fct_p90_ms", "fct_p99_ms",
                  "fct_mean_ms", "peak_active", "peak_slots", "slot_compactions"),
    notes=(
        "Steady-state percentiles are P² estimates over completions past the "
        "warm-up windows — streaming, not exact, but deterministic for a given "
        "arrival stream.  peak_slots versus arrivals is the bounded-memory "
        "evidence: the slot space tracks the concurrent population, not the "
        "arrival count.",
    ),
)

run = SCENARIO.runner()
