"""Shared helpers for the simulation-based experiments (Figures 2, 11-17, 20).

The paper evaluates a handful of recurring routing/transport stacks; this module maps
their names to concrete (routing scheme, path selector, transport model) triples and
provides a single entry point to simulate one workload under one stack.

Stack names
-----------
``fatpaths``        FatPaths layered routing + adaptive flowlet balancing + purified (NDP) transport
``fatpaths_rho1``   FatPaths with minimal-only layers (rho = 1)
``fatpaths_tcp``    FatPaths layers + flowlets on a TCP transport (the §VII-C cloud setting)
``ndp``             Minimal-path (ECMP-style) candidates + per-packet spraying + NDP transport
                    (the fat-tree baseline of Handley et al.)
``ecmp``            Minimal-path candidates + static flow hashing + TCP (lower bound)
``letflow``         Minimal-path candidates + non-adaptive flowlet switching + TCP
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

import numpy as np

from repro.core.fatpaths import FatPathsRouting
from repro.core.loadbalance import EcmpSelector, FlowletSelector, PacketSpraySelector, PathSelector
from repro.core.transport import TransportModel, dctcp_transport, ndp_transport, tcp_transport
from repro.routing.ecmp import EcmpRouting
from repro.sim.flowsim import FlowSimConfig, simulate_workload
from repro.sim.metrics import SimulationResult
from repro.topologies.base import Topology
from repro.traffic.flows import Workload

STACKS = ("fatpaths", "fatpaths_rho1", "fatpaths_tcp", "ndp", "ecmp", "letflow")


@dataclass
class Stack:
    """One routing/load-balancing/transport combination used in the evaluation."""

    name: str
    routing: object
    selector: PathSelector
    transport: TransportModel


def build_stack(topology: Topology, stack: str, seed: int = 0,
                num_layers: Optional[int] = None, rho: Optional[float] = None) -> Stack:
    """Instantiate one of the named stacks for ``topology``."""
    if stack not in STACKS:
        raise ValueError(f"unknown stack {stack!r}; available: {STACKS}")
    if stack in ("fatpaths", "fatpaths_rho1", "fatpaths_tcp"):
        deployment = "tcp" if stack == "fatpaths_tcp" else "ethernet"
        from repro.core.config import recommended_config

        config = recommended_config(topology, deployment=deployment, seed=seed)
        if num_layers is not None:
            config = config.with_(num_layers=num_layers)
        if rho is not None:
            config = config.with_(rho=rho)
        if stack == "fatpaths_rho1":
            config = config.with_(rho=1.0)
        routing = FatPathsRouting(topology, config)
        selector = FlowletSelector(seed=seed, adaptive=True)
        transport = ndp_transport() if stack != "fatpaths_tcp" else dctcp_transport()
        return Stack(stack, routing, selector, transport)
    routing = EcmpRouting(topology, max_paths=8, seed=seed)
    if stack == "ndp":
        return Stack(stack, routing, PacketSpraySelector(seed=seed), ndp_transport())
    if stack == "ecmp":
        return Stack(stack, routing, EcmpSelector(seed=seed), tcp_transport())
    return Stack(stack, routing, FlowletSelector(seed=seed, adaptive=False, length_bias=0.0),
                 tcp_transport())


def simulate_stack(topology: Topology, stack: Stack, workload: Workload,
                   mapping: Optional[Sequence[int]] = None,
                   config: Optional[FlowSimConfig] = None, seed: int = 0,
                   drop_warmup: bool = False) -> SimulationResult:
    """Run one workload under one stack with the flow-level simulator."""
    return simulate_workload(topology, stack.routing, workload, selector=stack.selector,
                             transport=stack.transport, config=config, mapping=mapping,
                             seed=seed, drop_warmup=drop_warmup)


def tail_and_mean_throughput(result: SimulationResult) -> Tuple[float, float]:
    """(1% tail, mean) per-flow throughput in MiB/s — the units of Figures 2 and 11."""
    tput = result.throughputs() / (1024 * 1024)
    return float(np.percentile(tput, 1)), float(tput.mean())
