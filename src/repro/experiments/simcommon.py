"""Shared helpers for the simulation-based experiments (Figures 2, 11-17, 20).

The paper evaluates a handful of recurring routing/transport stacks; this module maps
their names to concrete (routing scheme, path selector, transport model) triples and
provides entry points to simulate workloads under them — one at a time
(:func:`simulate_stack`) or as a batched cell sweep over the vectorized engine
(:func:`simulate_stack_many`, the path the figure experiments use).

Stack names
-----------
``fatpaths``        FatPaths layered routing + adaptive flowlet balancing + purified (NDP) transport
``fatpaths_rho1``   FatPaths with minimal-only layers (rho = 1)
``fatpaths_tcp``    FatPaths layers + flowlets on a TCP transport (the §VII-C cloud setting)
``ndp``             Minimal-path (ECMP-style) candidates + per-packet spraying + NDP transport
                    (the fat-tree baseline of Handley et al.)
``ecmp``            Minimal-path candidates + static flow hashing + TCP (lower bound)
``letflow``         Minimal-path candidates + non-adaptive flowlet switching + TCP
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.fatpaths import FatPathsRouting
from repro.core.loadbalance import EcmpSelector, FlowletSelector, PacketSpraySelector, PathSelector
from repro.core.transport import TransportModel, dctcp_transport, ndp_transport, tcp_transport
from repro.routing.ecmp import EcmpRouting
from repro.sim.engine import SimCell, simulate_many
from repro.sim.flowsim import FlowSimConfig, simulate_workload
from repro.sim.metrics import SimulationResult
from repro.topologies.base import Topology
from repro.traffic.flows import Workload

STACKS = ("fatpaths", "fatpaths_rho1", "fatpaths_tcp", "ndp", "ecmp", "letflow")

#: The paper's four compared TCP deployments (Figures 14 and 17), in row order:
#: ECMP baseline, LetFlow, and FatPaths with rho = 0.6 / rho = 1 (both n = 4).
#: Values are ``build_stack`` keyword sets.
TCP_STACK_VARIANTS = {
    "ecmp": dict(stack="ecmp"),
    "letflow": dict(stack="letflow"),
    "fatpaths_rho0.6": dict(stack="fatpaths_tcp", num_layers=4, rho=0.6),
    "fatpaths_rho1": dict(stack="fatpaths_tcp", num_layers=4, rho=1.0),
}


@dataclass
class Stack:
    """One routing/load-balancing/transport combination used in the evaluation."""

    name: str
    routing: object
    selector: PathSelector
    transport: TransportModel


def build_stack(topology: Topology, stack: str, seed: int = 0,
                num_layers: Optional[int] = None, rho: Optional[float] = None,
                routing_cache: Optional[Dict[tuple, object]] = None) -> Stack:
    """Instantiate one of the named stacks for ``topology``.

    ``routing_cache`` (an ordinary dict owned by the caller) deduplicates the
    expensive routing construction across repeated builds: stacks with the same
    topology and routing parameters share one routing instance — FatPaths layer sets
    and forwarding tables are built once per distinct configuration, and the
    ECMP-family stacks (``ndp``/``ecmp``/``letflow``) share one candidate-path set.
    Routing construction is deterministic given its seed, so sharing changes no
    results; selectors are always fresh (their RNG streams are per-stack state).
    """
    if stack not in STACKS:
        raise ValueError(f"unknown stack {stack!r}; available: {STACKS}")
    if stack in ("fatpaths", "fatpaths_rho1", "fatpaths_tcp"):
        deployment = "tcp" if stack == "fatpaths_tcp" else "ethernet"
        from repro.core.config import recommended_config

        config = recommended_config(topology, deployment=deployment, seed=seed)
        if num_layers is not None:
            config = config.with_(num_layers=num_layers)
        if rho is not None:
            config = config.with_(rho=rho)
        if stack == "fatpaths_rho1":
            config = config.with_(rho=1.0)
        key = (topology.fingerprint(), "fatpaths", config)
        routing = None if routing_cache is None else routing_cache.get(key)
        if routing is None:
            routing = FatPathsRouting(topology, config)
            if routing_cache is not None:
                routing_cache[key] = routing
        selector = FlowletSelector(seed=seed, adaptive=True)
        transport = ndp_transport() if stack != "fatpaths_tcp" else dctcp_transport()
        return Stack(stack, routing, selector, transport)
    key = (topology.fingerprint(), "ecmp", 8, seed)
    routing = None if routing_cache is None else routing_cache.get(key)
    if routing is None:
        routing = EcmpRouting(topology, max_paths=8, seed=seed)
        if routing_cache is not None:
            routing_cache[key] = routing
    if stack == "ndp":
        return Stack(stack, routing, PacketSpraySelector(seed=seed), ndp_transport())
    if stack == "ecmp":
        return Stack(stack, routing, EcmpSelector(seed=seed), tcp_transport())
    return Stack(stack, routing, FlowletSelector(seed=seed, adaptive=False, length_bias=0.0),
                 tcp_transport())


def simulate_stack(topology: Topology, stack: Stack, workload: Workload,
                   mapping: Optional[Sequence[int]] = None,
                   config: Optional[FlowSimConfig] = None, seed: int = 0,
                   drop_warmup: bool = False, engine: str = "engine") -> SimulationResult:
    """Run one workload under one stack with the flow-level simulator."""
    return simulate_workload(topology, stack.routing, workload, selector=stack.selector,
                             transport=stack.transport, config=config, mapping=mapping,
                             seed=seed, drop_warmup=drop_warmup, engine=engine)


@dataclass
class StackCell:
    """One (stack, workload) cell of a batched simulation sweep."""

    stack: Stack
    workload: Workload
    mapping: Optional[Sequence[int]] = None
    config: Optional[FlowSimConfig] = None
    seed: int = 0
    drop_warmup: bool = False
    meta: Dict[str, object] = field(default_factory=dict)


def simulate_stack_many(topology: Topology, cells: Sequence[StackCell],
                        engine: str = "engine") -> List[SimulationResult]:
    """Simulate many (stack, workload) cells on one topology through the batched engine.

    Cells run in order (identical to the equivalent sequence of
    :func:`simulate_stack` calls, including shared selector RNG state when one stack
    appears in several cells), while the engine shares the topology link space and
    per-routing candidate pools across all of them — the
    :func:`repro.sim.engine.simulate_many` amortization the figure sweeps rely on.
    """
    sim_cells = [SimCell(topology=topology, routing=cell.stack.routing,
                         workload=cell.workload, selector=cell.stack.selector,
                         transport=cell.stack.transport, config=cell.config,
                         mapping=cell.mapping, seed=cell.seed,
                         drop_warmup=cell.drop_warmup)
                 for cell in cells]
    return simulate_many(sim_cells, engine=engine)


def grouped_baseline_rows(cells: Sequence[StackCell],
                          results: Sequence[SimulationResult], group: int,
                          row_fn, baseline_variant: str = "ecmp") -> List[Dict[str, object]]:
    """Rows for variant-comparison sweeps, each computed against its group baseline.

    ``cells``/``results`` are sliced into consecutive groups of ``group`` (one
    group per (topology, flow size) combination); within each group the cell whose
    ``meta["variant"]`` equals ``baseline_variant`` is the baseline, and
    ``row_fn(cell, result, baseline_result)`` produces one row per cell.  Shared by
    the Figure 14/17 four-stack comparisons so their grouping contract cannot
    diverge.
    """
    rows: List[Dict[str, object]] = []
    for start in range(0, len(cells), group):
        batch = list(zip(cells[start:start + group], results[start:start + group]))
        baseline = next(r for c, r in batch
                        if c.meta["variant"] == baseline_variant)
        rows.extend(row_fn(cell, result, baseline) for cell, result in batch)
    return rows


def tail_and_mean_throughput(result: SimulationResult) -> Tuple[float, float]:
    """(1% tail, mean) per-flow throughput in MiB/s — the units of Figures 2 and 11."""
    tput = result.throughputs() / (1024 * 1024)
    return float(np.percentile(tput, 1)), float(tput.mean())
