"""Figure 4: histogram of colliding paths per router pair.

The paper plots, for a clique (D=1), Slim Fly (D=2) and Dragonfly (D=3) with
``p = k'/D``, how many router pairs carry 1, 2, 3, ... colliding flows under five
traffic patterns (random permutation, off-diagonal, shuffle, four parallel
permutations, and a 4-point stencil), all randomly mapped.  The takeaway: for D >= 2
fewer than 1% of router pairs see four or more collisions, so three disjoint paths per
router pair suffice; the clique needs many more.

Each family draws its mapping and patterns from its own ``(seed, family)`` stream
(:meth:`ScenarioContext.rng`), so the scenario declares a ``topology_names`` split
axis: a per-family grid cell reproduces exactly the rows of the full run.
"""

from __future__ import annotations

from repro.core.mapping import random_mapping
from repro.diversity.collisions import collision_histogram, fraction_with_at_least, max_collisions
from repro.experiments.scenario import ScenarioContext, ScenarioSpec
from repro.topologies import build
from repro.traffic.patterns import all_patterns

#: Topology families of the split axis (paper labels live in ``_LABELS``).
TOPOLOGY_NAMES = ("CLIQUE", "SF", "DF")

_LABELS = {"CLIQUE": "Clique (D=1)", "SF": "Slim Fly (D=2)", "DF": "Dragonfly (D=3)"}


def _plan(ctx: ScenarioContext):
    size_class = ctx.scale.size_class()
    for family in ctx.active(TOPOLOGY_NAMES):
        topo = build(family, size_class)
        rng = ctx.rng(family)
        n = topo.num_endpoints
        mapping = random_mapping(n, rng)
        patterns = all_patterns(n, topo.concentration, rng)
        for pattern_name, pattern in patterns.items():
            hist = collision_histogram(topo, pattern.pairs, mapping)
            yield {
                "topology": _LABELS[family],
                "pattern": pattern_name,
                "max_collisions": max_collisions(hist),
                "frac_pairs_ge4": round(fraction_with_at_least(hist, 4), 4),
                "frac_pairs_ge9": round(fraction_with_at_least(hist, 9), 4),
                "router_pairs_with_traffic": sum(hist.values()),
            }


SCENARIO = ScenarioSpec(
    name="fig04",
    title="Collision multiplicity per router pair under randomly mapped patterns",
    paper_reference="Figure 4",
    plan=_plan,
    topology_names=TOPOLOGY_NAMES,
    base_columns=("topology", "pattern", "max_collisions", "frac_pairs_ge4",
                  "frac_pairs_ge9", "router_pairs_with_traffic"),
    notes=(
        "Paper finding: for D>=2 fewer than 1% of router pairs see >=4 collisions "
        "even for 4x-oversubscribed patterns; the D=1 clique sees >=9 collisions for "
        ">1% of pairs.",
    ),
)

run = SCENARIO.runner()
