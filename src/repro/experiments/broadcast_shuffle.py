"""Broadcast-shuffle scenario: stage-to-stage all-to-all traffic across the topology set.

Beyond the paper's figures, this registry scenario runs the map/reduce-style shuffle
shape (:func:`repro.traffic.patterns.broadcast_shuffle_pattern`): endpoints form
consecutive groups and every member of group g broadcasts to the whole next group.
The pattern is ``group_size``-times oversubscribed and highly structured, so — unlike
the randomized permutations of Figure 2 — whole routers exchange with whole routers
and the minimal-path stacks collide heavily on low-diameter topologies, while
FatPaths' non-minimal layers spread the bursts.

The base pattern is deterministic; only the per-family intensity subsampling draws
randomness, from each family's own ``(seed, family)`` stream, so the grid may fan
this scenario into per-family cells (split rows == unsplit rows).
"""

from __future__ import annotations

from repro.experiments.scenario import ScenarioContext, ScenarioSpec, SimSweep
from repro.experiments.simcommon import StackCell, build_stack, tail_and_mean_throughput
from repro.topologies import comparable_configurations
from repro.traffic.flows import uniform_size_workload
from repro.traffic.patterns import broadcast_shuffle_pattern

KIB = 1024

#: Topology families this scenario iterates (per-family random streams; grid cells
#: may select a subset without changing rows).
TOPOLOGY_NAMES = ("SF", "DF", "HX3", "XP", "FT3")

#: Compared stacks, in row order.
STACKS = ("fatpaths", "ndp", "letflow")


def _plan(ctx: ScenarioContext):
    size_class = ctx.scale.size_class()
    flow_size = ctx.scale.pick(64 * KIB, 256 * KIB, 512 * KIB)
    group_size = ctx.scale.pick(4, 6, 8)
    fraction = ctx.scale.pick(0.15, 0.2, 0.2)
    configs = comparable_configurations(size_class, topologies=list(ctx.topologies),
                                        seed=ctx.seed)
    for topo_name, topo in configs.items():
        rng = ctx.rng(topo_name)
        pattern = broadcast_shuffle_pattern(topo.num_endpoints, group_size=group_size)
        pattern = pattern.subsample(fraction, rng)
        workload = uniform_size_workload(pattern, flow_size)
        cells = [StackCell(stack=build_stack(topo, stack_name, seed=ctx.seed,
                                             routing_cache=ctx.routing_cache),
                           workload=workload, seed=ctx.seed,
                           meta={"topology": topo_name, "stack": stack_name,
                                 "group_size": group_size})
                 for stack_name in STACKS]
        yield SimSweep.per_cell(topo, cells, _row)


def _row(cell: StackCell, result) -> dict:
    tail, mean = tail_and_mean_throughput(result)
    summary = result.summary(percentiles=(99,))
    return {
        **cell.meta,
        "flows": len(result),
        "throughput_mean_MiBs": round(mean, 2),
        "throughput_tail1_MiBs": round(tail, 2),
        "fct_mean_ms": round(summary["fct_mean"] * 1e3, 4),
        "fct_p99_ms": round(summary["fct_p99"] * 1e3, 4),
    }


SCENARIO = ScenarioSpec(
    name="shuffle",
    title="Broadcast-shuffle (stage all-to-all): FatPaths vs NDP and LetFlow",
    paper_reference="— (registry scenario beyond the paper)",
    plan=_plan,
    topology_names=TOPOLOGY_NAMES,
    base_columns=("topology", "stack", "group_size", "flows", "throughput_mean_MiBs",
                  "throughput_tail1_MiBs", "fct_mean_ms", "fct_p99_ms"),
    notes=(
        "Expected shape: the structured group broadcasts collide on low-diameter "
        "topologies' single shortest paths, so FatPaths' non-minimal layers beat the "
        "minimal-path stacks most on SF/DF — the skewed-traffic story of Figure 11 on "
        "a shuffle workload.",
    ),
)

run = SCENARIO.runner()
