"""Figure 2: throughput per flow vs flow size, randomized workload, similar-cost networks.

The paper's headline figure: Slim Fly, Dragonfly, HyperX and Xpander running FatPaths
versus a fat tree running NDP, under a randomly mapped permutation workload with flow
sizes from 32 KiB to 2 MiB.  The shape to reproduce: the low-diameter topologies with
FatPaths match or beat the fat tree with NDP in both mean and 1%-tail throughput per
flow, with the gap widening for large flows.
"""

from __future__ import annotations

import numpy as np

from repro.core.mapping import random_mapping
from repro.experiments.scenario import ScenarioContext, ScenarioSpec, SimSweep
from repro.experiments.simcommon import StackCell, build_stack, tail_and_mean_throughput
from repro.topologies import comparable_configurations
from repro.traffic.flows import uniform_size_workload
from repro.traffic.patterns import random_permutation

KIB = 1024

#: Topology families this scenario iterates (each family's samples draw from a
#: fresh per-family stream, so grid cells may select a subset without changing rows).
TOPOLOGY_NAMES = ("SF", "DF", "HX3", "XP", "FT3")


def _plan(ctx: ScenarioContext):
    size_class = ctx.scale.size_class()
    flow_sizes = ctx.scale.pick([32 * KIB, 256 * KIB, 2048 * KIB],
                                [32 * KIB, 128 * KIB, 512 * KIB, 2048 * KIB],
                                [32 * KIB, 128 * KIB, 512 * KIB, 1024 * KIB, 2048 * KIB])
    ctx.meta["flow_sizes"] = list(flow_sizes)
    pattern_fraction = ctx.scale.pick(0.25, 0.3, 0.3)
    configs = comparable_configurations(size_class, topologies=list(ctx.topologies),
                                        seed=ctx.seed)
    for topo_name, topo in configs.items():
        stack_name = "ndp" if topo_name == "FT3" else "fatpaths"
        stack = build_stack(topo, stack_name, seed=ctx.seed,
                            routing_cache=ctx.routing_cache)
        rng = np.random.default_rng(ctx.seed)
        pattern = random_permutation(topo.num_endpoints, rng).subsample(pattern_fraction, rng)
        mapping = random_mapping(topo.num_endpoints, rng)
        # one batched sweep over the flow sizes: the engine shares the topology link
        # space and the stack's candidate paths across all cells
        cells = [StackCell(stack=stack, workload=uniform_size_workload(pattern, size),
                           mapping=mapping, seed=ctx.seed,
                           meta={"topology": topo_name, "stack": stack_name,
                                 "flow_size_KiB": size // KIB})
                 for size in flow_sizes]
        yield SimSweep.per_cell(topo, cells, _row)


def _row(cell: StackCell, result) -> dict:
    tail, mean = tail_and_mean_throughput(result)
    return {
        **cell.meta,
        "throughput_mean_MiBs": round(mean, 2),
        "throughput_tail1_MiBs": round(tail, 2),
        "fct_mean_ms": round(result.summary()["fct_mean"] * 1e3, 4),
        "flows": len(result),
    }


SCENARIO = ScenarioSpec(
    name="fig02",
    title="Throughput per flow vs flow size (randomized workload, similar cost)",
    paper_reference="Figure 2",
    plan=_plan,
    topology_names=TOPOLOGY_NAMES,
    base_columns=("topology", "stack", "flow_size_KiB", "throughput_mean_MiBs",
                  "throughput_tail1_MiBs", "fct_mean_ms", "flows"),
    notes=(
        "Paper finding (Fig 2): low-diameter topologies with FatPaths reach ~15% higher "
        "throughput (and ~2x lower latency) than a similar-cost fat tree with NDP, for "
        "randomized workloads; the advantage is largest for big flows.",
    ),
)

run = SCENARIO.runner()
