"""Figure 19 (appendix): edge density and router radix as a function of network size.

For every topology family the paper plots (a) the edge density — cables (including
endpoint links) per endpoint — and (b) the router radix k needed to reach a given
endpoint count N.  Takeaways: edge density is asymptotically constant per family and
grows with diameter (DF needs the most cables); fat trees reach a given N with the
smallest radix at the cost of a higher diameter; SF needs a lower radix than other
diameter-2 networks.

Rows are ordered size-class-major (the paper's x axis), so the scenario is kept as
one unit rather than split per family.
"""

from __future__ import annotations

from repro.experiments.scenario import ScenarioContext, ScenarioSpec
from repro.topologies import SizeClass, build


def _plan(ctx: ScenarioContext):
    classes = {
        "tiny": [SizeClass.TINY, SizeClass.SMALL],
        "small": [SizeClass.TINY, SizeClass.SMALL, SizeClass.MEDIUM],
        "medium": [SizeClass.TINY, SizeClass.SMALL, SizeClass.MEDIUM, SizeClass.LARGE],
    }[ctx.scale.value]
    for size_class in classes:
        for name in ("SF", "DF", "HX2", "HX3", "FT3"):
            topo = build(name, size_class, seed=ctx.seed)
            yield {
                "topology": name,
                "size_class": size_class.value,
                "N": topo.num_endpoints,
                "edge_density": round(topo.edge_density(), 3),
                "router_radix": topo.router_radix,
                "diameter": topo.diameter_hint,
            }


SCENARIO = ScenarioSpec(
    name="fig19",
    title="Edge density and router radix vs. network size",
    paper_reference="Figure 19 (appendix)",
    plan=_plan,
    base_columns=("topology", "size_class", "N", "edge_density", "router_radix",
                  "diameter"),
    notes=(
        "Paper finding: edge density is ~2 and asymptotically constant per family, "
        "higher for higher-diameter networks (DF); FT scales N with the smallest radix; "
        "SF needs a lower radix than HyperX for the same N.",
    ),
)

run = SCENARIO.runner()
