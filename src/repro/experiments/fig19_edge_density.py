"""Figure 19 (appendix): edge density and router radix as a function of network size.

For every topology family the paper plots (a) the edge density — cables (including
endpoint links) per endpoint — and (b) the router radix k needed to reach a given
endpoint count N.  Takeaways: edge density is asymptotically constant per family and
grows with diameter (DF needs the most cables); fat trees reach a given N with the
smallest radix at the cost of a higher diameter; SF needs a lower radix than other
diameter-2 networks.
"""

from __future__ import annotations

from repro.experiments.common import ExperimentResult, Scale
from repro.topologies import SizeClass, build


def run(scale: Scale = Scale.TINY, seed: int = 0) -> ExperimentResult:
    scale = Scale(scale)
    classes = {
        Scale.TINY: [SizeClass.TINY, SizeClass.SMALL],
        Scale.SMALL: [SizeClass.TINY, SizeClass.SMALL, SizeClass.MEDIUM],
        Scale.MEDIUM: [SizeClass.TINY, SizeClass.SMALL, SizeClass.MEDIUM, SizeClass.LARGE],
    }[scale]
    rows = []
    for size_class in classes:
        for name in ("SF", "DF", "HX2", "HX3", "FT3"):
            topo = build(name, size_class, seed=seed)
            rows.append({
                "topology": name,
                "size_class": size_class.value,
                "N": topo.num_endpoints,
                "edge_density": round(topo.edge_density(), 3),
                "router_radix": topo.router_radix,
                "diameter": topo.diameter_hint,
            })
    notes = [
        "Paper finding: edge density is ~2 and asymptotically constant per family, "
        "higher for higher-diameter networks (DF); FT scales N with the smallest radix; "
        "SF needs a lower radix than HyperX for the same N.",
    ]
    return ExperimentResult(
        name="fig19",
        description="Edge density and router radix vs. network size",
        paper_reference="Figure 19 (appendix)",
        rows=rows,
        notes=notes,
        meta={"scale": str(scale)},
    )
