"""Experiment harness: one declarative scenario per table/figure (and beyond).

Every scenario module defines a :class:`~repro.experiments.scenario.ScenarioSpec`
(``SCENARIO``) plus a thin ``run(scale=..., seed=...) -> ExperimentResult`` alias;
all specs execute through the shared pipeline in :mod:`repro.experiments.scenario`.
:mod:`repro.experiments.runner` provides a CLI (``fatpaths-experiment <name>``) and
:func:`repro.experiments.registry` lists all scenarios.  EXPERIMENTS.md records the
paper-vs-measured comparison for each of them.
"""

from repro.experiments.common import ExperimentResult, Scale, registry, run_experiment
from repro.experiments.scenario import ScenarioSpec, run_scenario, scenario_spec

__all__ = ["ExperimentResult", "Scale", "ScenarioSpec", "registry", "run_experiment",
           "run_scenario", "scenario_spec"]
