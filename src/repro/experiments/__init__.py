"""Experiment harness: one module per table/figure of the paper's evaluation.

Every experiment module exposes ``run(scale=..., seed=...) -> ExperimentResult``;
:mod:`repro.experiments.runner` provides a CLI (``fatpaths-experiment <name>``) and
:func:`repro.experiments.registry` lists all experiments.  EXPERIMENTS.md records the
paper-vs-measured comparison for each of them.
"""

from repro.experiments.common import ExperimentResult, Scale, registry, run_experiment

__all__ = ["ExperimentResult", "Scale", "registry", "run_experiment"]
