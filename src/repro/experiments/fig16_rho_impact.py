"""Figure 16: impact of the layer density rho on long-flow FCT (TCP, n = 4 layers).

The paper sweeps rho from 0.5 to 1.0 with four layers and reports mean/10%/99% FCT of
1 MiB flows per topology.  The shape to reproduce: on SF and DF a moderate rho (~0.6-
0.8) minimises the tail FCT (up to ~2x better than rho=1); on HyperX-like topologies
with minimal-path diversity non-minimal paths do not help (rho=1 is as good or better).
"""

from __future__ import annotations

import numpy as np

from repro.core.mapping import random_mapping
from repro.experiments.scenario import ScenarioContext, ScenarioSpec, SimSweep
from repro.experiments.simcommon import StackCell, build_stack
from repro.topologies import comparable_configurations
from repro.traffic.flows import uniform_size_workload
from repro.traffic.patterns import adversarial_offdiagonal

MIB = 1024 * 1024

#: Topology families this scenario iterates (per-family random streams; grid cells
#: may select a subset without changing rows).
TOPOLOGY_NAMES = ("SF", "DF", "HX3", "XP")


def _families(scale):
    """Axis families that actually run at ``scale``."""
    return scale.pick(["SF", "DF"], ["SF", "DF", "HX3"], ["SF", "DF", "HX3", "XP"])


def _plan(ctx: ScenarioContext):
    size_class = ctx.scale.size_class()
    rhos = ctx.scale.pick([0.5, 0.7, 1.0], [0.5, 0.6, 0.8, 1.0],
                          [0.5, 0.6, 0.7, 0.8, 0.9, 1.0])
    fraction = ctx.scale.pick(0.3, 0.3, 0.25)
    for topo_name in ctx.active(_families(ctx.scale)):
        topo = comparable_configurations(size_class, topologies=[topo_name],
                                         seed=ctx.seed)[topo_name]
        rng = np.random.default_rng(ctx.seed)
        pattern = adversarial_offdiagonal(topo.num_endpoints, topo.concentration)
        pattern = pattern.subsample(fraction, rng)
        mapping = random_mapping(topo.num_endpoints, rng)
        workload = uniform_size_workload(pattern, 1 * MIB)
        # one batched sweep over rho: each cell owns its routing (rho is the swept
        # quantity) but the engine shares the topology link space across all of them
        cells = [StackCell(stack=build_stack(topo, "fatpaths_tcp", seed=ctx.seed,
                                             num_layers=4, rho=rho,
                                             routing_cache=ctx.routing_cache),
                           workload=workload, mapping=mapping, seed=ctx.seed,
                           meta={"topology": topo_name, "rho": rho})
                 for rho in rhos]
        yield SimSweep.per_cell(topo, cells, _row)


def _row(cell: StackCell, result) -> dict:
    summary = result.summary(percentiles=(10, 99))
    return {
        **cell.meta,
        "fct_mean_ms": round(summary["fct_mean"] * 1e3, 4),
        "fct_p10_ms": round(summary["fct_p10"] * 1e3, 4),
        "fct_p99_ms": round(summary["fct_p99"] * 1e3, 4),
    }


SCENARIO = ScenarioSpec(
    name="fig16",
    title="Impact of rho on long-flow FCT (TCP, n=4)",
    paper_reference="Figure 16",
    plan=_plan,
    topology_names=TOPOLOGY_NAMES,
    scale_families=_families,
    base_columns=("topology", "rho", "fct_mean_ms", "fct_p10_ms", "fct_p99_ms"),
    notes=(
        "Paper finding (Fig 16): the largest effect of non-minimal routing (rho < 1) is a "
        "~2x tail-FCT improvement on DF and SF; topologies with minimal-path diversity "
        "see little or no benefit from lowering rho.",
    ),
)

run = SCENARIO.runner()
