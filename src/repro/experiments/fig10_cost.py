"""Figure 10: cost per endpoint of the compared topologies.

Evaluates the 100GbE cost model on the fair-comparison configurations and splits the
per-endpoint cost into switches, interconnect cables and endpoint links.  The shape to
reproduce: per-endpoint costs of SF, JF, XP, DF and FT3 are comparable (within ~2x)
with HyperX the most expensive (its high radix forces big switches).

The relative-cost column normalises against the cheapest topology of the *whole* run,
so the scenario aggregates across families and is not splittable.
"""

from __future__ import annotations

from repro.cost.model import cost_per_endpoint
from repro.experiments.scenario import ScenarioContext, ScenarioSpec
from repro.topologies import comparable_configurations, equivalent_jellyfish


def _plan(ctx: ScenarioContext):
    configs = comparable_configurations(ctx.scale.size_class(),
                                        topologies=["SF", "XP", "DF", "FT3", "HX3"],
                                        seed=ctx.seed)
    configs["SF-JF"] = equivalent_jellyfish(configs["SF"], seed=ctx.seed + 1)
    rows = []
    for name, topo in configs.items():
        breakdown = cost_per_endpoint(topo)
        row = breakdown.as_row()
        row["topology"] = name          # short name, not the constructor string
        rows.append(row)
    baseline = min(r["per_endpoint"] for r in rows)
    for row in rows:
        row["relative_cost"] = round(row["per_endpoint"] / baseline, 2)
        yield row


SCENARIO = ScenarioSpec(
    name="fig10",
    title="Cost per endpoint (switches / interconnect / endpoint links)",
    paper_reference="Figure 10",
    plan=_plan,
    base_columns=("topology", "per_endpoint", "relative_cost"),
    notes=(
        "Paper finding (Fig 10): costs per endpoint are comparable across SF/JF/XP/DF/FT3; "
        "HyperX is notably more expensive due to its very high router radix.",
    ),
)

run = SCENARIO.runner()
