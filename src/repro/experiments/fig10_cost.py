"""Figure 10: cost per endpoint of the compared topologies.

Evaluates the 100GbE cost model on the fair-comparison configurations and splits the
per-endpoint cost into switches, interconnect cables and endpoint links.  The shape to
reproduce: per-endpoint costs of SF, JF, XP, DF and FT3 are comparable (within ~2x)
with HyperX the most expensive (its high radix forces big switches).
"""

from __future__ import annotations

from repro.cost.model import cost_per_endpoint
from repro.experiments.common import ExperimentResult, Scale
from repro.topologies import comparable_configurations, equivalent_jellyfish


def run(scale: Scale = Scale.TINY, seed: int = 0) -> ExperimentResult:
    scale = Scale(scale)
    configs = comparable_configurations(scale.size_class(),
                                        topologies=["SF", "XP", "DF", "FT3", "HX3"],
                                        seed=seed)
    configs["SF-JF"] = equivalent_jellyfish(configs["SF"], seed=seed + 1)
    rows = []
    for name, topo in configs.items():
        breakdown = cost_per_endpoint(topo)
        row = breakdown.as_row()
        row["topology"] = name          # short name, not the constructor string
        rows.append(row)
    baseline = min(r["per_endpoint"] for r in rows)
    for row in rows:
        row["relative_cost"] = round(row["per_endpoint"] / baseline, 2)
    notes = [
        "Paper finding (Fig 10): costs per endpoint are comparable across SF/JF/XP/DF/FT3; "
        "HyperX is notably more expensive due to its very high router radix.",
    ]
    return ExperimentResult(
        name="fig10",
        description="Cost per endpoint (switches / interconnect / endpoint links)",
        paper_reference="Figure 10",
        rows=rows,
        notes=notes,
        meta={"scale": str(scale)},
    )
