"""Figure 14: FatPaths on TCP vs ECMP and LetFlow (mean and 99%-tail speedups).

For full-TCP "cloud" deployments the paper compares, per topology and flow size,
FatPaths with rho = 0.6 and rho = 1 (both n = 4 layers) against ECMP (static hashing)
and LetFlow (flowlet switching over minimal paths), reporting speedups over the ECMP
baseline.  The shape to reproduce: on SF and DF (no minimal-path diversity) ECMP and
LetFlow are ineffective and FatPaths with rho = 0.6 gives the largest gains (some flows
finish > 2.5x faster); on topologies with minimal-path diversity even rho = 1 FatPaths
adaptivity beats ECMP/LetFlow, with smaller margins.
"""

from __future__ import annotations

import numpy as np

from repro.core.mapping import random_mapping
from repro.experiments.common import ExperimentResult, Scale
from repro.experiments.simcommon import StackCell, build_stack, simulate_stack_many
from repro.sim.metrics import speedup_over_baseline
from repro.topologies import comparable_configurations, equivalent_jellyfish
from repro.traffic.flows import uniform_size_workload
from repro.traffic.patterns import random_permutation

FLOW_SIZES = {"20K": 20_000, "200K": 200_000, "2M": 2_000_000}


def run(scale: Scale = Scale.TINY, seed: int = 0) -> ExperimentResult:
    scale = Scale(scale)
    size_class = scale.size_class()
    fraction = scale.pick(0.25, 0.3, 0.25)
    sizes = scale.pick(["200K", "2M"], list(FLOW_SIZES), list(FLOW_SIZES))
    topo_names = scale.pick(["SF", "DF", "HX3"], ["SF", "DF", "HX3", "XP", "FT3"],
                            ["SF", "DF", "HX3", "XP", "FT3"])
    configs = comparable_configurations(size_class, topologies=topo_names, seed=seed)
    if scale != Scale.TINY:
        configs["JF"] = equivalent_jellyfish(configs["SF"], seed=seed + 1)
    stack_variants = {
        "ecmp": dict(stack="ecmp"),
        "letflow": dict(stack="letflow"),
        "fatpaths_rho0.6": dict(stack="fatpaths_tcp", num_layers=4, rho=0.6),
        "fatpaths_rho1": dict(stack="fatpaths_tcp", num_layers=4, rho=1.0),
    }
    rows = []
    for topo_name, topo in configs.items():
        rng = np.random.default_rng(seed)
        # One random permutation keeps endpoint NICs uncontended, so any FCT differences
        # come from in-network path collisions — the effect Figure 14 isolates.
        pattern = random_permutation(topo.num_endpoints, rng).subsample(fraction, rng)
        mapping = random_mapping(topo.num_endpoints, rng)
        # routing construction (layer sets, forwarding tables, candidate paths) is
        # shared across the flow-size loop; selectors stay fresh per cell
        routing_cache: dict = {}
        for size_label in sizes:
            size = FLOW_SIZES[size_label]
            workload = uniform_size_workload(pattern, size)
            stacks = {variant: build_stack(topo, seed=seed, routing_cache=routing_cache,
                                           **kwargs)
                      for variant, kwargs in stack_variants.items()}
            cells = [StackCell(stack=stack, workload=workload, mapping=mapping, seed=seed)
                     for stack in stacks.values()]
            results = dict(zip(stacks, simulate_stack_many(topo, cells)))
            baseline = results["ecmp"]
            for variant, result in results.items():
                rows.append({
                    "topology": topo_name,
                    "flow_size": size_label,
                    "variant": variant,
                    "speedup_mean": round(speedup_over_baseline(result, baseline, "fct_mean"), 3),
                    "speedup_p99": round(speedup_over_baseline(result, baseline, "fct_p99"), 3),
                    "fct_mean_ms": round(result.summary()["fct_mean"] * 1e3, 4),
                })
    notes = [
        "Paper finding (Fig 14): FatPaths (rho=0.6, n=4) gives the largest mean and tail "
        "speedups on SF and DF; LetFlow helps tails but not SF/DF means; on high-diversity "
        "topologies rho=1 FatPaths adaptivity still beats ECMP/LetFlow.",
    ]
    return ExperimentResult(
        name="fig14",
        description="TCP deployments: FatPaths vs ECMP and LetFlow speedups",
        paper_reference="Figure 14",
        rows=rows,
        notes=notes,
        meta={"scale": str(scale)},
    )
