"""Figure 14: FatPaths on TCP vs ECMP and LetFlow (mean and 99%-tail speedups).

For full-TCP "cloud" deployments the paper compares, per topology and flow size,
FatPaths with rho = 0.6 and rho = 1 (both n = 4 layers) against ECMP (static hashing)
and LetFlow (flowlet switching over minimal paths), reporting speedups over the ECMP
baseline.  The shape to reproduce: on SF and DF (no minimal-path diversity) ECMP and
LetFlow are ineffective and FatPaths with rho = 0.6 gives the largest gains (some flows
finish > 2.5x faster); on topologies with minimal-path diversity even rho = 1 FatPaths
adaptivity beats ECMP/LetFlow, with smaller margins.
"""

from __future__ import annotations

import numpy as np

from repro.core.mapping import random_mapping
from repro.experiments.scenario import ScenarioContext, ScenarioSpec, SimSweep
from repro.experiments.simcommon import (
    TCP_STACK_VARIANTS,
    StackCell,
    build_stack,
    grouped_baseline_rows,
)
from repro.sim.metrics import speedup_over_baseline
from repro.topologies import comparable_configurations, equivalent_jellyfish
from repro.traffic.flows import uniform_size_workload
from repro.traffic.patterns import random_permutation

FLOW_SIZES = {"20K": 20_000, "200K": 200_000, "2M": 2_000_000}

#: Topology families this scenario iterates (the JF twin derives from the SF build;
#: per-family random streams keep split rows equal to unsplit rows).
TOPOLOGY_NAMES = ("SF", "DF", "HX3", "XP", "FT3", "JF")

#: The four compared stacks (Figure 14's series), in row order.
STACK_VARIANTS = TCP_STACK_VARIANTS


def _families(scale):
    """Axis families that actually run at ``scale`` (the JF twin joins above tiny)."""
    names = scale.pick(["SF", "DF", "HX3"], ["SF", "DF", "HX3", "XP", "FT3"],
                       ["SF", "DF", "HX3", "XP", "FT3"])
    if scale.value != "tiny":
        names = names + ["JF"]
    return names


def _plan(ctx: ScenarioContext):
    size_class = ctx.scale.size_class()
    fraction = ctx.scale.pick(0.25, 0.3, 0.25)
    sizes = ctx.scale.pick(["200K", "2M"], list(FLOW_SIZES), list(FLOW_SIZES))
    for topo_name in ctx.active(_families(ctx.scale)):
        if topo_name == "JF":
            base = comparable_configurations(size_class, topologies=["SF"],
                                             seed=ctx.seed)["SF"]
            topo = equivalent_jellyfish(base, seed=ctx.seed + 1)
        else:
            topo = comparable_configurations(size_class, topologies=[topo_name],
                                             seed=ctx.seed)[topo_name]
        rng = np.random.default_rng(ctx.seed)
        # One random permutation keeps endpoint NICs uncontended, so any FCT differences
        # come from in-network path collisions — the effect Figure 14 isolates.
        pattern = random_permutation(topo.num_endpoints, rng).subsample(fraction, rng)
        mapping = random_mapping(topo.num_endpoints, rng)
        # routing construction (layer sets, forwarding tables, candidate paths) is
        # shared across the flow-size loop; selectors stay fresh per cell
        cells = []
        for size_label in sizes:
            workload = uniform_size_workload(pattern, FLOW_SIZES[size_label])
            cells.extend(
                StackCell(stack=build_stack(topo, seed=ctx.seed,
                                            routing_cache=ctx.routing_cache, **kwargs),
                          workload=workload, mapping=mapping, seed=ctx.seed,
                          meta={"topology": topo_name, "flow_size": size_label,
                                "variant": variant})
                for variant, kwargs in STACK_VARIANTS.items())
        yield SimSweep(topology=topo, cells=cells,
                       aggregate=lambda results, cells=cells: grouped_baseline_rows(
                           cells, results, len(STACK_VARIANTS), _row))


def _row(cell: StackCell, result, baseline) -> dict:
    """One speedup row, relative to the group's ECMP baseline."""
    return {
        **cell.meta,
        "speedup_mean": round(speedup_over_baseline(result, baseline, "fct_mean"), 3),
        "speedup_p99": round(speedup_over_baseline(result, baseline, "fct_p99"), 3),
        "fct_mean_ms": round(result.summary()["fct_mean"] * 1e3, 4),
    }


SCENARIO = ScenarioSpec(
    name="fig14",
    title="TCP deployments: FatPaths vs ECMP and LetFlow speedups",
    paper_reference="Figure 14",
    plan=_plan,
    topology_names=TOPOLOGY_NAMES,
    scale_families=_families,
    base_columns=("topology", "flow_size", "variant", "speedup_mean", "speedup_p99",
                  "fct_mean_ms"),
    notes=(
        "Paper finding (Fig 14): FatPaths (rho=0.6, n=4) gives the largest mean and tail "
        "speedups on SF and DF; LetFlow helps tails but not SF/DF means; on high-diversity "
        "topologies rho=1 FatPaths adaptivity still beats ECMP/LetFlow.",
    ),
)

run = SCENARIO.runner()
