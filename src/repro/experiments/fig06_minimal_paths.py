"""Figure 6: distributions of shortest-path lengths and shortest-path diversities.

For every topology (and its equivalent Jellyfish) the paper plots the fraction of
router pairs at each minimal path length ``l_min`` and with each minimal path count
``c_min`` (1, 2, 3, >3).  The takeaway: in all low-diameter topologies a large fraction
of router pairs has exactly one shortest path ("shortest paths fall short"), while fat
trees and HyperX retain high minimal diversity.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.diversity.minimal_paths import minimal_path_statistics
from repro.experiments.common import ExperimentResult, Scale, select_topologies, topology_rng
from repro.topologies import comparable_configurations

#: Base topology families this experiment iterates (each brings its Jellyfish
#: equivalent along; grid cells may select a subset).
TOPOLOGY_NAMES = ("SF", "DF", "HX3", "XP", "FT3")


def run(scale: Scale = Scale.TINY, seed: int = 0,
        topologies: Optional[Sequence[str]] = None) -> ExperimentResult:
    scale = Scale(scale)
    size_class = scale.size_class()
    num_samples = scale.pick(150, 400, 800)
    selected = select_topologies(TOPOLOGY_NAMES, topologies)
    configs = comparable_configurations(size_class, include_jellyfish=True,
                                        topologies=list(selected), seed=seed)
    rows = []
    for name, topo in configs.items():
        # per-topology generator: a filtered run yields the same rows as a full one
        rng = topology_rng(seed, name)
        stats = minimal_path_statistics(topo, num_samples=num_samples, rng=rng)
        row = {
            "topology": name,
            "mean_lmin": round(stats.mean_length, 3),
            "mean_cmin": round(stats.mean_count, 3),
            "frac_single_shortest": round(stats.fraction_single_shortest_path, 3),
        }
        for length, frac in stats.length_histogram.items():
            row[f"lmin={length}"] = round(frac, 3)
        for count, frac in stats.count_histogram.items():
            label = f"cmin>={count}" if count >= 4 else f"cmin={count}"
            row[label] = round(frac, 3)
        rows.append(row)
    notes = [
        "Paper finding: SF/DF have mostly one shortest path per pair; HX has ~2-3; "
        "FT3 (edge switches) has high minimal diversity; Jellyfish equivalents are "
        "'smoothed out'.",
    ]
    return ExperimentResult(
        name="fig06",
        description="Shortest-path length and diversity distributions",
        paper_reference="Figure 6",
        rows=rows,
        notes=notes,
        meta={"scale": str(scale), "num_samples": num_samples,
              "topologies": list(selected)},
    )
