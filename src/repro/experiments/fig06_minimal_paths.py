"""Figure 6: distributions of shortest-path lengths and shortest-path diversities.

For every topology (and its equivalent Jellyfish) the paper plots the fraction of
router pairs at each minimal path length ``l_min`` and with each minimal path count
``c_min`` (1, 2, 3, >3).  The takeaway: in all low-diameter topologies a large fraction
of router pairs has exactly one shortest path ("shortest paths fall short"), while fat
trees and HyperX retain high minimal diversity.
"""

from __future__ import annotations

from repro.diversity.minimal_paths import minimal_path_statistics
from repro.experiments.scenario import ScenarioContext, ScenarioSpec
from repro.topologies import comparable_configurations

#: Base topology families this scenario iterates (each brings its Jellyfish
#: equivalent along; grid cells may select a subset).
TOPOLOGY_NAMES = ("SF", "DF", "HX3", "XP", "FT3")


def _plan(ctx: ScenarioContext):
    size_class = ctx.scale.size_class()
    num_samples = ctx.scale.pick(150, 400, 800)
    ctx.meta["num_samples"] = num_samples
    configs = comparable_configurations(size_class, include_jellyfish=True,
                                        topologies=list(ctx.topologies), seed=ctx.seed)
    for name, topo in configs.items():
        # per-topology generator: a filtered run yields the same rows as a full one
        rng = ctx.rng(name)
        stats = minimal_path_statistics(topo, num_samples=num_samples, rng=rng)
        row = {
            "topology": name,
            "mean_lmin": round(stats.mean_length, 3),
            "mean_cmin": round(stats.mean_count, 3),
            "frac_single_shortest": round(stats.fraction_single_shortest_path, 3),
        }
        for length, frac in stats.length_histogram.items():
            row[f"lmin={length}"] = round(frac, 3)
        for count, frac in stats.count_histogram.items():
            label = f"cmin>={count}" if count >= 4 else f"cmin={count}"
            row[label] = round(frac, 3)
        yield row


SCENARIO = ScenarioSpec(
    name="fig06",
    title="Shortest-path length and diversity distributions",
    paper_reference="Figure 6",
    plan=_plan,
    topology_names=TOPOLOGY_NAMES,
    base_columns=("topology", "mean_lmin", "mean_cmin", "frac_single_shortest"),
    notes=(
        "Paper finding: SF/DF have mostly one shortest path per pair; HX has ~2-3; "
        "FT3 (edge switches) has high minimal diversity; Jellyfish equivalents are "
        "'smoothed out'.",
    ),
)

run = SCENARIO.runner()
