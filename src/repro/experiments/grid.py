"""Parallel experiment grids: fan independent experiment cells across cores.

An experiment *grid* is the cross product of experiment names, scales and seeds (plus
optional per-cell keyword arguments) — exactly the sweeps the paper's figures are
built from.  Cells are independent (each builds its own topologies, layers and
routing state), so they parallelise embarrassingly over a ``ProcessPoolExecutor``;
each worker process grows its own :mod:`repro.kernels` path cache, which repeated
cells on the same topology then share.

Serial execution (``jobs=None`` or ``jobs<=1``) runs in-process, reusing the parent's
cache — useful for debugging and as the baseline in the cached-vs-parallel benchmark.
Cell failures are captured per cell (``GridCellResult.error``) instead of aborting the
whole sweep.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.experiments.common import ExperimentResult, Scale, run_experiment


@dataclass(frozen=True)
class GridCell:
    """One (experiment, scale, seed) cell of a sweep."""

    name: str
    scale: str = "tiny"
    seed: int = 0
    kwargs: Tuple[Tuple[str, object], ...] = ()

    def label(self) -> str:
        return f"{self.name}[scale={self.scale},seed={self.seed}]"


@dataclass
class GridCellResult:
    """Outcome of one cell: the experiment result or the captured error."""

    cell: GridCell
    result: Optional[ExperimentResult] = None
    error: Optional[str] = None
    elapsed_seconds: float = 0.0

    @property
    def ok(self) -> bool:
        return self.error is None


def make_grid(names: Sequence[str], scales: Sequence[str] = ("tiny",),
              seeds: Sequence[int] = (0,),
              kwargs: Optional[Dict[str, object]] = None) -> List[GridCell]:
    """The cross product of names x scales x seeds as grid cells."""
    fixed = tuple(sorted((kwargs or {}).items()))
    return [GridCell(name=n, scale=str(Scale(s).value), seed=int(seed), kwargs=fixed)
            for n in names for s in scales for seed in seeds]


def _run_cell(cell: GridCell) -> GridCellResult:
    """Execute one cell (module-level so worker processes can import it)."""
    import time

    start = time.perf_counter()
    try:
        result = run_experiment(cell.name, scale=cell.scale, seed=cell.seed,
                                **dict(cell.kwargs))
        return GridCellResult(cell=cell, result=result,
                              elapsed_seconds=time.perf_counter() - start)
    except Exception as exc:  # noqa: BLE001 - cell isolation is the point
        return GridCellResult(cell=cell, error=f"{type(exc).__name__}: {exc}",
                              elapsed_seconds=time.perf_counter() - start)


def run_experiment_grid(cells: Iterable[GridCell],
                        jobs: Optional[int] = None) -> List[GridCellResult]:
    """Run all cells, serially or across ``jobs`` worker processes.

    Results come back in cell order regardless of completion order.  ``jobs=None``,
    ``0`` or ``1`` runs serially in-process; higher values fan cells out over a
    process pool (one path cache per worker).
    """
    cell_list = list(cells)
    if jobs is None or jobs <= 1 or len(cell_list) <= 1:
        return [_run_cell(cell) for cell in cell_list]
    workers = min(jobs, len(cell_list))
    with ProcessPoolExecutor(max_workers=workers) as pool:
        return list(pool.map(_run_cell, cell_list))


@dataclass
class GridSummary:
    """Aggregate view of a finished grid (what the CLI prints)."""

    results: List[GridCellResult] = field(default_factory=list)

    @property
    def num_ok(self) -> int:
        return sum(1 for r in self.results if r.ok)

    @property
    def num_failed(self) -> int:
        return len(self.results) - self.num_ok

    def report(self) -> str:
        lines = []
        for r in self.results:
            status = "ok" if r.ok else f"FAILED ({r.error})"
            rows = len(r.result.rows) if r.result is not None else 0
            lines.append(f"{r.cell.label():40s} {status:>10s}  "
                         f"rows={rows:<5d} {r.elapsed_seconds:.1f}s")
        lines.append(f"-- {self.num_ok}/{len(self.results)} cells ok")
        return "\n".join(lines)
