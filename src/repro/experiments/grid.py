"""Parallel experiment grids: fan independent experiment cells across cores.

An experiment *grid* is the cross product of experiment names, scales and seeds (plus
optional per-cell keyword arguments) — exactly the sweeps the paper's figures are
built from.  Cells are independent (each builds its own topologies, layers and
routing state), so they parallelise embarrassingly over a ``ProcessPoolExecutor``;
each worker process grows its own :mod:`repro.kernels` path cache, which repeated
cells on the same topology then share.

Heavy diversity experiments (Figures 6/7, Table IV) iterate several topology
families inside one ``run()`` call, which used to make them the slowest cells and
bound the pool's wall clock.  :func:`split_heavy_cells` fans those experiments into
*per-topology* cells via their ``topologies=`` filter; the per-topology random
streams in :mod:`repro.experiments.common` guarantee the split cells' rows equal the
unsplit run's, so splitting only changes scheduling granularity.

Serial execution (``jobs=None`` or ``jobs<=1``) runs in-process, reusing the parent's
cache — useful for debugging and as the baseline in the cached-vs-parallel benchmark.
Cell failures are captured per cell (``GridCellResult.error``) instead of aborting the
whole sweep.
"""

from __future__ import annotations

import importlib
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.experiments.common import ExperimentResult, Scale, registry, run_experiment


def splittable_families(experiment: str) -> Optional[Tuple[str, ...]]:
    """Topology families of a splittable experiment, or ``None``.

    An experiment is splittable iff its module exposes a ``TOPOLOGY_NAMES``
    tuple — the contract (see ``docs/experiments.md``) that its ``run()`` also
    accepts a matching ``topologies=`` filter with per-family random streams.
    Derived from the module itself so the splitter can never drift from the
    experiment's own family list.
    """
    module_path = registry().get(experiment)
    if module_path is None:
        return None
    families = getattr(importlib.import_module(module_path), "TOPOLOGY_NAMES", None)
    return tuple(families) if families else None


@dataclass(frozen=True)
class GridCell:
    """One (experiment, scale, seed[, kwargs]) cell of a sweep."""

    name: str
    scale: str = "tiny"
    seed: int = 0
    kwargs: Tuple[Tuple[str, object], ...] = ()

    def label(self) -> str:
        """Human-readable cell identifier used by the grid summary report."""
        extras = dict(self.kwargs)
        topo = extras.get("topologies")
        suffix = f",topo={'+'.join(topo)}" if topo else ""
        return f"{self.name}[scale={self.scale},seed={self.seed}{suffix}]"


@dataclass
class GridCellResult:
    """Outcome of one cell: the experiment result or the captured error."""

    cell: GridCell
    result: Optional[ExperimentResult] = None
    error: Optional[str] = None
    elapsed_seconds: float = 0.0

    @property
    def ok(self) -> bool:
        """True iff the cell completed without raising."""
        return self.error is None


def make_grid(names: Sequence[str], scales: Sequence[str] = ("tiny",),
              seeds: Sequence[int] = (0,),
              kwargs: Optional[Dict[str, object]] = None) -> List[GridCell]:
    """The cross product of names x scales x seeds as grid cells."""
    fixed = tuple(sorted((kwargs or {}).items()))
    return [GridCell(name=n, scale=str(Scale(s).value), seed=int(seed), kwargs=fixed)
            for n in names for s in scales for seed in seeds]


def split_heavy_cells(cells: Iterable[GridCell]) -> List[GridCell]:
    """Fan each splittable experiment cell into one cell per topology family.

    Cells of experiments without :func:`splittable_families`, and cells that
    already carry an explicit ``topologies`` selection, pass through unchanged.
    The finer cells keep the original order (grouped per parent cell), so summary
    reports stay readable and result concatenation is deterministic.
    """
    out: List[GridCell] = []
    for cell in cells:
        families = splittable_families(cell.name)
        if families is None or any(key == "topologies" for key, _ in cell.kwargs):
            out.append(cell)
            continue
        for family in families:
            out.append(GridCell(name=cell.name, scale=cell.scale, seed=cell.seed,
                                kwargs=cell.kwargs + (("topologies", (family,)),)))
    return out


def _run_cell(cell: GridCell) -> GridCellResult:
    """Execute one cell (module-level so worker processes can import it)."""
    import time

    start = time.perf_counter()
    try:
        result = run_experiment(cell.name, scale=cell.scale, seed=cell.seed,
                                **dict(cell.kwargs))
        return GridCellResult(cell=cell, result=result,
                              elapsed_seconds=time.perf_counter() - start)
    except Exception as exc:  # noqa: BLE001 - cell isolation is the point
        return GridCellResult(cell=cell, error=f"{type(exc).__name__}: {exc}",
                              elapsed_seconds=time.perf_counter() - start)


def run_experiment_grid(cells: Iterable[GridCell],
                        jobs: Optional[int] = None) -> List[GridCellResult]:
    """Run all cells, serially or across ``jobs`` worker processes.

    Results come back in cell order regardless of completion order.  ``jobs=None``,
    ``0`` or ``1`` runs serially in-process; higher values fan cells out over a
    process pool (one path cache per worker).
    """
    cell_list = list(cells)
    if jobs is None or jobs <= 1 or len(cell_list) <= 1:
        return [_run_cell(cell) for cell in cell_list]
    workers = min(jobs, len(cell_list))
    with ProcessPoolExecutor(max_workers=workers) as pool:
        return list(pool.map(_run_cell, cell_list))


@dataclass
class GridSummary:
    """Aggregate view of a finished grid (what the CLI prints)."""

    results: List[GridCellResult] = field(default_factory=list)

    @property
    def num_ok(self) -> int:
        """Number of cells that completed successfully."""
        return sum(1 for r in self.results if r.ok)

    @property
    def num_failed(self) -> int:
        """Number of cells whose error was captured."""
        return len(self.results) - self.num_ok

    def report(self) -> str:
        """One status line per cell plus an ok/total footer (the CLI output)."""
        lines = []
        for r in self.results:
            status = "ok" if r.ok else f"FAILED ({r.error})"
            rows = len(r.result.rows) if r.result is not None else 0
            lines.append(f"{r.cell.label():40s} {status:>10s}  "
                         f"rows={rows:<5d} {r.elapsed_seconds:.1f}s")
        lines.append(f"-- {self.num_ok}/{len(self.results)} cells ok")
        return "\n".join(lines)
