"""Parallel experiment grids: fan independent experiment cells across cores.

An experiment *grid* is the cross product of experiment names, scales and seeds (plus
optional per-cell keyword arguments) — exactly the sweeps the paper's figures are
built from.  Cells are independent (each builds its own topologies, layers and
routing state), so they parallelise embarrassingly over a ``ProcessPoolExecutor``;
each worker process grows its own :mod:`repro.kernels` path cache, which repeated
cells on the same topology then share.

Experiments that iterate several topology families inside one run used to be the
slowest cells and bound the pool's wall clock.  :func:`split_heavy_cells` fans every
scenario that declares a ``topology_names`` axis (see
:mod:`repro.experiments.scenario`) into *per-topology* cells via its ``topologies=``
filter — for the simulation scenarios each such cell is a whole batched
``simulate_many`` StackCell group, so the engine's multi-cell sweeps fan out over
the pool too.  Per-family random streams guarantee the split cells' rows equal the
unsplit run's, so splitting only changes scheduling granularity;
:func:`combine_cell_results` merges split cells back into whole-experiment tables.

Serial execution (``jobs=None`` or ``jobs<=1``) runs in-process, reusing the parent's
cache — useful for debugging and as the baseline in the cached-vs-parallel benchmark.
Cell failures are captured per cell (``GridCellResult.error``) instead of aborting the
whole sweep.
"""

from __future__ import annotations

import copy
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.experiments.common import ExperimentResult, Scale, run_experiment


def splittable_families(experiment: str) -> Optional[Tuple[str, ...]]:
    """Topology families of a splittable experiment, or ``None``.

    An experiment is splittable iff its scenario spec declares a
    ``topology_names`` axis — the contract (see ``docs/experiments.md``) that its
    pipeline run also accepts a matching ``topologies=`` filter with per-family
    random streams.  Derived from the registered spec itself so the splitter can
    never drift from the scenario's own family list.
    """
    from repro.experiments.scenario import scenario_spec

    try:
        spec = scenario_spec(experiment)
    except KeyError:
        return None
    return spec.topology_names


@dataclass(frozen=True)
class GridCell:
    """One (experiment, scale, seed[, kwargs]) cell of a sweep."""

    name: str
    scale: str = "tiny"
    seed: int = 0
    kwargs: Tuple[Tuple[str, object], ...] = ()

    def label(self) -> str:
        """Human-readable cell identifier used by the grid summary report."""
        extras = dict(self.kwargs)
        topo = extras.get("topologies")
        suffix = f",topo={'+'.join(topo)}" if topo else ""
        return f"{self.name}[scale={self.scale},seed={self.seed}{suffix}]"


@dataclass
class GridCellResult:
    """Outcome of one cell: the experiment result or the captured error.

    ``attempts`` and ``outcome`` record the resilient executor's bookkeeping
    (see :mod:`repro.experiments.resilient`): ``"ok"``, ``"failed"``
    (deterministic error or retries exhausted), ``"timeout"`` (wall-clock limit
    exceeded), ``"poisoned"`` (quarantined after repeatedly crashing the
    pool) or ``"journal"`` (skipped on resume, result restored from the
    journal).  ``traceback`` carries the remote cell's full formatted
    traceback (the CLI surfaces it behind ``--verbose-errors``).
    """

    cell: GridCell
    result: Optional[ExperimentResult] = None
    error: Optional[str] = None
    elapsed_seconds: float = 0.0
    attempts: int = 1
    outcome: str = "ok"
    traceback: Optional[str] = None

    @property
    def ok(self) -> bool:
        """True iff the cell completed without raising."""
        return self.error is None


def make_grid(names: Sequence[str], scales: Sequence[str] = ("tiny",),
              seeds: Sequence[int] = (0,),
              kwargs: Optional[Dict[str, object]] = None) -> List[GridCell]:
    """The cross product of names x scales x seeds as grid cells."""
    fixed = tuple(sorted((kwargs or {}).items()))
    return [GridCell(name=n, scale=str(Scale(s).value), seed=int(seed), kwargs=fixed)
            for n in names for s in scales for seed in seeds]


def split_heavy_cells(cells: Iterable[GridCell]) -> List[GridCell]:
    """Fan each splittable experiment cell into one cell per topology family.

    Cells of experiments without :func:`splittable_families`, and cells that
    already carry an explicit ``topologies`` selection, pass through unchanged.
    Specs that narrow their axis per scale (``ScenarioSpec.families_at``) only
    spawn the families that actually run at the cell's scale — no zero-row cells.
    The finer cells keep the original order (grouped per parent cell), so summary
    reports stay readable and result concatenation is deterministic.
    """
    from repro.experiments.scenario import scenario_spec

    out: List[GridCell] = []
    for cell in cells:
        try:
            spec = scenario_spec(cell.name)
        except KeyError:
            out.append(cell)
            continue
        families = spec.families_at(cell.scale)
        if not families or any(key == "topologies" for key, _ in cell.kwargs):
            out.append(cell)
            continue
        for family in families:
            out.append(GridCell(name=cell.name, scale=cell.scale, seed=cell.seed,
                                kwargs=cell.kwargs + (("topologies", (family,)),)))
    return out


def _run_cell(cell: GridCell) -> GridCellResult:
    """Execute one cell (module-level so worker processes can import it)."""
    import time
    import traceback

    start = time.perf_counter()
    try:
        result = run_experiment(cell.name, scale=cell.scale, seed=cell.seed,
                                **dict(cell.kwargs))
        return GridCellResult(cell=cell, result=result,
                              elapsed_seconds=time.perf_counter() - start)
    except Exception as exc:  # noqa: BLE001 - cell isolation is the point
        return GridCellResult(cell=cell, error=f"{type(exc).__name__}: {exc}",
                              traceback=traceback.format_exc(), outcome="failed",
                              elapsed_seconds=time.perf_counter() - start)


def run_experiment_grid(cells: Iterable[GridCell], jobs: Optional[int] = None, *,
                        executor: str = "resilient", policy=None, timeout=None,
                        journal: Optional[str] = None, resume: bool = False,
                        chaos=None) -> List[GridCellResult]:
    """Run all cells, serially or across ``jobs`` worker processes.

    Results come back in cell order regardless of completion order.  ``jobs=None``,
    ``0`` or ``1`` runs serially in-process; higher values fan cells out over a
    process pool (one path cache per worker).

    The default ``executor="resilient"`` dispatches through
    :func:`repro.experiments.resilient.run_resilient_grid`: the sweep survives
    worker crashes and hangs, transient errors retry with backoff, and a
    ``journal`` path (with ``resume=True``) skips already-completed cells —
    see ``docs/resilience.md``.  ``executor="plain"`` keeps the bare
    ``pool.map`` (one crashed worker aborts the sweep); it exists as the
    overhead baseline for the executor benchmark and accepts none of the
    resilience options.
    """
    if executor == "resilient":
        from repro.experiments.resilient import run_resilient_grid

        return run_resilient_grid(cells, jobs=jobs, policy=policy, timeout=timeout,
                                  journal=journal, resume=resume, chaos=chaos)
    if executor != "plain":
        raise ValueError(f"unknown executor {executor!r}; use 'resilient' or 'plain'")
    if policy is not None or timeout is not None or journal is not None \
            or resume or chaos is not None:
        raise ValueError("the plain executor accepts no resilience options")
    cell_list = list(cells)
    if jobs is None or jobs <= 1 or len(cell_list) <= 1:
        return [_run_cell(cell) for cell in cell_list]
    workers = min(jobs, len(cell_list))
    with ProcessPoolExecutor(max_workers=workers) as pool:
        return list(pool.map(_run_cell, cell_list))


def combine_cell_results(results: Iterable[GridCellResult]) -> List[ExperimentResult]:
    """Merge split grid cells back into one result per (experiment, scale, seed).

    Cells that came from :func:`split_heavy_cells` carry disjoint per-topology row
    subsets in family order; concatenating them reproduces the unsplit run's table
    (the split contract of the scenario pipeline's common row schema).  Rows and
    dict-valued metadata merge across cells; notes deduplicate in first-seen order;
    failed cells are skipped (they are visible in the grid summary).  Cells that
    differ in non-``topologies`` kwargs (distinct configurations of one
    experiment) are kept apart, and the per-cell results are never mutated.
    """
    merged: Dict[Tuple, ExperimentResult] = {}
    order: List[Tuple] = []
    for r in results:
        if r.result is None:
            continue
        options = tuple((k, v) for k, v in r.cell.kwargs if k != "topologies")
        key = (r.cell.name, r.cell.scale, r.cell.seed, options)
        current = merged.get(key)
        if current is None:
            result = r.result
            merged[key] = ExperimentResult(
                name=result.name, description=result.description,
                paper_reference=result.paper_reference, rows=list(result.rows),
                notes=list(result.notes), meta=copy.deepcopy(result.meta))
            order.append(key)
            continue
        current.rows.extend(r.result.rows)
        current.notes.extend(n for n in r.result.notes if n not in current.notes)
        for meta_key, value in r.result.meta.items():
            existing = current.meta.get(meta_key)
            if isinstance(existing, dict) and isinstance(value, dict):
                existing.update(value)
            elif meta_key == "topologies" and isinstance(existing, list):
                existing.extend(v for v in value if v not in existing)
            elif meta_key not in current.meta:
                current.meta[meta_key] = value
    return [merged[key] for key in order]


#: outcome -> status word shown in the grid summary (failures uppercased so a
#: glance — or a grep for FAILED — still finds them).
_OUTCOME_STATUS = {"ok": "ok", "journal": "journal", "failed": "FAILED",
                   "timeout": "TIMEOUT", "poisoned": "POISONED"}


@dataclass
class GridSummary:
    """Aggregate view of a finished grid (what the CLI prints)."""

    results: List[GridCellResult] = field(default_factory=list)

    @property
    def num_ok(self) -> int:
        """Number of cells that completed successfully."""
        return sum(1 for r in self.results if r.ok)

    @property
    def num_failed(self) -> int:
        """Number of cells whose error was captured."""
        return len(self.results) - self.num_ok

    def _count(self, predicate) -> int:
        return sum(1 for r in self.results if predicate(r))

    def report(self) -> str:
        """One status line per cell plus an ok/total footer (the CLI output).

        Each line shows the outcome (``ok``/``journal``/``FAILED``/``TIMEOUT``/
        ``POISONED``), row count and attempt count, so a retried or quarantined
        cell is distinguishable from a plain failure; labels are padded to the
        longest cell label so split per-topology cells stay aligned.
        """
        width = max((len(r.cell.label()) for r in self.results), default=0)
        lines = []
        for r in self.results:
            status = _OUTCOME_STATUS.get(r.outcome, r.outcome)
            rows = len(r.result.rows) if r.result is not None else 0
            detail = "" if r.ok else f"  ({r.error})"
            lines.append(f"{r.cell.label():{width}s} {status:>8s}  rows={rows:<5d} "
                         f"attempts={r.attempts:<2d} {r.elapsed_seconds:.1f}s{detail}")
        footer = f"-- {self.num_ok}/{len(self.results)} cells ok"
        extras = []
        journaled = self._count(lambda r: r.outcome == "journal")
        retried = self._count(lambda r: r.outcome == "ok" and r.attempts > 1)
        timeouts = self._count(lambda r: r.outcome == "timeout")
        poisoned = self._count(lambda r: r.outcome == "poisoned")
        if journaled:
            extras.append(f"{journaled} from journal")
        if retried:
            extras.append(f"{retried} retried")
        if timeouts:
            extras.append(f"{timeouts} timed out")
        if poisoned:
            extras.append(f"{poisoned} poisoned")
        if extras:
            footer += " (" + ", ".join(extras) + ")"
        lines.append(footer)
        return "\n".join(lines)
