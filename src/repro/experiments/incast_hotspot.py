"""Incast/hotspot scenario: many-to-one aggregation traffic across the topology set.

Beyond the paper's figures, this registry scenario stresses the transport/load-balance
stacks with the classic datacenter incast shape: ``fanin`` senders converge on each of
a handful of hot destinations (:func:`repro.traffic.patterns.incast_pattern`).  The
contention sits at the hotspots' ejection links, so the interesting comparison is how
much the in-network path diversity of FatPaths still helps tails versus the minimal-
path NDP baseline and static ECMP hashing once the bottleneck is the NIC.

Every family draws its hotspots from its own ``(seed, family)`` stream, so the grid
may fan this scenario into per-family cells (split rows == unsplit rows).
"""

from __future__ import annotations

from repro.experiments.scenario import ScenarioContext, ScenarioSpec, SimSweep
from repro.experiments.simcommon import StackCell, build_stack, tail_and_mean_throughput
from repro.topologies import comparable_configurations
from repro.traffic.flows import uniform_size_workload
from repro.traffic.patterns import incast_pattern

KIB = 1024

#: Topology families this scenario iterates (per-family random streams; grid cells
#: may select a subset without changing rows).
TOPOLOGY_NAMES = ("SF", "DF", "HX3", "XP", "FT3")

#: Compared stacks, in row order.
STACKS = ("fatpaths", "ndp", "ecmp")


def _plan(ctx: ScenarioContext):
    size_class = ctx.scale.size_class()
    flow_size = ctx.scale.pick(128 * KIB, 256 * KIB, 512 * KIB)
    num_hotspots = ctx.scale.pick(2, 4, 8)
    configs = comparable_configurations(size_class, topologies=list(ctx.topologies),
                                        seed=ctx.seed)
    for topo_name, topo in configs.items():
        rng = ctx.rng(topo_name)
        fanin = max(4, topo.num_endpoints // (8 * num_hotspots))
        pattern = incast_pattern(topo.num_endpoints, num_hotspots=num_hotspots,
                                 fanin=fanin, rng=rng)
        workload = uniform_size_workload(pattern, flow_size)
        cells = [StackCell(stack=build_stack(topo, stack_name, seed=ctx.seed,
                                             routing_cache=ctx.routing_cache),
                           workload=workload, seed=ctx.seed,
                           meta={"topology": topo_name, "stack": stack_name,
                                 "hotspots": num_hotspots, "fanin": fanin})
                 for stack_name in STACKS]
        yield SimSweep.per_cell(topo, cells, _row)


def _row(cell: StackCell, result) -> dict:
    tail, mean = tail_and_mean_throughput(result)
    summary = result.summary(percentiles=(50, 99))
    return {
        **cell.meta,
        "flows": len(result),
        "throughput_mean_MiBs": round(mean, 2),
        "throughput_tail1_MiBs": round(tail, 2),
        "fct_p50_ms": round(summary["fct_p50"] * 1e3, 4),
        "fct_p99_ms": round(summary["fct_p99"] * 1e3, 4),
    }


SCENARIO = ScenarioSpec(
    name="incast",
    title="Incast/hotspot aggregation traffic: FatPaths vs NDP and ECMP",
    paper_reference="— (registry scenario beyond the paper)",
    plan=_plan,
    topology_names=TOPOLOGY_NAMES,
    base_columns=("topology", "stack", "hotspots", "fanin", "flows",
                  "throughput_mean_MiBs", "throughput_tail1_MiBs", "fct_p50_ms",
                  "fct_p99_ms"),
    notes=(
        "Expected shape: the hotspots' ejection links bound every stack's mean, so the "
        "stacks differ mainly in tail FCT — adaptive multipathing resolves the residual "
        "in-network collisions that static hashing leaves.",
    ),
)

run = SCENARIO.runner()
