"""Figures 20/21 (appendix): flow behaviour vs arrival rate lambda on a crossbar.

On a single-switch ("star") network the only contention is at endpoint links, so
sweeping the per-endpoint flow arrival rate shows where the transport/workload model
saturates: per-flow throughput decreases (FCT grows superlinearly) beyond the
saturation point (~250 flows/s per endpoint for the paper's pFabric mix on 10G links).
"""

from __future__ import annotations

import numpy as np

from repro.core.loadbalance import EcmpSelector
from repro.core.transport import tcp_transport
from repro.experiments.scenario import ScenarioContext, ScenarioSpec, SimSweep
from repro.experiments.simcommon import Stack, StackCell
from repro.routing import EcmpRouting
from repro.sim.queueing import offered_load
from repro.topologies import star
from repro.traffic.flows import pfabric_mean_size, poisson_workload
from repro.traffic.patterns import random_permutation

FLOW_SIZE = 2_000_000.0  # long flows, as in the appendix figure


def _plan(ctx: ScenarioContext):
    num_endpoints = ctx.scale.pick(24, 60, 60)
    duration = ctx.scale.pick(0.01, 0.02, 0.05)
    rates = ctx.scale.pick([50, 200, 400], [50, 200, 400, 800],
                           [50, 100, 200, 400, 600, 800])
    ctx.meta["num_endpoints"] = num_endpoints
    ctx.note(f"Mean pFabric flow size for load calibration: {pfabric_mean_size():.0f} "
             "bytes.")

    topo = star(num_endpoints)
    routing = EcmpRouting(topo)
    # one batched sweep over the arrival rates: the crossbar's candidate paths are
    # resolved once and shared by every cell through the engine's pooled bank
    cells = []
    for rate in rates:
        rng = np.random.default_rng(ctx.seed)
        pattern = random_permutation(num_endpoints, rng)
        workload = poisson_workload(pattern, float(rate), duration, rng=rng,
                                    fixed_size=FLOW_SIZE)
        cells.append(StackCell(stack=Stack("ecmp_star", routing,
                                           EcmpSelector(seed=ctx.seed), tcp_transport()),
                               workload=workload, seed=ctx.seed, drop_warmup=True,
                               meta={"lambda": rate}))
    yield SimSweep.per_cell(topo, cells, _row)


def _row(cell: StackCell, result) -> dict:
    summary = result.summary(percentiles=(10, 90))
    rate = cell.meta["lambda"]
    return {
        "lambda": rate,
        "offered_load": round(offered_load(rate, FLOW_SIZE, 10e9), 3),
        "flows": len(result),
        "fct_mean_ms": round(summary["fct_mean"] * 1e3, 4),
        "fct_p10_ms": round(summary["fct_p10"] * 1e3, 4),
        "fct_p90_ms": round(summary["fct_p90"] * 1e3, 4),
        "throughput_mean_MiBs": round(summary["throughput_mean"] / 2**20, 2),
    }


SCENARIO = ScenarioSpec(
    name="fig20",
    title="Flow behaviour vs arrival rate on a crossbar (saturation analysis)",
    paper_reference="Figures 20-21 (appendix)",
    plan=_plan,
    base_columns=("lambda", "offered_load", "flows", "fct_mean_ms", "fct_p10_ms",
                  "fct_p90_ms", "throughput_mean_MiBs"),
    notes=(
        "Paper finding (Fig 20): per-flow throughput decreases beyond lambda ~ 250 "
        "flows/s/endpoint — the network-saturation point used to pick lambda = 200/300 "
        "for the TCP/NDP simulations.",
    ),
)

run = SCENARIO.runner()
