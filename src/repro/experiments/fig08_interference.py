"""Figure 8: distribution of Path Interference at various distances.

The paper samples router 4-tuples and plots the distribution of the interference
``I_ac,bd`` at path-length limits l = 2..5 for SF, DF, HX, FT3 and Jellyfish
equivalents.  Takeaways: PI is small at l=2 (few paths exist, and they rarely overlap),
peaks at l=3..4 (the hop counts most router pairs actually use), nearly vanishes at
l=5, and is exactly zero for fat trees.

Each family samples its 4-tuples from its own ``(seed, family)`` stream
(:meth:`ScenarioContext.rng`), so the scenario declares a ``topology_names`` split
axis: a per-family grid cell reproduces exactly the rows of the full run.
"""

from __future__ import annotations

import numpy as np

from repro.diversity.interference import interference_distribution
from repro.experiments.scenario import ScenarioContext, ScenarioSpec
from repro.topologies import build, equivalent_jellyfish

#: Topology families of the split axis (SF-JF is the Jellyfish twin of SF).
TOPOLOGY_NAMES = ("SF", "SF-JF", "DF", "HX3", "FT3")


def _build(family: str, size_class, seed: int):
    """One family's topology (the Jellyfish twin derives from a fresh SF build)."""
    if family == "SF-JF":
        return equivalent_jellyfish(build("SF", size_class), seed=seed + 1)
    return build(family, size_class)


def _plan(ctx: ScenarioContext):
    size_class = ctx.scale.size_class()
    num_samples = ctx.scale.pick(40, 120, 250)
    ctx.meta["num_samples"] = num_samples
    for family in ctx.active(TOPOLOGY_NAMES):
        topo = _build(family, size_class, ctx.seed)
        rng = ctx.rng(family)
        for length in (2, 3, 4, 5):
            values = interference_distribution(topo, length, num_samples=num_samples,
                                               rng=rng)
            yield {
                "topology": family,
                "l": length,
                "mean": round(float(values.mean()), 3),
                "p999": float(np.percentile(values, 99.9)),
                "frac_zero": round(float((values == 0).mean()), 3),
                "mean_frac_of_radix": round(float(values.mean()) / topo.network_radix, 3),
            }


SCENARIO = ScenarioSpec(
    name="fig08",
    title="Path-interference distributions at l = 2..5",
    paper_reference="Figure 8",
    plan=_plan,
    topology_names=TOPOLOGY_NAMES,
    base_columns=("topology", "l", "mean", "p999", "frac_zero", "mean_frac_of_radix"),
    notes=(
        "Paper finding: most interference occurs at l=3 and l=4; FT3 shows zero PI due "
        "to symmetry and high path diversity; little PI remains at l=5.",
    ),
)

run = SCENARIO.runner()
