"""Figure 8: distribution of Path Interference at various distances.

The paper samples router 4-tuples and plots the distribution of the interference
``I_ac,bd`` at path-length limits l = 2..5 for SF, DF, HX, FT3 and Jellyfish
equivalents.  Takeaways: PI is small at l=2 (few paths exist, and they rarely overlap),
peaks at l=3..4 (the hop counts most router pairs actually use), nearly vanishes at
l=5, and is exactly zero for fat trees.
"""

from __future__ import annotations

import numpy as np

from repro.diversity.interference import interference_distribution
from repro.experiments.common import ExperimentResult, Scale
from repro.topologies import build, equivalent_jellyfish


def run(scale: Scale = Scale.TINY, seed: int = 0) -> ExperimentResult:
    scale = Scale(scale)
    size_class = scale.size_class()
    num_samples = scale.pick(40, 120, 250)
    rng = np.random.default_rng(seed)
    sf = build("SF", size_class)
    topologies = {
        "SF": sf,
        "SF-JF": equivalent_jellyfish(sf, seed=seed + 1),
        "DF": build("DF", size_class),
        "HX3": build("HX3", size_class),
        "FT3": build("FT3", size_class),
    }
    rows = []
    for name, topo in topologies.items():
        for length in (2, 3, 4, 5):
            values = interference_distribution(topo, length, num_samples=num_samples, rng=rng)
            rows.append({
                "topology": name,
                "l": length,
                "mean": round(float(values.mean()), 3),
                "p999": float(np.percentile(values, 99.9)),
                "frac_zero": round(float((values == 0).mean()), 3),
                "mean_frac_of_radix": round(float(values.mean()) / topo.network_radix, 3),
            })
    notes = [
        "Paper finding: most interference occurs at l=3 and l=4; FT3 shows zero PI due "
        "to symmetry and high path diversity; little PI remains at l=5.",
    ]
    return ExperimentResult(
        name="fig08",
        description="Path-interference distributions at l = 2..5",
        paper_reference="Figure 8",
        rows=rows,
        notes=notes,
        meta={"scale": str(scale), "num_samples": num_samples},
    )
