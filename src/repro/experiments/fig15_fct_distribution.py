"""Figure 15: FCT distribution of long flows on Slim Fly vs a queueing-model prediction.

The paper plots the distribution of completion times of 1 MiB flows on Slim Fly under
(a) a simple queueing model, (b) FatPaths on TCP with non-minimal routing and (c) ECMP.
The shape to reproduce: the FatPaths distribution is close to the queueing-model
prediction, while ECMP exhibits a long tail of colliding flows.
"""

from __future__ import annotations

import numpy as np

from repro.core.mapping import random_mapping
from repro.experiments.common import ExperimentResult, Scale
from repro.experiments.simcommon import StackCell, build_stack, simulate_stack_many
from repro.sim.queueing import offered_load, predict_fct_distribution
from repro.topologies import build
from repro.traffic.flows import poisson_workload
from repro.traffic.patterns import random_permutation

MIB = 1024 * 1024


def run(scale: Scale = Scale.TINY, seed: int = 0) -> ExperimentResult:
    scale = Scale(scale)
    size_class = scale.size_class()
    arrival_rate = 200.0           # flows per endpoint per second (lambda = 200, §VII-A4)
    duration = scale.pick(0.02, 0.04, 0.05)
    fraction = scale.pick(0.2, 0.25, 0.25)
    flow_size = 1 * MIB
    link_rate = 10e9

    topo = build("SF", size_class, seed=seed)
    rng = np.random.default_rng(seed)
    pattern = random_permutation(topo.num_endpoints, rng).subsample(fraction, rng)
    mapping = random_mapping(topo.num_endpoints, rng)
    workload = poisson_workload(pattern, arrival_rate, duration, rng=rng, fixed_size=flow_size)

    variants = ("fatpaths_tcp", "ecmp")
    cells = [StackCell(stack=build_stack(topo, variant, seed=seed), workload=workload,
                       mapping=mapping, seed=seed) for variant in variants]
    results = dict(zip(variants, simulate_stack_many(topo, cells)))

    load = offered_load(arrival_rate, flow_size, link_rate)
    model_samples = predict_fct_distribution(np.full(len(workload), flow_size), load,
                                             link_rate, base_latency=20e-6,
                                             rng=np.random.default_rng(seed))

    def describe(name: str, samples: np.ndarray):
        return {
            "series": name,
            "fct_mean_ms": round(float(samples.mean()) * 1e3, 4),
            "fct_p50_ms": round(float(np.percentile(samples, 50)) * 1e3, 4),
            "fct_p99_ms": round(float(np.percentile(samples, 99)) * 1e3, 4),
            "fct_max_ms": round(float(samples.max()) * 1e3, 4),
            "tail_over_mean": round(float(np.percentile(samples, 99) / samples.mean()), 2),
        }

    rows = [
        describe("queueing_model", model_samples),
        describe("fatpaths_tcp", results["fatpaths_tcp"].fcts()),
        describe("ecmp", results["ecmp"].fcts()),
    ]
    notes = [
        "Paper finding (Fig 15): FatPaths' FCT distribution is close to the queueing-model "
        "prediction; ECMP shows a long tail of colliding flows (larger p99/mean ratio).",
        f"M/G/1-PS offered load used for the model: {load:.3f}.",
    ]
    return ExperimentResult(
        name="fig15",
        description="Long-flow FCT distribution on SF vs queueing-model prediction",
        paper_reference="Figure 15",
        rows=rows,
        notes=notes,
        meta={"scale": str(scale), "arrival_rate": arrival_rate},
    )
