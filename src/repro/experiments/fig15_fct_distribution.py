"""Figure 15: FCT distribution of long flows on Slim Fly vs a queueing-model prediction.

The paper plots the distribution of completion times of 1 MiB flows on Slim Fly under
(a) a simple queueing model, (b) FatPaths on TCP with non-minimal routing and (c) ECMP.
The shape to reproduce: the FatPaths distribution is close to the queueing-model
prediction, while ECMP exhibits a long tail of colliding flows.
"""

from __future__ import annotations

import numpy as np

from repro.core.mapping import random_mapping
from repro.experiments.scenario import ScenarioContext, ScenarioSpec, SimSweep
from repro.experiments.simcommon import StackCell, build_stack
from repro.sim.queueing import offered_load, predict_fct_distribution
from repro.topologies import build
from repro.traffic.flows import poisson_workload
from repro.traffic.patterns import random_permutation

MIB = 1024 * 1024


def _describe(name: str, samples: np.ndarray) -> dict:
    """One distribution-summary row (the figure's per-series statistics)."""
    return {
        "series": name,
        "fct_mean_ms": round(float(samples.mean()) * 1e3, 4),
        "fct_p50_ms": round(float(np.percentile(samples, 50)) * 1e3, 4),
        "fct_p99_ms": round(float(np.percentile(samples, 99)) * 1e3, 4),
        "fct_max_ms": round(float(samples.max()) * 1e3, 4),
        "tail_over_mean": round(float(np.percentile(samples, 99) / samples.mean()), 2),
    }


def _plan(ctx: ScenarioContext):
    size_class = ctx.scale.size_class()
    arrival_rate = 200.0           # flows per endpoint per second (lambda = 200, §VII-A4)
    duration = ctx.scale.pick(0.02, 0.04, 0.05)
    fraction = ctx.scale.pick(0.2, 0.25, 0.25)
    flow_size = 1 * MIB
    link_rate = 10e9
    ctx.meta["arrival_rate"] = arrival_rate

    topo = build("SF", size_class, seed=ctx.seed)
    rng = np.random.default_rng(ctx.seed)
    pattern = random_permutation(topo.num_endpoints, rng).subsample(fraction, rng)
    mapping = random_mapping(topo.num_endpoints, rng)
    workload = poisson_workload(pattern, arrival_rate, duration, rng=rng,
                                fixed_size=flow_size)

    cells = [StackCell(stack=build_stack(topo, variant, seed=ctx.seed,
                                         routing_cache=ctx.routing_cache),
                       workload=workload, mapping=mapping, seed=ctx.seed,
                       meta={"series": variant})
             for variant in ("fatpaths_tcp", "ecmp")]

    load = offered_load(arrival_rate, flow_size, link_rate)
    ctx.note(f"M/G/1-PS offered load used for the model: {load:.3f}.")
    model_samples = predict_fct_distribution(np.full(len(workload), flow_size), load,
                                             link_rate, base_latency=20e-6,
                                             rng=np.random.default_rng(ctx.seed))

    def aggregate(results):
        rows = [_describe("queueing_model", model_samples)]
        rows.extend(_describe(cell.meta["series"], result.fcts())
                    for cell, result in zip(cells, results))
        return rows

    yield SimSweep(topology=topo, cells=cells, aggregate=aggregate)


SCENARIO = ScenarioSpec(
    name="fig15",
    title="Long-flow FCT distribution on SF vs queueing-model prediction",
    paper_reference="Figure 15",
    plan=_plan,
    base_columns=("series", "fct_mean_ms", "fct_p50_ms", "fct_p99_ms", "fct_max_ms",
                  "tail_over_mean"),
    notes=(
        "Paper finding (Fig 15): FatPaths' FCT distribution is close to the queueing-model "
        "prediction; ECMP shows a long tail of colliding flows (larger p99/mean ratio).",
    ),
)

run = SCENARIO.runner()
