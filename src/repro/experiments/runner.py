"""Command-line entry point for the experiment harness.

Examples
--------
List experiments::

    fatpaths-experiment --list

Run one experiment at a given scale::

    fatpaths-experiment fig09 --scale small
    python -m repro.experiments.runner fig02 --scale tiny --seed 1

Run everything (tiny scale, for a quick end-to-end check)::

    fatpaths-experiment all --scale tiny
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import List, Optional

from repro.experiments.common import Scale, registry, run_experiment


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="fatpaths-experiment",
        description="Regenerate the tables and figures of the FatPaths paper.")
    parser.add_argument("experiment", nargs="?", default=None,
                        help="experiment name (e.g. fig09, tab04) or 'all'")
    parser.add_argument("--scale", default="tiny", choices=[s.value for s in Scale],
                        help="instance scale (default: tiny)")
    parser.add_argument("--seed", type=int, default=0, help="random seed")
    parser.add_argument("--list", action="store_true", help="list available experiments")
    parser.add_argument("--max-rows", type=int, default=None,
                        help="limit the number of printed rows")
    args = parser.parse_args(argv)

    if args.list or args.experiment is None:
        print("available experiments:")
        for name, module in sorted(registry().items()):
            print(f"  {name:8s} {module}")
        return 0

    names = sorted(registry()) if args.experiment == "all" else [args.experiment]
    for name in names:
        start = time.perf_counter()
        result = run_experiment(name, scale=args.scale, seed=args.seed)
        elapsed = time.perf_counter() - start
        print(result.report() if args.max_rows is None else
              "\n".join([f"== {result.name}: {result.description}",
                         result.to_table(max_rows=args.max_rows)]))
        print(f"\n[{name} completed in {elapsed:.1f}s at scale={args.scale}]\n")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
