"""Command-line entry point for the experiment harness.

Examples
--------
List experiments::

    fatpaths-experiment --list

Run one experiment at a given scale::

    fatpaths-experiment fig09 --scale small
    python -m repro.experiments.runner fig02 --scale tiny --seed 1

Run everything (tiny scale, for a quick end-to-end check)::

    fatpaths-experiment all --scale tiny

Fan an experiment grid across cores — the cross product of experiments, scales and
seeds runs as independent cells on a process pool.  With ``--jobs``, heavy
diversity experiments are additionally split into per-topology cells (disable with
``--no-split``) so the pool is not bounded by one slow cell::

    fatpaths-experiment fig06,tab05 --scales tiny,small --seeds 0,1,2 --jobs 8
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import List, Optional

from repro.experiments.common import Scale, registry, run_experiment
from repro.experiments.grid import (
    GridSummary,
    combine_cell_results,
    make_grid,
    run_experiment_grid,
    split_heavy_cells,
)


def _parse_seeds(spec: str) -> List[int]:
    """Seed list from a comma list ("0,1,2") or an inclusive range ("0:4")."""
    if ":" in spec:
        lo, hi = spec.split(":", 1)
        return list(range(int(lo), int(hi) + 1))
    return [int(s) for s in spec.split(",") if s != ""]


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point (``fatpaths-experiment``); returns the process exit code.

    Two modes share one invocation syntax:

    * **Report mode** (default): run each named experiment at ``--scale`` /
      ``--seed`` and print its full table.
    * **Grid mode** (any of ``--jobs`` / ``--scales`` / ``--seeds`` given): build
      the cross product of experiments x scales x seeds as independent cells and
      print a per-cell summary.  ``--seeds`` accepts a comma list (``0,1,2``) or an
      inclusive range (``0:4``); ``--scales`` sweeps scales.  ``--jobs N`` fans the
      cells over ``N`` worker processes (each with its own path cache), and by
      default also splits scenarios with a topology axis into per-topology cells —
      identical rows, finer scheduling (the simulation scenarios' batched
      ``simulate_many`` groups fan out with them); ``--no-split`` keeps
      whole-experiment cells.  ``--tables`` additionally prints the merged result
      tables (split cells recombined).  Cell failures are captured per cell and
      reported in the summary (exit code 1) instead of aborting the sweep.

    Grid mode runs on the fault-tolerant executor
    (:mod:`repro.experiments.resilient`): worker crashes respawn the pool,
    hung cells are killed at a scale-aware ``--cell-timeout``, transient errors
    retry up to ``--retries`` times with backoff, ``--journal PATH`` appends
    completed cells to a JSONL journal and ``--resume`` skips them on a rerun
    (bit-identical combined tables); ``--verbose-errors`` prints failed cells'
    remote tracebacks.  See ``docs/resilience.md``.
    """
    parser = argparse.ArgumentParser(
        prog="fatpaths-experiment",
        description="Regenerate the tables and figures of the FatPaths paper.")
    parser.add_argument("experiment", nargs="?", default=None,
                        help="experiment name(s), comma separated (e.g. fig09,tab04), or 'all'")
    parser.add_argument("--scale", default="tiny", choices=[s.value for s in Scale],
                        help="instance scale (default: tiny)")
    parser.add_argument("--seed", type=int, default=0, help="random seed")
    parser.add_argument("--list", action="store_true", help="list available experiments")
    parser.add_argument("--max-rows", type=int, default=None,
                        help="limit the number of printed rows")
    parser.add_argument("--jobs", type=int, default=None, metavar="N",
                        help="fan grid cells across N worker processes (default: serial)")
    parser.add_argument("--scales", default=None, metavar="S1,S2",
                        help="grid mode: comma-separated scales (overrides --scale)")
    parser.add_argument("--seeds", default=None, metavar="SPEC",
                        help="grid mode: comma list ('0,1,2') or inclusive range ('0:4') "
                             "of seeds (overrides --seed)")
    parser.add_argument("--split", action=argparse.BooleanOptionalAction, default=None,
                        help="grid mode: split scenarios with a topology axis into "
                             "per-topology cells (default: on when --jobs is given)")
    parser.add_argument("--tables", action="store_true",
                        help="grid mode: also print the merged result tables "
                             "(split cells recombined per experiment)")
    parser.add_argument("--journal", default=None, metavar="PATH",
                        help="grid mode: append completed cells to a JSONL journal "
                             "(atomic line writes; see docs/resilience.md)")
    parser.add_argument("--resume", action="store_true",
                        help="grid mode: skip cells already recorded in --journal "
                             "(resumed tables are bit-identical to an "
                             "uninterrupted run)")
    parser.add_argument("--verbose-errors", action="store_true",
                        help="print the full remote traceback of every failed cell "
                             "after the grid summary")
    parser.add_argument("--cell-timeout", type=float, default=None, metavar="SECONDS",
                        help="grid mode: per-cell wall-clock limit (default: "
                             "scale-aware; 0 disables)")
    parser.add_argument("--retries", type=int, default=None, metavar="N",
                        help="grid mode: max retries for transient cell failures "
                             "(default: 2)")
    args = parser.parse_args(argv)

    if args.list or args.experiment is None:
        from repro.experiments.scenario import scenario_spec

        print("available experiments:")
        for name in sorted(registry()):
            spec = scenario_spec(name)
            axis = f" [splittable: {'+'.join(spec.topology_names)}]" \
                if spec.splittable else ""
            print(f"  {name:8s} {spec.paper_reference:24s} {spec.title}{axis}")
        return 0

    names = (sorted(registry()) if args.experiment == "all"
             else [n for n in args.experiment.split(",") if n])
    unknown = [n for n in names if n not in registry()]
    if unknown:
        print(f"unknown experiment(s): {', '.join(unknown)}", file=sys.stderr)
        return 2

    # Grid mode (per-cell summary instead of full reports) when a sweep/parallel
    # flag is given, or when splitting is explicitly requested (per-topology cells
    # only exist in grid mode).  A lone --no-split is a no-op and keeps the full
    # report output; plain "all" or comma lists also print every table.
    grid_mode = (args.jobs is not None or args.scales is not None
                 or args.seeds is not None or args.split is True or args.tables
                 or args.journal is not None or args.resume)
    if args.resume and args.journal is None:
        print("--resume requires --journal PATH", file=sys.stderr)
        return 2
    if grid_mode:
        scales = ([s for s in args.scales.split(",") if s] if args.scales
                  else [args.scale])
        valid_scales = {s.value for s in Scale}
        bad_scales = [s for s in scales if s not in valid_scales]
        if bad_scales:
            print(f"invalid --scales value(s): {', '.join(bad_scales)} "
                  f"(choose from {', '.join(sorted(valid_scales))})", file=sys.stderr)
            return 2
        try:
            seeds = _parse_seeds(args.seeds) if args.seeds else [args.seed]
        except ValueError:
            print(f"invalid --seeds spec: {args.seeds!r} "
                  "(use a comma list '0,1,2' or an inclusive range '0:4')", file=sys.stderr)
            return 2
        cells = make_grid(names, scales=scales, seeds=seeds)
        split = args.split if args.split is not None else args.jobs is not None
        if split:
            cells = split_heavy_cells(cells)
        if not cells:
            print("grid is empty (no seeds selected)", file=sys.stderr)
            return 2
        policy = None
        if args.retries is not None:
            from repro.experiments.resilient import RetryPolicy

            policy = RetryPolicy(max_attempts=max(1, args.retries + 1))
        start = time.perf_counter()
        results = run_experiment_grid(cells, jobs=args.jobs, policy=policy,
                                      timeout=args.cell_timeout,
                                      journal=args.journal, resume=args.resume)
        elapsed = time.perf_counter() - start
        summary = GridSummary(results=results)
        print(summary.report())
        if args.verbose_errors:
            for r in results:
                if not r.ok and r.traceback:
                    print(f"\n-- traceback for {r.cell.label()}:\n{r.traceback}",
                          end="")
        if args.tables:
            for combined in combine_cell_results(results):
                print()
                print(combined.report())
        mode = f"{args.jobs} workers" if args.jobs and args.jobs > 1 else "serial"
        print(f"\n[{len(results)} cells completed in {elapsed:.1f}s ({mode})]")
        return 0 if summary.num_failed == 0 else 1

    for name in names:
        start = time.perf_counter()
        result = run_experiment(name, scale=args.scale, seed=args.seed)
        elapsed = time.perf_counter() - start
        print(result.report() if args.max_rows is None else
              "\n".join([f"== {result.name}: {result.description}",
                         result.to_table(max_rows=args.max_rows)]))
        print(f"\n[{name} completed in {elapsed:.1f}s at scale={args.scale}]\n")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
