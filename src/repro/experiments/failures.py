"""Failure/recovery scenario: degraded-mode routing under link outages.

The paper motivates layered routing by its ability to route *around* trouble in
low-diameter topologies (§II); this registry scenario exercises exactly that: a
random fraction of links fails mid-run and is restored later
(:func:`repro.sim.faults.sample_link_faults`), displaced flows are re-placed
through each stack's path selector, and the rows report both the usual
throughput/FCT metrics and the resilience counters (reroutes, stalls) the fault
machinery emits.  Adaptive multipathing should re-spread displaced flows over the
surviving candidates, while static hashing keeps colliding on them.

Every family draws its workload *and* its failed-link sample from its own
``(seed, family)`` stream, so the grid may fan this scenario into per-family cells
(split rows == unsplit rows).  The full fault model is documented in
``docs/resilience.md``.
"""

from __future__ import annotations

from repro.experiments.scenario import ScenarioContext, ScenarioSpec, SimSweep
from repro.experiments.simcommon import StackCell, build_stack, tail_and_mean_throughput
from repro.sim.faults import sample_link_faults
from repro.sim.simconfig import FlowSimConfig
from repro.topologies import comparable_configurations
from repro.traffic.flows import poisson_workload
from repro.traffic.patterns import random_permutation

KIB = 1024

#: Topology families this scenario iterates (per-family random streams; grid cells
#: may select a subset without changing rows).
TOPOLOGY_NAMES = ("SF", "DF", "HX3", "XP", "FT3")

#: Compared stacks, in row order.
STACKS = ("fatpaths", "ndp", "ecmp")


def _plan(ctx: ScenarioContext):
    size_class = ctx.scale.size_class()
    fractions = ctx.scale.pick((0.05,), (0.02, 0.08), (0.02, 0.05, 0.10))
    duration = ctx.scale.pick(0.004, 0.008, 0.012)
    arrival_rate = ctx.scale.pick(150.0, 200.0, 250.0)
    # flows must live long enough to *witness* the outage window, or no rerouting
    # ever happens: multi-MiB transfers overlap the fail/restore epochs
    flow_size = ctx.scale.pick(1024 * KIB, 2048 * KIB, 2048 * KIB)
    # the outage window sits inside the arrival interval: flows exist before the
    # failure, live through it, and keep arriving after the restore
    fail_time, restore_time = 0.35 * duration, 0.7 * duration
    configs = comparable_configurations(size_class, topologies=list(ctx.topologies),
                                        seed=ctx.seed)
    for topo_name, topo in configs.items():
        rng = ctx.rng(topo_name)
        pattern = random_permutation(topo.num_endpoints, rng).subsample(0.5, rng)
        workload = poisson_workload(pattern, arrival_rate, duration, rng=rng,
                                    fixed_size=flow_size)
        cells = []
        for fraction in fractions:
            schedule = sample_link_faults(topo, fraction, fail_time, restore_time,
                                          rng)
            failed = len(schedule.events) // 2   # fail + restore per sampled link
            for stack_name in STACKS:
                cells.append(StackCell(
                    stack=build_stack(topo, stack_name, seed=ctx.seed,
                                      routing_cache=ctx.routing_cache),
                    workload=workload, seed=ctx.seed,
                    config=FlowSimConfig(faults=schedule),
                    meta={"topology": topo_name, "stack": stack_name,
                          "fail_fraction": fraction, "failed_links": failed}))
        yield SimSweep.per_cell(topo, cells, _row)


def _row(cell: StackCell, result) -> dict:
    tail, mean = tail_and_mean_throughput(result)
    summary = result.summary(percentiles=(50, 99))
    return {
        **cell.meta,
        "flows": len(result),
        "reroutes": result.meta["reroutes"],
        "stalls": result.meta["stalls"],
        "throughput_mean_MiBs": round(mean, 2),
        "throughput_tail1_MiBs": round(tail, 2),
        "fct_p50_ms": round(summary["fct_p50"] * 1e3, 4),
        "fct_p99_ms": round(summary["fct_p99"] * 1e3, 4),
    }


SCENARIO = ScenarioSpec(
    name="failures",
    title="Link failures and recovery: rerouting quality per stack",
    paper_reference="§II (degraded operation motivates non-minimal layered routing)",
    plan=_plan,
    topology_names=TOPOLOGY_NAMES,
    base_columns=("topology", "stack", "fail_fraction", "failed_links", "flows",
                  "reroutes", "stalls", "throughput_mean_MiBs",
                  "throughput_tail1_MiBs", "fct_p50_ms", "fct_p99_ms"),
    notes=(
        "Expected shape: all stacks reroute the same displaced flows (the fault "
        "machinery is stack-independent), but adaptive multipathing re-spreads them "
        "over the surviving path diversity, so its post-failure tails degrade less "
        "than static ECMP hashing's.",
    ),
)

run = SCENARIO.runner()
