"""Shared infrastructure for the experiment modules.

* :class:`Scale` — how large an instance to run ("tiny" for CI/tests, "small" default
  for benchmarks, "medium"/"large" for closer-to-paper sizes).
* :class:`ExperimentResult` — a named set of result rows plus formatting helpers.
* :func:`registry` / :func:`run_experiment` — experiment discovery and dispatch.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, Iterable, List, Optional, Sequence

import numpy as np

from repro.topologies.configs import SizeClass


class Scale(str, Enum):
    """Execution scale of an experiment relative to the paper's instance sizes."""

    TINY = "tiny"       # seconds; used by the test suite
    SMALL = "small"     # tens of seconds; default for benchmarks
    MEDIUM = "medium"   # minutes; closest to the paper's N ~ 10k class

    def size_class(self) -> SizeClass:
        return {Scale.TINY: SizeClass.TINY, Scale.SMALL: SizeClass.SMALL,
                Scale.MEDIUM: SizeClass.MEDIUM}[self]

    def pick(self, tiny, small, medium):
        """Select a per-scale parameter value."""
        return {Scale.TINY: tiny, Scale.SMALL: small, Scale.MEDIUM: medium}[self]


@dataclass
class ExperimentResult:
    """Result of one experiment: tabular rows plus free-form metadata."""

    name: str
    description: str
    paper_reference: str
    rows: List[Dict[str, object]]
    notes: List[str] = field(default_factory=list)
    meta: Dict[str, object] = field(default_factory=dict)

    def columns(self) -> List[str]:
        cols: List[str] = []
        for row in self.rows:
            for key in row:
                if key not in cols:
                    cols.append(key)
        return cols

    def to_table(self, max_rows: Optional[int] = None) -> str:
        """Plain-text table of the result rows (what the CLI prints)."""
        rows = self.rows if max_rows is None else self.rows[:max_rows]
        cols = self.columns()
        if not rows:
            return "(no rows)"
        rendered = [[_fmt(row.get(c, "")) for c in cols] for row in rows]
        widths = [max(len(c), *(len(r[i]) for r in rendered)) for i, c in enumerate(cols)]
        header = "  ".join(c.ljust(w) for c, w in zip(cols, widths))
        sep = "  ".join("-" * w for w in widths)
        body = "\n".join("  ".join(v.ljust(w) for v, w in zip(r, widths)) for r in rendered)
        return "\n".join([header, sep, body])

    def report(self) -> str:
        lines = [f"== {self.name}: {self.description}",
                 f"   (reproduces {self.paper_reference})", ""]
        lines.append(self.to_table())
        if self.notes:
            lines.append("")
            lines.extend(f"note: {n}" for n in self.notes)
        return "\n".join(lines)

    def filter_rows(self, **criteria) -> List[Dict[str, object]]:
        """Rows matching all key=value criteria (convenience for tests)."""
        out = []
        for row in self.rows:
            if all(row.get(k) == v for k, v in criteria.items()):
                out.append(row)
        return out


def topology_rng(seed: int, name: str) -> np.random.Generator:
    """A deterministic per-(seed, topology-name) random generator.

    Experiments that iterate several topology families draw each family's samples
    from its own generator instead of one shared stream, so running a filtered
    subset of families (see ``topologies=`` below and the per-topology grid cells in
    :mod:`repro.experiments.grid`) produces rows identical to the full run.  The
    name is folded in via CRC32 — stable across processes, unlike ``hash()``.
    """
    return np.random.default_rng((int(seed), zlib.crc32(name.encode("utf-8"))))


def select_topologies(available: Iterable[str],
                      topologies: Optional[Sequence[str]]) -> List[str]:
    """The subset of ``available`` names selected by a ``topologies=`` filter.

    ``None`` selects everything (the default full run); unknown names raise so a
    mistyped grid cell fails loudly instead of silently producing no rows.
    """
    names = list(available)
    if topologies is None:
        return names
    wanted = [str(t) for t in topologies]
    unknown = [t for t in wanted if t not in names]
    if unknown:
        raise ValueError(f"unknown topology selection {unknown}; available: {names}")
    return [n for n in names if n in wanted]


def _fmt(value: object) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 0.01:
            return f"{value:.3e}"
        return f"{value:.4g}"
    return str(value)


def registry() -> Dict[str, str]:
    """All experiment names and their defining module paths.

    The table itself lives on the scenario registry
    (:data:`repro.experiments.scenario.SCENARIO_MODULES`); this facade keeps the
    historical import location working.
    """
    from repro.experiments.scenario import SCENARIO_MODULES

    return dict(SCENARIO_MODULES)


def run_experiment(name: str, scale: Scale | str = Scale.TINY, seed: int = 0,
                   **kwargs) -> ExperimentResult:
    """Run one experiment by name through the shared scenario pipeline."""
    from repro.experiments.scenario import run_scenario, scenario_spec

    return run_scenario(scenario_spec(name), scale=Scale(scale), seed=seed, **kwargs)
