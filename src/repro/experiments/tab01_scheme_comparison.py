"""Table I: support for path diversity across routing schemes.

A static (but checked) reproduction of the paper's feature comparison: for each scheme,
which of the seven path-diversity aspects (SP, NP, SM, MP, DP, ALB, AT) it supports.
FatPaths is the only scheme supporting all of them.
"""

from __future__ import annotations

from repro.experiments.scenario import ScenarioContext, ScenarioSpec
from repro.routing.comparison import FEATURES, feature_table, only_fully_supporting_scheme


def _plan(ctx: ScenarioContext):
    ctx.note(f"Aspects: {', '.join(FEATURES)} (see repro.routing.comparison for "
             "definitions).")
    ctx.note(f"Only scheme supporting every aspect: {only_fully_supporting_scheme()}.")
    yield from feature_table(sort_by_score=True)


SCENARIO = ScenarioSpec(
    name="tab01",
    title="Path-diversity feature support across routing schemes",
    paper_reference="Table I",
    plan=_plan,
    base_columns=("name",),
)

run = SCENARIO.runner()
