"""Table I: support for path diversity across routing schemes.

A static (but checked) reproduction of the paper's feature comparison: for each scheme,
which of the seven path-diversity aspects (SP, NP, SM, MP, DP, ALB, AT) it supports.
FatPaths is the only scheme supporting all of them.
"""

from __future__ import annotations

from repro.experiments.common import ExperimentResult, Scale
from repro.routing.comparison import FEATURES, feature_table, only_fully_supporting_scheme


def run(scale: Scale = Scale.TINY, seed: int = 0) -> ExperimentResult:
    rows = feature_table(sort_by_score=True)
    notes = [
        f"Aspects: {', '.join(FEATURES)} (see repro.routing.comparison for definitions).",
        f"Only scheme supporting every aspect: {only_fully_supporting_scheme()}.",
    ]
    return ExperimentResult(
        name="tab01",
        description="Path-diversity feature support across routing schemes",
        paper_reference="Table I",
        rows=rows,
        notes=notes,
        meta={"scale": str(scale)},
    )
