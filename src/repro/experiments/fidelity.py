"""Fidelity scenario: flow-level vs packet-level FCT agreement per stack.

The paper validates its flow-level methodology against packet simulation (the Fig. 15
methodology note: htsim/OMNeT++ packet runs back the flow-level sweeps).  This
registry scenario replays that check inside the repo: the same workload runs through
the flow-level engine (:func:`repro.sim.flowsim.simulate_workload`) and the
packet-level engine (:func:`repro.sim.packetsim.simulate_packets`), and each row
reports the FCT percentiles of both models plus their ratio and an agreement-band
verdict.  The two models are *different abstractions* — max-min fair rate sharing vs
queues, trimming and windows — so the pinned expectation is agreement within a small
constant factor (the bands below), not equality; the golden rows additionally pin
the exact ratios at tiny scale.

Every family draws its traffic from its own ``(seed, family)`` stream, so the grid
may fan this scenario into per-family cells (split rows == unsplit rows).
"""

from __future__ import annotations

from repro.experiments.scenario import ScenarioContext, ScenarioSpec, SimSweep
from repro.experiments.simcommon import StackCell, build_stack
from repro.sim.packetsim import simulate_packets
from repro.topologies import comparable_configurations
from repro.traffic.flows import uniform_size_workload
from repro.traffic.patterns import random_permutation

KIB = 1024

#: Topology families this scenario iterates (per-family random streams; grid cells
#: may select a subset without changing rows).
TOPOLOGY_NAMES = ("SF", "FT3")

#: Compared stacks, in row order.
STACKS = ("fatpaths", "ndp", "ecmp")

#: Accepted packet/flow FCT ratio per percentile: the models agree when the packet
#: simulation's percentile lands within these factors of the flow-level one.
P50_BAND = (0.3, 3.0)
P99_BAND = (0.3, 3.0)


def _plan(ctx: ScenarioContext):
    size_class = ctx.scale.size_class()
    flow_size = ctx.scale.pick(96 * KIB, 128 * KIB, 192 * KIB)
    fraction = ctx.scale.pick(0.2, 0.06, 0.02)
    configs = comparable_configurations(size_class, topologies=list(ctx.topologies),
                                        seed=ctx.seed)
    for topo_name, topo in configs.items():
        rng = ctx.rng(topo_name)
        pattern = random_permutation(topo.num_endpoints, rng).subsample(fraction, rng)
        workload = uniform_size_workload(pattern, flow_size)
        cells = [StackCell(stack=build_stack(topo, stack_name, seed=ctx.seed,
                                             routing_cache=ctx.routing_cache),
                           workload=workload, seed=ctx.seed,
                           meta={"topology": topo_name, "stack": stack_name})
                 for stack_name in STACKS]

        def aggregate(flow_results, topo=topo, cells=cells):
            for cell, flow_result in zip(cells, flow_results):
                stack = build_stack(topo, cell.meta["stack"], seed=ctx.seed,
                                    routing_cache=ctx.routing_cache)
                packet_result = simulate_packets(
                    topo, stack.routing, cell.workload, selector=stack.selector,
                    transport=stack.transport, seed=ctx.seed)
                yield _row(cell, flow_result, packet_result)

        yield SimSweep(topology=topo, cells=cells, aggregate=aggregate)


def _row(cell: StackCell, flow_result, packet_result) -> dict:
    flow = flow_result.summary(percentiles=(50, 99))
    packet = packet_result.summary(percentiles=(50, 99))
    p50_ratio = packet["fct_p50"] / flow["fct_p50"]
    p99_ratio = packet["fct_p99"] / flow["fct_p99"]
    return {
        **cell.meta,
        "flows": len(flow_result),
        "flow_fct_p50_ms": round(flow["fct_p50"] * 1e3, 4),
        "flow_fct_p99_ms": round(flow["fct_p99"] * 1e3, 4),
        "packet_fct_p50_ms": round(packet["fct_p50"] * 1e3, 4),
        "packet_fct_p99_ms": round(packet["fct_p99"] * 1e3, 4),
        "fct_p50_ratio": round(p50_ratio, 3),
        "fct_p99_ratio": round(p99_ratio, 3),
        "agree_p50": bool(P50_BAND[0] <= p50_ratio <= P50_BAND[1]),
        "agree_p99": bool(P99_BAND[0] <= p99_ratio <= P99_BAND[1]),
    }


SCENARIO = ScenarioSpec(
    name="fidelity",
    title="Flow-level vs packet-level FCT agreement per stack",
    paper_reference="— (methodology validation, Fig 15 spirit)",
    plan=_plan,
    topology_names=TOPOLOGY_NAMES,
    base_columns=("topology", "stack", "flows", "flow_fct_p50_ms", "flow_fct_p99_ms",
                  "packet_fct_p50_ms", "packet_fct_p99_ms", "fct_p50_ratio",
                  "fct_p99_ratio", "agree_p50", "agree_p99"),
    notes=(
        "The flow model allocates max-min fair rates with no queueing delay; the "
        "packet model adds serialisation, shallow queues and trimming — expect the "
        "packet FCTs to sit above the flow FCTs by a small factor, tighter at the "
        "median than at the tail.",
    ),
)

run = SCENARIO.runner()
