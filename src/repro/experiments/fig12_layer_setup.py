"""Figure 12: effect of the number of layers n and layer density rho on FCT.

For a complete graph (D=1), Slim Fly (D=2) and Dragonfly (D=3) the paper sweeps the
number of layers (n) and the fraction of edges per layer (rho) and reports the FCT of
long (1 MiB) flows: mean, 10% and 99% percentiles.  The shape to reproduce: around nine
layers suffice for SF/DF (more are needed for the clique); with more layers a higher
rho is better; both very low and very high rho hurt.
"""

from __future__ import annotations

import numpy as np

from repro.core.config import FatPathsConfig
from repro.core.fatpaths import FatPathsRouting
from repro.core.loadbalance import FlowletSelector
from repro.core.mapping import random_mapping
from repro.core.transport import ndp_transport
from repro.experiments.scenario import ScenarioContext, ScenarioSpec, SimSweep
from repro.experiments.simcommon import Stack, StackCell
from repro.topologies import build
from repro.traffic.flows import uniform_size_workload
from repro.traffic.patterns import adversarial_offdiagonal

MIB = 1024 * 1024

#: Topology families this scenario iterates (per-family random streams, so the grid
#: may fan it into per-family cells without changing rows).
TOPOLOGY_NAMES = ("CLIQUE", "SF", "DF")


def _plan(ctx: ScenarioContext):
    size_class = ctx.scale.size_class()
    layer_counts = ctx.scale.pick([2, 5, 9], [2, 5, 9, 16], [2, 5, 9, 16, 32])
    rhos = ctx.scale.pick([0.5, 0.8], [0.5, 0.7, 0.8], [0.5, 0.7, 0.8])
    fraction = ctx.scale.pick(0.25, 0.3, 0.3)
    for topo_name in ctx.active(TOPOLOGY_NAMES):
        topo = build(topo_name, size_class)
        rng = np.random.default_rng(ctx.seed)
        pattern = adversarial_offdiagonal(topo.num_endpoints, topo.concentration)
        pattern = pattern.subsample(fraction, rng)
        mapping = random_mapping(topo.num_endpoints, rng)
        workload = uniform_size_workload(pattern, 1 * MIB)
        # one batched engine sweep over the (n, rho) grid: every cell carries its own
        # routing (the quantity being swept) and a fresh selector, but all share the
        # topology's link space through the engine's caches
        cells = [StackCell(stack=Stack(f"fatpaths[n={n},rho={rho}]",
                                       FatPathsRouting(topo, FatPathsConfig(
                                           num_layers=n, rho=rho, seed=ctx.seed)),
                                       FlowletSelector(seed=ctx.seed), ndp_transport()),
                           workload=workload, mapping=mapping, seed=ctx.seed,
                           meta={"topology": topo_name, "n_layers": n, "rho": rho})
                 for n in layer_counts for rho in rhos]
        yield SimSweep.per_cell(topo, cells,
                                lambda c, r, seed=ctx.seed: _row(c, r, seed))


def _row(cell: StackCell, result, seed: int) -> dict:
    summary = result.summary(percentiles=(10, 50, 99))
    return {
        **cell.meta,
        "fct_mean_ms": round(summary["fct_mean"] * 1e3, 4),
        "fct_p10_ms": round(summary["fct_p10"] * 1e3, 4),
        "fct_p99_ms": round(summary["fct_p99"] * 1e3, 4),
        "mean_paths": round(cell.stack.routing.path_statistics(
            num_samples=40, rng=np.random.default_rng(seed)).mean_num_paths, 2),
    }


SCENARIO = ScenarioSpec(
    name="fig12",
    title="Effect of layer count n and density rho on long-flow FCT",
    paper_reference="Figure 12",
    plan=_plan,
    topology_names=TOPOLOGY_NAMES,
    base_columns=("topology", "n_layers", "rho", "fct_mean_ms", "fct_p10_ms",
                  "fct_p99_ms", "mean_paths"),
    notes=(
        "Paper finding (Fig 12): ~9 layers resolve most collisions for SF and DF; the "
        "D=1 clique needs more layers; with many layers a higher rho is better.",
    ),
)

run = SCENARIO.runner()
