"""Figure 12: effect of the number of layers n and layer density rho on FCT.

For a complete graph (D=1), Slim Fly (D=2) and Dragonfly (D=3) the paper sweeps the
number of layers (n) and the fraction of edges per layer (rho) and reports the FCT of
long (1 MiB) flows: mean, 10% and 99% percentiles.  The shape to reproduce: around nine
layers suffice for SF/DF (more are needed for the clique); with more layers a higher
rho is better; both very low and very high rho hurt.
"""

from __future__ import annotations

import numpy as np

from repro.core.config import FatPathsConfig
from repro.core.fatpaths import FatPathsRouting
from repro.core.loadbalance import FlowletSelector
from repro.core.mapping import random_mapping
from repro.core.transport import ndp_transport
from repro.experiments.common import ExperimentResult, Scale
from repro.sim.engine import SimCell, simulate_many
from repro.topologies import build
from repro.traffic.flows import uniform_size_workload
from repro.traffic.patterns import adversarial_offdiagonal

MIB = 1024 * 1024


def run(scale: Scale = Scale.TINY, seed: int = 0) -> ExperimentResult:
    scale = Scale(scale)
    size_class = scale.size_class()
    layer_counts = scale.pick([2, 5, 9], [2, 5, 9, 16], [2, 5, 9, 16, 32])
    rhos = scale.pick([0.5, 0.8], [0.5, 0.7, 0.8], [0.5, 0.7, 0.8])
    fraction = scale.pick(0.25, 0.3, 0.3)
    topologies = {"CLIQUE": build("CLIQUE", size_class),
                  "SF": build("SF", size_class),
                  "DF": build("DF", size_class)}
    rows = []
    for topo_name, topo in topologies.items():
        rng = np.random.default_rng(seed)
        pattern = adversarial_offdiagonal(topo.num_endpoints, topo.concentration)
        pattern = pattern.subsample(fraction, rng)
        mapping = random_mapping(topo.num_endpoints, rng)
        workload = uniform_size_workload(pattern, 1 * MIB)
        # one batched engine sweep over the (n, rho) grid: every cell carries its own
        # routing (the quantity being swept) and a fresh selector, but all share the
        # topology's link space through the engine's caches
        cells = [SimCell(topology=topo,
                         routing=FatPathsRouting(topo, FatPathsConfig(num_layers=n, rho=rho,
                                                                      seed=seed)),
                         workload=workload, selector=FlowletSelector(seed=seed),
                         transport=ndp_transport(), mapping=mapping, seed=seed,
                         meta={"n": n, "rho": rho})
                 for n in layer_counts for rho in rhos]
        for cell, result in zip(cells, simulate_many(cells)):
            summary = result.summary(percentiles=(10, 50, 99))
            rows.append({
                "topology": topo_name,
                "n_layers": cell.meta["n"],
                "rho": cell.meta["rho"],
                "fct_mean_ms": round(summary["fct_mean"] * 1e3, 4),
                "fct_p10_ms": round(summary["fct_p10"] * 1e3, 4),
                "fct_p99_ms": round(summary["fct_p99"] * 1e3, 4),
                "mean_paths": round(cell.routing.path_statistics(
                    num_samples=40, rng=np.random.default_rng(seed)).mean_num_paths, 2),
            })
    notes = [
        "Paper finding (Fig 12): ~9 layers resolve most collisions for SF and DF; the "
        "D=1 clique needs more layers; with many layers a higher rho is better.",
    ]
    return ExperimentResult(
        name="fig12",
        description="Effect of layer count n and density rho on long-flow FCT",
        paper_reference="Figure 12",
        rows=rows,
        notes=notes,
        meta={"scale": str(scale)},
    )
