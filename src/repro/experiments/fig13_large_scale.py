"""Figure 13: FatPaths on the largest networks (throughput vs flow size, FCT histograms).

The paper runs SF, SF-JF and DF at N ~ 80,000 (and SF/SF-JF at ~1,000,000) endpoints
and reports per-flow throughput vs flow size plus FCT histograms for 1 MiB flows.  The
shapes to reproduce: mean throughput decreases only slightly relative to the smaller
instances while tail FCTs stay tightly bounded; DF shows the worst tail (overlap on its
global links); flows on SF tend to finish slightly later than on SF-JF.

This experiment uses the largest size class that is practical for the pure-Python
simulator at each scale; EXPERIMENTS.md records the substitution.
"""

from __future__ import annotations

import numpy as np

from repro.core.mapping import random_mapping
from repro.experiments.common import ExperimentResult, Scale
from repro.experiments.simcommon import build_stack, simulate_stack, tail_and_mean_throughput
from repro.topologies import SizeClass, build, equivalent_jellyfish
from repro.traffic.flows import uniform_size_workload
from repro.traffic.patterns import random_permutation

KIB = 1024
MIB = 1024 * 1024


def run(scale: Scale = Scale.TINY, seed: int = 0) -> ExperimentResult:
    scale = Scale(scale)
    # "large" here means: the largest class that stays tractable at the chosen scale
    size_class = scale.pick(SizeClass.SMALL, SizeClass.SMALL, SizeClass.MEDIUM)
    flow_sizes = scale.pick([64 * KIB, 1 * MIB], [32 * KIB, 256 * KIB, 1 * MIB],
                            [32 * KIB, 256 * KIB, 1 * MIB, 2 * MIB])
    fraction = scale.pick(0.15, 0.2, 0.15)
    sf = build("SF", size_class, seed=seed)
    topologies = {
        "SF": sf,
        "SF-JF": equivalent_jellyfish(sf, seed=seed + 1),
        "DF": build("DF", size_class, seed=seed),
    }
    rows = []
    histograms = {}
    for topo_name, topo in topologies.items():
        stack = build_stack(topo, "fatpaths", seed=seed)
        rng = np.random.default_rng(seed)
        pattern = random_permutation(topo.num_endpoints, rng).subsample(fraction, rng)
        mapping = random_mapping(topo.num_endpoints, rng)
        for size in flow_sizes:
            workload = uniform_size_workload(pattern, size)
            result = simulate_stack(topo, stack, workload, mapping=mapping, seed=seed)
            tail, mean = tail_and_mean_throughput(result)
            summary = result.summary(percentiles=(50, 99))
            rows.append({
                "topology": topo_name,
                "N": topo.num_endpoints,
                "flow_size_KiB": size // KIB,
                "throughput_mean_MiBs": round(mean, 2),
                "fct_p50_ms": round(summary["fct_p50"] * 1e3, 4),
                "fct_p99_ms": round(summary["fct_p99"] * 1e3, 4),
            })
            if size == flow_sizes[-1]:
                histograms[topo_name] = np.histogram(result.fcts() * 1e3, bins=10)[0].tolist()
    notes = [
        "Paper finding (Fig 13): throughput decreases only slightly at large scale, tail "
        "FCT stays bounded; DF has the worst tail (global-link overlap); SF flows finish "
        "slightly later than SF-JF flows.",
        "Instance sizes are scaled down relative to the paper's 80k/1M endpoints "
        "(flow-level Python simulator); see DESIGN.md substitution table.",
    ]
    return ExperimentResult(
        name="fig13",
        description="FatPaths on the largest practical networks",
        paper_reference="Figure 13",
        rows=rows,
        notes=notes,
        meta={"scale": str(scale), "fct_histograms": histograms},
    )
