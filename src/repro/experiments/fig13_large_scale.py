"""Figure 13: FatPaths on the largest networks (throughput vs flow size, FCT histograms).

The paper runs SF, SF-JF and DF at N ~ 80,000 (and SF/SF-JF at ~1,000,000) endpoints
and reports per-flow throughput vs flow size plus FCT histograms for 1 MiB flows.  The
shapes to reproduce: mean throughput decreases only slightly relative to the smaller
instances while tail FCTs stay tightly bounded; DF shows the worst tail (overlap on its
global links); flows on SF tend to finish slightly later than on SF-JF.

This experiment uses the largest size class that is practical for the pure-Python
simulator at each scale; EXPERIMENTS.md records the substitution.
"""

from __future__ import annotations

import numpy as np

from repro.core.mapping import random_mapping
from repro.experiments.scenario import ScenarioContext, ScenarioSpec, SimSweep
from repro.experiments.simcommon import StackCell, build_stack, tail_and_mean_throughput
from repro.topologies import SizeClass, build, equivalent_jellyfish
from repro.traffic.flows import uniform_size_workload
from repro.traffic.patterns import random_permutation

KIB = 1024
MIB = 1024 * 1024

#: Topology families this scenario iterates (per-family random streams; SF-JF derives
#: deterministically from the SF build, so a filtered cell reproduces it alone).
TOPOLOGY_NAMES = ("SF", "SF-JF", "DF")


def _build(name: str, size_class: SizeClass, seed: int):
    """One family's topology (SF-JF is the Jellyfish twin of the SF build)."""
    if name == "SF-JF":
        return equivalent_jellyfish(build("SF", size_class, seed=seed), seed=seed + 1)
    return build(name, size_class, seed=seed)


def _plan(ctx: ScenarioContext):
    # "large" here means: the largest class that stays tractable at the chosen scale
    size_class = ctx.scale.pick(SizeClass.SMALL, SizeClass.SMALL, SizeClass.MEDIUM)
    flow_sizes = ctx.scale.pick([64 * KIB, 1 * MIB], [32 * KIB, 256 * KIB, 1 * MIB],
                                [32 * KIB, 256 * KIB, 1 * MIB, 2 * MIB])
    fraction = ctx.scale.pick(0.15, 0.2, 0.15)
    histograms = ctx.meta.setdefault("fct_histograms", {})
    for topo_name in ctx.active(TOPOLOGY_NAMES):
        topo = _build(topo_name, size_class, ctx.seed)
        stack = build_stack(topo, "fatpaths", seed=ctx.seed,
                            routing_cache=ctx.routing_cache)
        rng = np.random.default_rng(ctx.seed)
        pattern = random_permutation(topo.num_endpoints, rng).subsample(fraction, rng)
        mapping = random_mapping(topo.num_endpoints, rng)
        # one stack shared by all flow sizes: cells run in order, so the selector's
        # stream matches the sequential per-size simulation exactly
        cells = [StackCell(stack=stack, workload=uniform_size_workload(pattern, size),
                           mapping=mapping, seed=ctx.seed,
                           meta={"topology": topo_name, "N": topo.num_endpoints,
                                 "flow_size_KiB": size // KIB})
                 for size in flow_sizes]

        def aggregate(results, cells=cells, topo_name=topo_name):
            rows = []
            for cell, result in zip(cells, results):
                tail, mean = tail_and_mean_throughput(result)
                summary = result.summary(percentiles=(50, 99))
                rows.append({
                    **cell.meta,
                    "throughput_mean_MiBs": round(mean, 2),
                    "fct_p50_ms": round(summary["fct_p50"] * 1e3, 4),
                    "fct_p99_ms": round(summary["fct_p99"] * 1e3, 4),
                })
            # FCT histogram of the largest flow size (the paper's histogram panel)
            histograms[topo_name] = np.histogram(
                results[-1].fcts() * 1e3, bins=10)[0].tolist()
            return rows

        yield SimSweep(topology=topo, cells=cells, aggregate=aggregate)


SCENARIO = ScenarioSpec(
    name="fig13",
    title="FatPaths on the largest practical networks",
    paper_reference="Figure 13",
    plan=_plan,
    topology_names=TOPOLOGY_NAMES,
    base_columns=("topology", "N", "flow_size_KiB", "throughput_mean_MiBs",
                  "fct_p50_ms", "fct_p99_ms"),
    notes=(
        "Paper finding (Fig 13): throughput decreases only slightly at large scale, tail "
        "FCT stays bounded; DF has the worst tail (global-link overlap); SF flows finish "
        "slightly later than SF-JF flows.",
        "Instance sizes are scaled down relative to the paper's 80k/1M endpoints "
        "(flow-level Python simulator); see DESIGN.md substitution table.",
    ),
)

run = SCENARIO.runner()
