"""Persistent allocation state of the flow engine (`repro.sim.allocstate`).

Before this module, :class:`repro.sim.engine.FlowEngine` regathered the full pooled
(link, flow) incidence of the active set (``active_incidence()``) and reran max-min
progressive filling over *all* active flows at every arrival, completion and path
switch — even though one event perturbs only a handful of links.  This module makes
the per-event allocation cost proportional to what the event actually changed, in two
layers:

* :class:`AllocationState` — the pooled ``(entry_links, entry_slots)`` incidence kept
  **alive across events** and amended O(delta): each flow owns one fixed segment of a
  growing pool (sized for its longest candidate path, so path switches rewrite in
  place), arrivals append, completions and switch slack mark entries *dead* by
  pointing them at a sentinel slot.  Dead entries are float-exact no-ops for both the
  progressive fill (they carry no live load) and the link-utilisation ``bincount``
  (their weight is exactly ``0.0``), and live entries always sit in ascending
  arrival order — so :class:`FullAllocator`, which refills everything each event over
  this persistent state, is **bit-identical by construction** to the former
  rebuild-per-event engine (and therefore to the scalar reference simulator).
* :class:`IncrementalAllocator` — dirty-**component** refiltering behind
  ``FlowSimConfig(allocator="incremental")``.  Connected components of the link–flow
  incidence graph are tracked by a union-find over links, amended per event; on an
  event only the components touched by the delta are refilled and every untouched
  component keeps its cached rates and link utilisations.  Component-local filling is
  mathematically max-min exact (components share no links), but its float
  accumulation order differs from the global reference loop, so this allocator is
  opt-in: ``tests/sim/test_alloc_incremental.py`` pins rate agreement to tight
  tolerance, identical saturation sets and the bottleneck certificate on randomized
  event sequences.  Union-find cannot split, so a tracked component is always a
  *superset* (a union) of true components — refilling a union of true components is
  still exact — and the allocator falls back to a full fill plus an exact component
  rebuild (:func:`repro.sim.fairshare.incidence_components`) whenever accumulated
  merges/removals make the tracked partition stale or the dirty delta stops being
  local.

:class:`repro.sim.bottleneck.BottleneckAllocator` (``allocator="bottleneck"``) builds
on the same persistent state but decomposes by *saturated* links instead of
topological connectivity, which keeps per-event cost O(perturbation) even when the
incidence is one giant component — see that module's docstring.

:func:`_progressive_fill` (moved here from :mod:`repro.sim.engine`) is the shared
filling kernel; both allocators and the engine's tests import it from either module.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.sim.simconfig import ALLOCATORS  # noqa: F401  (single source of truth)

#: Smallest entry pool an :class:`AllocationState` keeps allocated.
_MIN_POOL = 256

#: Slot id that marks dead pool entries.  A fixed constant above every real slot
#: (rather than the historical ``num_flows``) so the slot arrays can :meth:`~AllocationState.grow`
#: under the streaming driver without renumbering dead entries; ``searchsorted``
#: relabelling still maps it past every active slot, exactly as before.
_DEAD_SLOT = 2 ** 62


# ------------------------------------------------------------ progressive filling
def _progressive_fill(entry_links: np.ndarray, entry_flows: np.ndarray, num_flows: int,
                      capacities: np.ndarray, epsilon: float = 1e-12,
                      unfixed: Optional[np.ndarray] = None,
                      compression: Optional[Tuple[np.ndarray, np.ndarray]] = None
                      ) -> np.ndarray:
    """Max-min fair progressive filling over a pooled (link, flow) incidence.

    Replicates :func:`repro.sim.fairshare.max_min_fair_rates` for the unweighted,
    no-empty-path case the simulator produces, operating on entry arrays instead of a
    freshly built ``scipy.sparse`` matrix.  Per-link loads are exact integer counts in
    float64 and every per-round scalar (increment, remaining capacity, saturation
    test) evaluates the same expressions as the reference, so the resulting rates are
    bit-identical regardless of flow ordering.

    ``unfixed`` optionally restricts the fill to a subset of flow indices (the
    persistent-state callers pass the active-slot mask; entries of other flows are
    *dead* and contribute no load).  It is copied, never mutated.  ``compression``
    optionally passes the precomputed ``np.unique(entry_links, return_inverse=True)``
    pair so callers that also need it (e.g. for utilisation scatter) pay it once.
    """
    rates = np.zeros(num_flows)
    if entry_links.size == 0:
        return rates
    # compress to the links that actually carry entries: idle links never have load,
    # so they can neither bound the increment nor saturate — dropping them changes
    # nothing (the per-link floats below are identical), it only shrinks every
    # per-round array from |links| to |touched links|
    if compression is None:
        touched, compressed = np.unique(entry_links, return_inverse=True)
    else:
        touched, compressed = compression
    remaining = capacities[touched].astype(np.float64)
    saturation_threshold = epsilon * remaining + epsilon   # constant across rounds
    unfixed = np.ones(num_flows, dtype=bool) if unfixed is None else unfixed.copy()
    # every productive round permanently saturates at least one touched link (its
    # live load then stays zero), so `touched.size` bounds the round count — the
    # compressed problem can never need `capacities.shape[0]` rounds
    for _ in range(touched.size + 1):
        if not unfixed.any():
            break
        live = unfixed[entry_flows]
        load = np.bincount(compressed[live], minlength=touched.size)
        active_links = load > 0
        if not active_links.any():
            break
        increment = float((remaining[active_links] / load[active_links]).min())
        if increment <= 0:
            increment = 0.0
        rates[unfixed] += increment
        remaining = remaining - load * increment
        saturated = active_links & (remaining <= saturation_threshold)
        if not saturated.any():
            # no link saturates (should not happen with finite capacities); freeze all
            break
        newly_fixed = np.zeros(num_flows, dtype=bool)
        newly_fixed[entry_flows[saturated[compressed] & live]] = True
        unfixed &= ~newly_fixed
    return rates


# ------------------------------------------------------------- persistent incidence
class AllocationState:
    """Pooled (link, slot) incidence of the active flows, amended across events.

    Flow *slots* are arrival positions ``0..num_flows-1``; the fixed out-of-range
    slot ``_DEAD_SLOT`` is the sentinel that marks dead pool entries.  Each flow
    owns one contiguous pool
    segment sized ``seg_cap[slot]`` (its longest candidate path plus the injection
    and ejection links), written ``[inject, path links..., eject]``; the live prefix
    has length ``seg_len[slot]`` and trailing slack entries are dead.  Segments are
    allocated in arrival order and never move (except under :meth:`compact`, which
    preserves ascending-slot order), so the pool's live entries are always exactly
    the flow-major active incidence the engine used to regather every event.
    """

    def __init__(self, num_flows: int, num_links: int) -> None:
        """Create an empty state for ``num_flows`` flow slots over ``num_links``."""
        self.num_flows = num_flows
        self.num_links = num_links
        self.sentinel = _DEAD_SLOT
        self.compactions = 0
        self.pool_links = np.zeros(_MIN_POOL, dtype=np.int64)
        self.pool_slots = np.full(_MIN_POOL, self.sentinel, dtype=np.int64)
        self.used = 0
        self.live = 0
        self.active_caps = 0
        self.seg_start = np.zeros(num_flows, dtype=np.int64)
        self.seg_cap = np.zeros(num_flows, dtype=np.int64)
        self.seg_len = np.zeros(num_flows, dtype=np.int64)
        #: ``unfixed`` initializer for slot-indexed fills (sentinel always False).
        self.active_mask = np.zeros(num_flows + 1, dtype=bool)

    def grow(self, num_flows: int) -> None:
        """Extend the slot arrays to ``num_flows`` slots (streaming ingestion).

        Dead pool entries keep the fixed sentinel, so only the per-slot arrays
        move; existing segments and the pool itself are untouched.
        """
        if num_flows <= self.num_flows:
            return
        seg_start = np.zeros(num_flows, dtype=np.int64)
        seg_cap = np.zeros(num_flows, dtype=np.int64)
        seg_len = np.zeros(num_flows, dtype=np.int64)
        mask = np.zeros(num_flows + 1, dtype=bool)
        n = self.num_flows
        seg_start[:n] = self.seg_start
        seg_cap[:n] = self.seg_cap
        seg_len[:n] = self.seg_len
        mask[:n] = self.active_mask[:n]
        self.seg_start, self.seg_cap, self.seg_len = seg_start, seg_cap, seg_len
        self.active_mask = mask
        self.num_flows = num_flows

    def entries(self) -> Tuple[np.ndarray, np.ndarray]:
        """The pool's (links, slots) views, live and dead entries interleaved."""
        return self.pool_links[:self.used], self.pool_slots[:self.used]

    def live_entries(self) -> Tuple[np.ndarray, np.ndarray]:
        """The live (links, slots) entries only (a filtering copy, O(used))."""
        links, slots = self.entries()
        alive = slots != self.sentinel
        return links[alive], slots[alive]

    def flow_links(self, slot: int) -> np.ndarray:
        """The current full link list of one active flow (a pool view)."""
        start = int(self.seg_start[slot])
        return self.pool_links[start:start + int(self.seg_len[slot])]

    def _grow(self, need: int) -> None:
        """Ensure pool capacity ``need`` (amortized doubling)."""
        if need <= self.pool_links.size:
            return
        size = max(need, 2 * self.pool_links.size)
        links = np.zeros(size, dtype=np.int64)
        slots = np.full(size, self.sentinel, dtype=np.int64)
        links[:self.used] = self.pool_links[:self.used]
        slots[:self.used] = self.pool_slots[:self.used]
        self.pool_links, self.pool_slots = links, slots

    def add(self, slot: int, links: np.ndarray, capacity: int) -> None:
        """Append ``slot``'s segment (``links`` live, ``capacity`` reserved)."""
        capacity = max(int(capacity), len(links))
        self._grow(self.used + capacity)
        start = self.used
        n = len(links)
        self.pool_links[start:start + n] = links
        self.pool_slots[start:start + n] = slot
        self.pool_links[start + n:start + capacity] = 0
        # trailing slack is pre-marked dead by _grow's sentinel fill
        self.seg_start[slot] = start
        self.seg_cap[slot] = capacity
        self.seg_len[slot] = n
        self.used += capacity
        self.live += n
        self.active_caps += capacity
        self.active_mask[slot] = True

    def remove(self, slot: int) -> None:
        """Mark ``slot``'s entries dead (its links stay readable until compaction)."""
        start = int(self.seg_start[slot])
        n = int(self.seg_len[slot])
        self.pool_slots[start:start + n] = self.sentinel
        self.live -= n
        self.active_caps -= int(self.seg_cap[slot])
        self.active_mask[slot] = False

    def replace_paths(self, slots: np.ndarray, inj: np.ndarray, ej: np.ndarray,
                      mid_pool: np.ndarray, mid_starts: np.ndarray,
                      mid_lens: np.ndarray) -> None:
        """Rewrite the segments of ``slots`` to ``[inj, mids..., ej]`` in place.

        ``mid_starts``/``mid_lens`` slice the candidate bank's ``mid_pool``; every
        new path fits because segment capacities cover the longest candidate.
        """
        slots = np.asarray(slots, dtype=np.int64)
        starts = self.seg_start[slots]
        caps = self.seg_cap[slots]
        old_lens = self.seg_len[slots]
        new_lens = mid_lens + 2
        mid_total = int(mid_lens.sum())
        if mid_total:
            offsets = np.cumsum(mid_lens) - mid_lens
            idx = np.arange(mid_total)
            src = np.repeat(mid_starts - offsets, mid_lens) + idx
            dst = np.repeat(starts + 1 - offsets, mid_lens) + idx
            self.pool_links[dst] = mid_pool[src]
            self.pool_slots[dst] = np.repeat(slots, mid_lens)
        self.pool_links[starts] = inj
        self.pool_slots[starts] = slots
        self.pool_links[starts + new_lens - 1] = ej
        self.pool_slots[starts + new_lens - 1] = slots
        slack = caps - new_lens
        slack_total = int(slack.sum())
        if slack_total:
            offsets = np.cumsum(slack) - slack
            idx = np.arange(slack_total)
            dst = np.repeat(starts + new_lens - offsets, slack) + idx
            self.pool_links[dst] = 0
            self.pool_slots[dst] = self.sentinel
        self.seg_len[slots] = new_lens
        self.live += int((new_lens - old_lens).sum())

    def compact(self, order: np.ndarray) -> None:
        """Rebuild the pool tightly over ``order`` (the ascending active slots)."""
        order = np.asarray(order, dtype=np.int64)
        caps = self.seg_cap[order]
        lens = self.seg_len[order]
        total = int(caps.sum())
        size = max(_MIN_POOL, total)
        links = np.zeros(size, dtype=np.int64)
        slots = np.full(size, self.sentinel, dtype=np.int64)
        new_starts = np.cumsum(caps) - caps
        n_live = int(lens.sum())
        if n_live:
            offsets = np.cumsum(lens) - lens
            idx = np.arange(n_live)
            src = np.repeat(self.seg_start[order] - offsets, lens) + idx
            dst = np.repeat(new_starts - offsets, lens) + idx
            links[dst] = self.pool_links[src]
            slots[dst] = np.repeat(order, lens)
        self.pool_links, self.pool_slots = links, slots
        self.seg_start[order] = new_starts
        self.used = total
        self.live = n_live
        self.compactions += 1

    def maybe_compact(self, order: np.ndarray) -> bool:
        """Compact when completed segments dominate the pool; True if compacted."""
        if self.used > _MIN_POOL and self.used > 2 * max(self.active_caps, 32):
            self.compact(order)
            return True
        return False


def _full_fill(state: AllocationState, capacities: np.ndarray, line_rate: float,
               active: np.ndarray, rates_out: np.ndarray) -> np.ndarray:
    """One full progressive fill over the persistent pool; returns link utilisation.

    Dead entries are exact no-ops: their sentinel slot maps to an always-fixed
    local index (no load) and their utilisation weight is exactly ``0.0``, so
    rates *and* the utilisation ``bincount`` are bit-identical to a fill over a
    freshly gathered active incidence.  Flow slots are relabelled to positions in
    ``active`` (ascending, so ``searchsorted`` is exact) to keep the per-round
    flow arrays O(|active|) instead of O(total flows).
    """
    entry_links, entry_slots = state.entries()
    local = np.searchsorted(active, entry_slots)   # sentinel > every slot -> active.size
    unfixed = np.ones(active.size + 1, dtype=bool)
    unfixed[active.size] = False
    fair = _progressive_fill(entry_links, local, active.size + 1, capacities,
                             unfixed=unfixed)
    np.minimum(fair, line_rate, out=fair)
    rates_out[active] = fair[:active.size]
    return np.bincount(entry_links, weights=fair[local] / capacities[entry_links],
                       minlength=capacities.shape[0])


# ------------------------------------------------------------------ full allocator
class FullAllocator:
    """Per-event full refill over the persistent incidence (reference-equivalent).

    This is the default ``FlowSimConfig(allocator="full")`` path: the incidence is
    amended O(delta) per event (the former per-event regather is gone) but every
    recompute still fills all active flows, which keeps it bit-identical to the
    scalar reference simulator.
    """

    name = "full"

    def __init__(self, state: AllocationState, capacities: np.ndarray,
                 line_rate: float) -> None:
        """Bind the allocator to one run's state, capacities and line rate."""
        self.state = state
        self.capacities = capacities
        self.line_rate = line_rate
        self.link_util = np.zeros(capacities.shape[0])
        self.counters = {"full_fills": 0}

    def stats(self) -> Dict[str, int]:
        """Snapshot of the per-run counters (every recompute is a full fill)."""
        return dict(self.counters)

    def add(self, slot: int, links: np.ndarray, capacity: int) -> None:
        """Record one arrival's segment."""
        self.state.add(slot, links, capacity)

    def remove(self, slot: int) -> None:
        """Record one completion."""
        self.state.remove(slot)

    def switch(self, slots: np.ndarray, inj: np.ndarray, ej: np.ndarray,
               mid_pool: np.ndarray, mid_starts: np.ndarray,
               mid_lens: np.ndarray) -> None:
        """Record path switches (in-place segment rewrites)."""
        self.state.replace_paths(slots, inj, ej, mid_pool, mid_starts, mid_lens)

    def idle(self) -> None:
        """No active flows: all utilisations are zero."""
        self.link_util[:] = 0.0

    def rebind(self, state: AllocationState, old_to_new: Dict[int, int]) -> None:
        """Adopt a renumbered state (the streaming driver's slot compaction).

        Link utilisations are per-link and unaffected by slot renumbering; the
        new state carries the accumulated compaction count forward.
        """
        state.compactions += self.state.compactions
        self.state = state

    def recompute(self, active: np.ndarray, rates_out: np.ndarray) -> np.ndarray:
        """Refill every active flow; returns the refilled slots (all of ``active``)."""
        self.state.maybe_compact(active)
        self.counters["full_fills"] += 1
        self.link_util = _full_fill(self.state, self.capacities, self.line_rate,
                                    active, rates_out)
        return active


# ----------------------------------------------------------- incremental allocator
class IncrementalAllocator:
    """Dirty-component refiltering over the persistent incidence (opt-in).

    A union-find over links tracks connected components of the link–flow incidence
    graph; arrivals/switches union their flow's links, completions mark the flow's
    component dirty.  :meth:`recompute` refills only the dirty components and keeps
    every untouched component's cached rates and utilisations.  Tracked components
    only ever merge (a superset of true components, which keeps component-local
    filling exact); the partition is re-derived exactly — together with a full
    fill — once accumulated removals/releases exceed ``max(16, |active| / 4)``
    ops, and a plain full fill (tracker untouched) covers any event whose dirty
    delta spans at least half the active set.
    """

    name = "incremental"

    def __init__(self, state: AllocationState, capacities: np.ndarray,
                 line_rate: float) -> None:
        """Bind the allocator to one run's state, capacities and line rate."""
        self.state = state
        self.capacities = capacities
        self.line_rate = line_rate
        num_links = capacities.shape[0]
        self.link_util = np.zeros(num_links)
        self._parent = np.arange(num_links, dtype=np.int64)
        self._members: Dict[int, List[int]] = {}     # root -> flow slots (may be stale)
        self._comp_links: Dict[int, List[int]] = {}  # root -> links owned by the root
        self._link_seen = np.zeros(num_links, dtype=bool)
        self._dirty: set = set()
        self._ops = 0
        self._needs_full = True
        self.counters = {"full_fills": 0, "rebuilds": 0, "component_refills": 0,
                         "refilled_flows": 0}

    def stats(self) -> Dict[str, int]:
        """Snapshot of the per-run counters.

        ``full_fills`` counts dense-delta fallbacks (tracker untouched),
        ``rebuilds`` the budgeted full fills with exact component re-derivation,
        ``component_refills``/``refilled_flows`` the local refills and the total
        flows they covered.
        """
        return dict(self.counters)

    # ------------------------------------------------------------- union-find
    def _find(self, link: int) -> int:
        """Root of ``link`` (path halving)."""
        parent = self._parent
        while parent[link] != link:
            parent[link] = parent[parent[link]]
            link = int(parent[link])
        return int(link)

    def _touch(self, link: int) -> int:
        """Register ``link`` on first sight as its own singleton root; return root."""
        if not self._link_seen[link]:
            self._link_seen[link] = True
            self._parent[link] = link
            self._comp_links[link] = [link]
            self._members.setdefault(link, [])
            return link
        return self._find(link)

    def _union(self, ra: int, rb: int) -> int:
        """Merge roots ``ra`` and ``rb`` (membership lists small-into-large)."""
        if ra == rb:
            return ra
        size_a = len(self._members.get(ra, ())) + len(self._comp_links[ra])
        size_b = len(self._members.get(rb, ())) + len(self._comp_links[rb])
        if size_a < size_b:
            ra, rb = rb, ra
        # merges are *exact*: a new entry really does connect the two components,
        # so unions never stale the tracked partition (only link releases do)
        self._parent[rb] = ra
        self._members.setdefault(ra, []).extend(self._members.pop(rb, []))
        self._comp_links[ra].extend(self._comp_links.pop(rb))
        return ra

    def _merge_links(self, links: np.ndarray) -> int:
        """Union all of one flow's links into a single root; return it."""
        root = self._touch(int(links[0]))
        for link in links[1:]:
            root = self._union(root, self._touch(int(link)))
        return root

    # ------------------------------------------------------------ event deltas
    def add(self, slot: int, links: np.ndarray, capacity: int) -> None:
        """Record one arrival: append its segment, join its links' components."""
        self.state.add(slot, links, capacity)
        root = self._merge_links(links)
        self._members.setdefault(root, []).append(slot)
        self._dirty.add(root)

    def remove(self, slot: int) -> None:
        """Record one completion: entries go dead, its component is dirty."""
        first = int(self.state.pool_links[int(self.state.seg_start[slot])])
        self.state.remove(slot)
        self._dirty.add(self._find(first))
        # removal can split the true component; only a rebuild re-separates it
        self._ops += 1

    def switch(self, slots: np.ndarray, inj: np.ndarray, ej: np.ndarray,
               mid_pool: np.ndarray, mid_starts: np.ndarray,
               mid_lens: np.ndarray) -> None:
        """Record path switches: rewrite segments, union new links into the roots."""
        self.state.replace_paths(slots, inj, ej, mid_pool, mid_starts, mid_lens)
        for slot in np.asarray(slots, dtype=np.int64):
            # the flow's old links already share its root; new middle links may
            # pull other components in (a merge) — all end up in one dirty root
            self._dirty.add(self._merge_links(self.state.flow_links(int(slot))))
            # the released old path may have been the only bridge inside the
            # tracked component: a potential split, repaired at the next rebuild
            self._ops += 1

    def idle(self) -> None:
        """No active flows: all utilisations are zero."""
        self.link_util[:] = 0.0

    def rebind(self, state: AllocationState, old_to_new: Dict[int, int]) -> None:
        """Adopt a renumbered state: remap the tracked components' member slots.

        The union-find itself is link-indexed and survives renumbering
        untouched; member slot lists are rewritten through ``old_to_new``
        (retired slots simply drop out — the same filtering
        :meth:`_refill_component` applies via ``active_mask``).
        """
        state.compactions += self.state.compactions
        self.state = state
        self._members = {root: [old_to_new[s] for s in slots if s in old_to_new]
                         for root, slots in self._members.items()}

    # -------------------------------------------------------------- recompute
    def recompute(self, active: np.ndarray, rates_out: np.ndarray) -> np.ndarray:
        """Refill the dirty components (or fall back to a full fill + rebuild).

        Returns the slots whose rates were recomputed this event — the engine
        re-evaluates congestion episodes exactly for those.
        """
        if active.size == 0:
            self.idle()
            return active
        # compaction moves segments, not (slot, link) structure: the tracker holds
        self.state.maybe_compact(active)
        dirty = {self._find(r) for r in self._dirty}
        self._dirty.clear()
        if self._needs_full or self._ops >= max(16, active.size // 4):
            # accumulated link releases may have split true components the
            # tracker still shows merged: full fill + exact re-derivation
            return self._rebuild(active, rates_out)
        dirty_members = sum(len(self._members.get(r, ())) for r in dirty)
        if 2 * dirty_members >= active.size:
            # the delta is not local — a full fill is no dearer than refilling
            # most components one by one (tracked partition stays untouched)
            self.counters["full_fills"] += 1
            self.link_util = _full_fill(self.state, self.capacities, self.line_rate,
                                        active, rates_out)
            return active
        refilled = [self._refill_component(root, rates_out) for root in dirty]
        refilled = [r for r in refilled if r.size]
        self.counters["component_refills"] += len(refilled)
        self.counters["refilled_flows"] += sum(r.size for r in refilled)
        if not refilled:
            return np.empty(0, dtype=np.int64)
        return np.concatenate(refilled)

    def _refill_component(self, root: int, rates_out: np.ndarray) -> np.ndarray:
        """Component-local progressive fill; updates rates and the root's links."""
        state = self.state
        alive = [s for s in self._members.get(root, ()) if state.active_mask[s]]
        self._members[root] = alive
        comp_links = np.asarray(self._comp_links[root], dtype=np.int64)
        if not alive:
            self.link_util[comp_links] = 0.0
            return np.empty(0, dtype=np.int64)
        if len(alive) == 1:
            # singleton component: the flow takes the minimum per-link capacity
            # share (exactly what one filling round computes; ``counts`` covers
            # paths that cross a link more than once), no incidence gather needed
            slot = alive[0]
            links, counts = np.unique(state.flow_links(slot), return_counts=True)
            caps = self.capacities[links]
            fair = min(float((caps / counts).min()), self.line_rate)
            rates_out[slot] = fair
            self.link_util[comp_links] = 0.0
            self.link_util[links] = counts * fair / caps
            return np.asarray(alive, dtype=np.int64)
        member = np.asarray(alive, dtype=np.int64)
        starts = state.seg_start[member]
        lens = state.seg_len[member]
        total = int(lens.sum())
        offsets = np.cumsum(lens) - lens
        idx = np.arange(total)
        src = np.repeat(starts - offsets, lens) + idx
        entry_links = state.pool_links[src]
        entry_flows = np.repeat(np.arange(member.size), lens)
        touched, compressed = np.unique(entry_links, return_inverse=True)
        fair = _progressive_fill(entry_links, entry_flows, member.size, self.capacities,
                                 compression=(touched, compressed))
        np.minimum(fair, self.line_rate, out=fair)
        rates_out[member] = fair
        util = np.bincount(compressed, weights=fair[entry_flows]
                           / self.capacities[entry_links], minlength=touched.size)
        self.link_util[comp_links] = 0.0
        self.link_util[touched] = util
        return member

    def _rebuild(self, active: np.ndarray, rates_out: np.ndarray) -> np.ndarray:
        """Full fill + exact component re-derivation from the live incidence."""
        self.link_util = _full_fill(self.state, self.capacities, self.line_rate,
                                    active, rates_out)
        from repro.sim.fairshare import incidence_components

        self._parent = np.arange(self.capacities.shape[0], dtype=np.int64)
        self._members = {}
        self._comp_links = {}
        self._link_seen[:] = False
        links, slots = self.state.live_entries()
        if links.size:
            _, touched, link_labels, flows, flow_labels = \
                incidence_components(links, slots)
            order = np.argsort(link_labels, kind="stable")
            link_groups = np.split(touched[order],
                                   np.flatnonzero(np.diff(link_labels[order])) + 1)
            forder = np.argsort(flow_labels, kind="stable")
            flow_groups = np.split(flows[forder],
                                   np.flatnonzero(np.diff(flow_labels[forder])) + 1)
            for group_links, group_flows in zip(link_groups, flow_groups):
                root = int(group_links[0])
                self._parent[group_links] = root
                self._link_seen[group_links] = True
                self._comp_links[root] = group_links.tolist()
                self._members[root] = group_flows.tolist()
        self._ops = 0
        self._needs_full = False
        self.counters["rebuilds"] += 1
        return active


def make_allocator(name: str, num_flows: int, num_links: int, capacities: np.ndarray,
                   line_rate: float):
    """Construct the named allocator over a fresh :class:`AllocationState`."""
    if name not in ALLOCATORS:
        raise ValueError(f"unknown allocator {name!r}; available: {ALLOCATORS}")
    state = AllocationState(num_flows, num_links)
    if name == "bottleneck":
        # imported lazily: repro.sim.bottleneck itself imports this module
        from repro.sim.bottleneck import BottleneckAllocator

        return BottleneckAllocator(state, capacities, line_rate)
    cls = FullAllocator if name == "full" else IncrementalAllocator
    return cls(state, capacities, line_rate)
