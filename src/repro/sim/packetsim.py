"""Packet-level simulation entry point: NDP-style purified transport (paper §III-C).

The packet simulator complements the flow-level model by exercising the *mechanisms*
of the purified transport directly, at packet granularity: output-queued links with
bounded queues, payload trimming into a priority header lane, receiver-driven
retransmits (NACKs) vs sender RTOs, a fixed ACK-clocked window, and per-flowlet path
selection with congestion-triggered layer changes.

Two implementations provide these semantics:

* :mod:`repro.sim.packetengine` — the vectorized structure-of-arrays engine (the
  default), built on the flow engine's shared :class:`~repro.sim.engine.LinkSpace`
  and pooled :class:`~repro.sim.engine.CandidateBank`;
* :mod:`repro.sim.packetsim_reference` — the original scalar event loop, preserved
  verbatim as the behavioural specification
  (``tests/sim/test_packetengine_equivalence.py`` pins the engine to it
  record-for-record, event trace included).

:func:`simulate_packets` dispatches between them via its ``engine`` parameter
(``"engine"`` by default, ``"reference"`` as the escape hatch), mirroring
:func:`repro.sim.flowsim.simulate_workload`.  This module also re-exports
:class:`PacketSimConfig` and :class:`PacketLevelSimulator` so existing imports keep
working.
"""

from __future__ import annotations

from typing import Optional

from repro.core.loadbalance import PathSelector
from repro.core.transport import TransportModel
from repro.sim.metrics import SimulationResult
from repro.sim.packetengine import PacketEngine
from repro.sim.packetsim_reference import PacketLevelSimulator
from repro.sim.simconfig import PacketSimConfig
from repro.topologies.base import Topology
from repro.traffic.flows import Workload

__all__ = [
    "PACKET_ENGINES",
    "PacketEngine",
    "PacketLevelSimulator",
    "PacketSimConfig",
    "simulate_packets",
]

#: Engine names accepted by :func:`simulate_packets`.
PACKET_ENGINES = ("engine", "reference")


def simulate_packets(topology: Topology, routing, workload: Workload,
                     selector: Optional[PathSelector] = None,
                     transport: Optional[TransportModel] = None,
                     config: Optional[PacketSimConfig] = None,
                     seed: int = 0, engine: str = "engine") -> SimulationResult:
    """Build a packet simulator and run one workload.

    ``engine`` selects the implementation: ``"engine"`` (default) runs the vectorized
    :class:`~repro.sim.packetengine.PacketEngine`, ``"reference"`` the scalar
    :class:`~repro.sim.packetsim_reference.PacketLevelSimulator`.  Both produce
    identical records, meta counters and event schedules.
    """
    if engine not in PACKET_ENGINES:
        raise ValueError(f"unknown engine {engine!r}; available: {PACKET_ENGINES}")
    sim_cls = PacketEngine if engine == "engine" else PacketLevelSimulator
    sim = sim_cls(topology, routing, selector=selector, transport=transport,
                  config=config, seed=seed)
    return sim.run(workload)
