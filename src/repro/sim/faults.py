"""Link/switch failure and recovery events for the flow-level simulators.

The paper motivates layered routing by its ability to route *around* trouble
(degraded operation on low-diameter topologies, §II); this module supplies the
dynamic-topology half of that story: a declarative :class:`FaultSchedule` attached
to :class:`repro.sim.simconfig.FlowSimConfig` drops and restores router-router
links mid-run.  Both simulator implementations consume the same resolved schedule
— the scalar reference (:mod:`repro.sim.reference`) is the pinned behavioural
specification, the vectorized engine (:mod:`repro.sim.engine`) mirrors it
record-for-record (``tests/sim/test_engine_equivalence.py``).

Fault semantics (the spec both implementations follow; see also
``docs/resilience.md``):

* Fault epochs are timestamps in the event loop.  A pending fault time wins ties
  against arrivals and completions, counts as an event, and — like every other
  event — is followed by path-switch evaluation and a rate recompute.
* Applying an epoch updates the failed-edge set, then *displaces* affected flows
  in ascending arrival order.  A flow whose current path survives is untouched.
* A displaced flow is re-placed through ``selector.initial_path`` over the
  *surviving* subset of its original candidates (positions map back to candidate
  indices), so the selector's RNG stream is consumed per flow in arrival order —
  exactly replayable by both implementations.
* When no candidate survives, the flow takes a deterministic *detour*: the
  minimal-index shortest path on the surviving graph
  (:func:`detour_router_path`, no RNG in path construction; the selector is still
  consulted with the single detour candidate, consistent with every other
  placement).  If source and target routers are disconnected the flow *stalls*
  (rate zero, excluded from allocation) until a restore revives it.
* Any placement that changes the flow's link list counts one path switch and
  resets the flowlet byte counter; entering a stall changes nothing.

Same-router flows use the synthetic empty-link candidate and are immune to
faults.  Restoring an edge that is not failed (or failing one twice, e.g. via an
overlapping switch outage) is an idempotent no-op.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Set, Tuple

import numpy as np

Edge = Tuple[int, int]

#: Actions a :class:`FaultEvent` may carry.
FAULT_ACTIONS = ("fail", "restore")

#: One resolved fault epoch: ``(time, ((action, edge), ...))``.
FaultEpoch = Tuple[float, Tuple[Tuple[str, Edge], ...]]


@dataclass(frozen=True)
class FaultEvent:
    """One scheduled failure or recovery of a link or a whole switch.

    Exactly one of ``link`` (an undirected router-router edge, any orientation)
    and ``switch`` (a router id whose incident edges all fail/restore together)
    must be given.  ``action`` is ``"fail"`` or ``"restore"``.
    """

    time: float
    action: str = "fail"
    link: Optional[Edge] = None
    switch: Optional[int] = None

    def __post_init__(self) -> None:
        """Validate and normalize (link edges are stored with ``u < v``)."""
        if not np.isfinite(self.time) or self.time < 0:
            raise ValueError(f"fault time must be finite and >= 0, got {self.time}")
        if self.action not in FAULT_ACTIONS:
            raise ValueError(
                f"unknown fault action {self.action!r}; available: {FAULT_ACTIONS}")
        if (self.link is None) == (self.switch is None):
            raise ValueError("exactly one of link= and switch= must be given")
        if self.link is not None:
            u, v = (int(self.link[0]), int(self.link[1]))
            if u == v:
                raise ValueError(f"fault link ({u},{v}) is a self loop")
            object.__setattr__(self, "link", (min(u, v), max(u, v)))


@dataclass(frozen=True)
class FaultSchedule:
    """An immutable, hashable sequence of :class:`FaultEvent` entries.

    Attach one via ``FlowSimConfig(faults=...)``.  Events need not be sorted;
    :meth:`resolve` orders them by time (stable) and groups same-time events into
    epochs against a concrete topology.
    """

    events: Tuple[FaultEvent, ...] = ()

    def __post_init__(self) -> None:
        """Coerce ``events`` to a tuple and type-check its members."""
        events = tuple(self.events)
        for event in events:
            if not isinstance(event, FaultEvent):
                raise TypeError(f"FaultSchedule events must be FaultEvent, got {event!r}")
        object.__setattr__(self, "events", events)

    def __bool__(self) -> bool:
        """True iff the schedule carries any events."""
        return bool(self.events)

    @classmethod
    def link_outage(cls, edges: Sequence[Edge], fail_time: float,
                    restore_time: Optional[float] = None) -> "FaultSchedule":
        """Fail ``edges`` at ``fail_time`` and (optionally) restore them later."""
        events = [FaultEvent(time=fail_time, action="fail", link=e) for e in edges]
        if restore_time is not None:
            if restore_time <= fail_time:
                raise ValueError("restore_time must come after fail_time")
            events += [FaultEvent(time=restore_time, action="restore", link=e)
                       for e in edges]
        return cls(events=tuple(events))

    @classmethod
    def switch_outage(cls, switches: Sequence[int], fail_time: float,
                      restore_time: Optional[float] = None) -> "FaultSchedule":
        """Fail every edge incident to ``switches`` at ``fail_time`` (and restore)."""
        events = [FaultEvent(time=fail_time, action="fail", switch=int(s))
                  for s in switches]
        if restore_time is not None:
            if restore_time <= fail_time:
                raise ValueError("restore_time must come after fail_time")
            events += [FaultEvent(time=restore_time, action="restore", switch=int(s))
                       for s in switches]
        return cls(events=tuple(events))

    def resolve(self, topology) -> List[FaultEpoch]:
        """Validate against ``topology`` and group events into per-time epochs.

        Switch events expand to all edges incident to the router (in sorted edge
        order); link events must reference existing topology edges.  Returns
        ``[(time, ((action, edge), ...)), ...]`` sorted by time.
        """
        edge_set = set(topology.edges)
        deltas: List[Tuple[float, str, Edge]] = []
        for event in self.events:
            if event.link is not None:
                if event.link not in edge_set:
                    raise ValueError(
                        f"fault link {event.link} is not an edge of {topology.name}")
                deltas.append((event.time, event.action, event.link))
            else:
                router = int(event.switch)
                if not 0 <= router < topology.num_routers:
                    raise ValueError(f"fault switch {router} out of range")
                incident = sorted(e for e in topology.edges if router in e)
                if not incident:
                    raise ValueError(f"fault switch {router} has no incident edges")
                deltas.extend((event.time, event.action, e) for e in incident)
        deltas.sort(key=lambda d: d[0])   # stable: same-time order preserved
        epochs: List[FaultEpoch] = []
        for time, action, edge in deltas:
            if epochs and epochs[-1][0] == time:
                epochs[-1] = (time, epochs[-1][1] + ((action, edge),))
            else:
                epochs.append((time, ((action, edge),)))
        return epochs


def sample_link_faults(topology, fraction: float, fail_time: float,
                       restore_time: Optional[float],
                       rng: np.random.Generator) -> FaultSchedule:
    """A schedule failing a random ``fraction`` of links (and restoring them).

    At least one link always fails; sampling is without replacement from the
    topology's normalized edge list, so the schedule is deterministic given
    ``rng`` — the property the ``failures`` scenario's per-family streams rely on.
    """
    if not 0 < fraction <= 1:
        raise ValueError("fraction must be in (0, 1]")
    count = max(1, int(round(fraction * topology.num_edges)))
    chosen = rng.choice(topology.num_edges, size=count, replace=False)
    edges = [topology.edges[int(i)] for i in sorted(chosen)]
    return FaultSchedule.link_outage(edges, fail_time, restore_time=restore_time)


# ----------------------------------------------------------------- detour paths
def bfs_distances_subgraph(adjacency: Sequence[Sequence[int]],
                           failed_edges: Set[Edge], source: int) -> List[int]:
    """Scalar BFS hop distances from ``source`` avoiding ``failed_edges``.

    The reference simulator's detour spec: plain level-synchronous BFS over the
    surviving subgraph (``-1`` unreachable).  BFS distances are unique, so the
    engine may substitute any correct recomputation — in particular the
    dirty-region-derived kernels of :mod:`repro.kernels.dirtyregion` — and the
    resulting detours are identical.
    """
    dist = [-1] * len(adjacency)
    dist[source] = 0
    frontier = [source]
    while frontier:
        nxt: List[int] = []
        for x in frontier:
            for y in adjacency[x]:
                edge = (x, y) if x < y else (y, x)
                if dist[y] < 0 and edge not in failed_edges:
                    dist[y] = dist[x] + 1
                    nxt.append(y)
        frontier = nxt
    return dist


def detour_router_path(adjacency: Sequence[Sequence[int]], failed_edges: Set[Edge],
                       source: int, target: int,
                       distances: Sequence[int]) -> Optional[List[int]]:
    """The deterministic detour: minimal-index shortest path on the surviving graph.

    ``distances`` are hop distances *from* ``source`` on the surviving subgraph
    (any correct computation — see :func:`bfs_distances_subgraph`).  The path is
    built by walking back from ``target``, at each step taking the lowest-indexed
    surviving neighbour one hop closer to the source; no RNG is involved, so both
    simulator implementations construct the identical path.  Returns ``None``
    when the routers are disconnected.
    """
    if source == target:
        return [source]
    if int(distances[target]) < 0:
        return None
    path = [target]
    x = target
    while x != source:
        want = int(distances[x]) - 1
        for y in adjacency[x]:       # ascending: the minimal-index predecessor
            edge = (x, y) if x < y else (y, x)
            if edge not in failed_edges and int(distances[y]) == want:
                path.append(y)
                x = y
                break
        else:   # pragma: no cover - distances guarantee a predecessor exists
            return None
    path.reverse()
    return path
