"""The scalar packet-level simulator: the trusted reference for :mod:`repro.sim.packetengine`.

This is the original per-event packet loop (previously the body of
:mod:`repro.sim.packetsim`), preserved verbatim as the behavioural specification —
one Python ``_Packet`` object per packet in flight, a string-keyed event heap, and
per-flow dataclass state.  The vectorized engine in
:mod:`repro.sim.packetengine` is pinned to it record-for-record by
``tests/sim/test_packetengine_equivalence.py``, mirroring how
:mod:`repro.sim.reference` preserves the scalar flow-level loop.

The simulator complements the flow-level model by exercising the *mechanisms* of the
purified transport (paper §III-C) directly, at packet granularity, on small networks:

* output-queued links with bounded queues and store-and-forward serialisation;
* **payload trimming**: when a queue is full, the packet's payload is dropped but its
  header is forwarded (in a priority queue), so the receiver always learns about the
  packet and can request a retransmission — no timeouts needed;
* **receiver-driven retransmits**: trimmed packets are NACKed and retransmitted with
  priority; for non-header-preserving transports (plain TCP) a full drop triggers a
  retransmission timeout instead;
* a fixed sender window (the paper uses an 8-packet congestion window with 9 KB jumbo
  frames) with new packets released by ACKs;
* per-flowlet path selection over the candidate paths of the routing scheme, with a
  layer change requested when the receiver observes trimmed packets (FatPaths
  adaptivity).

The intent is behavioural fidelity on tens of endpoints (queueing, trimming,
retransmission, path switching), not performance at datacenter scale — that is the
flow-level simulator's job.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.loadbalance import FlowletSelector, PathSelector
from repro.core.transport import TransportModel, ndp_transport
from repro.sim.metrics import FlowRecord, SimulationResult
from repro.sim.simconfig import PacketSimConfig
from repro.topologies.base import Topology
from repro.traffic.flows import Workload


@dataclass
class _Packet:
    flow_id: int
    seq: int
    size: int
    path_links: Tuple[int, ...]
    hop: int = 0
    trimmed: bool = False
    retransmit: bool = False


@dataclass
class _FlowState:
    flow_id: int
    source: int
    destination: int
    total_packets: int
    size_bytes: float
    start_time: float
    candidate_paths: List[List[int]]
    candidate_links: List[List[int]]
    path_lengths: List[int]
    path_index: int
    next_seq: int = 0
    in_flight: int = 0
    acked: set = field(default_factory=set)
    outstanding_nacks: int = 0
    packets_in_flowlet: int = 0
    num_switches: int = 0
    trims: int = 0
    drops: int = 0
    completion_time: Optional[float] = None


class _Link:
    """A directed link with a bounded output queue and a priority lane for headers."""

    __slots__ = ("rate", "latency", "queue_limit", "next_free", "queued", "trims", "drops")

    def __init__(self, rate_bytes: float, latency: float, queue_limit: int) -> None:
        self.rate = rate_bytes
        self.latency = latency
        self.queue_limit = queue_limit
        self.next_free = 0.0
        self.queued = 0
        self.trims = 0
        self.drops = 0

    def admit(self, now: float, priority: bool) -> bool:
        """True if a packet may be enqueued now (priority traffic bypasses the limit)."""
        return priority or self.queued < self.queue_limit

    def serialize(self, now: float, size_bytes: int) -> Tuple[float, float]:
        """Reserve the link: returns (departure time, arrival time at the other end)."""
        start = max(now, self.next_free)
        departure = start + size_bytes / self.rate
        self.next_free = departure
        return departure, departure + self.latency


class PacketLevelSimulator:
    """Packet-level simulation of one workload on one topology + routing scheme."""

    def __init__(self, topology: Topology, routing, selector: Optional[PathSelector] = None,
                 transport: Optional[TransportModel] = None,
                 config: Optional[PacketSimConfig] = None, seed: int = 0) -> None:
        self.topology = topology
        self.routing = routing
        self.selector = selector if selector is not None else FlowletSelector(seed=seed)
        self.transport = transport or ndp_transport()
        self.config = config or PacketSimConfig()
        self.rng = np.random.default_rng(seed)

        self._directed = topology.directed_edges()
        self._edge_index: Dict[Tuple[int, int], int] = {e: i for i, e in enumerate(self._directed)}
        n_router_links = len(self._directed)
        n_endpoints = topology.num_endpoints
        self._inject_base = n_router_links
        self._eject_base = n_router_links + n_endpoints
        rate_bytes = self.config.link_rate_bps / 8.0
        self.links: List[_Link] = [
            _Link(rate_bytes, self.config.per_hop_latency, self.config.queue_packets)
            for _ in range(n_router_links + 2 * n_endpoints)
        ]
        self._path_cache: Dict[Tuple[int, int], Tuple[List[List[int]], List[List[int]], List[int]]] = {}
        self._counter = itertools.count()

    # ------------------------------------------------------------------ paths
    def _candidates(self, source_router: int, target_router: int):
        key = (source_router, target_router)
        if key not in self._path_cache:
            paths = self.routing.router_paths(source_router, target_router)
            if not paths:
                raise ValueError(f"no path between routers {key}")
            links = [[self._edge_index[(u, v)] for u, v in zip(p, p[1:])] for p in paths]
            lengths = [max(1, len(p) - 1) for p in paths]
            self._path_cache[key] = (paths, links, lengths)
        return self._path_cache[key]

    def _flow_path_links(self, state: _FlowState, index: int) -> Tuple[int, ...]:
        inj = self._inject_base + state.source
        ej = self._eject_base + state.destination
        return tuple([inj] + state.candidate_links[index] + [ej])

    # -------------------------------------------------------------------- run
    def run(self, workload: Workload) -> SimulationResult:
        """Simulate ``workload`` packet by packet and return per-flow records."""
        cfg = self.config
        events: List[Tuple[float, int, str, object]] = []

        def push(time: float, kind: str, payload: object) -> None:
            """Enqueue one event, tie-broken by insertion order."""
            heapq.heappush(events, (time, next(self._counter), kind, payload))

        flows: Dict[int, _FlowState] = {}
        for flow in workload:
            rs = self.topology.router_of_endpoint(flow.source)
            rt = self.topology.router_of_endpoint(flow.destination)
            if rs == rt:
                paths, links, lengths = [[rs]], [[]], [1]
            else:
                paths, links, lengths = self._candidates(rs, rt)
            total_packets = max(1, int(np.ceil(flow.size_bytes / cfg.packet_bytes)))
            index = self.selector.initial_path(flow.flow_id, len(paths), path_lengths=lengths)
            flows[flow.flow_id] = _FlowState(
                flow_id=flow.flow_id, source=flow.source, destination=flow.destination,
                total_packets=total_packets, size_bytes=flow.size_bytes,
                start_time=flow.start_time, candidate_paths=paths, candidate_links=links,
                path_lengths=lengths, path_index=index)
            push(flow.start_time, "flow_start", flow.flow_id)

        processed = 0
        while events and processed < cfg.max_events:
            processed += 1
            now, _, kind, payload = heapq.heappop(events)
            if kind == "flow_start":
                state = flows[payload]
                for _ in range(min(cfg.window_packets, state.total_packets)):
                    self._send_next(now, state, push)
            elif kind == "hop":
                self._handle_hop(now, payload, flows, push)
            elif kind == "delivered":
                self._handle_delivery(now, payload, flows, push)
            elif kind == "ack":
                self._handle_ack(now, payload, flows, push)
            elif kind == "nack":
                self._handle_nack(now, payload, flows, push)
            elif kind == "timeout":
                self._handle_timeout(now, payload, flows, push)
            elif kind == "dequeue":
                self._handle_dequeue(payload)

        records = []
        for flow in workload:
            state = flows[flow.flow_id]
            completion = state.completion_time if state.completion_time is not None else now
            records.append(FlowRecord(
                flow_id=state.flow_id, source=state.source, destination=state.destination,
                size_bytes=state.size_bytes, start_time=state.start_time,
                completion_time=completion,
                path_hops=state.path_lengths[state.path_index],
                num_path_switches=state.num_switches,
                congestion_events=state.trims + state.drops))
        return SimulationResult(records=records, name=workload.name,
                                meta={"topology": self.topology.name,
                                      "transport": self.transport.name,
                                      "events": processed,
                                      "total_trims": sum(l.trims for l in self.links),
                                      "total_drops": sum(l.drops for l in self.links)})

    # ----------------------------------------------------------------- sending
    def _send_next(self, now: float, state: _FlowState, push, seq: Optional[int] = None,
                   retransmit: bool = False) -> None:
        if seq is None:
            if state.next_seq >= state.total_packets:
                return
            seq = state.next_seq
            state.next_seq += 1
        # flowlet accounting and path selection
        state.packets_in_flowlet += 1
        if state.packets_in_flowlet > self.config.flowlet_packets and len(state.candidate_paths) > 1:
            new_index = self.selector.next_path(state.flow_id, state.path_index,
                                                len(state.candidate_paths),
                                                path_lengths=state.path_lengths)
            if new_index != state.path_index:
                state.path_index = new_index
                state.num_switches += 1
            state.packets_in_flowlet = 0
        packet = _Packet(flow_id=state.flow_id, seq=seq, size=self.config.packet_bytes,
                         path_links=self._flow_path_links(state, state.path_index),
                         retransmit=retransmit)
        state.in_flight += 1
        push(now + self.config.host_latency, "hop", packet)
        if not self.transport.header_preserving and not retransmit:
            # schedule a retransmission timeout for lossy transports
            push(now + self.config.rto, "timeout", (state.flow_id, seq))

    # ------------------------------------------------------------------- hops
    def _handle_hop(self, now: float, packet: _Packet, flows: Dict[int, _FlowState], push) -> None:
        state = flows[packet.flow_id]
        if packet.hop >= len(packet.path_links):
            push(now, "delivered", packet)
            return
        link = self.links[packet.path_links[packet.hop]]
        priority = packet.trimmed or (packet.retransmit and self.transport.header_preserving)
        if not link.admit(now, priority):
            if self.transport.header_preserving:
                # trim the payload; the header continues with priority
                link.trims += 1
                state.trims += 1
                packet.trimmed = True
                packet.size = self.config.header_bytes
            else:
                # tail drop: the packet is lost, the sender's RTO will recover it
                link.drops += 1
                state.drops += 1
                state.in_flight = max(0, state.in_flight - 1)
                return
        size = self.config.header_bytes if packet.trimmed else packet.size
        link.queued += 1
        departure, arrival = link.serialize(now, size)
        packet.hop += 1
        # queue occupancy decreases when serialization finishes
        push(departure, "dequeue", packet.path_links[packet.hop - 1])
        push(arrival, "hop", packet)

    def _handle_delivery(self, now: float, packet: _Packet, flows: Dict[int, _FlowState], push) -> None:
        rtt_back = (len(packet.path_links) * self.config.per_hop_latency
                    + self.config.host_latency)
        if packet.trimmed:
            # receiver learned of the packet but not its payload: NACK (and ask for a
            # different layer — handled at retransmission time by the selector)
            push(now + rtt_back, "nack", (packet.flow_id, packet.seq))
        else:
            push(now + rtt_back, "ack", (packet.flow_id, packet.seq, now))

    def _handle_ack(self, now: float, payload, flows: Dict[int, _FlowState], push) -> None:
        flow_id, seq, delivered_at = payload
        state = flows[flow_id]
        if seq in state.acked:
            return
        state.acked.add(seq)
        state.in_flight = max(0, state.in_flight - 1)
        if len(state.acked) >= state.total_packets and state.completion_time is None:
            state.completion_time = delivered_at + self.config.host_latency
            return
        if state.next_seq < state.total_packets and state.in_flight < self.config.window_packets:
            self._send_next(now, state, push)

    def _handle_nack(self, now: float, payload, flows: Dict[int, _FlowState], push) -> None:
        flow_id, seq = payload
        state = flows[flow_id]
        if seq in state.acked:
            return
        state.in_flight = max(0, state.in_flight - 1)
        # FatPaths adaptivity: a trimmed packet signals congestion on the current layer;
        # the receiver requests a layer change for the retransmission.
        if len(state.candidate_paths) > 1:
            new_index = self.selector.next_path(
                state.flow_id, state.path_index, len(state.candidate_paths),
                congestion=lambda i: 1.0 if i == state.path_index else 0.0,
                path_lengths=state.path_lengths)
            if new_index != state.path_index:
                state.path_index = new_index
                state.num_switches += 1
                state.packets_in_flowlet = 0
        self._send_next(now, state, push, seq=seq, retransmit=True)

    def _handle_timeout(self, now: float, payload, flows: Dict[int, _FlowState], push) -> None:
        flow_id, seq = payload
        state = flows[flow_id]
        if seq in state.acked or state.completion_time is not None:
            return
        # conservatively retransmit (duplicate deliveries are filtered by `acked`)
        self._send_next(now, state, push, seq=seq, retransmit=True)

    # -------------------------------------------------------------- dispatcher
    def _handle_dequeue(self, link_index: int) -> None:
        link = self.links[link_index]
        link.queued = max(0, link.queued - 1)
