"""Simple queueing-model predictions for flow completion times (paper Figure 15).

The paper compares measured FCT distributions against "predictions from a simple
queueing model".  We use the M/G/1 processor-sharing (PS) model, the natural analytic
reference for fair-sharing transports: flows of size ``x`` arriving as a Poisson
process at load ``rho`` complete, in expectation, after

    E[FCT | size = x] = x / (C * (1 - rho))

where ``C`` is the bottleneck capacity.  Processor sharing is insensitive to the size
distribution beyond its mean, which makes it a robust reference for the heavy-tailed
pFabric workload.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np


def offered_load(arrival_rate_per_endpoint: float, mean_flow_size: float,
                 link_rate_bps: float) -> float:
    """Offered load ``rho`` of one endpoint link."""
    if arrival_rate_per_endpoint < 0 or mean_flow_size <= 0 or link_rate_bps <= 0:
        raise ValueError("rates and sizes must be positive")
    return arrival_rate_per_endpoint * mean_flow_size / (link_rate_bps / 8.0)


def mg1_ps_fct(flow_size: float, load: float, link_rate_bps: float,
               base_latency: float = 0.0) -> float:
    """Expected FCT of one flow of ``flow_size`` bytes under M/G/1-PS at ``load``."""
    if not 0 <= load < 1:
        raise ValueError("load must be in [0, 1)")
    if flow_size <= 0:
        raise ValueError("flow_size must be positive")
    service = flow_size / (link_rate_bps / 8.0)
    return base_latency + service / (1.0 - load)


def predict_fct_distribution(flow_sizes: Sequence[float], load: float, link_rate_bps: float,
                             base_latency: float = 0.0,
                             jitter: float = 0.3,
                             rng: Optional[np.random.Generator] = None) -> np.ndarray:
    """Predicted FCT samples for a set of flow sizes under the M/G/1-PS model.

    ``jitter`` adds a lognormal factor (sigma = jitter) around the conditional mean to
    approximate the spread of the PS response-time distribution; with ``jitter = 0`` the
    conditional means are returned directly.
    """
    rng = rng or np.random.default_rng(0)
    sizes = np.asarray(flow_sizes, dtype=float)
    means = np.array([mg1_ps_fct(s, load, link_rate_bps, base_latency) for s in sizes])
    if jitter <= 0:
        return means
    factors = rng.lognormal(mean=-0.5 * jitter**2, sigma=jitter, size=sizes.shape)
    return means * factors
