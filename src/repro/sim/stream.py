"""Streaming service layer over the vectorized flow engine (`repro.sim.stream`).

:class:`StreamSimulator` turns the batch :class:`repro.sim.engine.FlowEngine`
into a long-running service: arrivals come from an open-ended iterator (or
incremental :meth:`~StreamSimulator.push` / :meth:`~StreamSimulator.advance`
calls) instead of a fully materialised workload, completed flows retire to a
bounded ring (or a caller-supplied sink), and memory stays proportional to the
*active* flow set — the slot arrays, the persistent allocation pool and the
private candidate bank are periodically compacted
(:meth:`~repro.sim.engine.EngineCore.compact_slots`,
:meth:`~repro.sim.engine.EngineCore.reclaim_bank`) under a deterministic,
counter-driven policy.

Semantics are pinned to the batch engine: feeding a batch workload through the
streaming API chunk-by-chunk — compacting between chunks — produces
record-for-record identical results to
:func:`repro.sim.flowsim.simulate_workload` (``tests/sim/test_stream.py``).
The only driver-visible contract is arrival ordering: pushed flows must be
nondecreasing in start time and must not start before the current simulated
time, and the event loop must have processed every event *strictly before* an
arrival's start by the time it is ingested (which
:meth:`~StreamSimulator.run`'s pull-ahead loop and
:meth:`~StreamSimulator.advance`'s ``inclusive=False`` mode guarantee) — then
fault/arrival/completion tie-breaking is reproduced exactly.

Steady-state metrics are incremental: completions land in per-window
:class:`~repro.sim.metrics.ReservoirSample` FCT reservoirs (windows anchored at
time 0, ``StreamConfig.window`` wide, closed lazily when an event crosses the
boundary — long stalls skip empty windows in one jump) and, past the warm-up
windows, in :class:`~repro.sim.metrics.P2Quantile` estimators for the
steady-state p50/p90/p99.  Per-window link utilisation and wall-clock event
rates ride along in :class:`WindowStats` (the wall-clock fields are
informational and never enter scenario rows).

:meth:`~StreamSimulator.checkpoint` serializes the *full* mutable run state —
slot arrays, allocation state (both allocators), candidate-bank pool and
entries, selector RNG stream, fault runtime (failed set, survivor views,
dirty-region counters), window/estimator state and the metrics RNG — as a
version-tagged dict of plain values and numpy arrays.
:meth:`~StreamSimulator.restore` rebuilds it into a freshly constructed
simulator (the caller re-supplies the immutable stack: topology, routing,
selector, transport, config — validated against the checkpoint), after which
the run continues bit-identically to one that was never interrupted, including
selector RNG draws, fault bookkeeping counters and compaction points.
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass
from typing import Callable, Deque, Dict, Iterable, Optional, Sequence

import numpy as np

from repro.core.loadbalance import PathSelector
from repro.core.transport import TransportModel
from repro.sim.engine import CandidateBank, CandidateEntry, EngineCore, FlowEngine, \
    _SurvivorView
from repro.sim.metrics import FlowRecord, P2Quantile, ReservoirSample
from repro.sim.simconfig import FlowSimConfig, StreamConfig
from repro.topologies.base import Topology

#: Checkpoint format version written by :meth:`StreamSimulator.checkpoint`.
CHECKPOINT_VERSION = 1

#: Steady-state FCT percentiles tracked by the P² estimators.
STEADY_PERCENTILES = (50, 90, 99)

_INT64_FIELDS = ("fid", "src", "dst", "src_router", "dst_router", "inj_link",
                 "ej_link", "num_switches", "congestion_events", "path_index",
                 "num_candidates", "cand_start", "cand_len")
_FLOAT_FIELDS = ("start", "size", "remaining", "rate", "bytes_since_switch")


@dataclass
class WindowStats:
    """Closed metrics window of a streaming run.

    All fields except ``wall_seconds`` are pure functions of the simulated event
    sequence (deterministic, reproducible across checkpoint/restore);
    ``wall_seconds`` is informational wall-clock time and must never enter
    scenario rows or golden data.
    """

    index: int              # window number (start = index * window width)
    start: float            # simulated window start time
    end: float              # simulated window end time
    arrivals: int           # flows admitted during the window
    completions: int        # flows completed during the window
    events: int             # engine events processed during the window
    fct_p50: float          # window FCT median (reservoir; exact under capacity)
    fct_p99: float          # window FCT 99th percentile
    fct_mean: float         # exact window FCT mean
    util_mean: float        # mean link utilisation at window close
    util_max: float         # max link utilisation at window close
    active: int             # active flows at window close
    sampled: bool           # True if the reservoir overflowed (percentiles sampled)
    wall_seconds: float     # wall-clock time spent in the window (informational)

    @property
    def events_per_second(self) -> float:
        """Wall-clock event rate of the window (informational only)."""
        if self.wall_seconds <= 0:
            return float("nan")
        return self.events / self.wall_seconds


class StreamSimulator:
    """Open-ended flow simulation service with bounded memory.

    Construct with the same stack as :class:`~repro.sim.engine.FlowEngine`
    (topology, routing, selector, transport, :class:`FlowSimConfig`), then
    either hand an ordered flow iterable to :meth:`run`, or drive incrementally
    with :meth:`push` + :meth:`advance`.  Completed records go to
    ``record_sink`` if given, else to the bounded :attr:`records` ring.

    The candidate bank is private to the service (never the shared per-routing
    bank), because bank reclamation rewrites segment offsets in place.
    """

    def __init__(self, topology: Topology, routing,
                 selector: Optional[PathSelector] = None,
                 transport: Optional[TransportModel] = None,
                 config: Optional[FlowSimConfig] = None, seed: int = 0,
                 stream_config: Optional[StreamConfig] = None,
                 mapping: Optional[Sequence[int]] = None,
                 record_sink: Optional[Callable[[FlowRecord], None]] = None) -> None:
        """Bind a stack and start an empty service at simulated time zero."""
        self.engine = FlowEngine(topology, routing, selector=selector,
                                 transport=transport, config=config, seed=seed)
        # private bank: reclaim_bank rewrites offsets, which a shared bank of
        # other (batch) runs over the same routing object must never see
        self.engine.bank = CandidateBank(self.engine.links)
        self.stream_config = stream_config or StreamConfig()
        cfg = self.stream_config
        self._record_sink = record_sink
        self.records: Deque[FlowRecord] = deque(maxlen=cfg.record_ring)
        self.core = EngineCore(self.engine, cfg.initial_slots, self._on_complete)
        self.core.set_mapping(mapping)
        self._metrics_rng = np.random.default_rng([seed, 0x5EED])
        # ---- window accounting
        self.windows: Deque[WindowStats] = deque(maxlen=cfg.keep_windows)
        self.windows_emitted = 0
        self.windows_skipped = 0
        self._window_index = 0
        self._window_arrivals = 0
        self._window_completions = 0
        self._window_events = 0
        self._window_fct_sum = 0.0
        self._window_reservoir = ReservoirSample(cfg.reservoir, self._metrics_rng)
        self._window_wall = time.perf_counter()
        self._admit_snapshot = 0
        # ---- steady-state estimators (window >= warmup_windows)
        self._p2: Dict[int, P2Quantile] = {p: P2Quantile(p / 100.0)
                                           for p in STEADY_PERCENTILES}
        self._steady_count = 0
        self._steady_fct_sum = 0.0
        # ---- lifetime counters
        self._total_arrivals = 0
        self._total_completions = 0
        self._next_flow_id = 0
        self.peak_active = 0
        self.peak_slots = 0
        self.peak_pool = 0
        self.peak_bank = 0
        self.slot_compactions = 0
        self.bank_reclaimed = 0

    # ------------------------------------------------------------------ driving
    @property
    def now(self) -> float:
        """Current simulated time."""
        return float(self.core.now)

    @property
    def active_count(self) -> int:
        """Number of currently active (admitted, unfinished) flows."""
        return int(self.core.active.size)

    def push(self, flows: Iterable) -> int:
        """Ingest a chunk of flows; returns how many were accepted.

        Flows must be nondecreasing in start time — within the chunk and
        against everything pushed before — and must not start before the
        current simulated time (the service cannot insert events into its own
        past).  Flows with a negative ``flow_id`` get sequential service ids.
        Ingestion alone processes no events; call :meth:`advance`.
        """
        flows = list(flows)
        if not flows:
            return 0
        core = self.core
        for f in flows:
            if f.flow_id < 0:
                f.flow_id = self._next_flow_id
                self._next_flow_id += 1
            else:
                self._next_flow_id = max(self._next_flow_id, f.flow_id + 1)
        if flows[0].start_time < core.now:
            raise ValueError(
                "cannot push a flow starting before the current simulated time")
        core.ingest(flows)
        if core.count > self.peak_slots:
            self.peak_slots = int(core.count)
        return len(flows)

    def advance(self, until: float = np.inf, inclusive: bool = True) -> int:
        """Process events up to ``until``; returns the number processed.

        ``inclusive=False`` stops strictly before ``until`` — required when the
        caller is about to push flows starting exactly at ``until``, so that a
        completion or fault epoch tied with that arrival keeps the batch
        engine's tie-break order (fault >= arrival >= completion).  Simulated
        time only moves with events; ``until`` is a horizon, not a target.
        """
        core = self.core
        strict = not inclusive
        processed = 0
        while core.admit_idx < core.count or core.active.size:
            if not core.step(until, strict):
                break
            self._after_event()
            self._maybe_compact()
            processed += 1
        return processed

    def run(self, stream: Iterable, finish: bool = True) -> Optional[Dict[str, object]]:
        """Consume an ordered flow iterable, simulating as arrivals are pulled.

        The loop pulls one arrival group ahead: all flows sharing the next
        start time are ingested together (the batch engine admits every flow
        with ``start <= now`` in one arrival event), then events are processed
        strictly below the following group's start.  With ``finish`` (default)
        the remaining active flows are drained to completion afterwards and
        :meth:`summary` is returned; pass ``finish=False`` to keep the service
        open for more pushes.
        """
        it = iter(stream)
        pending = next(it, None)
        while pending is not None:
            t = pending.start_time
            batch = [pending]
            pending = next(it, None)
            while pending is not None and pending.start_time <= t:
                batch.append(pending)
                pending = next(it, None)
            self.push(batch)
            if pending is not None:
                self.advance(float(pending.start_time), inclusive=False)
        if finish:
            return self.finish()
        return None

    def finish(self) -> Dict[str, object]:
        """Drain all ingested flows to completion and close the open window."""
        self.advance()
        if self._window_events or self._window_arrivals or self._window_completions:
            self._close_window(self._window_index + 1)
        return self.summary()

    # --------------------------------------------------------------- compaction
    def _maybe_compact(self) -> None:
        """Compact when retired slots dominate (deterministic, counter-driven).

        Retired slots are admitted-and-finished arrival positions; once at
        least ``StreamConfig.min_retired`` of them have accumulated *and* they
        outnumber the live (active + pending) slots by
        ``StreamConfig.compact_factor``, the slot space is renumbered.  Both
        conditions are pure functions of the event sequence, so an uninterrupted
        run and its checkpoint-restored twin compact at identical points.
        """
        core = self.core
        retired = core.admit_idx - core.active.size
        if retired < self.stream_config.min_retired:
            return
        live = core.count - retired
        if retired >= self.stream_config.compact_factor * max(live, 1):
            self.compact()

    def compact(self) -> int:
        """Renumber live slots now; returns the number of retired slots dropped.

        Slot compaction rebuilds the allocation pool over the live slots; under
        fault schedules the private candidate bank is reclaimed too (detour
        segments of completed flows are the only per-flow bank growth).
        """
        core = self.core
        dropped = core.compact_slots()
        if dropped:
            self.slot_compactions += 1
            self._admit_snapshot = core.admit_idx
            if core.faults_on:
                self.bank_reclaimed += core.reclaim_bank()
        return dropped

    # ----------------------------------------------------------------- metrics
    def _roll_windows(self) -> None:
        """Close every window the current simulated time has moved past."""
        idx = int(self.core.now // self.stream_config.window)
        if idx > self._window_index:
            self._close_window(idx)

    def _close_window(self, new_index: int) -> None:
        """Emit the current window's stats and reset the accumulators."""
        cfg = self.stream_config
        width = cfg.window
        res = self._window_reservoir
        completions = self._window_completions
        core = self.core
        self.windows.append(WindowStats(
            index=self._window_index,
            start=self._window_index * width,
            end=(self._window_index + 1) * width,
            arrivals=self._window_arrivals,
            completions=completions,
            events=self._window_events,
            fct_p50=res.percentile(50.0),
            fct_p99=res.percentile(99.0),
            fct_mean=(self._window_fct_sum / completions) if completions
            else float("nan"),
            util_mean=float(core.alloc.link_util.mean()),
            util_max=float(core.alloc.link_util.max()),
            active=int(core.active.size),
            sampled=res.seen > len(res.items),
            wall_seconds=time.perf_counter() - self._window_wall))
        self.windows_emitted += 1
        self.windows_skipped += max(0, new_index - self._window_index - 1)
        self._window_index = new_index
        self._window_arrivals = 0
        self._window_completions = 0
        self._window_events = 0
        self._window_fct_sum = 0.0
        self._window_reservoir = ReservoirSample(cfg.reservoir, self._metrics_rng)
        self._window_wall = time.perf_counter()

    def _on_complete(self, record: FlowRecord) -> None:
        """Core sink: account one completion, then retire the record."""
        self._roll_windows()
        fct = record.fct
        self._window_completions += 1
        self._window_fct_sum += fct
        self._window_reservoir.add(fct)
        if self._window_index >= self.stream_config.warmup_windows:
            for est in self._p2.values():
                est.add(fct)
            self._steady_count += 1
            self._steady_fct_sum += fct
        self._total_completions += 1
        if self._record_sink is not None:
            self._record_sink(record)
        else:
            self.records.append(record)

    def _after_event(self) -> None:
        """Post-event accounting: window rollover, arrivals delta, peaks."""
        core = self.core
        self._roll_windows()
        admitted = core.admit_idx - self._admit_snapshot
        if admitted:
            self._window_arrivals += admitted
            self._total_arrivals += admitted
            self._admit_snapshot = core.admit_idx
        self._window_events += 1
        if core.active.size > self.peak_active:
            self.peak_active = int(core.active.size)
        if core.count > self.peak_slots:
            self.peak_slots = int(core.count)
        used = int(core.alloc.state.used)
        if used > self.peak_pool:
            self.peak_pool = used
        if core.bank.used > self.peak_bank:
            self.peak_bank = int(core.bank.used)

    def summary(self) -> Dict[str, object]:
        """Deterministic service summary (counters, steady-state FCTs, peaks)."""
        core = self.core
        steady = self._steady_count
        out: Dict[str, object] = {
            "now": float(core.now),
            "events": int(core.events),
            "arrivals": int(self._total_arrivals),
            "completions": int(self._total_completions),
            "active": int(core.active.size),
            "pending": int(core.count - core.admit_idx),
            "steady_completions": int(steady),
            "steady_fct_mean": (self._steady_fct_sum / steady) if steady
            else float("nan"),
            "windows": int(self.windows_emitted),
            "windows_skipped": int(self.windows_skipped),
            "peak_active": int(self.peak_active),
            "peak_slots": int(self.peak_slots),
            "peak_pool": int(self.peak_pool),
            "peak_bank": int(self.peak_bank),
            "slot_compactions": int(self.slot_compactions),
            "pool_compactions": int(core.alloc.state.compactions),
            "bank_reclaimed": int(self.bank_reclaimed),
        }
        for p in STEADY_PERCENTILES:
            out[f"steady_fct_p{p}"] = self._p2[p].value()
        return out

    def meta(self) -> Dict[str, object]:
        """The underlying engine run's meta dict (event/fault/allocator counters)."""
        return self.core.meta()

    @property
    def link_util(self) -> np.ndarray:
        """Current per-link utilisation (the allocator's live view)."""
        return self.core.alloc.link_util

    # ------------------------------------------------------- checkpoint/restore
    def checkpoint(self) -> Dict[str, object]:
        """Serialize the full mutable run state as a version-tagged dict.

        The payload holds plain Python values and numpy arrays (picklable as a
        unit): slot arrays, active set, allocation state, candidate-bank pool
        and entry segments (in insertion order), selector and metrics RNG
        states, fault runtime (failed set, registered pairs, survivor views,
        counters) and all window/estimator/peak accounting.  The immutable
        stack (topology, routing, selector, transport, configs) is *not*
        serialized — :meth:`restore` validates the caller re-supplied the same
        one via the ``stack`` descriptor.
        """
        core = self.core
        n = core.count
        arrays: Dict[str, np.ndarray] = {
            name: getattr(core, name)[:n].copy()
            for name in _INT64_FIELDS + _FLOAT_FIELDS}
        chk: Dict[str, object] = {
            "version": CHECKPOINT_VERSION,
            "stack": {
                "topology": core.topology.name,
                "num_endpoints": core.links.num_endpoints,
                "num_links": core.num_links,
                "routing": getattr(core.routing, "name",
                                   type(core.routing).__name__),
                "selector": type(core.selector).__name__,
                "transport": core.transport.name,
                "allocator": core.alloc.name,
                "config": core.config,
                "stream_config": self.stream_config,
            },
            "core": {
                "count": n,
                "admit_idx": int(core.admit_idx),
                "now": float(core.now),
                "events": int(core.events),
                "active": core.active.copy(),
                "arrays": arrays,
                "congested": core.currently_congested[:n].copy(),
                "fault_idx": int(core.fault_idx),
                "fault_count": int(core.fault_count),
                "reroutes": int(core.reroutes),
                "stall_count": int(core.stall_count),
                "order_dirty": bool(core.order_dirty),
            },
            "bank": self._checkpoint_bank(),
            "alloc": self._checkpoint_alloc(),
            "selector": self._checkpoint_selector(),
            "faults": self._checkpoint_faults(),
            "metrics": self._checkpoint_metrics(),
            "records": list(self.records),
        }
        if core.faults_on:
            chk["core"]["stalled"] = core.stalled[:n].copy()          # type: ignore[index]
            chk["core"]["on_detour"] = core.on_detour[:n].copy()      # type: ignore[index]
            chk["core"]["record_hops"] = core.record_hops[:n].copy()  # type: ignore[index]
        return chk

    def _checkpoint_bank(self) -> Dict[str, object]:
        """Bank pool prefix and entry segments, preserving insertion order."""
        bank = self.core.bank
        return {
            "pool": bank.pool[:bank.used].copy(),
            "used": int(bank.used),
            "entries": [(key, list(entry.lengths), entry.seg_start.copy(),
                         entry.seg_len.copy())
                        for key, entry in bank.entries.items()],
        }

    def _checkpoint_alloc(self) -> Dict[str, object]:
        """Allocation state (+ the refiltering allocator's tracker when in use)."""
        alloc = self.core.alloc
        state = alloc.state
        n = self.core.count
        out: Dict[str, object] = {
            "link_util": alloc.link_util.copy(),
            "pool_links": state.pool_links[:state.used].copy(),
            "pool_slots": state.pool_slots[:state.used].copy(),
            "used": int(state.used),
            "live": int(state.live),
            "active_caps": int(state.active_caps),
            "seg_start": state.seg_start[:n].copy(),
            "seg_cap": state.seg_cap[:n].copy(),
            "seg_len": state.seg_len[:n].copy(),
            "active_mask": state.active_mask[:n].copy(),
            "compactions": int(state.compactions),
            "counters": dict(alloc.counters),
        }
        if alloc.name == "bottleneck":
            alloc._grow_slots(n)
            out["bottleneck"] = {
                "link_load": alloc.link_load.copy(),
                "sat_mask": alloc.sat_mask.copy(),
                "link_level": alloc.link_level.copy(),
                "level_rates": alloc.level_rates.copy(),
                "flow_level": alloc.flow_level[:n].copy(),
                "rates": alloc._rates[:n].copy(),
                "members": [(link, list(slots))
                            for link, slots in alloc.link_members.items()],
                "dirty": sorted(alloc._dirty_slots),
                "seeds": sorted(alloc._seed_links),
                "ops": int(alloc._ops),
                "needs_rebuild": bool(alloc._needs_rebuild),
            }
        if alloc.name == "incremental":
            out["incremental"] = {
                "parent": alloc._parent.copy(),
                "members": [(root, list(slots))
                            for root, slots in alloc._members.items()],
                "comp_links": [(root, list(links))
                               for root, links in alloc._comp_links.items()],
                "link_seen": alloc._link_seen.copy(),
                "dirty": sorted(alloc._dirty),
                "ops": int(alloc._ops),
                "needs_full": bool(alloc._needs_full),
            }
        return out

    def _checkpoint_selector(self) -> Dict[str, object]:
        """Selector RNG stream state (selectors without RNG have none)."""
        selector = self.core.selector
        out: Dict[str, object] = {"type": type(selector).__name__}
        rng = getattr(selector, "_rng", None)
        if rng is not None:
            out["rng_state"] = rng.bit_generator.state
        return out

    def _checkpoint_faults(self) -> Optional[Dict[str, object]]:
        """Fault runtime: failed set, registered pairs, views, counters."""
        rt = self.core.faultrt
        if rt is None:
            return None
        return {
            "failed_edges": sorted(rt.failed_edges),
            "registered": sorted(rt.registered),
            "views": [(key, view.survivors.copy())
                      for key, view in rt.views.items()],
            "refilters": int(rt.refilters),
            "reuses": int(rt.reuses),
            "invalidated": int(rt.invalidated),
        }

    def _checkpoint_metrics(self) -> Dict[str, object]:
        """Window accounting, steady-state estimators and lifetime counters."""
        return {
            "rng_state": self._metrics_rng.bit_generator.state,
            "window_index": self._window_index,
            "window_arrivals": self._window_arrivals,
            "window_completions": self._window_completions,
            "window_events": self._window_events,
            "window_fct_sum": self._window_fct_sum,
            "reservoir": self._window_reservoir.state_dict(),
            "p2": {p: est.state_dict() for p, est in self._p2.items()},
            "steady_count": self._steady_count,
            "steady_fct_sum": self._steady_fct_sum,
            "total_arrivals": self._total_arrivals,
            "total_completions": self._total_completions,
            "next_flow_id": self._next_flow_id,
            "admit_snapshot": self._admit_snapshot,
            "windows": list(self.windows),
            "windows_emitted": self.windows_emitted,
            "windows_skipped": self.windows_skipped,
            "peak_active": self.peak_active,
            "peak_slots": self.peak_slots,
            "peak_pool": self.peak_pool,
            "peak_bank": self.peak_bank,
            "slot_compactions": self.slot_compactions,
            "bank_reclaimed": self.bank_reclaimed,
        }

    def restore(self, chk: Dict[str, object]) -> None:
        """Rebuild a :meth:`checkpoint` into this freshly constructed simulator.

        The caller constructs the simulator with the *same* immutable stack the
        checkpoint was taken under (topology, routing, selector, transport,
        configs, allocator) — mismatches raise ``ValueError`` — and the same
        ``record_sink`` choice.  After restoring, the run continues
        bit-identically to one that was never interrupted.
        """
        if chk.get("version") != CHECKPOINT_VERSION:
            raise ValueError(
                f"unsupported checkpoint version {chk.get('version')!r} "
                f"(this build writes version {CHECKPOINT_VERSION})")
        core = self.core
        if core.events or core.count:
            raise ValueError("restore requires a freshly constructed simulator")
        stack = chk["stack"]
        mine = {
            "topology": core.topology.name,
            "num_endpoints": core.links.num_endpoints,
            "num_links": core.num_links,
            "routing": getattr(core.routing, "name", type(core.routing).__name__),
            "selector": type(core.selector).__name__,
            "transport": core.transport.name,
            "allocator": core.alloc.name,
            "config": core.config,
            "stream_config": self.stream_config,
        }
        for key, value in mine.items():
            if stack[key] != value:
                raise ValueError(
                    f"checkpoint stack mismatch on {key!r}: "
                    f"saved {stack[key]!r}, constructed {value!r}")
        self._restore_bank(chk["bank"])
        self._restore_core(chk["core"])
        self._restore_alloc(chk["alloc"])
        self._restore_faults(chk["faults"])
        rng_state = chk["selector"].get("rng_state")
        if rng_state is not None:
            core.selector._rng.bit_generator.state = rng_state
        memo = getattr(core.selector, "_row_memo", None)
        if memo is not None:
            memo.clear()
        self._restore_metrics(chk["metrics"])
        self.records = deque(chk["records"], maxlen=self.stream_config.record_ring)

    def _restore_bank(self, saved: Dict[str, object]) -> None:
        """Rebuild the private bank's pool and entries (insertion order kept)."""
        bank = self.core.bank
        used = int(saved["used"])
        pool = np.zeros(max(256, used), dtype=np.int64)
        pool[:used] = saved["pool"]
        bank.pool = pool
        bank.used = used
        bank.entries.clear()
        for key, lengths, seg_start, seg_len in saved["entries"]:
            bank.entries[tuple(key)] = CandidateEntry(
                bank, list(lengths),
                np.asarray(seg_start, dtype=np.int64).copy(),
                np.asarray(seg_len, dtype=np.int64).copy())

    def _restore_core(self, saved: Dict[str, object]) -> None:
        """Rebuild the slot arrays, active set and event counters."""
        core = self.core
        n = int(saved["count"])
        core.ensure_capacity(n)
        arrays = saved["arrays"]
        for name in _INT64_FIELDS + _FLOAT_FIELDS:
            getattr(core, name)[:n] = arrays[name]
        core.currently_congested[:n] = saved["congested"]
        core.count = n
        core.admit_idx = int(saved["admit_idx"])
        core.now = float(saved["now"])
        core.events = int(saved["events"])
        core.active = np.asarray(saved["active"], dtype=np.int64).copy()
        core.fault_idx = int(saved["fault_idx"])
        core.fault_count = int(saved["fault_count"])
        core.reroutes = int(saved["reroutes"])
        core.stall_count = int(saved["stall_count"])
        core.order_dirty = bool(saved["order_dirty"])
        if core.faults_on:
            core.stalled[:n] = saved["stalled"]
            core.on_detour[:n] = saved["on_detour"]
            core.record_hops[:n] = saved["record_hops"]
        bank_entries = core.bank.entries
        for a in range(core.admit_idx):
            core.entries[a] = bank_entries[(int(core.src_router[a]),
                                            int(core.dst_router[a]))]

    def _restore_alloc(self, saved: Dict[str, object]) -> None:
        """Rebuild the allocation state (+ the refiltering tracker when in use)."""
        core = self.core
        alloc = core.alloc
        state = alloc.state
        n = core.count
        used = int(saved["used"])
        pool_links = np.zeros(max(256, used), dtype=np.int64)
        pool_links[:used] = saved["pool_links"]
        pool_slots = np.full(max(256, used), state.sentinel, dtype=np.int64)
        pool_slots[:used] = saved["pool_slots"]
        state.pool_links, state.pool_slots = pool_links, pool_slots
        state.used = used
        state.live = int(saved["live"])
        state.active_caps = int(saved["active_caps"])
        state.seg_start[:n] = saved["seg_start"]
        state.seg_cap[:n] = saved["seg_cap"]
        state.seg_len[:n] = saved["seg_len"]
        state.active_mask[:n] = saved["active_mask"]
        state.compactions = int(saved["compactions"])
        alloc.link_util = np.asarray(saved["link_util"], dtype=np.float64).copy()
        alloc.counters = dict(saved["counters"])   # type: ignore[arg-type]
        bot = saved.get("bottleneck")
        if bot is not None:
            alloc._grow_slots(n)
            alloc.link_load = np.asarray(bot["link_load"], dtype=np.float64).copy()
            alloc.sat_mask = np.asarray(bot["sat_mask"], dtype=bool).copy()
            alloc.link_level = np.asarray(bot["link_level"], dtype=np.int64).copy()
            alloc.level_rates = np.asarray(bot["level_rates"],
                                           dtype=np.float64).copy()
            alloc.flow_level[:n] = bot["flow_level"]
            alloc._rates[:n] = bot["rates"]
            alloc.link_members = {int(link): [int(s) for s in slots]
                                  for link, slots in bot["members"]}
            alloc._dirty_slots = {int(s) for s in bot["dirty"]}
            alloc._seed_links = {int(link) for link in bot["seeds"]}
            alloc._ops = int(bot["ops"])
            alloc._needs_rebuild = bool(bot["needs_rebuild"])
        inc = saved.get("incremental")
        if inc is not None:
            alloc._parent = np.asarray(inc["parent"], dtype=np.int64).copy()
            alloc._members = {int(root): [int(s) for s in slots]
                              for root, slots in inc["members"]}
            alloc._comp_links = {int(root): [int(link) for link in links]
                                 for root, links in inc["comp_links"]}
            alloc._link_seen = np.asarray(inc["link_seen"], dtype=bool).copy()
            alloc._dirty = {int(root) for root in inc["dirty"]}
            alloc._ops = int(inc["ops"])
            alloc._needs_full = bool(inc["needs_full"])

    def _restore_faults(self, saved: Optional[Dict[str, object]]) -> None:
        """Rebuild the fault runtime: failed set, registrations, views, counters."""
        rt = self.core.faultrt
        if saved is None or rt is None:
            if (saved is None) != (rt is None):
                raise ValueError("checkpoint fault schedule does not match config")
            return
        bank_entries = self.core.bank.entries
        rt.failed_edges = {tuple(edge) for edge in saved["failed_edges"]}
        edge_index = rt.links.edge_index
        rt.failed_links.clear()
        rt.failed_mask[:] = False
        for u, v in rt.failed_edges:
            a, b = edge_index[(u, v)], edge_index[(v, u)]
            rt.failed_links.add(a)
            rt.failed_links.add(b)
            rt.failed_mask[a] = rt.failed_mask[b] = True
        for key in saved["registered"]:
            rt._register(tuple(key), bank_entries[tuple(key)])
        rt.views = {tuple(key): _SurvivorView(
            bank_entries[tuple(key)],
            np.asarray(survivors, dtype=np.int64).copy())
            for key, survivors in saved["views"]}
        rt.refilters = int(saved["refilters"])
        rt.reuses = int(saved["reuses"])
        rt.invalidated = int(saved["invalidated"])

    def _restore_metrics(self, saved: Dict[str, object]) -> None:
        """Rebuild window accounting, estimators and lifetime counters."""
        cfg = self.stream_config
        self._metrics_rng.bit_generator.state = saved["rng_state"]
        self._window_index = int(saved["window_index"])
        self._window_arrivals = int(saved["window_arrivals"])
        self._window_completions = int(saved["window_completions"])
        self._window_events = int(saved["window_events"])
        self._window_fct_sum = float(saved["window_fct_sum"])
        self._window_reservoir = ReservoirSample(cfg.reservoir, self._metrics_rng)
        self._window_reservoir.load_state(saved["reservoir"])
        self._p2 = {}
        for p in STEADY_PERCENTILES:
            est = P2Quantile(p / 100.0)
            est.load_state(saved["p2"][p])
            self._p2[p] = est
        self._steady_count = int(saved["steady_count"])
        self._steady_fct_sum = float(saved["steady_fct_sum"])
        self._total_arrivals = int(saved["total_arrivals"])
        self._total_completions = int(saved["total_completions"])
        self._next_flow_id = int(saved["next_flow_id"])
        self._admit_snapshot = int(saved["admit_snapshot"])
        self.windows = deque(saved["windows"], maxlen=cfg.keep_windows)
        self.windows_emitted = int(saved["windows_emitted"])
        self.windows_skipped = int(saved["windows_skipped"])
        self.peak_active = int(saved["peak_active"])
        self.peak_slots = int(saved["peak_slots"])
        self.peak_pool = int(saved["peak_pool"])
        self.peak_bank = int(saved["peak_bank"])
        self.slot_compactions = int(saved["slot_compactions"])
        self.bank_reclaimed = int(saved["bank_reclaimed"])
        self._window_wall = time.perf_counter()


__all__ = ["CHECKPOINT_VERSION", "STEADY_PERCENTILES", "StreamConfig",
           "StreamSimulator", "WindowStats"]
