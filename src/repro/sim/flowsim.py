"""Event-driven flow-level network simulation (the htsim/OMNeT++ substitute, see DESIGN.md).

The simulator resolves, over time, how concurrently active flows share link bandwidth:

* every flow follows one of its candidate router paths (as provided by a routing
  scheme: FatPaths layers, ECMP minimal paths, ...), plus its endpoint injection and
  ejection links;
* active flows receive max-min fair rates (ideal congestion control), recomputed at
  every arrival/completion event;
* flows may switch candidate paths at flowlet boundaries or when their path is
  congested, according to the configured :class:`repro.core.loadbalance.PathSelector`;
* per-flow completion times additionally include per-hop latency and the transport
  model's startup/congestion delays (slow start for TCP, a single pull RTT for NDP).

This captures the effects the paper's evaluation hinges on — path collisions on
low-diversity topologies, the benefit of non-minimal multipathing, flowlet adaptivity
and transport differences — at a scale a pure-Python reproduction can run.

Two implementations provide these semantics:

* :mod:`repro.sim.engine` — the vectorized structure-of-arrays engine (the default);
* :mod:`repro.sim.reference` — the original scalar event loop, preserved as the
  behavioural specification (``tests/sim/test_engine_equivalence.py`` pins the engine
  to it record-for-record).

:func:`simulate_workload` dispatches between them via its ``engine`` parameter
(``"engine"`` by default, ``"reference"`` as the escape hatch); batched sweeps should
use :func:`repro.sim.engine.simulate_many`.  Orthogonally,
``FlowSimConfig(allocator=...)`` selects the engine's *rate allocator*: ``"full"``
(default, bit-identical to the reference) refills every active flow each event over
the persistent incidence, ``"incremental"`` refills only the incidence components
the event touched (:mod:`repro.sim.allocstate`; engine-only — the reference rejects
it).

Dynamic topologies: ``FlowSimConfig(faults=FaultSchedule(...))`` injects link/switch
failure and recovery events mid-run (:mod:`repro.sim.faults`; walkthrough in
``docs/resilience.md``) — displaced flows are re-placed through the path selector
with exact RNG-stream replay, and both implementations stay record-for-record
identical on faulted runs.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.core.loadbalance import PathSelector
from repro.core.transport import TransportModel
from repro.sim.engine import ENGINES, FlowEngine, SimCell, simulate_many
from repro.sim.faults import FaultEvent, FaultSchedule, sample_link_faults
from repro.sim.metrics import SimulationResult
from repro.sim.reference import FlowLevelSimulator
from repro.sim.simconfig import ALLOCATORS, FlowSimConfig, StreamConfig
from repro.sim.stream import StreamSimulator
from repro.topologies.base import Topology
from repro.traffic.flows import Workload

__all__ = [
    "ALLOCATORS",
    "ENGINES",
    "FaultEvent",
    "FaultSchedule",
    "FlowEngine",
    "FlowLevelSimulator",
    "FlowSimConfig",
    "SimCell",
    "StreamConfig",
    "StreamSimulator",
    "sample_link_faults",
    "simulate_many",
    "simulate_workload",
]


def simulate_workload(topology: Topology, routing, workload: Workload,
                      selector: Optional[PathSelector] = None,
                      transport: Optional[TransportModel] = None,
                      config: Optional[FlowSimConfig] = None,
                      mapping: Optional[Sequence[int]] = None,
                      seed: int = 0, drop_warmup: bool = False,
                      engine: str = "engine") -> SimulationResult:
    """Build a simulator, run one workload, optionally drop warm-up.

    ``engine`` selects the implementation: ``"engine"`` (default) runs the vectorized
    :class:`~repro.sim.engine.FlowEngine`, ``"reference"`` the scalar
    :class:`~repro.sim.reference.FlowLevelSimulator`.  Both produce identical records.
    ``config.allocator`` selects the engine's rate allocator (``"full"`` stays
    record-for-record identical to the reference; ``"incremental"`` is the
    dirty-component refiltering opt-in, rejected by ``engine="reference"``).
    """
    if engine not in ENGINES:
        raise ValueError(f"unknown engine {engine!r}; available: {ENGINES}")
    sim_cls = FlowEngine if engine == "engine" else FlowLevelSimulator
    sim = sim_cls(topology, routing, selector=selector, transport=transport,
                  config=config, seed=seed)
    result = sim.run(workload, mapping=mapping)
    if drop_warmup:
        result = result.warmup_filtered()
    return result
