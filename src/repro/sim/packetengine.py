"""The vectorized packet-level engine: SoA state over the flow engine's substrate.

:class:`PacketEngine` reimplements the scalar packet simulator
(:mod:`repro.sim.packetsim_reference`, the pinned behavioural spec) on the
architecture of :mod:`repro.sim.engine`:

* **Structure-of-arrays state.**  Packets, flows and links live in parallel arrays
  indexed by slot — no per-packet ``_Packet`` dataclass, no per-flow dict lookups,
  no per-link Python objects.  Packet slots carry (flow, seq, hop, trimmed,
  retransmit, resolved path, precomputed return latency); links carry
  (next_free, queued, trims, drops) in four flat lists.
* **Shared link space and pooled candidates.**  The directed-link index space comes
  from :func:`repro.sim.engine.link_space_for` (memoised on the topology's
  ``GraphKernels`` entry via ``aux``) and candidate router paths from the pooled
  :func:`repro.sim.engine.candidate_bank_for` — both shared with the flow engine
  and across runs, so repeated simulator construction stops re-resolving routing.
* **Batched event extraction.**  Events are 5-tuples ``(time, counter, kind, a,
  b)`` with integer kinds dispatched inline (no string compares, no per-event
  method calls).  The fast loop (:meth:`_run_fast`) exploits that three event
  classes are *monotone* in (time, counter) — sender hops fire at ``now + host``,
  deliveries at ``now``, timeouts at ``now + rto`` with constant offsets over a
  nondecreasing clock — so they live in O(1) FIFO deques instead of the heap,
  merged with the remaining heap events (flow starts, per-link hop arrivals,
  ACK/NACKs) by a head comparison per pop.  Dequeue events, which only ever
  decrement a link's queue occupancy, are not scheduled at all: each link keeps a
  FIFO of (time, counter) drains that is applied *lazily* right before the next
  admission check reads that link's occupancy, and flushed in bulk at the end of
  the run.  A ``max_events`` truncation is detected by the push counter crossing
  the budget; the run then restarts under :meth:`_run_strict` — the original
  single-heap loop, preserved verbatim as the in-engine shadow of the reference —
  with the selector RNG rewound, because truncation semantics depend on the exact
  pop sequence.
* **Selector calls through** :meth:`~repro.core.loadbalance.PathSelector.next_path_batch`
  with exact per-flow RNG replay: flowlet-boundary switches pass an all-zero load
  row (≡ the reference's ``congestion=None``) and NACK-triggered layer changes a
  one-hot row at the current path — the batched draws consume the selector's PCG
  stream exactly as the reference's scalar ``next_path`` calls do (the contract
  ``tests/core/test_loadbalance_transport_mapping.py`` pins).

What is pinned vs allowed to differ: event ordering (time, insertion counter),
selector RNG consumption, every float expression (serialisation ``size / rate``,
``max(now, next_free)``, return latencies) and therefore all records, meta counters
and per-link end states are **bit-identical** to the reference
(``tests/sim/test_packetengine_equivalence.py``).  Only the internal representation
differs — there is deliberately no behavioural knob on this class that the
reference lacks.

The optional ``trace`` attribute (a list, or ``None``) records every link
serialisation as ``(link_index, departure_time)`` — the equivalence suite patches
the reference's ``_Link.serialize`` to collect the same trace and compares them
element-for-element.
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.loadbalance import FlowletSelector, PathSelector
from repro.core.transport import TransportModel, ndp_transport
from repro.sim.engine import candidate_bank_for, link_space_for
from repro.sim.metrics import FlowRecord, SimulationResult
from repro.sim.simconfig import PacketSimConfig
from repro.topologies.base import Topology
from repro.traffic.flows import Workload

# Integer event kinds (heap entries are (time, counter, kind, a, b); the unique
# counter tie-breaks equal times, so kinds are never compared).
_START, _HOP, _DELIVERED, _ACK, _NACK, _TIMEOUT, _DEQ = range(7)

#: Head sentinel for the fast loop's queue merge: later than any real event.
_NEVER = (float("inf"), -1, 0, 0, 0)


class _EventBudgetExceeded(Exception):
    """Raised inside :meth:`PacketEngine._run_fast` when pushes cross ``max_events``."""


class PacketEngine:
    """Vectorized packet-level simulation of one workload (reference-identical)."""

    def __init__(self, topology: Topology, routing, selector: Optional[PathSelector] = None,
                 transport: Optional[TransportModel] = None,
                 config: Optional[PacketSimConfig] = None, seed: int = 0) -> None:
        """Mirror the reference constructor on the shared link space / candidate bank."""
        self.topology = topology
        self.routing = routing
        self.selector = selector if selector is not None else FlowletSelector(seed=seed)
        self.transport = transport or ndp_transport()
        self.config = config or PacketSimConfig()
        self.rng = np.random.default_rng(seed)
        self.links = link_space_for(topology)
        self.bank = candidate_bank_for(routing, self.links)
        #: Optional serialisation trace hook: set to a list to record
        #: ``(link_index, departure_time)`` per serialisation.
        self.trace: Optional[List[Tuple[int, float]]] = None
        #: Post-run invariant counters (see :meth:`run`), for the property tests.
        self.last_stats: Optional[dict] = None
        #: Post-run per-link end state (next_free/queued/trims/drops lists).
        self.final_link_state: Optional[dict] = None
        # (n_arr, lengths_row, loads_row, n) selector batch rows per candidate entry
        self._sel_rows: Dict[int, Tuple[np.ndarray, np.ndarray, np.ndarray, int]] = {}

    # -------------------------------------------------------------------- run
    def run(self, workload: Workload) -> SimulationResult:
        """Simulate ``workload`` packet by packet; records match the scalar reference.

        Runs the deque-merged fast loop; if the event budget (``max_events``) is
        exceeded — which the fast loop cannot truncate exactly, because lazily
        applied dequeues never surface as pops — the selector RNG is rewound to
        this call's entry state and the run repeats under the strict single-heap
        loop, which reproduces the reference's truncation pop-for-pop.

        Besides the :class:`~repro.sim.metrics.SimulationResult`, the run leaves
        ``self.last_stats`` holding invariant counters the scalar loop never
        tracked: the high-water queue occupancy over non-priority admissions
        (``max_queued``), the number of priority enqueues past a full queue
        (``priority_bypass``) and the per-flow in-flight high-water marks
        (``max_in_flight``).
        """
        rng = getattr(self.selector, "_rng", None)
        rng_state = rng.bit_generator.state if rng is not None else None
        trace_len = len(self.trace) if self.trace is not None else 0
        try:
            return self._run_fast(workload)
        except _EventBudgetExceeded:
            if rng is not None:
                rng.bit_generator.state = rng_state
            if self.trace is not None:
                del self.trace[trace_len:]
            return self._run_strict(workload)

    # -------------------------------------------------- shared setup helpers
    def _setup(self, workload: Workload, slim: bool = False):
        """Common SoA setup: flow state, start events and the resolved candidate pool.

        ``slim=True`` pushes 4-tuple start events (time, counter, kind, flow) for
        the fast loop; the strict loop keeps the uniform 5-tuple layout.
        """
        cfg = self.config
        topology = self.topology
        routing = self.routing
        bank = self.bank
        selector = self.selector

        flows_list = list(workload)
        nflows = len(flows_list)
        if nflows:
            sizes = np.fromiter((f.size_bytes for f in flows_list), dtype=np.float64,
                                count=nflows)
            totals = np.maximum(1, np.ceil(sizes / cfg.packet_bytes)).astype(np.int64)
        else:
            totals = np.zeros(0, dtype=np.int64)

        f_entry = []                       # pooled CandidateEntry per flow
        f_path = [0] * nflows              # current candidate index
        f_idarr: List[np.ndarray] = []     # single-row flow-id array for batch calls
        events: List[Tuple[float, int, int, int, int]] = []
        counter = 0
        for fs, flow in enumerate(flows_list):
            rs = topology.router_of_endpoint(flow.source)
            rt = topology.router_of_endpoint(flow.destination)
            entry = bank.entry(routing, rs, rt)
            f_entry.append(entry)
            f_path[fs] = selector.initial_path(flow.flow_id, entry.num_candidates,
                                               path_lengths=entry.lengths)
            f_idarr.append(np.array([flow.flow_id], dtype=np.int64))
            if slim:
                heapq.heappush(events, (flow.start_time, counter, _START, fs))
            else:
                heapq.heappush(events, (flow.start_time, counter, _START, fs, 0))
            counter += 1
        # bind the candidate pool only now: resolving entries above may have grown
        # (reallocated) the bank's backing array
        pool = bank.pool
        return flows_list, totals, f_entry, f_path, f_idarr, events, counter, pool

    def _pick_next(self, fs: int, congested: bool, f_entry, f_path, f_idarr,
                   cur_buf: np.ndarray) -> int:
        """One single-row ``next_path_batch`` call (RNG ≡ a scalar ``next_path``)."""
        entry = f_entry[fs]
        sel_rows = self._sel_rows
        rows = sel_rows.get(id(entry))
        if rows is None:
            n = entry.num_candidates
            rows = (np.array([n], dtype=np.int64),
                    np.asarray([entry.lengths], dtype=np.float64),
                    np.zeros((1, n)), n)
            sel_rows[id(entry)] = rows
        n_arr, lens_row, loads_row, _ = rows
        cur = f_path[fs]
        if congested:
            loads_row[0, cur] = 1.0
        cur_buf[0] = cur
        new = int(self.selector.next_path_batch(f_idarr[fs], cur_buf, n_arr,
                                                loads_row, lens_row)[0])
        if congested:
            loads_row[0, cur] = 0.0
        return new

    # --------------------------------------------------------- the fast loop
    def _run_fast(self, workload: Workload) -> SimulationResult:
        """Deque-merged event loop: monotone sources stay FIFO, dequeues apply lazily.

        Raises :class:`_EventBudgetExceeded` as soon as the push counter crosses
        ``max_events`` (the reference truncates whenever pushes outnumber the
        budget, since every pushed event is eventually popped).
        """
        cfg = self.config
        selector = self.selector
        space = self.links
        topology = self.topology

        header_preserving = self.transport.header_preserving
        rate_bytes = cfg.link_rate_bps / 8.0
        full_ser = cfg.packet_bytes / rate_bytes
        hdr_ser = cfg.header_bytes / rate_bytes
        per_hop = cfg.per_hop_latency
        host = cfg.host_latency
        rto = cfg.rto
        window = cfg.window_packets
        queue_limit = cfg.queue_packets
        flowlet_packets = cfg.flowlet_packets
        inject_base = space.inject_base
        eject_base = space.eject_base
        max_events = cfg.max_events

        num_links = space.num_links
        link_free = [0.0] * num_links
        link_queued = [0] * num_links
        link_trims = [0] * num_links
        link_drops = [0] * num_links
        # pending queue drains per link: (time, counter) FIFOs applied lazily
        link_deq: List[deque] = [deque() for _ in range(num_links)]

        (flows_list, totals, f_entry, f_path, f_idarr,
         events, counter, pool) = self._setup(workload, slim=True)
        nflows = len(flows_list)
        f_total: List[int] = totals.tolist()
        f_next = [0] * nflows
        f_inflight = [0] * nflows
        f_maxin = [0] * nflows
        f_acked: List[set] = [set() for _ in range(nflows)]
        f_flowlet = [0] * nflows
        f_switches = [0] * nflows
        f_trims = [0] * nflows
        f_drops = [0] * nflows
        f_done: List[Optional[float]] = [None] * nflows
        f_pcache: List[dict] = [{} for _ in range(nflows)]

        # packet state: the immutable fields ride in one tuple per slot
        # (flow, seq, retransmit, path, path_len, return_latency); only
        # hop / trimmed / delivery-time mutate per slot
        p_pkt: List[Tuple[int, int, bool, List[int], int, float]] = []
        p_hop: List[int] = []
        p_trim: List[bool] = []
        p_deliver: List[float] = []

        stat_maxq = 0
        stat_bypass = 0

        # resolve the selector batch rows per flow up front (one list index per
        # re-pick), and share the load/current argument arrays globally: an
        # all-zero row (≡ the reference's ``congestion=None``) and a one-hot row
        # depend only on (row width, congested index), never on the entry, so the
        # hot path performs no numpy writes at all
        sel_rows = self._sel_rows
        f_rows = []
        zero_tab: Dict[int, np.ndarray] = {}
        hot_tab: Dict[int, List[np.ndarray]] = {}
        max_n = 1
        for entry in f_entry:
            rows = sel_rows.get(id(entry))
            if rows is None:
                n = entry.num_candidates
                rows = (np.array([n], dtype=np.int64),
                        np.asarray([entry.lengths], dtype=np.float64),
                        np.zeros((1, n)), n)
                sel_rows[id(entry)] = rows
            f_rows.append(rows)
            n = rows[3]
            if n > max_n:
                max_n = n
            if n not in zero_tab:
                zero_tab[n] = np.zeros((1, n))
                hots = []
                for k in range(n):
                    row = np.zeros((1, n))
                    row[0, k] = 1.0
                    hots.append(row)
                hot_tab[n] = hots
        cur_tab = [np.array([k], dtype=np.int64) for k in range(max_n)]
        npb = selector.next_path_batch

        # monotone event sources: appended at nondecreasing (time, counter), so a
        # FIFO deque keeps them sorted without heap discipline.  Heap/send/deliver
        # entries are slim 4-tuples (time, counter, kind, slot); timeouts keep a
        # 5th element (the sequence number) but are dispatched straight off their
        # own source, so the shared unpack below never sees them.
        send_q: deque = deque()      # _HOP at now + host
        deliv_q: deque = deque()     # _DELIVERED at now
        to_q: deque = deque()        # _TIMEOUT at now + rto

        heappush = heapq.heappush
        heappop = heapq.heappop

        def resolve_path(fs: int, cand: int) -> Tuple[List[int], int, float]:
            """Resolve + cache the full link path, its length and return latency."""
            entry = f_entry[fs]
            s = int(entry.seg_start[cand])
            length = int(entry.seg_len[cand])
            flow = flows_list[fs]
            path = ([inject_base + flow.source]
                    + pool[s:s + length].tolist()
                    + [eject_base + flow.destination])
            plen = len(path)
            got = (path, plen, len(path) * per_hop + host)
            f_pcache[fs][cand] = got
            return got

        def send(now: float, fs: int, seq: int, retransmit: bool) -> None:
            """Transmit one packet (flowlet accounting first, as in the reference)."""
            nonlocal counter
            f_flowlet[fs] += 1
            entry = f_entry[fs]
            if f_flowlet[fs] > flowlet_packets and entry.num_candidates > 1:
                rows = f_rows[fs]
                cur = f_path[fs]
                new = int(npb(f_idarr[fs], cur_tab[cur], rows[0],
                              zero_tab[rows[3]], rows[1])[0])
                if new != cur:
                    f_path[fs] = new
                    f_switches[fs] += 1
                f_flowlet[fs] = 0
            cand = f_path[fs]
            got = f_pcache[fs].get(cand)
            if got is None:
                got = resolve_path(fs, cand)
            slot = len(p_pkt)
            p_pkt.append((fs, seq, retransmit, got[0], got[1], got[2]))
            p_hop.append(0)
            p_trim.append(False)
            p_deliver.append(0.0)
            infl = f_inflight[fs] + 1
            f_inflight[fs] = infl
            if infl > f_maxin[fs]:
                f_maxin[fs] = infl
            send_q.append((now + host, counter, _HOP, slot))
            counter += 1
            if not header_preserving and not retransmit:
                to_q.append((now + rto, counter, _TIMEOUT, fs, seq))
                counter += 1

        def send_new(now: float, fs: int) -> None:
            """Transmit the next unsent sequence number, if any remain."""
            seq = f_next[fs]
            if seq >= f_total[fs]:
                return
            f_next[fs] = seq + 1
            send(now, fs, seq, False)

        # ------------------------------------------------------ the event loop
        trace = self.trace
        now = 0.0
        while True:
            # merge: smallest (time, counter) head among the heap + three deques
            ev = events[0] if events else _NEVER
            src = 0
            if send_q:
                head = send_q[0]
                if head < ev:
                    ev = head
                    src = 1
            if deliv_q:
                head = deliv_q[0]
                if head < ev:
                    ev = head
                    src = 2
            if to_q:
                head = to_q[0]
                if head < ev:
                    ev = head
                    src = 3
            if src == 0:
                # every event cycle passes through the heap or the timeout FIFO,
                # so checking the push budget on just these two sources detects
                # truncation (incl. at termination) without a per-pop compare
                if counter > max_events:
                    raise _EventBudgetExceeded
                if not events:
                    break
                heappop(events)
            elif src == 1:
                send_q.popleft()
            elif src == 2:
                # delivery FIFO entries are always _DELIVERED: dispatch inline
                deliv_q.popleft()
                now = ev[0]
                a = ev[3]
                if p_trim[a]:
                    # receiver learned of the packet but not its payload: NACK
                    heappush(events, (now + p_pkt[a][5], counter, _NACK, a))
                else:
                    p_deliver[a] = now
                    heappush(events, (now + p_pkt[a][5], counter, _ACK, a))
                counter += 1
                continue
            else:
                if counter > max_events:
                    raise _EventBudgetExceeded
                to_q.popleft()
                now, cnt, kind, fs, seq = ev
                if seq in f_acked[fs] or f_done[fs] is not None:
                    continue
                send(now, fs, seq, True)
                continue
            now, cnt, kind, a = ev
            if kind == _HOP:
                hop = p_hop[a]
                pkt = p_pkt[a]
                if hop >= pkt[4]:
                    deliv_q.append((now, counter, _DELIVERED, a))
                    counter += 1
                    continue
                li = pkt[3][hop]
                # lazily apply the drains the strict loop would have popped by
                # now; decrements never outnumber prior enqueues, so no floor
                ld = link_deq[li]
                queued = link_queued[li]
                if ld:
                    head = ld[0]
                    while head[0] < now or (head[0] == now and head[1] < cnt):
                        ld.popleft()
                        queued -= 1
                        if not ld:
                            break
                        head = ld[0]
                    link_queued[li] = queued
                trimmed = p_trim[a]
                if trimmed or (pkt[2] and header_preserving):
                    if queued >= queue_limit:
                        stat_bypass += 1
                elif queued >= queue_limit:
                    fs = pkt[0]
                    if header_preserving:
                        # trim the payload; the header continues with priority
                        link_trims[li] += 1
                        f_trims[fs] += 1
                        p_trim[a] = True
                        trimmed = True
                    else:
                        # tail drop: the packet is lost, the sender's RTO recovers it
                        link_drops[li] += 1
                        f_drops[fs] += 1
                        infl = f_inflight[fs]
                        f_inflight[fs] = infl - 1 if infl > 0 else 0
                        continue
                else:
                    queued_now = queued + 1
                    if queued_now > stat_maxq:
                        stat_maxq = queued_now
                link_queued[li] = queued + 1
                nf = link_free[li]
                start = now if now > nf else nf
                departure = start + (hdr_ser if trimmed else full_ser)
                link_free[li] = departure
                if trace is not None:
                    trace.append((li, departure))
                p_hop[a] = hop + 1
                # queue occupancy decreases when serialization finishes: record
                # the drain in the link's FIFO instead of scheduling an event
                ld.append((departure, counter))
                heappush(events, (departure + per_hop, counter + 1, _HOP, a))
                counter += 2
            elif kind == _ACK:
                pkt = p_pkt[a]
                fs = pkt[0]
                seq = pkt[1]
                acked = f_acked[fs]
                if seq in acked:
                    continue
                acked.add(seq)
                infl = f_inflight[fs]
                infl = infl - 1 if infl > 0 else 0
                f_inflight[fs] = infl
                if len(acked) >= f_total[fs] and f_done[fs] is None:
                    f_done[fs] = p_deliver[a] + host
                    continue
                seq = f_next[fs]
                if seq < f_total[fs] and infl < window:
                    f_next[fs] = seq + 1
                    send(now, fs, seq, False)
            elif kind == _NACK:
                pkt = p_pkt[a]
                fs = pkt[0]
                seq = pkt[1]
                if seq in f_acked[fs]:
                    continue
                infl = f_inflight[fs]
                f_inflight[fs] = infl - 1 if infl > 0 else 0
                # FatPaths adaptivity: a trim signals congestion on the current
                # layer; the retransmission asks the selector for another one.
                if f_entry[fs].num_candidates > 1:
                    rows = f_rows[fs]
                    cur = f_path[fs]
                    new = int(npb(f_idarr[fs], cur_tab[cur], rows[0],
                                  hot_tab[rows[3]][cur], rows[1])[0])
                    if new != cur:
                        f_path[fs] = new
                        f_switches[fs] += 1
                        f_flowlet[fs] = 0
                send(now, fs, seq, True)
            else:  # _START
                fs = a
                total = f_total[fs]
                for _ in range(window if window < total else total):
                    send_new(now, fs)

        # flush the pending drains: the loop only applied them ahead of reads
        for li in range(num_links):
            ld = link_deq[li]
            if ld:
                queued = link_queued[li] - len(ld)
                link_queued[li] = queued if queued > 0 else 0

        # the last event is never a drain (its sibling hop arrival lands strictly
        # later), so `now` and the pop count match the strict loop's final state
        records = []
        for fs, flow in enumerate(flows_list):
            done = f_done[fs]
            entry = f_entry[fs]
            records.append(FlowRecord(
                flow_id=flow.flow_id, source=flow.source, destination=flow.destination,
                size_bytes=flow.size_bytes, start_time=flow.start_time,
                completion_time=done if done is not None else now,
                path_hops=entry.lengths[f_path[fs]],
                num_path_switches=f_switches[fs],
                congestion_events=f_trims[fs] + f_drops[fs]))
        self.last_stats = {"max_queued": stat_maxq, "priority_bypass": stat_bypass,
                           "max_in_flight": f_maxin}
        self.final_link_state = {"next_free": link_free, "queued": link_queued,
                                 "trims": link_trims, "drops": link_drops}
        return SimulationResult(records=records, name=workload.name,
                                meta={"topology": topology.name,
                                      "transport": self.transport.name,
                                      "events": counter,
                                      "total_trims": sum(link_trims),
                                      "total_drops": sum(link_drops)})

    # ------------------------------------------------------- the strict loop
    def _run_strict(self, workload: Workload) -> SimulationResult:
        """Single-heap event loop: every event scheduled and popped individually.

        This is the engine's in-representation shadow of the reference loop — the
        ``max_events`` fallback (its pop count truncates exactly like the
        reference's) and the debugging baseline for :meth:`_run_fast`.
        """
        cfg = self.config
        selector = self.selector
        space = self.links
        topology = self.topology

        header_preserving = self.transport.header_preserving
        rate_bytes = cfg.link_rate_bps / 8.0
        full_ser = cfg.packet_bytes / rate_bytes
        hdr_ser = cfg.header_bytes / rate_bytes
        per_hop = cfg.per_hop_latency
        host = cfg.host_latency
        rto = cfg.rto
        window = cfg.window_packets
        queue_limit = cfg.queue_packets
        flowlet_packets = cfg.flowlet_packets
        inject_base = space.inject_base
        eject_base = space.eject_base

        num_links = space.num_links
        link_free = [0.0] * num_links
        link_queued = [0] * num_links
        link_trims = [0] * num_links
        link_drops = [0] * num_links

        (flows_list, totals, f_entry, f_path, f_idarr,
         events, counter, pool) = self._setup(workload)
        nflows = len(flows_list)
        f_total: List[int] = totals.tolist()
        f_next = [0] * nflows
        f_inflight = [0] * nflows
        f_maxin = [0] * nflows
        f_acked: List[set] = [set() for _ in range(nflows)]
        f_flowlet = [0] * nflows
        f_switches = [0] * nflows
        f_trims = [0] * nflows
        f_drops = [0] * nflows
        f_done: List[Optional[float]] = [None] * nflows
        f_pcache: List[dict] = [{} for _ in range(nflows)]

        p_flow: List[int] = []
        p_seq: List[int] = []
        p_hop: List[int] = []
        p_trim: List[bool] = []
        p_retx: List[bool] = []
        p_path: List[List[int]] = []
        p_rtt: List[float] = []
        p_deliver: List[float] = []

        stats = {"max_queued": 0, "priority_bypass": 0, "max_in_flight": f_maxin}
        cur_buf = np.zeros(1, dtype=np.int64)
        pick_next = self._pick_next
        heappush = heapq.heappush
        heappop = heapq.heappop

        def full_path(fs: int, cand: int) -> Tuple[List[int], float]:
            """Resolved full link path + return latency of one (flow, candidate)."""
            cache = f_pcache[fs]
            got = cache.get(cand)
            if got is None:
                entry = f_entry[fs]
                s = int(entry.seg_start[cand])
                length = int(entry.seg_len[cand])
                flow = flows_list[fs]
                path = ([inject_base + flow.source]
                        + pool[s:s + length].tolist()
                        + [eject_base + flow.destination])
                got = (path, len(path) * per_hop + host)
                cache[cand] = got
            return got

        def send(now: float, fs: int, seq: int, retransmit: bool) -> None:
            """Transmit one packet (flowlet accounting first, as in the reference)."""
            nonlocal counter
            f_flowlet[fs] += 1
            entry = f_entry[fs]
            if f_flowlet[fs] > flowlet_packets and entry.num_candidates > 1:
                new = pick_next(fs, False, f_entry, f_path, f_idarr, cur_buf)
                if new != f_path[fs]:
                    f_path[fs] = new
                    f_switches[fs] += 1
                f_flowlet[fs] = 0
            path, rtt = full_path(fs, f_path[fs])
            slot = len(p_flow)
            p_flow.append(fs)
            p_seq.append(seq)
            p_hop.append(0)
            p_trim.append(False)
            p_retx.append(retransmit)
            p_path.append(path)
            p_rtt.append(rtt)
            p_deliver.append(0.0)
            infl = f_inflight[fs] + 1
            f_inflight[fs] = infl
            if infl > f_maxin[fs]:
                f_maxin[fs] = infl
            heappush(events, (now + host, counter, _HOP, slot, 0))
            counter += 1
            if not header_preserving and not retransmit:
                heappush(events, (now + rto, counter, _TIMEOUT, fs, seq))
                counter += 1

        def send_new(now: float, fs: int) -> None:
            """Transmit the next unsent sequence number, if any remain."""
            seq = f_next[fs]
            if seq >= f_total[fs]:
                return
            f_next[fs] = seq + 1
            send(now, fs, seq, False)

        # ------------------------------------------------------ the event loop
        trace = self.trace
        max_events = cfg.max_events
        processed = 0
        now = 0.0
        while events and processed < max_events:
            processed += 1
            ev = heappop(events)
            now = ev[0]
            kind = ev[2]
            a = ev[3]
            if kind == _HOP:
                path = p_path[a]
                hop = p_hop[a]
                if hop >= len(path):
                    heappush(events, (now, counter, _DELIVERED, a, 0))
                    counter += 1
                    continue
                li = path[hop]
                trimmed = p_trim[a]
                queued = link_queued[li]
                if trimmed or (p_retx[a] and header_preserving):
                    if queued >= queue_limit:
                        stats["priority_bypass"] += 1
                elif queued >= queue_limit:
                    fs = p_flow[a]
                    if header_preserving:
                        # trim the payload; the header continues with priority
                        link_trims[li] += 1
                        f_trims[fs] += 1
                        p_trim[a] = True
                        trimmed = True
                    else:
                        # tail drop: the packet is lost, the sender's RTO recovers it
                        link_drops[li] += 1
                        f_drops[fs] += 1
                        infl = f_inflight[fs]
                        f_inflight[fs] = infl - 1 if infl > 0 else 0
                        continue
                else:
                    queued_now = queued + 1
                    if queued_now > stats["max_queued"]:
                        stats["max_queued"] = queued_now
                link_queued[li] = queued + 1
                nf = link_free[li]
                start = now if now > nf else nf
                departure = start + (hdr_ser if trimmed else full_ser)
                link_free[li] = departure
                if trace is not None:
                    trace.append((li, departure))
                p_hop[a] = hop + 1
                # queue occupancy decreases when serialization finishes
                heappush(events, (departure, counter, _DEQ, li, 0))
                counter += 1
                heappush(events, (departure + per_hop, counter, _HOP, a, 0))
                counter += 1
            elif kind == _DEQ:
                queued = link_queued[a]
                link_queued[a] = queued - 1 if queued > 0 else 0
                # batched drain: consecutive dequeues at the root skip the dispatcher
                while processed < max_events and events and events[0][2] == _DEQ:
                    ev = heappop(events)
                    processed += 1
                    now = ev[0]
                    li = ev[3]
                    queued = link_queued[li]
                    link_queued[li] = queued - 1 if queued > 0 else 0
            elif kind == _ACK:
                fs = p_flow[a]
                seq = p_seq[a]
                acked = f_acked[fs]
                if seq in acked:
                    continue
                acked.add(seq)
                infl = f_inflight[fs]
                infl = infl - 1 if infl > 0 else 0
                f_inflight[fs] = infl
                if len(acked) >= f_total[fs] and f_done[fs] is None:
                    f_done[fs] = p_deliver[a] + host
                    continue
                if f_next[fs] < f_total[fs] and infl < window:
                    send_new(now, fs)
            elif kind == _DELIVERED:
                if p_trim[a]:
                    # receiver learned of the packet but not its payload: NACK
                    heappush(events, (now + p_rtt[a], counter, _NACK, a, 0))
                else:
                    p_deliver[a] = now
                    heappush(events, (now + p_rtt[a], counter, _ACK, a, 0))
                counter += 1
            elif kind == _NACK:
                fs = p_flow[a]
                seq = p_seq[a]
                if seq in f_acked[fs]:
                    continue
                infl = f_inflight[fs]
                f_inflight[fs] = infl - 1 if infl > 0 else 0
                # FatPaths adaptivity: a trim signals congestion on the current
                # layer; the retransmission asks the selector for another one.
                if f_entry[fs].num_candidates > 1:
                    new = pick_next(fs, True, f_entry, f_path, f_idarr, cur_buf)
                    if new != f_path[fs]:
                        f_path[fs] = new
                        f_switches[fs] += 1
                        f_flowlet[fs] = 0
                send(now, fs, seq, True)
            elif kind == _TIMEOUT:
                fs = a
                seq = ev[4]
                if seq in f_acked[fs] or f_done[fs] is not None:
                    continue
                send(now, fs, seq, True)
            elif kind == _START:
                fs = a
                total = f_total[fs]
                for _ in range(window if window < total else total):
                    send_new(now, fs)

        # ----------------------------------------------------------- records
        records = []
        for fs, flow in enumerate(flows_list):
            done = f_done[fs]
            entry = f_entry[fs]
            records.append(FlowRecord(
                flow_id=flow.flow_id, source=flow.source, destination=flow.destination,
                size_bytes=flow.size_bytes, start_time=flow.start_time,
                completion_time=done if done is not None else now,
                path_hops=entry.lengths[f_path[fs]],
                num_path_switches=f_switches[fs],
                congestion_events=f_trims[fs] + f_drops[fs]))
        self.last_stats = stats
        self.final_link_state = {"next_free": link_free, "queued": link_queued,
                                 "trims": link_trims, "drops": link_drops}
        return SimulationResult(records=records, name=workload.name,
                                meta={"topology": topology.name,
                                      "transport": self.transport.name,
                                      "events": processed,
                                      "total_trims": sum(link_trims),
                                      "total_drops": sum(link_drops)})
