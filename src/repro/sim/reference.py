"""The scalar flow-level simulator: the trusted reference for :mod:`repro.sim.engine`.

This is the event-driven simulator the repository grew up with (previously the body of
:mod:`repro.sim.flowsim`), preserved as the behavioural specification — one Python
``_ActiveFlow`` object per active flow, per-flow loops for byte accounting, path
switching and completion search, and a fresh sparse max-min fair allocation every
event.  The vectorized engine in :mod:`repro.sim.engine` is pinned to it
record-for-record by ``tests/sim/test_engine_equivalence.py``, mirroring how
:mod:`repro.kernels.reference` preserves the scalar graph kernels.

Semantics worth knowing when reading either implementation:

* every arrival/completion event recomputes max-min fair rates over all active flows;
* path switches are evaluated after every event, *before* rates are recomputed, so
  switching decisions read the link utilisation of the previous allocation;
* the next completion is the active flow minimising ``now + remaining / max(rate,
  rate_epsilon)``, ties broken towards the earliest-arrived flow;
* fault epochs (``config.faults``, see :mod:`repro.sim.faults`) win time ties over
  arrivals and completions, count as events, and displace affected flows in
  ascending arrival order — re-placement through ``selector.initial_path`` over the
  surviving candidates, deterministic detours when none survive, stalls (rate zero,
  excluded from allocation) when the routers are disconnected.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.loadbalance import FlowletSelector, PathSelector
from repro.core.transport import TransportModel, ndp_transport
from repro.sim.fairshare import max_min_fair_rates
from repro.sim.faults import bfs_distances_subgraph, detour_router_path
from repro.sim.metrics import FlowRecord, SimulationResult
from repro.sim.simconfig import FlowSimConfig
from repro.topologies.base import Topology
from repro.traffic.flows import Flow, Workload


@dataclass
class _ActiveFlow:
    flow: Flow
    source_router: int
    target_router: int
    candidate_paths: List[List[int]]          # router paths
    candidate_links: List[List[int]]          # same paths as link-index lists
    path_lengths: List[int]
    path_index: int
    remaining: float
    bytes_since_switch: float = 0.0
    num_switches: int = 0
    congestion_events: int = 0
    currently_congested: bool = False
    rate: float = 0.0
    hops_travelled: float = 0.0
    on_detour: bool = False      # single synthetic candidate off the surviving graph
    stalled: bool = False        # routers disconnected: rate zero until a restore


class FlowLevelSimulator:
    """Flow-level simulation of one workload on one topology + routing scheme."""

    def __init__(self, topology: Topology, routing, selector: Optional[PathSelector] = None,
                 transport: Optional[TransportModel] = None,
                 config: Optional[FlowSimConfig] = None, seed: int = 0) -> None:
        """Set up link index space and caches for one (topology, routing, stack) triple."""
        self.topology = topology
        self.routing = routing
        self.selector = selector if selector is not None else FlowletSelector(seed=seed)
        self.transport = transport or ndp_transport()
        self.config = config or FlowSimConfig()
        if self.config.allocator != "full":
            raise ValueError(
                "the scalar reference simulator only implements the 'full' "
                f"allocator (got {self.config.allocator!r}); incremental and "
                "bottleneck refiltering are engine features "
                "(repro.sim.allocstate, repro.sim.bottleneck)")
        self.rng = np.random.default_rng(seed)

        # Link index space: directed router links, then per-endpoint injection and
        # ejection links (the NIC up/down links).
        self._directed = topology.directed_edges()
        self._edge_index: Dict[Tuple[int, int], int] = {e: i for i, e in enumerate(self._directed)}
        n_router_links = len(self._directed)
        n_endpoints = topology.num_endpoints
        self._inject_base = n_router_links
        self._eject_base = n_router_links + n_endpoints
        self.num_links = n_router_links + 2 * n_endpoints
        rate_bytes = self.config.link_rate_bps / 8.0
        self.capacities = np.full(self.num_links, rate_bytes)
        self._link_util = np.zeros(self.num_links)
        self._path_cache: Dict[Tuple[int, int], Tuple[List[List[int]], List[List[int]], List[int]]] = {}

    # ------------------------------------------------------------------ paths
    def _links_of_router_path(self, path: Sequence[int]) -> List[int]:
        return [self._edge_index[(u, v)] for u, v in zip(path, path[1:])]

    def _candidates(self, source_router: int, target_router: int
                    ) -> Tuple[List[List[int]], List[List[int]], List[int]]:
        key = (source_router, target_router)
        if key in self._path_cache:
            return self._path_cache[key]
        paths = self.routing.router_paths(source_router, target_router)
        if not paths:
            raise ValueError(f"routing scheme offers no path between routers {key}")
        links = [self._links_of_router_path(p) for p in paths]
        lengths = [max(1, len(p) - 1) for p in paths]
        value = (paths, links, lengths)
        self._path_cache[key] = value
        return value

    def _full_links(self, active: _ActiveFlow, path_index: int) -> List[int]:
        inj = self._inject_base + active.flow.source
        ej = self._eject_base + active.flow.destination
        return [inj] + active.candidate_links[path_index] + [ej]

    def _path_congestion(self, active: _ActiveFlow, path_index: int) -> float:
        links = active.candidate_links[path_index]
        if not links:
            return 0.0
        return float(max(self._link_util[link] for link in links))

    # -------------------------------------------------------------------- run
    def run(self, workload: Workload, mapping: Optional[Sequence[int]] = None) -> SimulationResult:
        """Simulate ``workload`` and return per-flow records.

        ``mapping`` optionally remaps endpoints (randomized workload mapping).
        """
        arrivals = workload.sorted_by_start()
        if mapping is not None:
            remapped = []
            for f in arrivals:
                remapped.append(Flow(start_time=f.start_time, source=int(mapping[f.source]),
                                     destination=int(mapping[f.destination]),
                                     size_bytes=f.size_bytes, flow_id=f.flow_id))
            arrivals = remapped
        records: List[FlowRecord] = []
        active: Dict[int, _ActiveFlow] = {}
        arrival_idx = 0
        now = 0.0
        events = 0
        line_rate = self.config.link_rate_bps / 8.0

        # ------------------------------------------------------------- faults
        fault_epochs = (self.config.faults.resolve(self.topology)
                        if self.config.faults is not None else [])
        faults_on = self.config.faults is not None
        fault_idx = 0
        fault_events = 0
        reroutes = 0
        stalls = 0
        failed_edges: set = set()        # undirected (u < v) failed edges
        failed_links: set = set()        # both directed link indices per failed edge
        fault_epoch_counter = [0]        # bumped whenever failed_edges changes
        survivor_cache: Dict[Tuple[int, int], Tuple[int, List[int]]] = {}
        detour_rows: Dict[Tuple[int, int], List[int]] = {}
        adjacency = self.topology.adjacency() if faults_on else None

        def survivors_of(rs: int, rt: int) -> List[int]:
            """Indices of the (rs, rt) candidates whose links all survive."""
            key = (rs, rt)
            cached = survivor_cache.get(key)
            if cached is not None and cached[0] == fault_epoch_counter[0]:
                return cached[1]
            links_lists = self._candidates(rs, rt)[1]
            surv = [i for i, ll in enumerate(links_lists)
                    if not any(link in failed_links for link in ll)]
            survivor_cache[key] = (fault_epoch_counter[0], surv)
            return surv

        def detour_for(rs: int, rt: int) -> Optional[List[int]]:
            """Minimal-index shortest router path rs -> rt on the surviving graph."""
            key = (fault_epoch_counter[0], rs)
            row = detour_rows.get(key)
            if row is None:
                row = bfs_distances_subgraph(adjacency, failed_edges, rs)
                detour_rows[key] = row
            return detour_router_path(adjacency, failed_edges, rs, rt, row)

        def place(state: _ActiveFlow) -> None:
            """Re-place one displaced flow: survivors, else detour, else stall."""
            nonlocal reroutes, stalls
            rs, rt = state.source_router, state.target_router
            old_links = state.candidate_links[state.path_index]
            surv = survivors_of(rs, rt)
            if surv:
                paths, links, lengths = self._candidates(rs, rt)
                pos = self.selector.initial_path(
                    state.flow.flow_id, len(surv),
                    path_lengths=[lengths[i] for i in surv])
                state.candidate_paths = paths
                state.candidate_links = links
                state.path_lengths = lengths
                state.path_index = surv[pos]
                state.on_detour = False
                state.stalled = False
            else:
                detour = detour_for(rs, rt)
                if detour is None:
                    # Disconnected: stall in place (candidate arrays untouched so a
                    # later restore can revive onto the original candidate set).
                    if not state.stalled:
                        state.stalled = True
                        state.rate = 0.0
                        stalls += 1
                    return
                hops = max(1, len(detour) - 1)
                # The selector is still consulted (one candidate) so the RNG stream
                # stays aligned with every other placement.
                self.selector.initial_path(state.flow.flow_id, 1, path_lengths=[hops])
                state.candidate_paths = [detour]
                state.candidate_links = [self._links_of_router_path(detour)]
                state.path_lengths = [hops]
                state.path_index = 0
                state.on_detour = True
                state.stalled = False
            new_links = state.candidate_links[state.path_index]
            if new_links != old_links:
                state.num_switches += 1
                state.bytes_since_switch = 0.0
                reroutes += 1

        def apply_fault_epoch(deltas: Sequence[Tuple[str, Tuple[int, int]]]) -> None:
            """Apply one epoch's fail/restore deltas and displace affected flows."""
            nonlocal fault_events
            fault_events += 1
            before = set(failed_edges)
            for action, edge in deltas:
                if action == "fail":
                    failed_edges.add(edge)
                else:
                    failed_edges.discard(edge)
            if failed_edges != before:
                fault_epoch_counter[0] += 1
                failed_links.clear()
                for u, v in failed_edges:
                    failed_links.add(self._edge_index[(u, v)])
                    failed_links.add(self._edge_index[(v, u)])
            # Displacement in ascending arrival order (dict insertion order).
            for state in active.values():
                if state.source_router == state.target_router:
                    continue      # synthetic empty-link candidate: immune
                if state.stalled:
                    needs = True  # always retry: a restore may have reconnected
                elif state.on_detour:
                    dead = any(link in failed_links
                               for link in state.candidate_links[0])
                    needs = dead or bool(survivors_of(state.source_router,
                                                      state.target_router))
                else:
                    needs = any(link in failed_links
                                for link in state.candidate_links[state.path_index])
                if needs:
                    place(state)

        def advance_to(new_time: float) -> None:
            """Transfer bytes on every active flow up to ``new_time``."""
            dt = new_time - now
            if dt <= 0:
                return
            for state in active.values():
                if np.isfinite(state.rate):
                    transferred = state.rate * dt
                else:
                    transferred = state.remaining
                transferred = min(transferred, state.remaining)
                state.remaining -= transferred
                state.bytes_since_switch += transferred

        def recompute_rates() -> None:
            """Max-min fair rates, link utilisation and congestion episodes."""
            states = [s for s in active.values() if not s.stalled]
            if not states:
                self._link_util[:] = 0.0
                return
            paths_links = [self._full_links(s, s.path_index) for s in states]
            rates = max_min_fair_rates(paths_links, self.capacities)
            self._link_util[:] = 0.0
            for state, links, rate in zip(states, paths_links, rates):
                state.rate = float(min(rate, line_rate))
                for link in links:
                    self._link_util[link] += state.rate / self.capacities[link]
            for state in states:
                # A congestion *episode* starts when the flow's rate drops below the
                # threshold (edge-triggered): this is what a loss/ECN reaction costs.
                congested = state.rate < self.config.congestion_rate_fraction * line_rate
                if congested and not state.currently_congested:
                    state.congestion_events += 1
                state.currently_congested = congested

        def maybe_switch_paths() -> None:
            """Per-flow flowlet/congestion path switching via the selector."""
            for state in active.values():
                if state.stalled or len(state.candidate_paths) <= 1:
                    continue
                surv: Optional[List[int]] = None
                if faults_on and failed_links:
                    surv = survivors_of(state.source_router, state.target_router)
                    if len(surv) <= 1:
                        continue
                congested = self._path_congestion(state, state.path_index) >= 1.0
                if state.bytes_since_switch < self.config.flowlet_bytes and not congested:
                    continue
                if surv is None:
                    new_index = self.selector.next_path(
                        state.flow.flow_id, state.path_index, len(state.candidate_paths),
                        congestion=lambda i, s=state: self._path_congestion(s, i),
                        path_lengths=state.path_lengths)
                else:
                    pos = surv.index(state.path_index)
                    new_pos = self.selector.next_path(
                        state.flow.flow_id, pos, len(surv),
                        congestion=lambda i, s=state, sv=surv:
                            self._path_congestion(s, sv[i]),
                        path_lengths=[state.path_lengths[i] for i in surv])
                    new_index = surv[new_pos]
                state.bytes_since_switch = 0.0
                if new_index != state.path_index:
                    state.path_index = new_index
                    state.num_switches += 1

        def next_completion() -> Tuple[float, Optional[int]]:
            """(time, flow id) of the earliest completion among active flows."""
            best_time, best_flow = np.inf, None
            for fid, state in active.items():
                rate = max(state.rate, self.config.rate_epsilon)
                t = now + state.remaining / rate
                if t < best_time:
                    best_time, best_flow = t, fid
            return best_time, best_flow

        while (arrival_idx < len(arrivals) or active) and events < self.config.max_events:
            events += 1
            completion_time, completing = next_completion()
            next_arrival = arrivals[arrival_idx].start_time if arrival_idx < len(arrivals) else np.inf
            next_fault = fault_epochs[fault_idx][0] if fault_idx < len(fault_epochs) else np.inf
            if next_fault <= next_arrival and next_fault <= completion_time:
                # Fault epochs win time ties over arrivals and completions.
                advance_to(next_fault)
                now = next_fault
                apply_fault_epoch(fault_epochs[fault_idx][1])
                fault_idx += 1
            elif next_arrival <= completion_time:
                # process all arrivals at this timestamp
                advance_to(next_arrival)
                now = next_arrival
                while arrival_idx < len(arrivals) and arrivals[arrival_idx].start_time <= now:
                    flow = arrivals[arrival_idx]
                    arrival_idx += 1
                    rs = self.topology.router_of_endpoint(flow.source)
                    rt = self.topology.router_of_endpoint(flow.destination)
                    if rs == rt:
                        paths, links, lengths = [[rs]], [[]], [1]
                    else:
                        paths, links, lengths = self._candidates(rs, rt)
                    if faults_on and failed_links and rs != rt:
                        surv = survivors_of(rs, rt)
                        if surv:
                            pos = self.selector.initial_path(
                                flow.flow_id, len(surv),
                                path_lengths=[lengths[i] for i in surv])
                            state = _ActiveFlow(
                                flow=flow, source_router=rs, target_router=rt,
                                candidate_paths=paths, candidate_links=links,
                                path_lengths=lengths, path_index=surv[pos],
                                remaining=flow.size_bytes)
                        else:
                            detour = detour_for(rs, rt)
                            if detour is not None:
                                hops = max(1, len(detour) - 1)
                                self.selector.initial_path(flow.flow_id, 1,
                                                           path_lengths=[hops])
                                state = _ActiveFlow(
                                    flow=flow, source_router=rs, target_router=rt,
                                    candidate_paths=[detour],
                                    candidate_links=[self._links_of_router_path(detour)],
                                    path_lengths=[hops], path_index=0,
                                    remaining=flow.size_bytes, on_detour=True)
                            else:
                                # Stalled on arrival: no selector draw is consumed.
                                stalls += 1
                                state = _ActiveFlow(
                                    flow=flow, source_router=rs, target_router=rt,
                                    candidate_paths=paths, candidate_links=links,
                                    path_lengths=lengths, path_index=0,
                                    remaining=flow.size_bytes, stalled=True)
                    else:
                        index = self.selector.initial_path(flow.flow_id, len(paths),
                                                           path_lengths=lengths)
                        state = _ActiveFlow(flow=flow, source_router=rs, target_router=rt,
                                            candidate_paths=paths, candidate_links=links,
                                            path_lengths=lengths, path_index=index,
                                            remaining=flow.size_bytes)
                    active[flow.flow_id] = state
            else:
                if completing is None:
                    break
                advance_to(completion_time)
                now = completion_time
                state = active.pop(completing)
                records.append(self._record(state, now))
            maybe_switch_paths()
            recompute_rates()

        # drain any flows left when max_events was hit (the completion-time floor uses
        # config.rate_epsilon, the same resolution next_completion applies)
        for state in active.values():
            records.append(self._record(state, now + state.remaining
                                        / max(state.rate, self.config.rate_epsilon)))
        records.sort(key=lambda r: r.flow_id)
        meta = {"topology": self.topology.name,
                "routing": getattr(self.routing, "name", type(self.routing).__name__),
                "transport": self.transport.name,
                "events": events,
                "engine": "reference"}
        if faults_on:
            meta["fault_events"] = fault_events
            meta["reroutes"] = reroutes
            meta["stalls"] = stalls
        return SimulationResult(records=records, name=workload.name, meta=meta)

    # ---------------------------------------------------------------- records
    def _record(self, state: _ActiveFlow, completion_time: float) -> FlowRecord:
        hops = state.path_lengths[state.path_index]
        rtt = 2 * (hops * self.config.per_hop_latency + self.config.host_latency)
        startup = self.transport.startup_delay(state.flow.size_bytes, rtt,
                                               self.config.link_rate_bps)
        # Congestion episodes are reported per flow but not charged as extra latency:
        # bandwidth contention is already resolved by the max-min fair sharing, and a
        # per-episode RTT surcharge would double-count it (and make results depend on
        # how often rates cross the congestion threshold rather than on routing).
        total_completion = completion_time + rtt / 2 + startup
        return FlowRecord(
            flow_id=state.flow.flow_id,
            source=state.flow.source,
            destination=state.flow.destination,
            size_bytes=state.flow.size_bytes,
            start_time=state.flow.start_time,
            completion_time=total_completion,
            path_hops=hops,
            num_path_switches=state.num_switches,
            congestion_events=state.congestion_events,
        )
