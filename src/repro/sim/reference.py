"""The scalar flow-level simulator: the trusted reference for :mod:`repro.sim.engine`.

This is the event-driven simulator the repository grew up with (previously the body of
:mod:`repro.sim.flowsim`), preserved as the behavioural specification — one Python
``_ActiveFlow`` object per active flow, per-flow loops for byte accounting, path
switching and completion search, and a fresh sparse max-min fair allocation every
event.  The vectorized engine in :mod:`repro.sim.engine` is pinned to it
record-for-record by ``tests/sim/test_engine_equivalence.py``, mirroring how
:mod:`repro.kernels.reference` preserves the scalar graph kernels.

Semantics worth knowing when reading either implementation:

* every arrival/completion event recomputes max-min fair rates over all active flows;
* path switches are evaluated after every event, *before* rates are recomputed, so
  switching decisions read the link utilisation of the previous allocation;
* the next completion is the active flow minimising ``now + remaining / max(rate,
  rate_epsilon)``, ties broken towards the earliest-arrived flow.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.loadbalance import FlowletSelector, PathSelector
from repro.core.transport import TransportModel, ndp_transport
from repro.sim.fairshare import max_min_fair_rates
from repro.sim.metrics import FlowRecord, SimulationResult
from repro.sim.simconfig import FlowSimConfig
from repro.topologies.base import Topology
from repro.traffic.flows import Flow, Workload


@dataclass
class _ActiveFlow:
    flow: Flow
    source_router: int
    target_router: int
    candidate_paths: List[List[int]]          # router paths
    candidate_links: List[List[int]]          # same paths as link-index lists
    path_lengths: List[int]
    path_index: int
    remaining: float
    bytes_since_switch: float = 0.0
    num_switches: int = 0
    congestion_events: int = 0
    currently_congested: bool = False
    rate: float = 0.0
    hops_travelled: float = 0.0


class FlowLevelSimulator:
    """Flow-level simulation of one workload on one topology + routing scheme."""

    def __init__(self, topology: Topology, routing, selector: Optional[PathSelector] = None,
                 transport: Optional[TransportModel] = None,
                 config: Optional[FlowSimConfig] = None, seed: int = 0) -> None:
        """Set up link index space and caches for one (topology, routing, stack) triple."""
        self.topology = topology
        self.routing = routing
        self.selector = selector if selector is not None else FlowletSelector(seed=seed)
        self.transport = transport or ndp_transport()
        self.config = config or FlowSimConfig()
        if self.config.allocator != "full":
            raise ValueError(
                "the scalar reference simulator only implements the 'full' "
                f"allocator (got {self.config.allocator!r}); incremental "
                "refiltering is an engine feature (repro.sim.allocstate)")
        self.rng = np.random.default_rng(seed)

        # Link index space: directed router links, then per-endpoint injection and
        # ejection links (the NIC up/down links).
        self._directed = topology.directed_edges()
        self._edge_index: Dict[Tuple[int, int], int] = {e: i for i, e in enumerate(self._directed)}
        n_router_links = len(self._directed)
        n_endpoints = topology.num_endpoints
        self._inject_base = n_router_links
        self._eject_base = n_router_links + n_endpoints
        self.num_links = n_router_links + 2 * n_endpoints
        rate_bytes = self.config.link_rate_bps / 8.0
        self.capacities = np.full(self.num_links, rate_bytes)
        self._link_util = np.zeros(self.num_links)
        self._path_cache: Dict[Tuple[int, int], Tuple[List[List[int]], List[List[int]], List[int]]] = {}

    # ------------------------------------------------------------------ paths
    def _links_of_router_path(self, path: Sequence[int]) -> List[int]:
        return [self._edge_index[(u, v)] for u, v in zip(path, path[1:])]

    def _candidates(self, source_router: int, target_router: int
                    ) -> Tuple[List[List[int]], List[List[int]], List[int]]:
        key = (source_router, target_router)
        if key in self._path_cache:
            return self._path_cache[key]
        paths = self.routing.router_paths(source_router, target_router)
        if not paths:
            raise ValueError(f"routing scheme offers no path between routers {key}")
        links = [self._links_of_router_path(p) for p in paths]
        lengths = [max(1, len(p) - 1) for p in paths]
        value = (paths, links, lengths)
        self._path_cache[key] = value
        return value

    def _full_links(self, active: _ActiveFlow, path_index: int) -> List[int]:
        inj = self._inject_base + active.flow.source
        ej = self._eject_base + active.flow.destination
        return [inj] + active.candidate_links[path_index] + [ej]

    def _path_congestion(self, active: _ActiveFlow, path_index: int) -> float:
        links = active.candidate_links[path_index]
        if not links:
            return 0.0
        return float(max(self._link_util[link] for link in links))

    # -------------------------------------------------------------------- run
    def run(self, workload: Workload, mapping: Optional[Sequence[int]] = None) -> SimulationResult:
        """Simulate ``workload`` and return per-flow records.

        ``mapping`` optionally remaps endpoints (randomized workload mapping).
        """
        arrivals = workload.sorted_by_start()
        if mapping is not None:
            remapped = []
            for f in arrivals:
                remapped.append(Flow(start_time=f.start_time, source=int(mapping[f.source]),
                                     destination=int(mapping[f.destination]),
                                     size_bytes=f.size_bytes, flow_id=f.flow_id))
            arrivals = remapped
        records: List[FlowRecord] = []
        active: Dict[int, _ActiveFlow] = {}
        arrival_idx = 0
        now = 0.0
        events = 0
        line_rate = self.config.link_rate_bps / 8.0

        def advance_to(new_time: float) -> None:
            """Transfer bytes on every active flow up to ``new_time``."""
            dt = new_time - now
            if dt <= 0:
                return
            for state in active.values():
                if np.isfinite(state.rate):
                    transferred = state.rate * dt
                else:
                    transferred = state.remaining
                transferred = min(transferred, state.remaining)
                state.remaining -= transferred
                state.bytes_since_switch += transferred

        def recompute_rates() -> None:
            """Max-min fair rates, link utilisation and congestion episodes."""
            if not active:
                self._link_util[:] = 0.0
                return
            states = list(active.values())
            paths_links = [self._full_links(s, s.path_index) for s in states]
            rates = max_min_fair_rates(paths_links, self.capacities)
            self._link_util[:] = 0.0
            for state, links, rate in zip(states, paths_links, rates):
                state.rate = float(min(rate, line_rate))
                for link in links:
                    self._link_util[link] += state.rate / self.capacities[link]
            for state in states:
                # A congestion *episode* starts when the flow's rate drops below the
                # threshold (edge-triggered): this is what a loss/ECN reaction costs.
                congested = state.rate < self.config.congestion_rate_fraction * line_rate
                if congested and not state.currently_congested:
                    state.congestion_events += 1
                state.currently_congested = congested

        def maybe_switch_paths() -> None:
            """Per-flow flowlet/congestion path switching via the selector."""
            for state in active.values():
                if len(state.candidate_paths) <= 1:
                    continue
                congested = self._path_congestion(state, state.path_index) >= 1.0
                if state.bytes_since_switch < self.config.flowlet_bytes and not congested:
                    continue
                new_index = self.selector.next_path(
                    state.flow.flow_id, state.path_index, len(state.candidate_paths),
                    congestion=lambda i, s=state: self._path_congestion(s, i),
                    path_lengths=state.path_lengths)
                state.bytes_since_switch = 0.0
                if new_index != state.path_index:
                    state.path_index = new_index
                    state.num_switches += 1

        def next_completion() -> Tuple[float, Optional[int]]:
            """(time, flow id) of the earliest completion among active flows."""
            best_time, best_flow = np.inf, None
            for fid, state in active.items():
                rate = max(state.rate, self.config.rate_epsilon)
                t = now + state.remaining / rate
                if t < best_time:
                    best_time, best_flow = t, fid
            return best_time, best_flow

        while (arrival_idx < len(arrivals) or active) and events < self.config.max_events:
            events += 1
            completion_time, completing = next_completion()
            next_arrival = arrivals[arrival_idx].start_time if arrival_idx < len(arrivals) else np.inf
            if next_arrival <= completion_time:
                # process all arrivals at this timestamp
                advance_to(next_arrival)
                now = next_arrival
                while arrival_idx < len(arrivals) and arrivals[arrival_idx].start_time <= now:
                    flow = arrivals[arrival_idx]
                    arrival_idx += 1
                    rs = self.topology.router_of_endpoint(flow.source)
                    rt = self.topology.router_of_endpoint(flow.destination)
                    if rs == rt:
                        paths, links, lengths = [[rs]], [[]], [1]
                    else:
                        paths, links, lengths = self._candidates(rs, rt)
                    index = self.selector.initial_path(flow.flow_id, len(paths),
                                                       path_lengths=lengths)
                    state = _ActiveFlow(flow=flow, source_router=rs, target_router=rt,
                                        candidate_paths=paths, candidate_links=links,
                                        path_lengths=lengths, path_index=index,
                                        remaining=flow.size_bytes)
                    active[flow.flow_id] = state
            else:
                if completing is None:
                    break
                advance_to(completion_time)
                now = completion_time
                state = active.pop(completing)
                records.append(self._record(state, now))
            maybe_switch_paths()
            recompute_rates()

        # drain any flows left when max_events was hit (the completion-time floor uses
        # config.rate_epsilon, the same resolution next_completion applies)
        for state in active.values():
            records.append(self._record(state, now + state.remaining
                                        / max(state.rate, self.config.rate_epsilon)))
        records.sort(key=lambda r: r.flow_id)
        return SimulationResult(records=records, name=workload.name,
                                meta={"topology": self.topology.name,
                                      "routing": getattr(self.routing, "name",
                                                         type(self.routing).__name__),
                                      "transport": self.transport.name,
                                      "events": events,
                                      "engine": "reference"})

    # ---------------------------------------------------------------- records
    def _record(self, state: _ActiveFlow, completion_time: float) -> FlowRecord:
        hops = state.path_lengths[state.path_index]
        rtt = 2 * (hops * self.config.per_hop_latency + self.config.host_latency)
        startup = self.transport.startup_delay(state.flow.size_bytes, rtt,
                                               self.config.link_rate_bps)
        # Congestion episodes are reported per flow but not charged as extra latency:
        # bandwidth contention is already resolved by the max-min fair sharing, and a
        # per-episode RTT surcharge would double-count it (and make results depend on
        # how often rates cross the congestion threshold rather than on routing).
        total_completion = completion_time + rtt / 2 + startup
        return FlowRecord(
            flow_id=state.flow.flow_id,
            source=state.flow.source,
            destination=state.flow.destination,
            size_bytes=state.flow.size_bytes,
            start_time=state.flow.start_time,
            completion_time=total_completion,
            path_hops=hops,
            num_path_switches=state.num_switches,
            congestion_events=state.congestion_events,
        )
