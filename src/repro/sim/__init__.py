"""Network simulators and analytic models (paper §VII).

* :mod:`repro.sim.fairshare` — max-min fair bandwidth allocation (water filling) over
  directed links, the core of the flow-level simulator.
* :mod:`repro.sim.flowsim` — the flow-level simulation entry point: flows arrive, get
  routed over candidate paths (FatPaths layers, ECMP paths, ...), share link bandwidth
  max-min fairly, and may switch paths at flowlet boundaries or on congestion.  It
  substitutes for the paper's htsim/OMNeT++ packet simulations (see DESIGN.md) and
  dispatches between the two implementations below.
* :mod:`repro.sim.engine` — the vectorized structure-of-arrays engine (default):
  pooled incidence, batched per-event sweeps, and the :func:`~repro.sim.engine.simulate_many`
  batched multi-cell API the simulation experiments run on.
* :mod:`repro.sim.allocstate` — the engine's persistent allocation state: the pooled
  flow/link incidence amended O(delta) per event, plus the opt-in dirty-component
  incremental allocator (``FlowSimConfig(allocator="incremental")``).
* :mod:`repro.sim.reference` — the original scalar event loop, preserved as the
  behavioural specification the engine is pinned against.
* :mod:`repro.sim.packetsim` — the packet-level simulation entry point: output queues,
  NDP-style payload trimming and receiver-driven pulls, exercising the purified
  transport mechanics directly.  Dispatches between the vectorized
  :mod:`repro.sim.packetengine` (default) and the scalar
  :mod:`repro.sim.packetsim_reference` it is pinned against.
* :mod:`repro.sim.stream` — the streaming service layer over the flow engine:
  open-ended arrival streams with bounded memory (periodic slot/pool/bank
  compaction), checkpoint/restore, and windowed steady-state metrics
  (walkthrough in ``docs/streaming.md``).
* :mod:`repro.sim.queueing` — M/G/1 processor-sharing predictions used as the reference
  model in Figure 15.
* :mod:`repro.sim.metrics` — flow-completion-time / throughput summaries, plus the
  streaming P²/reservoir estimators the service layer feeds incrementally.
"""

from repro.sim.engine import FlowEngine, SimCell, simulate_many
from repro.sim.fairshare import max_min_fair_rates
from repro.sim.flowsim import (
    ALLOCATORS,
    FlowLevelSimulator,
    FlowSimConfig,
    StreamConfig,
    StreamSimulator,
    simulate_workload,
)
from repro.sim.metrics import FlowRecord, SimulationResult, summarize_flows
from repro.sim.packetsim import (
    PACKET_ENGINES,
    PacketEngine,
    PacketLevelSimulator,
    PacketSimConfig,
    simulate_packets,
)
from repro.sim.queueing import mg1_ps_fct, predict_fct_distribution

__all__ = [
    "ALLOCATORS",
    "max_min_fair_rates",
    "FlowEngine",
    "FlowSimConfig",
    "FlowLevelSimulator",
    "SimCell",
    "StreamConfig",
    "StreamSimulator",
    "simulate_many",
    "simulate_workload",
    "FlowRecord",
    "SimulationResult",
    "summarize_flows",
    "PACKET_ENGINES",
    "PacketEngine",
    "PacketSimConfig",
    "PacketLevelSimulator",
    "simulate_packets",
    "mg1_ps_fct",
    "predict_fct_distribution",
]
