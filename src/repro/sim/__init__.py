"""Network simulators and analytic models (paper §VII).

* :mod:`repro.sim.fairshare` — max-min fair bandwidth allocation (water filling) over
  directed links, the core of the flow-level simulator.
* :mod:`repro.sim.flowsim` — an event-driven flow-level simulator: flows arrive, get
  routed over candidate paths (FatPaths layers, ECMP paths, ...), share link bandwidth
  max-min fairly, and may switch paths at flowlet boundaries or on congestion.  It
  substitutes for the paper's htsim/OMNeT++ packet simulations (see DESIGN.md).
* :mod:`repro.sim.packetsim` — a small-scale packet-level simulator with output queues,
  NDP-style payload trimming and receiver-driven pulls, exercising the purified
  transport mechanics directly.
* :mod:`repro.sim.queueing` — M/G/1 processor-sharing predictions used as the reference
  model in Figure 15.
* :mod:`repro.sim.metrics` — flow-completion-time / throughput summaries.
"""

from repro.sim.fairshare import max_min_fair_rates
from repro.sim.flowsim import FlowSimConfig, FlowLevelSimulator, simulate_workload
from repro.sim.metrics import FlowRecord, SimulationResult, summarize_flows
from repro.sim.packetsim import PacketSimConfig, PacketLevelSimulator
from repro.sim.queueing import mg1_ps_fct, predict_fct_distribution

__all__ = [
    "max_min_fair_rates",
    "FlowSimConfig",
    "FlowLevelSimulator",
    "simulate_workload",
    "FlowRecord",
    "SimulationResult",
    "summarize_flows",
    "PacketSimConfig",
    "PacketLevelSimulator",
    "mg1_ps_fct",
    "predict_fct_distribution",
]
