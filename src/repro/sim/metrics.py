"""Flow-completion-time and throughput metrics (paper §VII-A5).

Batch summaries (:class:`SimulationResult`, :func:`summarize_flows`) plus the
bounded-memory streaming estimators the streaming service layer
(:mod:`repro.sim.stream`) feeds one completion at a time: :class:`P2Quantile`
(the P² algorithm — five markers, no sample storage) and
:class:`ReservoirSample` (uniform fixed-size sample, exact percentiles while
under capacity).  Both expose ``state_dict``/``load_state`` so a stream
checkpoint restores them bit-identically.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np


@dataclass
class FlowRecord:
    """Result of one simulated flow."""

    flow_id: int
    source: int
    destination: int
    size_bytes: float
    start_time: float
    completion_time: float
    path_hops: float
    num_path_switches: int = 0
    congestion_events: int = 0

    @property
    def fct(self) -> float:
        """Flow completion time in seconds."""
        return self.completion_time - self.start_time

    @property
    def throughput(self) -> float:
        """Throughput per flow in bytes/s (the paper's TPF = size / FCT)."""
        return self.size_bytes / self.fct if self.fct > 0 else float("inf")


@dataclass
class SimulationResult:
    """All flow records of one simulation run plus summary helpers."""

    records: List[FlowRecord]
    name: str = "simulation"
    meta: Dict[str, object] = field(default_factory=dict)

    def __len__(self) -> int:
        return len(self.records)

    def fcts(self) -> np.ndarray:
        """Per-flow completion times in seconds (record order)."""
        return np.array([r.fct for r in self.records])

    def throughputs(self) -> np.ndarray:
        """Per-flow throughputs in bytes/s (record order)."""
        return np.array([r.throughput for r in self.records])

    def sizes(self) -> np.ndarray:
        """Per-flow sizes in bytes (record order)."""
        return np.array([r.size_bytes for r in self.records])

    def warmup_filtered(self, warmup_fraction: float = 0.5, *,
                        start_after: Optional[float] = None,
                        end_before: Optional[float] = None) -> "SimulationResult":
        """Drop flows that start in the first ``warmup_fraction`` of the start-time window
        (the paper drops the first half of the window for warm-up).

        Explicit time bounds replace the fractional cutoff when given: records
        with ``start_after <= start_time < end_before`` are kept (either bound
        may be ``None`` for half-open filtering), which is what windowed stream
        analysis needs — and, unlike the fractional form, an empty window stays
        empty instead of falling back to all records.
        """
        if start_after is not None or end_before is not None:
            kept = [r for r in self.records
                    if (start_after is None or r.start_time >= start_after)
                    and (end_before is None or r.start_time < end_before)]
            return SimulationResult(records=kept, name=self.name, meta=dict(self.meta))
        if not self.records or warmup_fraction <= 0:
            return self
        starts = np.array([r.start_time for r in self.records])
        cutoff = starts.min() + warmup_fraction * (starts.max() - starts.min())
        kept = [r for r in self.records if r.start_time >= cutoff]
        if not kept:
            kept = self.records
        return SimulationResult(records=kept, name=self.name, meta=dict(self.meta))

    def summary(self, percentiles: Sequence[float] = (1, 10, 50, 90, 99), *,
                start_after: Optional[float] = None,
                end_before: Optional[float] = None) -> Dict[str, float]:
        """Mean/percentile FCT and throughput summary (see :func:`summarize_flows`).

        ``start_after``/``end_before`` optionally restrict the summary to flows
        starting inside ``[start_after, end_before)`` — the per-window view of a
        stream — via :meth:`warmup_filtered`'s explicit-bounds form.
        """
        records = self.records
        if start_after is not None or end_before is not None:
            records = self.warmup_filtered(start_after=start_after,
                                           end_before=end_before).records
        return summarize_flows(records, percentiles)

    def by_size_bucket(self, buckets: Sequence[float]) -> Dict[float, "SimulationResult"]:
        """Partition records by flow size (bucket = largest bound >= size)."""
        out: Dict[float, List[FlowRecord]] = {b: [] for b in buckets}
        sorted_buckets = sorted(buckets)
        for record in self.records:
            for bound in sorted_buckets:
                if record.size_bytes <= bound:
                    out[bound].append(record)
                    break
            else:
                out[sorted_buckets[-1]].append(record)
        return {b: SimulationResult(records=rs, name=f"{self.name}|<= {int(b)}B", meta=dict(self.meta))
                for b, rs in out.items()}


def summarize_flows(records: Sequence[FlowRecord],
                    percentiles: Sequence[float] = (1, 10, 50, 90, 99)) -> Dict[str, float]:
    """Mean/percentile summary of FCT and per-flow throughput."""
    if not records:
        return {"count": 0}
    fct = np.array([r.fct for r in records])
    tput = np.array([r.throughput for r in records])
    summary: Dict[str, float] = {
        "count": float(len(records)),
        "fct_mean": float(fct.mean()),
        "fct_max": float(fct.max()),
        "throughput_mean": float(tput.mean()),
        "path_hops_mean": float(np.mean([r.path_hops for r in records])),
        "path_switches_mean": float(np.mean([r.num_path_switches for r in records])),
    }
    for p in percentiles:
        summary[f"fct_p{p:g}"] = float(np.percentile(fct, p))
        summary[f"throughput_p{p:g}"] = float(np.percentile(tput, p))
    # the paper reports "1% tail" throughput = the 1st percentile of per-flow throughput
    summary["throughput_tail"] = summary.get("throughput_p1", float(tput.min()))
    summary["fct_tail"] = summary.get("fct_p99", float(fct.max()))
    return summary


# ------------------------------------------------------------ streaming estimators
class P2Quantile:
    """Streaming quantile estimate by the P² algorithm (Jain & Chlamtac, 1985).

    Five markers track the running ``q``-quantile in O(1) memory: the first five
    observations seed the markers, every later observation shifts marker
    positions and adjusts heights by a piecewise-parabolic fit.  All state is a
    handful of floats, entirely determined by the observation sequence — no RNG
    — so a checkpointed estimator resumes bit-identically via
    :meth:`state_dict`/:meth:`load_state`.  Below five observations
    :meth:`value` falls back to the exact percentile of the buffer.
    """

    def __init__(self, q: float) -> None:
        """Track the ``q``-quantile, ``0 < q < 1``."""
        if not 0.0 < q < 1.0:
            raise ValueError("quantile must be in (0, 1)")
        self.q = q
        self.count = 0
        self._heights: List[float] = []
        self._pos: List[float] = []
        self._desired: List[float] = []
        self._inc: List[float] = []

    def add(self, value: float) -> None:
        """Observe one value."""
        value = float(value)
        self.count += 1
        h = self._heights
        if self.count <= 5:
            h.append(value)
            h.sort()
            if self.count == 5:
                q = self.q
                self._pos = [1.0, 2.0, 3.0, 4.0, 5.0]
                self._desired = [1.0, 1.0 + 2.0 * q, 1.0 + 4.0 * q, 3.0 + 2.0 * q, 5.0]
                self._inc = [0.0, q / 2.0, q, (1.0 + q) / 2.0, 1.0]
            return
        if value < h[0]:
            h[0] = value
            k = 0
        elif value >= h[4]:
            h[4] = value
            k = 3
        else:
            k = 0
            while value >= h[k + 1]:
                k += 1
        pos, desired, inc = self._pos, self._desired, self._inc
        for i in range(k + 1, 5):
            pos[i] += 1.0
        for i in range(5):
            desired[i] += inc[i]
        for i in (1, 2, 3):
            delta = desired[i] - pos[i]
            if (delta >= 1.0 and pos[i + 1] - pos[i] > 1.0) or \
                    (delta <= -1.0 and pos[i - 1] - pos[i] < -1.0):
                sign = 1.0 if delta >= 0 else -1.0
                candidate = self._parabolic(i, sign)
                if h[i - 1] < candidate < h[i + 1]:
                    h[i] = candidate
                else:
                    h[i] = self._linear(i, sign)
                pos[i] += sign

    def _parabolic(self, i: int, sign: float) -> float:
        """Piecewise-parabolic (P²) height adjustment of marker ``i``."""
        h, pos = self._heights, self._pos
        return h[i] + sign / (pos[i + 1] - pos[i - 1]) * (
            (pos[i] - pos[i - 1] + sign) * (h[i + 1] - h[i]) / (pos[i + 1] - pos[i])
            + (pos[i + 1] - pos[i] - sign) * (h[i] - h[i - 1]) / (pos[i] - pos[i - 1]))

    def _linear(self, i: int, sign: float) -> float:
        """Linear fallback when the parabolic fit leaves the bracketing heights."""
        h, pos = self._heights, self._pos
        j = i + int(sign)
        return h[i] + sign * (h[j] - h[i]) / (pos[j] - pos[i])

    def value(self) -> float:
        """The current quantile estimate (NaN before any observation)."""
        if self.count == 0:
            return float("nan")
        if self.count < 5:
            return float(np.quantile(np.array(self._heights), self.q))
        return self._heights[2]

    def state_dict(self) -> Dict[str, object]:
        """All estimator state as plain floats (checkpoint payload)."""
        return {"q": self.q, "count": self.count, "heights": list(self._heights),
                "pos": list(self._pos), "desired": list(self._desired),
                "inc": list(self._inc)}

    def load_state(self, state: Dict[str, object]) -> None:
        """Restore from a :meth:`state_dict` payload (bit-identical resume)."""
        self.q = float(state["q"])
        self.count = int(state["count"])
        self._heights = [float(v) for v in state["heights"]]
        self._pos = [float(v) for v in state["pos"]]
        self._desired = [float(v) for v in state["desired"]]
        self._inc = [float(v) for v in state["inc"]]


class ReservoirSample:
    """Uniform fixed-size sample of a stream (Vitter's algorithm R).

    Holds at most ``capacity`` values; while under capacity the sample is the
    whole stream, so :meth:`percentile` is exact — the per-window FCT reservoirs
    of the streaming service are sized to cover a window's completions and only
    degrade to sampling under overload.  Replacement draws come from the caller's
    ``rng`` (one bounded-integer draw per observation past capacity), so a
    checkpoint that also saves the generator state resumes bit-identically.
    """

    def __init__(self, capacity: int, rng: np.random.Generator) -> None:
        """An empty reservoir of ``capacity`` values drawing from ``rng``."""
        if capacity < 1:
            raise ValueError("reservoir capacity must be >= 1")
        self.capacity = capacity
        self.rng = rng
        self.items: List[float] = []
        self.seen = 0

    def add(self, value: float) -> None:
        """Observe one value."""
        self.seen += 1
        if len(self.items) < self.capacity:
            self.items.append(float(value))
            return
        j = int(self.rng.integers(0, self.seen))
        if j < self.capacity:
            self.items[j] = float(value)

    def percentile(self, p: float) -> float:
        """The ``p``-th percentile of the sample (NaN while empty)."""
        if not self.items:
            return float("nan")
        return float(np.percentile(np.array(self.items), p))

    def mean(self) -> float:
        """Mean of the sample (NaN while empty)."""
        if not self.items:
            return float("nan")
        return float(np.mean(self.items))

    def state_dict(self) -> Dict[str, object]:
        """Sample contents and counters (checkpoint payload; RNG saved by caller)."""
        return {"capacity": self.capacity, "items": list(self.items),
                "seen": self.seen}

    def load_state(self, state: Dict[str, object]) -> None:
        """Restore from a :meth:`state_dict` payload."""
        self.capacity = int(state["capacity"])
        self.items = [float(v) for v in state["items"]]
        self.seen = int(state["seen"])


def speedup_over_baseline(result: SimulationResult, baseline: SimulationResult,
                          metric: str = "fct_mean") -> float:
    """Relative speedup of ``result`` over ``baseline`` for an FCT-style metric.

    A value > 1 means ``result`` is faster (smaller FCT) — the convention used by the
    paper's Figures 14 and 17.
    """
    ours = result.summary().get(metric)
    theirs = baseline.summary().get(metric)
    if not ours or not theirs:
        return float("nan")
    return theirs / ours
