"""Flow-completion-time and throughput metrics (paper §VII-A5)."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

import numpy as np


@dataclass
class FlowRecord:
    """Result of one simulated flow."""

    flow_id: int
    source: int
    destination: int
    size_bytes: float
    start_time: float
    completion_time: float
    path_hops: float
    num_path_switches: int = 0
    congestion_events: int = 0

    @property
    def fct(self) -> float:
        """Flow completion time in seconds."""
        return self.completion_time - self.start_time

    @property
    def throughput(self) -> float:
        """Throughput per flow in bytes/s (the paper's TPF = size / FCT)."""
        return self.size_bytes / self.fct if self.fct > 0 else float("inf")


@dataclass
class SimulationResult:
    """All flow records of one simulation run plus summary helpers."""

    records: List[FlowRecord]
    name: str = "simulation"
    meta: Dict[str, object] = field(default_factory=dict)

    def __len__(self) -> int:
        return len(self.records)

    def fcts(self) -> np.ndarray:
        """Per-flow completion times in seconds (record order)."""
        return np.array([r.fct for r in self.records])

    def throughputs(self) -> np.ndarray:
        """Per-flow throughputs in bytes/s (record order)."""
        return np.array([r.throughput for r in self.records])

    def sizes(self) -> np.ndarray:
        """Per-flow sizes in bytes (record order)."""
        return np.array([r.size_bytes for r in self.records])

    def warmup_filtered(self, warmup_fraction: float = 0.5) -> "SimulationResult":
        """Drop flows that start in the first ``warmup_fraction`` of the start-time window
        (the paper drops the first half of the window for warm-up)."""
        if not self.records or warmup_fraction <= 0:
            return self
        starts = np.array([r.start_time for r in self.records])
        cutoff = starts.min() + warmup_fraction * (starts.max() - starts.min())
        kept = [r for r in self.records if r.start_time >= cutoff]
        if not kept:
            kept = self.records
        return SimulationResult(records=kept, name=self.name, meta=dict(self.meta))

    def summary(self, percentiles: Sequence[float] = (1, 10, 50, 90, 99)) -> Dict[str, float]:
        """Mean/percentile FCT and throughput summary (see :func:`summarize_flows`)."""
        return summarize_flows(self.records, percentiles)

    def by_size_bucket(self, buckets: Sequence[float]) -> Dict[float, "SimulationResult"]:
        """Partition records by flow size (bucket = largest bound >= size)."""
        out: Dict[float, List[FlowRecord]] = {b: [] for b in buckets}
        sorted_buckets = sorted(buckets)
        for record in self.records:
            for bound in sorted_buckets:
                if record.size_bytes <= bound:
                    out[bound].append(record)
                    break
            else:
                out[sorted_buckets[-1]].append(record)
        return {b: SimulationResult(records=rs, name=f"{self.name}|<= {int(b)}B", meta=dict(self.meta))
                for b, rs in out.items()}


def summarize_flows(records: Sequence[FlowRecord],
                    percentiles: Sequence[float] = (1, 10, 50, 90, 99)) -> Dict[str, float]:
    """Mean/percentile summary of FCT and per-flow throughput."""
    if not records:
        return {"count": 0}
    fct = np.array([r.fct for r in records])
    tput = np.array([r.throughput for r in records])
    summary: Dict[str, float] = {
        "count": float(len(records)),
        "fct_mean": float(fct.mean()),
        "fct_max": float(fct.max()),
        "throughput_mean": float(tput.mean()),
        "path_hops_mean": float(np.mean([r.path_hops for r in records])),
        "path_switches_mean": float(np.mean([r.num_path_switches for r in records])),
    }
    for p in percentiles:
        summary[f"fct_p{p:g}"] = float(np.percentile(fct, p))
        summary[f"throughput_p{p:g}"] = float(np.percentile(tput, p))
    # the paper reports "1% tail" throughput = the 1st percentile of per-flow throughput
    summary["throughput_tail"] = summary.get("throughput_p1", float(tput.min()))
    summary["fct_tail"] = summary.get("fct_p99", float(fct.max()))
    return summary


def speedup_over_baseline(result: SimulationResult, baseline: SimulationResult,
                          metric: str = "fct_mean") -> float:
    """Relative speedup of ``result`` over ``baseline`` for an FCT-style metric.

    A value > 1 means ``result`` is faster (smaller FCT) — the convention used by the
    paper's Figures 14 and 17.
    """
    ours = result.summary().get(metric)
    theirs = baseline.summary().get(metric)
    if not ours or not theirs:
        return float("nan")
    return theirs / ours
