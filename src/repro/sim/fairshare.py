"""Max-min fair bandwidth allocation over directed links (water filling).

Given a set of flows, each pinned to a path (a list of directed links), and per-link
capacities, the max-min fair allocation raises every flow's rate uniformly until a link
saturates, freezes the flows crossing that link, and repeats — the classical
progressive-filling algorithm.  This models ideal congestion control (per-flow
fairness), which is what the paper's NDP-style transport approximates.

The implementation is vectorised: the link/flow incidence is a sparse CSR matrix and
each filling round is a sparse mat-vec, so thousands of flows are allocated in
milliseconds (see the HPC guides: vectorise the hot loop).
"""

from __future__ import annotations

from itertools import chain
from typing import List, Sequence, Tuple

import numpy as np
from scipy.sparse import csr_matrix
from scipy.sparse.csgraph import connected_components


def max_min_fair_rates(paths_links: Sequence[Sequence[int]], link_capacities: np.ndarray,
                       weights: Sequence[float] | None = None,
                       epsilon: float = 1e-12) -> np.ndarray:
    """Max-min fair rates for flows pinned to link paths.

    Parameters
    ----------
    paths_links:
        For each flow, the list of link indices it traverses.  Flows with an empty link
        list (source and destination on the same router) are given infinite rate — the
        caller handles them separately.
    link_capacities:
        Capacity of each link (same unit as the returned rates, e.g. bytes/s).
    weights:
        Optional per-flow weights (a flow of weight w behaves like w unit flows, used to
        model packet-spraying subflows); defaults to 1.
    epsilon:
        Numerical slack when deciding link saturation.

    Returns
    -------
    ndarray of per-flow rates.
    """
    num_flows = len(paths_links)
    capacities = np.asarray(link_capacities, dtype=np.float64)
    num_links = capacities.shape[0]
    if num_flows == 0:
        return np.zeros(0)
    w = np.ones(num_flows) if weights is None else np.asarray(weights, dtype=np.float64)
    if w.shape[0] != num_flows or (w <= 0).any():
        raise ValueError("weights must be positive and one per flow")

    rows: List[int] = []
    cols: List[int] = []
    vals: List[float] = []
    empty = np.zeros(num_flows, dtype=bool)
    for f, links in enumerate(paths_links):
        if not links:
            empty[f] = True
            continue
        for link in links:
            if not 0 <= link < num_links:
                raise ValueError(f"flow {f} references unknown link {link}")
            rows.append(link)
            cols.append(f)
            vals.append(w[f])
    rates = np.zeros(num_flows)
    rates[empty] = np.inf
    if not vals:
        return rates

    incidence = csr_matrix((vals, (rows, cols)), shape=(num_links, num_flows))
    unfixed = ~empty
    remaining = capacities.astype(np.float64).copy()

    for _ in range(num_links + 1):
        if not unfixed.any():
            break
        load = incidence @ unfixed.astype(np.float64)   # weighted count of unfixed flows per link
        active_links = load > 0
        if not active_links.any():
            break
        headroom = np.full(num_links, np.inf)
        headroom[active_links] = remaining[active_links] / load[active_links]
        increment = float(headroom.min())
        if increment <= 0:
            increment = 0.0
        rates[unfixed] += increment
        remaining = remaining - load * increment
        saturated = active_links & (remaining <= epsilon * capacities + epsilon)
        if not saturated.any():
            # no link saturates (should not happen with finite capacities); freeze all
            break
        # flows crossing a saturated link become fixed
        saturated_load = np.asarray(incidence[saturated].sum(axis=0)).ravel()
        unfixed = unfixed & ~(saturated_load > 0)
    return rates


def leveled_fill(entry_flows: np.ndarray, num_flows: int, touched_caps: np.ndarray,
                 compressed: np.ndarray, num_touched: int, epsilon: float = 1e-12,
                 unfixed: np.ndarray | None = None
                 ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Progressive filling instrumented with the bottleneck structure it produces.

    Operates on a *compressed* incidence: ``compressed`` maps each entry to a
    touched-link index ``0..num_touched-1`` and ``touched_caps`` holds those links'
    capacities (the ``np.unique(entry_links, return_inverse=True)`` form the
    engine's allocators already compute).  The filling rounds evaluate the same
    float expressions as :func:`max_min_fair_rates` /
    :func:`repro.sim.allocstate._progressive_fill`; on top of the rates this
    returns *which round froze what*:

    ``(rates, flow_round, link_round, level_rates)`` — ``flow_round[f]`` is the
    saturation round that froze flow ``f`` (-1 if never frozen), ``link_round[l]``
    the round at which touched link ``l`` saturated (-1 if it keeps slack), and
    ``level_rates[k]`` the cumulative fair-share level of round ``k`` — the rate
    every flow bottlenecked at a level-``k`` link receives.  These are the
    saturation tiers of the bottleneck structure
    (:mod:`repro.sim.bottleneck`); :func:`bottleneck_levels` is the public
    uncompressed wrapper.

    ``unfixed`` optionally restricts the fill to a subset of flows (copied, never
    mutated), exactly as in ``_progressive_fill``.
    """
    rates = np.zeros(num_flows)
    flow_round = np.full(num_flows, -1, dtype=np.int64)
    link_round = np.full(num_touched, -1, dtype=np.int64)
    levels: List[float] = []
    if compressed.size == 0 or num_touched == 0:
        return rates, flow_round, link_round, np.zeros(0)
    remaining = touched_caps.astype(np.float64).copy()
    saturation_threshold = epsilon * remaining + epsilon
    unfixed = np.ones(num_flows, dtype=bool) if unfixed is None else unfixed.copy()
    level = 0.0
    for rnd in range(num_touched + 1):
        if not unfixed.any():
            break
        live = unfixed[entry_flows]
        load = np.bincount(compressed[live], minlength=num_touched)
        active_links = load > 0
        if not active_links.any():
            break
        increment = float((remaining[active_links] / load[active_links]).min())
        if increment <= 0:
            increment = 0.0
        rates[unfixed] += increment
        level += increment
        remaining = remaining - load * increment
        saturated = active_links & (remaining <= saturation_threshold)
        if not saturated.any():
            # no link saturates (should not happen with finite capacities); freeze all
            break
        levels.append(level)
        link_round[saturated & (link_round < 0)] = rnd
        newly_fixed = np.zeros(num_flows, dtype=bool)
        newly_fixed[entry_flows[saturated[compressed] & live]] = True
        flow_round[newly_fixed] = rnd
        unfixed &= ~newly_fixed
    return rates, flow_round, link_round, np.asarray(levels)


def bottleneck_levels(entry_links: np.ndarray, entry_flows: np.ndarray,
                      link_capacities: np.ndarray, epsilon: float = 1e-12
                      ) -> Tuple[np.ndarray, np.ndarray]:
    """Bottleneck level of every link under max-min progressive filling.

    The *bottleneck structure* of an allocation tiers the saturated links by the
    filling round that saturated them: level-0 links saturate first (their flows
    get the lowest fair share), level-1 links saturate once level-0 flows are
    frozen, and so on.  Max-min coupling propagates only *downstream* through
    this structure — an event on a level-``k`` link can never change the rates
    of flows frozen strictly upstream without touching their links — which is
    what the load-aware allocator (:mod:`repro.sim.bottleneck`) exploits.

    Parameters mirror :func:`bottleneck_certificate`: parallel ``entry_links``/
    ``entry_flows`` arrays (one entry per link a flow crosses) and per-link
    capacities.  Returns ``(link_levels, level_rates)``: ``link_levels`` has one
    entry per link — its saturation round, or -1 for links that keep slack
    (including links with no entries at all) — and ``level_rates[k]`` is the
    fair-share rate of flows bottlenecked at level ``k`` (strictly increasing
    except for zero-capacity tiers, which saturate at level 0 with rate 0).
    """
    entry_links = np.asarray(entry_links, dtype=np.int64)
    entry_flows = np.asarray(entry_flows, dtype=np.int64)
    capacities = np.asarray(link_capacities, dtype=np.float64)
    num_links = capacities.shape[0]
    link_levels = np.full(num_links, -1, dtype=np.int64)
    if entry_links.size == 0:
        return link_levels, np.zeros(0)
    if entry_links.min() < 0 or entry_links.max() >= num_links:
        raise ValueError("entries reference an unknown link index")
    num_flows = int(entry_flows.max()) + 1
    touched, compressed = np.unique(entry_links, return_inverse=True)
    _, _, link_round, level_rates = leveled_fill(
        entry_flows, num_flows, capacities[touched], compressed, touched.size,
        epsilon=epsilon)
    link_levels[touched] = link_round
    return link_levels, level_rates


def incidence_components(entry_links: np.ndarray, entry_flows: np.ndarray
                         ) -> Tuple[int, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Connected components of a (link, flow) incidence graph.

    The incidence is given as parallel entry arrays (one entry per link a flow
    crosses — the pooled form the vectorized engine maintains).  Two flows belong to
    the same component iff they are connected through shared links; max-min fair
    allocation decomposes exactly over these components (flows in different
    components share no link), which is what lets the incremental allocator refill
    only the components an event touched
    (:class:`repro.sim.allocstate.IncrementalAllocator`).

    Returns
    -------
    ``(num_components, touched_links, link_labels, flows, flow_labels)``:
    ``touched_links``/``flows`` are the sorted distinct link/flow ids appearing in
    the entries and ``link_labels``/``flow_labels`` their component labels in
    ``0..num_components-1``.  Every component contains at least one link and one
    flow by construction.
    """
    entry_links = np.asarray(entry_links, dtype=np.int64)
    entry_flows = np.asarray(entry_flows, dtype=np.int64)
    touched, link_idx = np.unique(entry_links, return_inverse=True)
    flows, flow_idx = np.unique(entry_flows, return_inverse=True)
    if touched.size == 0:
        empty = np.empty(0, dtype=np.int64)
        return 0, touched, empty, flows, empty
    n = touched.size + flows.size
    bipartite = csr_matrix(
        (np.ones(entry_links.size), (link_idx, touched.size + flow_idx)), shape=(n, n))
    num_components, labels = connected_components(bipartite, directed=False)
    return (num_components, touched, labels[:touched.size], flows,
            labels[touched.size:])


def bottleneck_certificate(entry_links: np.ndarray, entry_flows: np.ndarray,
                           rates: np.ndarray, link_capacities: np.ndarray,
                           rtol: float = 1e-9) -> np.ndarray:
    """Flows violating the max-min optimality certificate (empty == certified).

    A rate vector is max-min fair iff it is feasible (no link over capacity) and
    every flow crosses a *bottleneck* link: a saturated link on which no other flow
    receives a higher rate — raising the flow would then necessarily lower a flow
    that is no faster.  The check is vectorized over the same entry arrays the
    engine's allocators fill (``rates`` is indexed by the flow ids appearing in
    ``entry_flows``) and is the acceptance gate of the incremental allocator's
    property suite.

    Returns the array of offending flow ids: flows on an over-capacity link or
    without a bottleneck, within relative tolerance ``rtol``.
    """
    entry_links = np.asarray(entry_links, dtype=np.int64)
    entry_flows = np.asarray(entry_flows, dtype=np.int64)
    capacities = np.asarray(link_capacities, dtype=np.float64)
    rates = np.asarray(rates, dtype=np.float64)
    if entry_links.size == 0:
        return np.empty(0, dtype=np.int64)
    entry_rates = rates[entry_flows]
    loads = np.bincount(entry_links, weights=entry_rates,
                        minlength=capacities.shape[0])
    link_max_rate = np.zeros(capacities.shape[0])
    np.maximum.at(link_max_rate, entry_links, entry_rates)
    slack = capacities * rtol + rtol
    overloaded = loads > capacities + slack
    saturated = loads >= capacities - slack
    # per entry: does this entry sit on a bottleneck for its flow?
    entry_ok = saturated[entry_links] & (entry_rates >= link_max_rate[entry_links]
                                         - slack[entry_links])
    flows = np.unique(entry_flows)
    has_bottleneck = np.zeros(int(flows.max()) + 1, dtype=bool)
    np.logical_or.at(has_bottleneck, entry_flows, entry_ok)
    on_overloaded = np.zeros(int(flows.max()) + 1, dtype=bool)
    np.logical_or.at(on_overloaded, entry_flows, overloaded[entry_links])
    bad = ~has_bottleneck[flows] | on_overloaded[flows]
    return flows[bad]


def link_utilisation(paths_links: Sequence[Sequence[int]], rates: np.ndarray,
                     link_capacities: np.ndarray) -> np.ndarray:
    """Utilisation (load / capacity) of each link under the given flow rates.

    Vectorized over the same flattened flow/link incidence that
    :func:`max_min_fair_rates` builds its CSR matrix from: one weighted ``bincount``
    accumulates every (flow, link) entry flow-major, exactly as the former per-flow
    Python loop did (flows with non-finite rates contribute zero).
    """
    capacities = np.asarray(link_capacities, dtype=np.float64)
    num_links = capacities.shape[0]
    lengths = np.fromiter((len(links) for links in paths_links), dtype=np.int64,
                          count=len(paths_links))
    total = int(lengths.sum())
    if total == 0:
        load = np.zeros(num_links)
    else:
        links = np.fromiter(chain.from_iterable(paths_links), dtype=np.int64, count=total)
        if links.min() < 0 or links.max() >= num_links:
            raise ValueError("paths reference an unknown link index")
        flow_rates = np.asarray(rates, dtype=np.float64)
        weights = np.repeat(np.where(np.isfinite(flow_rates), flow_rates, 0.0), lengths)
        load = np.bincount(links, weights=weights, minlength=num_links)
    with np.errstate(divide="ignore", invalid="ignore"):
        util = np.where(capacities > 0, load / capacities, 0.0)
    return util
