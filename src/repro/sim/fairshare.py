"""Max-min fair bandwidth allocation over directed links (water filling).

Given a set of flows, each pinned to a path (a list of directed links), and per-link
capacities, the max-min fair allocation raises every flow's rate uniformly until a link
saturates, freezes the flows crossing that link, and repeats — the classical
progressive-filling algorithm.  This models ideal congestion control (per-flow
fairness), which is what the paper's NDP-style transport approximates.

The implementation is vectorised: the link/flow incidence is a sparse CSR matrix and
each filling round is a sparse mat-vec, so thousands of flows are allocated in
milliseconds (see the HPC guides: vectorise the hot loop).
"""

from __future__ import annotations

from itertools import chain
from typing import List, Sequence

import numpy as np
from scipy.sparse import csr_matrix


def max_min_fair_rates(paths_links: Sequence[Sequence[int]], link_capacities: np.ndarray,
                       weights: Sequence[float] | None = None,
                       epsilon: float = 1e-12) -> np.ndarray:
    """Max-min fair rates for flows pinned to link paths.

    Parameters
    ----------
    paths_links:
        For each flow, the list of link indices it traverses.  Flows with an empty link
        list (source and destination on the same router) are given infinite rate — the
        caller handles them separately.
    link_capacities:
        Capacity of each link (same unit as the returned rates, e.g. bytes/s).
    weights:
        Optional per-flow weights (a flow of weight w behaves like w unit flows, used to
        model packet-spraying subflows); defaults to 1.
    epsilon:
        Numerical slack when deciding link saturation.

    Returns
    -------
    ndarray of per-flow rates.
    """
    num_flows = len(paths_links)
    capacities = np.asarray(link_capacities, dtype=np.float64)
    num_links = capacities.shape[0]
    if num_flows == 0:
        return np.zeros(0)
    w = np.ones(num_flows) if weights is None else np.asarray(weights, dtype=np.float64)
    if w.shape[0] != num_flows or (w <= 0).any():
        raise ValueError("weights must be positive and one per flow")

    rows: List[int] = []
    cols: List[int] = []
    vals: List[float] = []
    empty = np.zeros(num_flows, dtype=bool)
    for f, links in enumerate(paths_links):
        if not links:
            empty[f] = True
            continue
        for link in links:
            if not 0 <= link < num_links:
                raise ValueError(f"flow {f} references unknown link {link}")
            rows.append(link)
            cols.append(f)
            vals.append(w[f])
    rates = np.zeros(num_flows)
    rates[empty] = np.inf
    if not vals:
        return rates

    incidence = csr_matrix((vals, (rows, cols)), shape=(num_links, num_flows))
    unfixed = ~empty
    remaining = capacities.astype(np.float64).copy()

    for _ in range(num_links + 1):
        if not unfixed.any():
            break
        load = incidence @ unfixed.astype(np.float64)   # weighted count of unfixed flows per link
        active_links = load > 0
        if not active_links.any():
            break
        headroom = np.full(num_links, np.inf)
        headroom[active_links] = remaining[active_links] / load[active_links]
        increment = float(headroom.min())
        if increment <= 0:
            increment = 0.0
        rates[unfixed] += increment
        remaining = remaining - load * increment
        saturated = active_links & (remaining <= epsilon * capacities + epsilon)
        if not saturated.any():
            # no link saturates (should not happen with finite capacities); freeze all
            break
        # flows crossing a saturated link become fixed
        saturated_load = np.asarray(incidence[saturated].sum(axis=0)).ravel()
        unfixed = unfixed & ~(saturated_load > 0)
    return rates


def link_utilisation(paths_links: Sequence[Sequence[int]], rates: np.ndarray,
                     link_capacities: np.ndarray) -> np.ndarray:
    """Utilisation (load / capacity) of each link under the given flow rates.

    Vectorized over the same flattened flow/link incidence that
    :func:`max_min_fair_rates` builds its CSR matrix from: one weighted ``bincount``
    accumulates every (flow, link) entry flow-major, exactly as the former per-flow
    Python loop did (flows with non-finite rates contribute zero).
    """
    capacities = np.asarray(link_capacities, dtype=np.float64)
    num_links = capacities.shape[0]
    lengths = np.fromiter((len(links) for links in paths_links), dtype=np.int64,
                          count=len(paths_links))
    total = int(lengths.sum())
    if total == 0:
        load = np.zeros(num_links)
    else:
        links = np.fromiter(chain.from_iterable(paths_links), dtype=np.int64, count=total)
        if links.min() < 0 or links.max() >= num_links:
            raise ValueError("paths reference an unknown link index")
        flow_rates = np.asarray(rates, dtype=np.float64)
        weights = np.repeat(np.where(np.isfinite(flow_rates), flow_rates, 0.0), lengths)
        load = np.bincount(links, weights=weights, minlength=num_links)
    with np.errstate(divide="ignore", invalid="ignore"):
        util = np.where(capacities > 0, load / capacities, 0.0)
    return util
