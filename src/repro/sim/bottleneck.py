"""Load-aware bottleneck-structure allocator (`repro.sim.bottleneck`).

:class:`repro.sim.allocstate.IncrementalAllocator` made per-event allocation cost
O(delta) — but its union-find components are *topological*: any shared link couples
two flows into one component.  On dense traffic (all-at-once incast, shuffle,
sustained streams) every flow shares some link, the incidence collapses into one
giant component, and every event degenerates to a full fill.  Max-min coupling,
however, propagates only through **saturated** links: progressive filling freezes
flows in saturation rounds (bottleneck *levels*), and an event can only change the
rate of a flow it can reach through links that are actually bottlenecks.  The flows
reachable through slack links are — by the max-min decomposition — already frozen at
rates an event elsewhere cannot move.

:class:`BottleneckAllocator` (``FlowSimConfig(allocator="bottleneck")``) keeps that
structure as persistent state across events:

* ``link_load`` / ``sat_mask`` — per-link carried load and the saturated-link set of
  the current allocation, amended O(delta) per event (completions subtract their
  contribution immediately, arrivals and switches re-add after the refill);
* ``link_level`` / ``level_rates`` — the bottleneck level (saturation round) of every
  link and the cached per-level fair-share rates from the last structure build, the
  quantities :func:`repro.sim.fairshare.bottleneck_levels` exposes publicly;
* ``link_members`` — link → member-flow lists, appended on arrival/switch and
  lazily filtered through ``AllocationState.active_mask`` (pruned at rebuilds);
* ``_rates`` — the allocator's own slot-indexed rate cache, the splice source for
  every flow an event does *not* touch.

On each event :meth:`recompute` closes the event's seed (touched flows plus the
members of touched links that were saturated before the event) over the cached
structure — flow → its saturated links → their member flows — which yields exactly
the *downstream* perturbation region of the bottleneck graph.  Only that region is
refilled, against residual capacities (full capacity minus the load of untouched
flows), while every upstream/sibling level keeps its cached rate: the splice is
exact because slack links cannot constrain the refill and saturated links bring all
their members into the region by construction.  One subtlety keeps this honest: a
refill can newly saturate a link that still carries *outside* flows (their cached
rates would then violate max-min), so newly-saturated boundary links trigger an
expansion round that pulls their members in and refills again.  A budget guard
falls back to one full fill whenever the downstream set covers most of the active
flows, and the whole structure is rebuilt exactly (members pruned, levels
recomputed via :func:`repro.sim.fairshare.leveled_fill`) on a per-ops budget —
the same shape of fallback the incremental allocator uses.

Like ``"incremental"``, this allocator is opt-in: component-local float
accumulation differs from the global reference loop, so agreement is pinned to
1e-9 rate tolerance, identical saturation sets and the
:func:`repro.sim.fairshare.bottleneck_certificate` on randomized event sequences
(``tests/sim/test_alloc_bottleneck.py``), not bit-identity.
"""

from __future__ import annotations

from typing import Dict, List, Set, Tuple

import numpy as np

from repro.sim.allocstate import AllocationState
from repro.sim.fairshare import leveled_fill

#: Relative slack below which a link counts as saturated for *coupling* purposes.
#: Looser than the fill's own 1e-12 saturation epsilon so that float drift in the
#: incrementally maintained ``link_load`` can never hide a truly saturated link
#: from the downstream closure; treating a hairline-slack link as saturated only
#: enlarges the refill region, which stays exact.
_SAT_RTOL = 1e-9

#: Refill/expansion iterations per event before falling back to a full fill.
_EXPANSION_CAP = 4


def _fresh_counters() -> Dict[str, int]:
    """Per-run observability counters (surfaced through ``meta['allocator_stats']``)."""
    return {"full_fills": 0, "rebuilds": 0, "refills": 0, "expansions": 0,
            "downstream_flows": 0, "downstream_max": 0, "levels_refilled": 0}


class BottleneckAllocator:
    """Downstream-only refills over the cached bottleneck structure (opt-in)."""

    name = "bottleneck"

    def __init__(self, state: AllocationState, capacities: np.ndarray,
                 line_rate: float) -> None:
        """Bind the allocator to one run's state, capacities and line rate."""
        self.state = state
        self.capacities = capacities
        self.line_rate = line_rate
        num_links = capacities.shape[0]
        self.link_util = np.zeros(num_links)
        #: Load carried by each link under the current allocation (amended O(delta)).
        self.link_load = np.zeros(num_links)
        #: Saturated-link set of the current allocation — the coupling graph edges.
        self.sat_mask = np.zeros(num_links, dtype=bool)
        #: Bottleneck level per link from the last structure build (-1 = slack).
        self.link_level = np.full(num_links, -1, dtype=np.int64)
        #: Cached cumulative fair-share rate of each bottleneck level.
        self.level_rates = np.zeros(0)
        #: Freeze level per flow slot from the last build (-1 = unknown/slack).
        self.flow_level = np.full(state.num_flows, -1, dtype=np.int64)
        #: Allocator-owned rate cache (slot-indexed; the engine's array is rebound
        #: under slot compaction, so a borrowed reference would go stale).
        self._rates = np.zeros(state.num_flows)
        #: link -> member flow slots (appended on add/switch, lazily filtered
        #: through ``state.active_mask``, pruned exactly at rebuilds).
        self.link_members: Dict[int, List[int]] = {}
        self._dirty_slots: Set[int] = set()   # flows needing a refill (add/switch)
        self._seed_links: Set[int] = set()    # links touched by events since recompute
        self._ops = 0
        self._needs_rebuild = True
        self.counters = _fresh_counters()

    def stats(self) -> Dict[str, int]:
        """Snapshot of the per-run counters."""
        return dict(self.counters)

    # ------------------------------------------------------------- slot arrays
    def _grow_slots(self, need: int) -> None:
        """Ensure the per-slot caches cover ``need`` slots (amortized doubling)."""
        if need <= self._rates.shape[0]:
            return
        size = max(need, 2 * self._rates.shape[0], 64)
        rates = np.zeros(size)
        rates[:self._rates.shape[0]] = self._rates
        self._rates = rates
        level = np.full(size, -1, dtype=np.int64)
        level[:self.flow_level.shape[0]] = self.flow_level
        self.flow_level = level

    # ------------------------------------------------------------ event deltas
    def add(self, slot: int, links: np.ndarray, capacity: int) -> None:
        """Record one arrival: append its segment, join its links' member lists.

        The new flow carries no load until its first refill; its links seed the
        downstream closure so the structure it lands in is refilled around it.
        """
        self.state.add(slot, links, capacity)
        self._grow_slots(slot + 1)
        self._rates[slot] = 0.0
        self.flow_level[slot] = -1
        for link in np.unique(links):
            link = int(link)
            self.link_members.setdefault(link, []).append(slot)
            self._seed_links.add(link)
        self._dirty_slots.add(slot)
        self._ops += 1

    def remove(self, slot: int) -> None:
        """Record one completion: subtract its load *now*, seed its links.

        The links and cached rate are read immediately because the segment may
        be compacted away before the next :meth:`recompute`.  ``sat_mask`` is
        deliberately left at its pre-event value: the downstream closure must
        see the coupling that existed when the flow still held its rate.
        """
        links = np.unique(self.state.flow_links(slot))
        counts = np.bincount(
            np.searchsorted(links, self.state.flow_links(slot)),
            minlength=links.size)
        self.state.remove(slot)
        rate = float(self._rates[slot]) if slot < self._rates.shape[0] else 0.0
        if rate and links.size:
            self.link_load[links] -= counts * rate
            self.link_util[links] = self.link_load[links] / self.capacities[links]
        if slot < self._rates.shape[0]:
            self._rates[slot] = 0.0
            self.flow_level[slot] = -1
        self._dirty_slots.discard(slot)
        self._seed_links.update(int(link) for link in links)
        self._ops += 1

    def switch(self, slots: np.ndarray, inj: np.ndarray, ej: np.ndarray,
               mid_pool: np.ndarray, mid_starts: np.ndarray,
               mid_lens: np.ndarray) -> None:
        """Record path switches: release old links' load, join the new links."""
        state = self.state
        slots = np.asarray(slots, dtype=np.int64)
        for slot in slots:
            slot = int(slot)
            old = np.unique(state.flow_links(slot))
            counts = np.bincount(np.searchsorted(old, state.flow_links(slot)),
                                 minlength=old.size)
            rate = float(self._rates[slot])
            if rate and old.size:
                self.link_load[old] -= counts * rate
                self.link_util[old] = self.link_load[old] / self.capacities[old]
            self._rates[slot] = 0.0
            self._seed_links.update(int(link) for link in old)
            self._dirty_slots.add(slot)
            self._ops += 1
        state.replace_paths(slots, inj, ej, mid_pool, mid_starts, mid_lens)
        for slot in slots:
            slot = int(slot)
            for link in np.unique(state.flow_links(slot)):
                link = int(link)
                self.link_members.setdefault(link, []).append(slot)
                self._seed_links.add(link)

    def idle(self) -> None:
        """No active flows: the structure is empty."""
        self.link_util[:] = 0.0
        self.link_load[:] = 0.0
        self.sat_mask[:] = False
        self.link_level[:] = -1
        self.level_rates = np.zeros(0)
        self.link_members.clear()
        self._dirty_slots.clear()
        self._seed_links.clear()
        self._ops = 0

    def rebind(self, state: AllocationState, old_to_new: Dict[int, int]) -> None:
        """Adopt a renumbered state (the streaming driver's slot compaction).

        Per-link caches are unaffected by slot renumbering; slot-indexed caches
        and member lists are rewritten through ``old_to_new`` (retired slots
        drop out, exactly like the ``active_mask`` filter would drop them).
        """
        state.compactions += self.state.compactions
        self.state = state
        size = max(state.num_flows, 64)
        rates = np.zeros(size)
        level = np.full(size, -1, dtype=np.int64)
        for old, new in old_to_new.items():
            if old < self._rates.shape[0]:
                rates[new] = self._rates[old]
                level[new] = self.flow_level[old]
        self._rates = rates
        self.flow_level = level
        self.link_members = {
            link: [old_to_new[s] for s in members if s in old_to_new]
            for link, members in self.link_members.items()}
        self._dirty_slots = {old_to_new[s] for s in self._dirty_slots
                             if s in old_to_new}

    # -------------------------------------------------------------- recompute
    def recompute(self, active: np.ndarray, rates_out: np.ndarray) -> np.ndarray:
        """Refill the downstream region of this event's perturbation.

        Returns the slots whose rates were recomputed — the engine re-evaluates
        congestion episodes exactly for those.
        """
        if active.size == 0:
            self.idle()
            return active
        # compaction moves segments, not (slot, link) structure: the caches hold
        self.state.maybe_compact(active)
        self._grow_slots(int(active[-1]) + 1)
        dirty = sorted(self._dirty_slots)
        seeds = sorted(self._seed_links)
        self._dirty_slots = set()
        self._seed_links = set()
        if self._needs_rebuild or self._ops >= max(64, active.size):
            return self._rebuild(active, rates_out)
        region = self._downstream(dirty, seeds)
        committed: Set[int] = set()
        for iteration in range(_EXPANSION_CAP + 1):
            if not region:
                break
            if 2 * len(region) >= active.size or iteration == _EXPANSION_CAP:
                # the perturbation is not local (or refuses to stop growing):
                # one full fill is no dearer than refilling most of the set
                self.counters["full_fills"] += 1
                self._full_refresh(active, rates_out)
                return active
            if iteration:
                self.counters["expansions"] += 1
            expand = self._refill(region, rates_out, committed)
            if not expand:
                break
            region = self._downstream(sorted(region), expand)
        # seed links no commit touched (e.g. the sole flow of a link completed):
        # refresh their saturation from the maintained loads
        leftover = [link for link in seeds if link not in committed]
        if leftover:
            idx = np.asarray(leftover, dtype=np.int64)
            caps = self.capacities[idx]
            self.sat_mask[idx] = \
                caps - self.link_load[idx] <= _SAT_RTOL * caps + _SAT_RTOL
        if not region:
            return np.empty(0, dtype=np.int64)
        return np.fromiter(sorted(region), dtype=np.int64, count=len(region))

    def _downstream(self, dirty: List[int], seeds: List[int]) -> Set[int]:
        """Close the event seed over the cached saturated-coupling structure.

        Alternating closure: a reached flow couples through every *saturated*
        link it crosses; a reached link couples to all its member flows.  Slack
        links never propagate — that is the bottleneck-structure pruning.
        Member lists are filtered (and pruned in place) through ``active_mask``.
        """
        state = self.state
        mask = state.active_mask
        sat = self.sat_mask
        members = self.link_members
        seen_flows: Set[int] = set(s for s in dirty if mask[s])
        seen_links: Set[int] = set(link for link in seeds if sat[link])
        pending_flows = list(seen_flows)
        pending_links = list(seen_links)
        while pending_links or pending_flows:
            if pending_links:
                link = pending_links.pop()
                alive = [s for s in members.get(link, ()) if mask[s]]
                members[link] = alive
                for s in alive:
                    if s not in seen_flows:
                        seen_flows.add(s)
                        pending_flows.append(s)
                continue
            flow = pending_flows.pop()
            for link in state.flow_links(flow):
                link = int(link)
                if sat[link] and link not in seen_links:
                    seen_links.add(link)
                    pending_links.append(link)
        return seen_flows

    def _refill(self, region: Set[int], rates_out: np.ndarray,
                committed: Set[int]) -> List[int]:
        """Refill ``region`` against residual capacities; commit the result.

        Residual capacity of a touched link is its full capacity minus the load
        of flows *outside* the region (computed by subtracting the region's own
        cached contribution from the maintained total).  Saturated links have no
        outside flows by closure, so their full capacity is in play; slack links
        keep their outside load reserved.  Returns the newly saturated links
        that still carry outside members — the expansion frontier (empty when
        the commit is final).
        """
        state = self.state
        member = np.fromiter(sorted(region), dtype=np.int64, count=len(region))
        starts = state.seg_start[member]
        lens = state.seg_len[member]
        total = int(lens.sum())
        offsets = np.cumsum(lens) - lens
        idx = np.arange(total)
        src = np.repeat(starts - offsets, lens) + idx
        entry_links = state.pool_links[src]
        entry_flows = np.repeat(np.arange(member.size), lens)
        touched, compressed = np.unique(entry_links, return_inverse=True)
        old_entry_rates = np.repeat(self._rates[member], lens)
        old_load = np.bincount(compressed, weights=old_entry_rates,
                               minlength=touched.size)
        residual = self.capacities[touched] - (self.link_load[touched] - old_load)
        np.maximum(residual, 0.0, out=residual)
        fair, flow_round, link_round, levels = leveled_fill(
            entry_flows, member.size, residual, compressed, touched.size)
        np.minimum(fair, self.line_rate, out=fair)
        # commit: rates, loads, utilisation and the structure over touched links
        rates_out[member] = fair
        self._rates[member] = fair
        new_load = np.bincount(compressed, weights=fair[entry_flows],
                               minlength=touched.size)
        self.link_load[touched] += new_load - old_load
        self.link_util[touched] = self.link_load[touched] / self.capacities[touched]
        was_sat = self.sat_mask[touched]
        now_sat = link_round >= 0
        newly = touched[now_sat & ~was_sat]
        self.sat_mask[touched] = now_sat
        self.flow_level[member] = flow_round
        committed.update(int(link) for link in touched)
        self.counters["refills"] += 1
        self.counters["downstream_flows"] += len(region)
        self.counters["downstream_max"] = max(self.counters["downstream_max"],
                                              len(region))
        self.counters["levels_refilled"] += int(levels.size)
        # expansion frontier: newly saturated links whose member lists reach
        # outside the region — their outside flows' cached rates may now be
        # wrong (either squeezed below or left under the new bottleneck rate)
        mask = state.active_mask
        expand: List[int] = []
        for link in newly:
            link = int(link)
            alive = [s for s in self.link_members.get(link, ()) if mask[s]]
            self.link_members[link] = alive
            if any(s not in region for s in alive):
                expand.append(link)
        return expand

    def _full_refresh(self, active: np.ndarray, rates_out: np.ndarray) -> None:
        """One full fill over the persistent pool; refresh every per-link cache.

        Mirrors :func:`repro.sim.allocstate._full_fill` (same relabelling, same
        float path) but runs the instrumented kernel so loads, the saturated
        set and the bottleneck levels come out of the fill itself instead of
        being re-derived against a tolerance.
        """
        state = self.state
        entry_links, entry_slots = state.entries()
        local = np.searchsorted(active, entry_slots)  # sentinel -> active.size
        unfixed = np.ones(active.size + 1, dtype=bool)
        unfixed[active.size] = False
        touched, compressed = np.unique(entry_links, return_inverse=True)
        fair, flow_round, link_round, levels = leveled_fill(
            local, active.size + 1, self.capacities[touched], compressed,
            touched.size, unfixed=unfixed)
        np.minimum(fair, self.line_rate, out=fair)
        rates_out[active] = fair[:active.size]
        self._rates[active] = fair[:active.size]
        # dead entries carry exactly 0.0 weight (their local index is the fixed
        # sentinel), so the scatters below see only live load
        load = np.bincount(compressed, weights=fair[local], minlength=touched.size)
        self.link_load[:] = 0.0
        self.link_load[touched] = load
        self.link_util[:] = 0.0
        self.link_util[touched] = load / self.capacities[touched]
        self.sat_mask[:] = False
        self.sat_mask[touched] = link_round >= 0
        self.link_level[:] = -1
        self.link_level[touched] = link_round
        self.level_rates = levels
        self.flow_level[active] = flow_round[:active.size]

    def _rebuild(self, active: np.ndarray, rates_out: np.ndarray) -> np.ndarray:
        """Full fill plus an exact structure rebuild (member lists pruned)."""
        self._full_refresh(active, rates_out)
        members: Dict[int, List[int]] = {}
        links, slots = self.state.live_entries()
        if links.size:
            order = np.argsort(links, kind="stable")
            glinks = links[order]
            gslots = slots[order]
            bounds = np.flatnonzero(np.diff(glinks)) + 1
            for group_links, group_slots in zip(np.split(glinks, bounds),
                                                np.split(gslots, bounds)):
                members[int(group_links[0])] = \
                    np.unique(group_slots).tolist()
        self.link_members = members
        self._ops = 0
        self._needs_rebuild = False
        self.counters["rebuilds"] += 1
        return active
